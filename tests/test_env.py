"""Tests for the execution environments (SimEnv and RealEnv)."""

import threading
import time

import pytest

from repro.core.env import RealEnv, SimEnv
from repro.sim.engine import Engine
from repro.sim.resources import CpuCore


@pytest.fixture
def sim():
    eng = Engine()
    return eng, SimEnv(eng)


class TestSimEnv:
    def test_now_tracks_engine(self, sim):
        eng, env = sim
        eng.call_later(5.0, lambda: None)
        eng.run()
        assert env.now() == 5.0

    def test_call_later(self, sim):
        eng, env = sim
        hits = []
        env.call_later(2.0, lambda: hits.append(env.now()))
        eng.run()
        assert hits == [2.0]

    def test_call_later_cancel(self, sim):
        eng, env = sim
        hits = []
        h = env.call_later(2.0, lambda: hits.append(1))
        h.cancel()
        eng.run()
        assert hits == []

    def test_call_every_async_period(self, sim):
        eng, env = sim
        hits = []
        env.call_every(1.0, lambda: hits.append(env.now()))
        eng.run(until=4.5)
        assert hits == [1.0, 2.0, 3.0, 4.0]

    def test_call_every_cancel_stops(self, sim):
        eng, env = sim
        hits = []
        h = env.call_every(1.0, lambda: hits.append(env.now()))
        eng.call_later(2.5, h.cancel)
        eng.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_call_every_synchronous_alignment(self, sim):
        eng, env = sim
        hits = []
        # Start at t=0.7; synchronous with offset 0.2 must fire at
        # 1.2, 2.2, 3.2 ...
        eng.call_later(0.7, lambda: env.call_every(
            1.0, lambda: hits.append(round(env.now(), 6)),
            synchronous=True, offset=0.2))
        eng.run(until=3.5)
        assert hits == [1.2, 2.2, 3.2]

    def test_call_every_rejects_nonpositive(self, sim):
        _, env = sim
        with pytest.raises(ValueError):
            env.call_every(0.0, lambda: None)

    def test_pool_cost_advances_time_and_charges_core(self, sim):
        eng, env = sim
        core = CpuCore()
        pool = env.make_pool("p", 1)
        done = []
        pool.submit(lambda: done.append(env.now()), cost=0.25, core=core,
                    tag="x")
        eng.run()
        assert done == [0.25]
        assert core.busy_total == pytest.approx(0.25)
        assert core.records()[0].tag == "x"

    def test_pool_on_start_runs_at_grant(self, sim):
        eng, env = sim
        pool = env.make_pool("p", 1)
        events = []
        pool.submit(lambda: events.append(("end", env.now())), cost=0.5,
                    on_start=lambda: events.append(("start", env.now())))
        eng.run()
        assert events == [("start", 0.0), ("end", 0.5)]

    def test_pool_capacity_serializes(self, sim):
        eng, env = sim
        pool = env.make_pool("p", 1)
        ends = []
        pool.submit(lambda: ends.append(env.now()), cost=1.0)
        pool.submit(lambda: ends.append(env.now()), cost=1.0)
        eng.run()
        assert ends == [1.0, 2.0]
        assert pool.tasks_run == 2
        assert pool.busy_time == pytest.approx(2.0)

    def test_null_lock_reentrant(self, sim):
        _, env = sim
        lock = env.make_lock()
        with lock:
            with lock:
                pass


class TestRealEnv:
    def test_call_later_fires(self):
        env = RealEnv()
        try:
            fired = threading.Event()
            env.call_later(0.05, fired.set)
            assert fired.wait(2.0)
        finally:
            env.shutdown()

    def test_cancel_prevents_fire(self):
        env = RealEnv()
        try:
            hits = []
            h = env.call_later(0.2, lambda: hits.append(1))
            h.cancel()
            time.sleep(0.4)
            assert hits == []
        finally:
            env.shutdown()

    def test_call_every_fires_repeatedly(self):
        env = RealEnv()
        try:
            count = {"n": 0}
            done = threading.Event()

            def tick():
                count["n"] += 1
                if count["n"] >= 3:
                    done.set()

            h = env.call_every(0.05, tick)
            assert done.wait(3.0)
            h.cancel()
        finally:
            env.shutdown()

    def test_pool_runs_tasks(self):
        env = RealEnv()
        try:
            pool = env.make_pool("w", 2)
            done = threading.Event()
            order = []
            pool.submit(lambda: order.append("task") or done.set(),
                        on_start=lambda: order.append("start"))
            assert done.wait(2.0)
            assert order == ["start", "task"]
        finally:
            env.shutdown()

    def test_lock_is_real(self):
        env = RealEnv()
        try:
            lock = env.make_lock()
            assert lock.acquire()
            lock.release()
        finally:
            env.shutdown()

    def test_now_monotone(self):
        env = RealEnv()
        try:
            a = env.now()
            time.sleep(0.01)
            assert env.now() > a
        finally:
            env.shutdown()
