"""A 'DES engine' whose event stamping leaks to the host clock."""

from despkg import helper


def schedule_event(delay: float) -> float:
    return helper.stamp() + delay
