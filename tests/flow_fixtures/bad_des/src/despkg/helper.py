"""In-package helper that calls out to a non-DES utility module."""

import extutil


def stamp() -> float:
    return extutil.wallclock()
