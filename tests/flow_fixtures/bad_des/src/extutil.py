"""Outside the DES-pure package: the actual wall-clock read."""

import time


def wallclock() -> float:
    return time.time()
