"""Outside the shard plane: a module-level results registry.

Each forked worker appends into its private copy; the parent's stays
empty — exactly the divergence the contract forbids.
"""

RESULTS: list[int] = []


def record_result(job: int) -> int:
    RESULTS.append(job * 2)
    return 1
