"""The shard plane itself: its counters are allowed to be process-global."""

WINDOWS = 0


def note_window(shard_id: int) -> None:
    global WINDOWS
    WINDOWS += 1
