"""A shard worker whose per-shard loop leaks into a shared registry."""

from shardpkg import plane, registry


def run_shard(shard_id: int) -> int:
    plane.note_window(shard_id)
    done = 0
    for job in range(shard_id, shard_id + 4):
        done += registry.record_result(job)
    return done
