"""A transport whose HELLO gate checks a feature nobody advertises
(the ``-v2`` suffix was added on the consume side only)."""

BASE_FEATURES = frozenset({"trace-ctx"})


class Endpoint:
    def __init__(self) -> None:
        self.trace_ok = False

    def negotiate(self, peer_features: frozenset) -> None:
        self.trace_ok = "trace-ctx-v2" in peer_features
