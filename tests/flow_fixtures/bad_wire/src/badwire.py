"""A toy codec with two classic drift bugs.

``unpack_ping_req`` reads ``<II`` where the encoder wrote ``<IQ`` (the
request id was widened to u64 on the pack side only), and
``unpack_ping_reply`` still slices the payload at byte 12 although its
own header format grew to 16 bytes.
"""

import struct


class MsgType:
    PING_REQ = 1
    PING_REPLY = 2


TRACE_FLAG = 0x80
_MSG_TYPE_MASK = 0x7F


def pack_ping_req(seq: int, req_id: int) -> bytes:
    return struct.pack("<IQ", seq, req_id)


def unpack_ping_req(payload: bytes) -> tuple[int, int]:
    return struct.unpack_from("<II", payload, 0)


def pack_ping_reply(status: int, req_id: int, blob: bytes) -> bytes:
    return struct.pack("<iQI", status, req_id, len(blob)) + blob


def unpack_ping_reply(payload: bytes) -> bytes:
    _status, _req_id, n = struct.unpack_from("<iQI", payload, 0)
    return payload[12:12 + n]
