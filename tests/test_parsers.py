"""Tests for the /proc and /sys text parsers against real-format samples."""

import pytest

from repro.plugins.samplers.parsers import (
    CPU_FIELDS,
    LNET_FIELDS,
    parse_counter_file,
    parse_gpcdr,
    parse_loadavg,
    parse_lnet_stats,
    parse_lustre_stats,
    parse_meminfo,
    parse_nfs,
    parse_proc_stat,
)

MEMINFO_SAMPLE = """\
MemTotal:       65842792 kB
MemFree:        60117344 kB
Buffers:          328304 kB
Cached:          3252580 kB
SwapCached:            0 kB
Active:          2759336 kB
Inactive:        1849294 kB
Dirty:               748 kB
HugePages_Total:       0
"""

PROC_STAT_SAMPLE = """\
cpu  82940774 681 15268142 10405431165 7584615 0 591685 0 0 0
cpu0 5858268 20 1075533 648950574 740769 0 252382 0 0 0
cpu1 6585357 95 1104049 649614857 258676 0 49146 0 0 0
intr 1561186478 66 2 0
ctxt 2129786680
btime 1398783287
processes 3593752
procs_running 2
procs_blocked 0
"""

LUSTRE_SAMPLE = """\
snapshot_time 1398793659.310987 secs.usecs
dirty_pages_hits 1689183 samples [regs]
dirty_pages_misses 434548 samples [regs]
read_bytes 18896 samples [bytes] 1 4194304 29343234703
write_bytes 528997 samples [bytes] 1 4194304 17155294517
open 247667 samples [regs]
close 245765 samples [regs]
"""


class TestMeminfo:
    def test_values(self):
        mem = parse_meminfo(MEMINFO_SAMPLE)
        assert mem["MemTotal"] == 65842792
        assert mem["Dirty"] == 748

    def test_unitless_rows(self):
        assert parse_meminfo(MEMINFO_SAMPLE)["HugePages_Total"] == 0

    def test_garbage_lines_ignored(self):
        mem = parse_meminfo("nonsense\nMemFree: 5 kB\n: 3\nBad: x kB\n")
        assert mem == {"MemFree": 5}

    def test_empty(self):
        assert parse_meminfo("") == {}


class TestProcStat:
    def test_aggregate_row(self):
        stat = parse_proc_stat(PROC_STAT_SAMPLE)
        assert stat["cpu_user"] == 82940774
        assert stat["cpu_iowait"] == 7584615

    def test_per_cpu_rows(self):
        stat = parse_proc_stat(PROC_STAT_SAMPLE)
        assert stat["cpu0_user"] == 5858268
        assert stat["cpu1_idle"] == 649614857

    def test_scalars(self):
        stat = parse_proc_stat(PROC_STAT_SAMPLE)
        assert stat["ctxt"] == 2129786680
        assert stat["processes"] == 3593752
        assert stat["procs_running"] == 2

    def test_all_cpu_fields_present(self):
        stat = parse_proc_stat(PROC_STAT_SAMPLE)
        for f in CPU_FIELDS:
            assert f"cpu_{f}" in stat


class TestLoadavg:
    def test_parse(self):
        out = parse_loadavg("0.52 0.61 0.80 2/1024 12345\n")
        assert out["load1"] == pytest.approx(0.52)
        assert out["runnable"] == 2
        assert out["total_procs"] == 1024


class TestLustre:
    def test_event_counts(self):
        out = parse_lustre_stats(LUSTRE_SAMPLE)
        assert out["open"] == 247667
        assert out["dirty_pages_misses"] == 434548

    def test_byte_sums(self):
        out = parse_lustre_stats(LUSTRE_SAMPLE)
        assert out["read_bytes"] == 18896  # sample count
        assert out["read_bytes_sum"] == 29343234703  # byte total

    def test_snapshot_time_skipped(self):
        assert "snapshot_time" not in parse_lustre_stats(LUSTRE_SAMPLE)


class TestNfs:
    def test_parse(self):
        out = parse_nfs("net 100 100 0 0\nrpc 5000 3 0\n"
                        "proc3 22 0 10 0 0 5 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n")
        assert out["rpc_calls"] == 5000
        assert out["rpc_retrans"] == 3
        assert out["nfs3_ops"] == 15


class TestLnet:
    def test_parse(self):
        text = "0 2048 0 17 23 0 1 4096 8192 0 0\n"
        out = parse_lnet_stats(text)
        assert out["send_count"] == 17
        assert out["recv_length"] == 8192
        assert set(out) == set(LNET_FIELDS)

    def test_short_line(self):
        out = parse_lnet_stats("0 2048 0\n")
        assert out["errors"] == 0
        assert "send_count" not in out


class TestCounterFile:
    def test_plain(self):
        assert parse_counter_file("123456\n") == 123456

    def test_whitespace(self):
        assert parse_counter_file("  42  \n") == 42

    def test_garbage_raises(self):
        with pytest.raises((ValueError, IndexError)):
            parse_counter_file("not-a-number\n")


class TestGpcdrParse:
    def test_parse(self):
        text = "timestamp 12.500000\ntraffic_X+ 100\nstalled_X+ 999\n"
        out = parse_gpcdr(text)
        assert out["timestamp"] == pytest.approx(12.5)
        assert out["traffic_X+"] == 100

    def test_malformed_lines_skipped(self):
        out = parse_gpcdr("one two three\nsingleton\ntraffic_Y+ 5\n")
        assert out == {"traffic_Y+": 5}
