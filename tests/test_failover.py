"""Failover end-to-end (§IV-B) and reconnect backoff.

The e2e test reproduces the Blue Waters fast-failover scenario: the
Fig. 3 standby topology, one first-level aggregator killed mid-run, the
external watchdog promoting the neighbour's standby producers, and the
stored CSV showing a bounded collection gap for the victim's nodes.
"""

import csv
import os

import pytest

import repro.plugins  # noqa: F401
from repro.cluster.machine import blue_waters
from repro.core import Ldmsd, SimEnv
from repro.experiments.failover import run_failover
from repro.faults import FaultPlan
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport


@pytest.fixture
def world():
    eng = Engine()
    return eng, SimEnv(eng), SimFabric(eng)


class TestReconnectBackoff:
    def _producer(self, world, **kwargs):
        _eng, env, fabric = world
        agg = Ldmsd("agg", env=env,
                    transports={"rdma": SimTransport(fabric, "rdma",
                                                     node_id="agg")})
        return agg, agg.add_producer("s0", "rdma", "s0:411", interval=1.0,
                                     **kwargs)

    def test_delay_grows_and_caps(self, world):
        _agg, p = self._producer(world, reconnect_interval=2.0,
                                 reconnect_max=60.0)
        delays = []
        for attempt in range(12):
            p._reconnect_attempts = attempt
            delays.append(p._reconnect_delay())
        # Exponential envelope: each raw delay doubles until the cap.
        for i, d in enumerate(delays):
            raw = min(2.0 * 2 ** i, 60.0)
            assert 0.75 * raw <= d <= raw  # jitter shaves at most 25%
        assert delays[0] < 2.0 + 1e-9
        assert max(delays) <= 60.0

    def test_jitter_deterministic_per_producer(self, world):
        _agg, p = self._producer(world)
        p._reconnect_attempts = 3
        assert p._reconnect_delay() == p._reconnect_delay()
        # A fresh producer with the same name sees the same schedule...
        eng2 = Engine()
        env2 = SimEnv(eng2)
        fabric2 = SimFabric(eng2)
        agg2 = Ldmsd("agg", env=env2,
                     transports={"rdma": SimTransport(fabric2, "rdma",
                                                      node_id="agg")})
        q = agg2.add_producer("s0", "rdma", "s0:411", interval=1.0)
        q._reconnect_attempts = 3
        assert q._reconnect_delay() == p._reconnect_delay()
        # ...while a differently named producer is decorrelated.
        r = agg2.add_producer("s1", "rdma", "s1:411", interval=1.0)
        r._reconnect_attempts = 3
        assert r._reconnect_delay() != p._reconnect_delay()

    def test_attempts_reset_on_success(self, world):
        eng, env, fabric = world
        agg, p = self._producer(world, reconnect_interval=0.1,
                                reconnect_max=1.0)
        eng.run(until=3.0)  # nothing listening: attempts accumulate
        assert p._reconnect_attempts >= 3
        assert not p.connected
        samp = Ldmsd("s0", env=env,
                     transports={"rdma": SimTransport(fabric, "rdma",
                                                      node_id="s0")})
        samp.load_sampler("synthetic", instance="s0/syn", component_id=1)
        samp.start_sampler("s0/syn", interval=1.0)
        samp.listen("rdma", "s0:411")
        eng.run(until=8.0)
        assert p.connected
        assert p._reconnect_attempts == 0

    def test_tick_does_not_bypass_backoff(self, world):
        eng, _env, fabric = world
        agg, p = self._producer(world, reconnect_interval=4.0,
                                reconnect_max=60.0)
        x = agg.transports["rdma"]
        eng.run(until=20.0)
        # With base 4s and doubling, at most ~4 attempts fit in 20s.
        # The 1s update tick must not add one connect per tick (~20).
        assert fabric.engine.now == 20.0
        assert p._reconnect_attempts <= 5


class TestFailoverE2E:
    def test_kill_promotes_within_bound_and_loss_is_bounded(self):
        r = run_failover(n_nodes=8, fanin=4, interval=1.0, k=2,
                         kill_at=15.0, duration=45.0, seed=1)
        assert r.promotions > 0
        assert r.within_bound
        assert r.promote_latency <= r.latency_bound + 1e-9
        # Loss per set is bounded by detection + one interval to resume.
        n_sets = 4  # victim group: one bw_custom set per node
        per_set = r.samples_lost / n_sets
        assert per_set <= (r.k + 2)
        assert r.rows_victim_group > 0

    def test_same_seed_identical(self):
        a = run_failover(n_nodes=8, fanin=4, interval=1.0, k=2,
                         kill_at=15.0, duration=40.0, seed=7)
        b = run_failover(n_nodes=8, fanin=4, interval=1.0, k=2,
                         kill_at=15.0, duration=40.0, seed=7)
        assert a.key() == b.key()

    def test_csv_shows_bounded_gap(self, tmp_path):
        """Fig. 3 with store_csv: the on-disk record of the victim's
        node group has a bounded hole around the kill."""
        interval, k, kill_at = 1.0, 2, 12.0
        m = blue_waters(8, seed=3)
        dep = m.deploy_ldms(interval=interval, collect_interval=interval,
                            fanin=4, second_level=False, standby=True,
                            store="store_csv",
                            store_kwargs={"path": str(tmp_path)})
        wd = m.attach_watchdog(dep, check_interval=interval, k=k)
        victim = dep.level1[-1]
        inj = m.fault_injector(dep)
        inj.arm(FaultPlan().crash(victim.name, kill_at))
        m.run(until=40.0)
        dep.shutdown()  # flush CSV buffers

        # Victim group = nodes 4..7 (fanin 4, victim is agg1).
        group = {f"n{i}" for i in range(4, 8)}
        times: dict[str, list[float]] = {}
        path = os.path.join(str(tmp_path), "bw_custom.csv")
        with open(path, encoding="utf-8") as fh:
            for row in csv.reader(fh):
                if not row or row[0] == "Time":
                    continue  # headers (one per store instance)
                t, producer = float(row[0]), row[1]
                node = producer.removeprefix("standby-")
                if node in group:
                    times.setdefault(node, []).append(t)
        assert set(times) == group
        for node, ts in times.items():
            ts.sort()
            # Rows exist on both sides of the kill...
            assert ts[0] < kill_at < ts[-1]
            # ...and the hole is bounded by detection + one interval.
            max_gap = max(b - a for a, b in zip(ts, ts[1:]))
            assert max_gap <= (k + 2) * interval + 1e-6
        assert wd.events and wd.events[0].kind == "dead"
