"""Fault injection, the failover watchdog, and the hardened
reconnect/lookup paths (paper §IV-B).

The regression tests here pin four bugs the fault subsystem exposed:
a lost LOOKUP_REPLY wedging an updater in LOOKUP_PENDING forever, the
dead ``stopped`` flag in ``advertise()`` (plus the served-endpoint
leak), DIR_REPLY never pruning deleted sets, and ``stats.stored``
counting records the store layer never accepted.
"""

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv
from repro.core import wire
from repro.core.aggregator import SetState
from repro.faults import FaultEvent, FaultInjector, FaultPlan, Watchdog
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport
from repro.util.errors import ConfigError, StoreError


@pytest.fixture
def world():
    eng = Engine()
    return eng, SimEnv(eng), SimFabric(eng)


def daemon(world, name, xprt="rdma", node_id=None):
    _eng, env, fabric = world
    return Ldmsd(name, env=env,
                 transports={xprt: SimTransport(fabric, xprt,
                                                node_id=node_id or name)})


def sampler_agg_pair(world, interval=1.0, **producer_kwargs):
    """One synthetic sampler + one discovery-mode aggregator w/ store."""
    samp = daemon(world, "s0")
    samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                      num_metrics=4)
    samp.start_sampler("s0/syn", interval=interval)
    samp.listen("rdma", "s0:411")
    agg = daemon(world, "agg")
    st = agg.add_store("memory")
    agg.add_producer("s0", "rdma", "s0:411", interval=interval,
                     **producer_kwargs)
    return samp, agg, st


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(at=1.0, kind="meteor", target=("x",))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(at=-1.0, kind="crash", target=("x",))

    def test_events_stay_sorted(self):
        plan = FaultPlan().crash("d", 9.0).link_down("a", "b", 1.0, duration=2.0)
        assert [e.at for e in plan.events] == [1.0, 3.0, 9.0]

    def test_transient_faults_append_recovery(self):
        plan = FaultPlan().store_failure("d", 2.0, duration=3.0)
        assert [e.kind for e in plan.events] == ["store_fail", "store_heal"]
        assert plan.events[1].at == 5.0

    def test_random_plan_deterministic(self):
        kw = dict(daemons=("d0", "d1"), links=((0, "svc0"),), stores=("d1",))
        assert FaultPlan.random(3, **kw).events == FaultPlan.random(3, **kw).events
        assert FaultPlan.random(3, **kw).events != FaultPlan.random(4, **kw).events

    def test_random_plan_needs_targets(self):
        with pytest.raises(ConfigError):
            FaultPlan.random(1)


class TestFabricFaults:
    def test_blocked_link_blackholes_and_fails_reads(self, world):
        eng, _, fabric = world
        samp, agg, st = sampler_agg_pair(world)
        eng.run(until=5.0)
        rows_up = len(st.rows)
        assert rows_up > 0
        fabric.faults.block("s0", "agg")
        eng.run(until=10.0)
        # Reads fail with a completion (no wedge) and nothing is stored.
        prod = agg.producers["s0"]
        assert fabric.faults.reads_failed > 0
        assert prod.stats.updates_failed > 0
        assert not any(u.in_flight for u in prod.updaters.values())
        blocked_rows = len(st.rows)
        fabric.faults.unblock("s0", "agg")
        eng.run(until=20.0)
        assert len(st.rows) > blocked_rows  # collection resumed

    def test_slow_link_adds_latency(self, world):
        eng, _, fabric = world
        samp, agg, st = sampler_agg_pair(world)
        eng.run(until=5.0)
        base = agg.obs.histogram("update.rtt").quantile(0.5)
        fabric.faults.set_latency("s0", "agg", 0.05)
        eng.run(until=10.0)
        assert agg.obs.histogram("update.rtt").max >= 0.05

    def test_filter_retires_itself(self, world):
        eng, _, fabric = world
        calls = {"n": 0}

        def eat_two(src, dst, frame):
            calls["n"] += 1
            if calls["n"] > 2:
                fabric.faults.remove_filter(eat_two)
                return False
            return True

        fabric.faults.add_filter(eat_two)
        samp, agg, st = sampler_agg_pair(world)
        eng.run(until=10.0)
        assert fabric.faults.frames_dropped == 2
        assert not fabric.faults.active  # filter gone, fast path restored
        assert len(st.rows) > 0


class TestLookupTimeout:
    """Satellite 1: a lost LOOKUP_REPLY must not wedge the updater."""

    def test_dropped_lookup_reply_recovers(self, world):
        eng, env, fabric = world
        samp, agg, st = sampler_agg_pair(world, interval=1.0)
        inj = FaultInjector(env, daemons={"agg": agg}, fabric=fabric)
        # Eat exactly the first LOOKUP_REPLY travelling sampler -> agg.
        inj.arm(FaultPlan().drop_frames(
            "s0", "agg", at=0.0, msg_type=wire.MsgType.LOOKUP_REPLY, count=1))
        eng.run(until=15.0)
        assert fabric.faults.frames_dropped == 1
        prod = agg.producers["s0"]
        # The timeout reset the updater and the retry succeeded: without
        # it the set stays LOOKUP_PENDING forever and nothing is stored.
        assert prod.stats.lookups_timed_out == 1
        upd = prod.updaters["s0/syn"]
        assert upd.state is SetState.READY
        assert len(st.rows) > 0

    def test_pending_lookup_survives_within_timeout(self, world):
        eng, _, _fabric = world
        samp, agg, st = sampler_agg_pair(world, interval=1.0,
                                         lookup_timeout=30.0)
        eng.run(until=10.0)
        assert agg.producers["s0"].stats.lookups_timed_out == 0
        assert len(st.rows) > 0


class TestAdvertiseLifecycle:
    """Satellite 2: stop_advertise works and endpoints are pruned."""

    def _pair(self, world, interval=1.0):
        agg = daemon(world, "agg")
        agg.listen("rdma", "agg:411")
        st = agg.add_store("memory")
        agg.add_producer("node0", "rdma", interval=interval, passive=True)
        samp = daemon(world, "node0")
        samp.load_sampler("synthetic", instance="node0/syn",
                          component_id=1, num_metrics=4)
        samp.start_sampler("node0/syn", interval=interval)
        return agg, samp, st

    def test_stop_advertise_stops_redialing(self, world):
        eng, _, _ = world
        agg, samp, st = self._pair(world)
        samp.advertise("rdma", "agg:411", reconnect_interval=0.5)
        eng.run(until=5.0)
        assert agg.producers["node0"].connected
        samp.stop_advertise("node0")
        eng.run(until=20.0)
        n = len(st.rows)
        eng.run(until=30.0)
        assert len(st.rows) == n  # no re-advertise, no new rows
        assert not agg.producers["node0"].connected
        assert samp._served_endpoints == []

    def test_stop_unknown_advertisement_rejected(self, world):
        samp = daemon(world, "node0")
        with pytest.raises(ConfigError):
            samp.stop_advertise("node0")

    def test_double_advertise_rejected(self, world):
        _eng, _, _ = world
        samp = daemon(world, "node0")
        samp.advertise("rdma", "agg:411")
        with pytest.raises(ConfigError):
            samp.advertise("rdma", "agg:411")

    def test_closed_endpoints_pruned_not_leaked(self, world):
        eng, _, _ = world
        agg, samp, st = self._pair(world)
        samp.advertise("rdma", "agg:411", reconnect_interval=0.25)
        for _ in range(4):
            eng.run(until=eng.now + 4.0)
            prod = agg.producers["node0"]
            if prod.endpoint is not None:
                prod.endpoint.close()
        eng.run(until=eng.now + 4.0)
        # One live advertised connection at most; closed ones removed.
        assert len([e for e in samp._served_endpoints if not e.closed]) <= 1
        assert len(samp._served_endpoints) <= 1


class TestDirPruning:
    """Satellite 3: sets the directory no longer lists are dropped."""

    def test_deleted_set_pruned(self, world):
        eng, _, _ = world
        samp = daemon(world, "s0")
        for inst in ("s0/a", "s0/b"):
            samp.load_sampler("synthetic", instance=inst, component_id=1,
                              num_metrics=2)
            samp.start_sampler(inst, interval=1.0)
        samp.listen("rdma", "s0:411")
        agg = daemon(world, "agg")
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0, dir_refresh=3)
        # Stop mid-interval so no sample transaction is in flight on
        # the set when it is deleted.
        eng.run(until=5.3)
        prod = agg.producers["s0"]
        assert set(prod.updaters) == {"s0/a", "s0/b"}
        assert "s0/b" in agg._sets
        samp.stop_sampler("s0/b")
        samp.delete_set("s0/b")
        eng.run(until=15.0)
        assert set(prod.updaters) == {"s0/a"}
        assert prod.stats.sets_pruned == 1
        assert "s0/b" not in agg._sets  # mirror unregistered

    def test_explicit_sets_never_pruned(self, world):
        eng, _, _ = world
        samp = daemon(world, "s0")
        samp.load_sampler("synthetic", instance="s0/syn", component_id=1)
        samp.start_sampler("s0/syn", interval=1.0)
        samp.listen("rdma", "s0:411")
        agg = daemon(world, "agg")
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0,
                         sets=("s0/syn", "s0/ghost"))
        eng.run(until=10.0)
        # "s0/ghost" never exists, but an explicit set list is config,
        # not discovery — it must stay and keep retrying lookup.
        assert "s0/ghost" in agg.producers["s0"].updaters


class TestStoredCounter:
    """Satellite 4: ``stored`` counts only records the store layer took."""

    def test_store_failure_not_counted_as_stored(self, world):
        eng, _, _ = world
        samp, agg, st = sampler_agg_pair(world, interval=1.0)

        def boom(producer, mirror, trace=None):
            raise StoreError("backend down")

        agg._deliver_to_stores = boom
        eng.run(until=10.0)
        prod = agg.producers["s0"]
        assert prod.stats.updates_completed > 0
        assert prod.stats.stored == 0
        assert agg.obs.counter("store.errors").value > 0

    def test_injected_store_failure_counts_failed(self, world):
        eng, env, fabric = world
        samp, agg, st = sampler_agg_pair(world, interval=1.0)
        inj = FaultInjector(env, daemons={"agg": agg}, fabric=fabric)
        inj.arm(FaultPlan().store_failure("agg", at=4.0, duration=4.0))
        eng.run(until=16.0)
        assert st.records_failed > 0
        assert agg.obs.counter("store.errors").value > 0
        assert agg.obs.counter("faults.injected").value == 1
        # Heal: writes succeed again afterwards.
        n_after_heal = st.records_stored
        eng.run(until=24.0)
        assert st.records_stored > n_after_heal


class TestWatchdog:
    def test_declares_dead_after_k_missed(self, world):
        eng, env, _ = world
        hb = {"t": 0.0}
        died = []
        wd = Watchdog(env, check_interval=1.0, k=3)
        wd.watch("x", lambda: hb["t"], lambda: died.append(env.now()))
        wd.start()

        def beat():
            hb["t"] = env.now()

        pulse = env.call_every(0.5, beat)
        eng.run(until=5.0)
        assert not died
        pulse.cancel()  # heartbeat stops "crashing" the target
        eng.run(until=20.0)
        assert len(died) == 1
        # Bound: dead within (k + 1) checks of the last heartbeat.
        assert died[0] - 5.0 <= (3 + 1) * 1.0 + 1e-9
        assert [e.kind for e in wd.events] == ["dead"]

    def test_recovery_demotes(self, world):
        eng, env, _ = world
        hb = {"t": 0.0, "alive": True}
        log = []
        wd = Watchdog(env, check_interval=1.0, k=2)
        wd.watch("x", lambda: hb["t"],
                 lambda: log.append("dead"), lambda: log.append("recovered"))
        wd.start()
        env.call_every(0.5, lambda: hb.update(t=env.now()) if hb["alive"] else None)
        env.call_later(5.0, lambda: hb.update(alive=False))
        env.call_later(12.0, lambda: hb.update(alive=True))
        eng.run(until=20.0)
        assert log == ["dead", "recovered"]
        assert wd.targets["x"].deaths == 1
        assert wd.targets["x"].recoveries == 1

    def test_first_check_is_baseline(self, world):
        eng, env, _ = world
        died = []
        wd = Watchdog(env, check_interval=1.0, k=1)
        # Heartbeat frozen at 0 from the start: the baseline check must
        # not itself count as a miss at t=1.
        wd.watch("x", lambda: 0.0, lambda: died.append(env.now()))
        wd.start()
        eng.run(until=1.5)
        assert not died
        eng.run(until=3.0)
        assert died  # second check counts the miss

    def test_parameter_validation(self, world):
        _, env, _ = world
        with pytest.raises(ConfigError):
            Watchdog(env, check_interval=0.0)
        with pytest.raises(ConfigError):
            Watchdog(env, check_interval=1.0, k=0)
        wd = Watchdog(env, check_interval=1.0)
        wd.watch("x", lambda: 0.0, lambda: None)
        with pytest.raises(ConfigError):
            wd.watch("x", lambda: 0.0, lambda: None)


class TestFaultInjector:
    def test_crash_stops_daemon(self, world):
        eng, env, fabric = world
        samp, agg, st = sampler_agg_pair(world)
        inj = FaultInjector(env, daemons={"s0": samp, "agg": agg},
                            fabric=fabric)
        inj.arm(FaultPlan().crash("agg", at=5.0))
        eng.run(until=10.0)
        assert agg._shutdown
        assert inj.log and inj.log[0] == (5.0, "crash(agg)")

    def test_restart_needs_factory(self, world):
        _eng, env, fabric = world
        inj = FaultInjector(env, fabric=fabric)
        with pytest.raises(ConfigError):
            inj.arm(FaultPlan().crash("d", 1.0, restart_after=1.0))

    def test_link_faults_need_fabric(self, world):
        _eng, env, _ = world
        inj = FaultInjector(env)
        with pytest.raises(ConfigError):
            inj.arm(FaultPlan().link_down("a", "b", 1.0))

    def test_partition_and_heal(self, world):
        eng, env, fabric = world
        samp, agg, st = sampler_agg_pair(world)
        inj = FaultInjector(env, daemons={"agg": agg}, fabric=fabric)
        inj.arm(FaultPlan().partition(["s0"], ["agg"], at=3.0, duration=5.0))
        eng.run(until=3.5)
        assert fabric.faults.blocked("s0", "agg")
        eng.run(until=9.0)
        assert not fabric.faults.blocked("s0", "agg")
        rows_at_heal = len(st.rows)
        eng.run(until=15.0)
        assert len(st.rows) > rows_at_heal

    def test_disarm_cancels_pending(self, world):
        eng, env, fabric = world
        samp, agg, st = sampler_agg_pair(world)
        inj = FaultInjector(env, daemons={"agg": agg}, fabric=fabric)
        inj.arm(FaultPlan().crash("agg", at=8.0))
        eng.run(until=4.0)
        inj.disarm()
        eng.run(until=12.0)
        assert not agg._shutdown
        assert inj.log == []


class TestSeededSmoke:
    """CI's seeded random-plan smoke: fixed seed, clean shutdown,
    identical injection log across runs."""

    def _run(self, seed):
        eng = Engine()
        env = SimEnv(eng)
        fabric = SimFabric(eng)
        world = (eng, env, fabric)
        samp, agg, st = sampler_agg_pair(world, interval=1.0)
        inj = FaultInjector(env, daemons={"s0": samp, "agg": agg},
                            fabric=fabric)
        plan = FaultPlan.random(seed, links=(("s0", "agg"),),
                                stores=("agg",), t0=2.0, t1=25.0,
                                n_events=5)
        inj.arm(plan)
        eng.run(until=40.0)
        samp.shutdown()
        agg.shutdown()
        return inj.log, len(st.rows)

    def test_seeded_plan_smoke_deterministic(self):
        log1, rows1 = self._run(42)
        log2, rows2 = self._run(42)
        assert log1 == log2
        assert rows1 == rows2
        assert len(log1) >= 5  # all events (plus heals) applied
