"""Determinism and mechanics of the columnar set-arena data plane.

The arena (``REPRO_ARENA``) is a pure performance mechanism: cohort
sweeps, staged flush materialization, and serve-side gathers must
produce byte-for-byte the same stored output as the scalar path, with
and without the runtime sanitizer, and regardless of the PR-5 timer
wheel — and the cohort's single sweep event must slot into the engine's
equal-time FIFO exactly where the per-member timers used to fire.
"""

import os

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv, sanitize
from repro.core.set_arena import SetArenaPool
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport


def _read_csv_dir(path: str) -> bytes:
    blobs = []
    for name in sorted(os.listdir(path)):
        with open(os.path.join(path, name), "rb") as f:
            blobs.append(f.read())
    return b"".join(blobs)


def _fanin_world(arena: bool, csv_path: str, n: int = 16,
                 timer_wheel: bool = True):
    """A small sock fan-in with the arena explicitly on or off."""
    eng = Engine(timer_wheel=timer_wheel)
    env = SimEnv(eng, arena=arena)
    fabric = SimFabric(eng)
    samplers = []
    for i in range(n):
        x = SimTransport(fabric, "sock", node_id=i)
        d = Ldmsd(f"n{i}", env=env, transports={"sock": x}, mem="8kB")
        d.load_sampler("synthetic", instance=f"n{i}/syn", component_id=i + 1,
                       num_metrics=4)
        d.start_sampler(f"n{i}/syn", interval=1.0)
        d.listen("sock", f"n{i}:411")
        samplers.append(d)
    agg = Ldmsd("agg", env=env,
                transports={"sock": SimTransport(fabric, "sock",
                                                 node_id="agg")})
    store = agg.add_store("store_csv", path=csv_path)
    for i in range(n):
        agg.add_producer(f"n{i}", "sock", f"n{i}:411", interval=1.0,
                         sets=(f"n{i}/syn",))
    return eng, env, samplers, agg, store


class TestArenaTransparency:
    """Acceptance: arena on/off runs are byte-identical."""

    def test_fanin_csv_identical_arena_on_and_off(self, tmp_path):
        outputs = {}
        for arena in (True, False):
            path = tmp_path / f"arena_{arena}"
            path.mkdir()
            eng, _, _, _, store = _fanin_world(arena, str(path))
            eng.run(until=10.0)
            store.close()
            outputs[arena] = _read_csv_dir(str(path))
        assert outputs[True] == outputs[False]
        assert outputs[True]  # non-empty: rows actually flushed

    def test_fanin_csv_identical_under_sanitizer(self, tmp_path):
        """Cohort commits keep the shadow CRC discipline: same bytes,
        zero violations, with REPRO_SANITIZE=1."""
        prev = sanitize.configure("raise")
        try:
            outputs = {}
            for arena in (True, False):
                path = tmp_path / f"san_{arena}"
                path.mkdir()
                eng, _, _, _, store = _fanin_world(arena, str(path))
                eng.run(until=10.0)
                store.close()
                outputs[arena] = _read_csv_dir(str(path))
        finally:
            sanitize.configure(prev)
        assert outputs[True] == outputs[False]
        assert outputs[True]

    def test_csv_identical_across_arena_and_timer_wheel(self, tmp_path):
        """4-way interaction with the PR-5 wheel: every combination of
        (arena, wheel) replays the same history."""
        outputs = {}
        for arena in (True, False):
            for wheel in (True, False):
                path = tmp_path / f"w_{arena}_{wheel}"
                path.mkdir()
                eng, _, _, _, store = _fanin_world(
                    arena, str(path), timer_wheel=wheel)
                eng.run(until=10.0)
                store.close()
                outputs[(arena, wheel)] = _read_csv_dir(str(path))
        blobs = set(outputs.values())
        assert len(blobs) == 1
        assert outputs[(True, True)]

    def test_logical_event_count_invariant(self, tmp_path):
        """processed + vectorized is the arena-invariant logical event
        count (what BENCH_fanin.json reports as events)."""
        totals = {}
        for arena in (True, False):
            eng, _, _, _, _ = _fanin_world(arena, str(tmp_path / f"e{arena}"))
            eng.run(until=10.0)
            totals[arena] = eng.events_processed + eng.vectorized_events
            if arena:
                assert eng.vectorized_events > 0
            else:
                assert eng.vectorized_events == 0
        assert totals[True] == totals[False]


class TestCohortMechanics:
    def test_same_phase_samplers_share_one_cohort(self, tmp_path):
        eng, env, samplers, agg, _ = _fanin_world(
            True, str(tmp_path / "c"), n=8)
        eng.run(until=5.0)
        # All 8 same-phase synthetic samplers ride one arena: one sweep
        # per tick, 8 vectorized rows per sweep, attributed to the first
        # member's daemon.
        pool = env.set_arena_pool
        assert isinstance(pool, SetArenaPool)
        stats = pool.stats()
        assert stats["rows"] >= 8
        sweeps = sum(d.obs.counter("arena.sweeps").value for d in samplers)
        rows = sum(d.obs.counter("arena.rows_vectorized").value
                   for d in samplers)
        assert sweeps >= 4
        assert rows >= 8 * sweeps

    def test_stop_sampler_leaves_cohort_cleanly(self, tmp_path):
        eng, env, samplers, agg, _ = _fanin_world(
            True, str(tmp_path / "s"), n=4)
        eng.call_later(3.5, samplers[0].stop_sampler, "n0/syn")
        eng.run(until=8.0)
        # The survivors keep sampling after the membership change.
        assert samplers[0]._plugins["n0/syn"].samples_taken <= 4
        assert samplers[1]._plugins["n1/syn"].samples_taken >= 7

    def test_scalar_api_still_works_on_arena_rows(self, tmp_path):
        """Individually-allocated MetricSet semantics survive: per-set
        transactions and reads hit the same arena-backed bytes."""
        eng, env, samplers, _, _ = _fanin_world(True, str(tmp_path / "a"),
                                                n=2)
        eng.run(until=3.0)
        mset = samplers[0].get_set("n0/syn")
        assert mset._ab is not None
        vals = mset.values_tuple()
        assert len(vals) == 4
        assert mset.data_bytes() == bytes(mset._data)


class TestEqualTimeFifoWithCohort:
    def test_sweep_fires_in_schedule_order_at_equal_time(self, tmp_path):
        """A callback scheduled before start_sampler sees the pre-sweep
        state at the shared instant; one scheduled after sees the open
        transaction — the cohort timer occupies exactly the FIFO slot
        the per-member timers had."""
        eng = Engine(timer_wheel=True)
        env = SimEnv(eng, arena=True)
        d = Ldmsd("n0", env=env, transports={})
        seen = {}
        d.load_sampler("synthetic", instance="n0/syn", component_id=1,
                       num_metrics=4)
        mset_holder = {}

        def before():
            m = mset_holder["m"]
            seen["before"] = (m._in_transaction, m.dgn)

        def after():
            m = mset_holder["m"]
            seen["after"] = (m._in_transaction, m.dgn)

        eng.call_later(1.0, before)
        d.start_sampler("n0/syn", interval=1.0)
        mset_holder["m"] = d.get_set("n0/syn")
        eng.call_later(1.0, after)
        eng.run(until=1.5)
        # before() fired ahead of the sweep (transaction not yet open),
        # after() fired behind it (transaction open, DGN not yet bumped
        # -- values land at the cost horizon).
        assert seen["before"] == (False, 0)
        assert seen["after"][0] is True
        assert mset_holder["m"].dgn > 0  # finish ran by t=1.5
