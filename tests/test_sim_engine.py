"""Unit tests for the DES kernel: engine, events, processes, resources."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import AllOf, AnyOf, CpuCore, Engine, Interrupt, Process, Resource
from repro.util.errors import SimulationError


class TestEngineBasics:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_call_later_fires_at_time(self):
        eng = Engine()
        hits = []
        eng.call_later(2.5, lambda: hits.append(eng.now))
        eng.run()
        assert hits == [2.5]

    def test_run_until_advances_clock_exactly(self):
        eng = Engine()
        eng.call_later(10.0, lambda: None)
        eng.run(until=5.0)
        assert eng.now == 5.0

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.call_later(3.0, lambda: order.append(3))
        eng.call_later(1.0, lambda: order.append(1))
        eng.call_later(2.0, lambda: order.append(2))
        eng.run()
        assert order == [1, 2, 3]

    def test_same_time_fifo(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.call_later(1.0, lambda i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_cancel(self):
        eng = Engine()
        hits = []
        ev = eng.call_later(1.0, lambda: hits.append(1))
        Engine.cancel(ev)
        eng.run()
        assert hits == []

    def test_call_at_past_rejected(self):
        eng = Engine()
        eng.call_later(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(1.0, lambda: None)

    def test_run_until_event_returns_value(self):
        eng = Engine()
        ev = eng.event()
        eng.call_later(1.0, lambda: ev.succeed("payload"))
        assert eng.run(until=ev) == "payload"

    def test_run_until_failed_event_raises(self):
        eng = Engine()
        ev = eng.event()
        eng.call_later(1.0, lambda: ev.fail(RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            eng.run(until=ev)

    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Engine().timeout(-1.0)

    @given(st.lists(st.floats(min_value=0.001, max_value=100, allow_nan=False),
                    min_size=1, max_size=30))
    def test_clock_is_monotone(self, delays):
        eng = Engine()
        times = []
        for d in delays:
            eng.call_later(d, lambda: times.append(eng.now))
        eng.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestConditions:
    def test_allof_waits_for_all(self):
        eng = Engine()
        t1, t2 = eng.timeout(1.0, "a"), eng.timeout(2.0, "b")
        done = AllOf(eng, [t1, t2])
        assert eng.run(until=done) == ["a", "b"]
        assert eng.now == 2.0

    def test_anyof_fires_on_first(self):
        eng = Engine()
        t1, t2 = eng.timeout(5.0), eng.timeout(1.0, "fast")
        won = AnyOf(eng, [t1, t2])
        first = eng.run(until=won)
        assert first is t2
        assert eng.now == 1.0

    def test_empty_allof_fires_immediately(self):
        eng = Engine()
        done = AllOf(eng, [])
        assert done.triggered


def _proc(eng, log, delays):
    for d in delays:
        yield eng.timeout(d)
        log.append(eng.now)
    return "done"


class TestProcess:
    def test_process_advances_through_timeouts(self):
        eng = Engine()
        log = []
        p = Process(eng, _proc(eng, log, [1.0, 2.0]))
        assert eng.run(until=p) == "done"
        assert log == [1.0, 3.0]

    def test_process_waits_on_process(self):
        eng = Engine()
        log = []
        inner = Process(eng, _proc(eng, log, [5.0]))

        def outer():
            result = yield inner
            log.append((eng.now, result))

        eng.run(until=Process(eng, outer()))
        assert log == [5.0, (5.0, "done")]

    def test_interrupt_raises_inside(self):
        eng = Engine()
        caught = []

        def victim():
            try:
                yield eng.timeout(100.0)
            except Interrupt as exc:
                caught.append((eng.now, exc.cause))

        p = Process(eng, victim())
        eng.call_later(1.0, lambda: p.interrupt("preempted"))
        eng.run()
        assert caught == [(1.0, "preempted")]

    def test_interrupt_after_finish_is_noop(self):
        eng = Engine()
        p = Process(eng, _proc(eng, [], []))
        eng.run()
        p.interrupt()  # must not raise

    def test_process_failure_propagates_to_waiter(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("inner")

        p = Process(eng, bad())

        def waiter():
            with pytest.raises(ValueError, match="inner"):
                yield p

        eng.run(until=Process(eng, waiter()))

    def test_yield_non_event_is_type_error(self):
        eng = Engine()

        def bad():
            yield 42

        with pytest.raises(TypeError):
            eng.run(until=Process(eng, bad()))


class TestResource:
    def test_capacity_enforced(self):
        eng = Engine()
        res = Resource(eng, 2)
        grants = []

        def worker(i):
            req = res.request()
            yield req
            grants.append((eng.now, i))
            yield eng.timeout(1.0)
            res.release(req)

        for i in range(4):
            Process(eng, worker(i))
        eng.run()
        # Two start at 0, two must wait until 1.0.
        assert [t for t, _ in grants] == [0.0, 0.0, 1.0, 1.0]
        assert res.max_in_use == 2

    def test_release_without_request_rejected(self):
        eng = Engine()
        res = Resource(eng, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_fifo_grant_order(self):
        eng = Engine()
        res = Resource(eng, 1)
        order = []

        def worker(i):
            req = res.request()
            yield req
            order.append(i)
            yield eng.timeout(0.1)
            res.release(req)

        for i in range(5):
            Process(eng, worker(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]


class TestCpuCore:
    def test_unperturbed_burst(self):
        core = CpuCore()
        assert core.perturbed_finish(0.0, 1.0) == 1.0

    def test_noise_inside_burst_extends_it(self):
        core = CpuCore()
        core.add_noise(0.5, 0.2)
        assert core.perturbed_finish(0.0, 1.0) == pytest.approx(1.2)

    def test_noise_before_burst_ignored(self):
        core = CpuCore()
        core.add_noise(0.1, 0.5)
        assert core.perturbed_finish(0.2, 1.0) == pytest.approx(1.2)
        # burst starting after the noise start is not affected
        assert core.perturbed_finish(0.11, 1.0) == pytest.approx(1.11)

    def test_cascading_absorption(self):
        # Noise at 0.9 extends finish past 1.05, exposing noise at 1.05.
        core = CpuCore()
        core.add_noise(0.9, 0.2)
        core.add_noise(1.05, 0.3)
        assert core.perturbed_finish(0.0, 1.0) == pytest.approx(1.5)

    def test_noise_after_finish_not_absorbed(self):
        core = CpuCore()
        core.add_noise(1.5, 1.0)
        assert core.perturbed_finish(0.0, 1.0) == 1.0

    def test_noise_in_window(self):
        core = CpuCore()
        core.add_noise(1.0, 0.1)
        core.add_noise(2.0, 0.2)
        assert core.noise_in(0.0, 1.5) == pytest.approx(0.1)
        assert core.noise_in(0.0, 2.5) == pytest.approx(0.3)

    def test_clear_before(self):
        core = CpuCore()
        core.add_noise(1.0, 0.1)
        core.add_noise(5.0, 0.1)
        core.clear_before(3.0)
        assert len(core.records()) == 1

    @given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                              st.floats(0, 1, allow_nan=False)), max_size=30))
    def test_finish_never_before_nominal(self, noises):
        core = CpuCore()
        for start, dur in noises:
            core.add_noise(start, dur)
        finish = core.perturbed_finish(10.0, 5.0)
        assert finish >= 15.0
        total_noise = sum(d for _, d in noises)
        assert finish <= 15.0 + total_noise + 1e-9
