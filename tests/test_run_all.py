"""Smoke test for the one-shot experiment summary runner."""

from repro.experiments.run_all import main


def test_run_all_quick_all_ok(capsys):
    rows = main(["--quick"])
    assert len(rows) == 17
    drift = [r for r in rows if r[-1] != "OK"]
    assert drift == []
    out = capsys.readouterr().out
    assert "17/17 checks match the paper" in out
