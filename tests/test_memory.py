"""Unit tests for the arena memory manager."""

import pytest
from hypothesis import given, strategies as st

from repro.core.memory import Arena
from repro.util.errors import OutOfMemory


class TestArenaBasics:
    def test_alloc_returns_aligned_offsets(self):
        a = Arena(1024)
        assert a.alloc(10) % 8 == 0
        assert a.alloc(10) % 8 == 0

    def test_alloc_distinct_regions(self):
        a = Arena(1024)
        o1, o2 = a.alloc(100), a.alloc(100)
        assert abs(o1 - o2) >= 100

    def test_used_and_available(self):
        a = Arena(1024)
        a.alloc(100)
        assert a.used == 104  # aligned to 8
        assert a.available == 1024 - 104

    def test_exhaustion_raises(self):
        a = Arena(256)
        a.alloc(200)
        with pytest.raises(OutOfMemory):
            a.alloc(200)

    def test_free_enables_reuse(self):
        a = Arena(256)
        off = a.alloc(200)
        a.free(off)
        assert a.alloc(200) == off

    def test_free_unknown_offset_rejected(self):
        a = Arena(256)
        with pytest.raises(ValueError):
            a.free(8)

    def test_double_free_rejected(self):
        a = Arena(256)
        off = a.alloc(64)
        a.free(off)
        with pytest.raises(ValueError):
            a.free(off)

    def test_zero_size_alloc_rejected(self):
        with pytest.raises(ValueError):
            Arena(256).alloc(0)

    def test_bad_arena_size_rejected(self):
        with pytest.raises(ValueError):
            Arena(0)

    def test_coalescing_allows_large_realloc(self):
        a = Arena(300)
        offs = [a.alloc(64) for _ in range(4)]
        for off in offs:
            a.free(off)
        # All memory coalesced back into one hole.
        a.alloc(256)

    def test_freed_memory_is_zeroed(self):
        a = Arena(256)
        off = a.alloc(16)
        a.view(off, 16)[:] = b"X" * 16
        a.free(off)
        off2 = a.alloc(16)
        assert bytes(a.view(off2, 16)) == bytes(16)

    def test_peak_tracking(self):
        a = Arena(1024)
        o = a.alloc(512)
        a.free(o)
        a.alloc(8)
        assert a.peak_used == 512

    def test_view_bounds_checked(self):
        a = Arena(256)
        off = a.alloc(16)
        with pytest.raises(ValueError):
            a.view(off, 64)

    def test_view_of_unallocated_rejected(self):
        with pytest.raises(ValueError):
            Arena(256).view(0, 8)

    def test_view_writes_visible(self):
        a = Arena(256)
        off = a.alloc(8)
        a.view(off, 8)[:4] = b"abcd"
        assert bytes(a.view(off, 8))[:4] == b"abcd"


class TestArenaPropertyBased:
    @given(st.lists(st.integers(min_value=1, max_value=128), min_size=1, max_size=50))
    def test_alloc_free_conserves_capacity(self, sizes):
        a = Arena(64 * 1024)
        offs = [a.alloc(s) for s in sizes]
        assert a.used == sum((s + 7) & ~7 for s in sizes)
        for off in offs:
            a.free(off)
        assert a.used == 0
        assert a.available == a.size
        # Whole arena is one hole again.
        a.alloc(a.size)

    @given(st.lists(st.tuples(st.integers(1, 64), st.booleans()),
                    min_size=1, max_size=60))
    def test_interleaved_alloc_free_no_overlap(self, ops):
        a = Arena(16 * 1024)
        live: dict[int, int] = {}
        for size, do_free in ops:
            if do_free and live:
                off = next(iter(live))
                a.free(off)
                del live[off]
            else:
                off = a.alloc(size)
                live[off] = (size + 7) & ~7
        # No two live allocations overlap.
        spans = sorted(live.items())
        for (o1, l1), (o2, _l2) in zip(spans, spans[1:]):
            assert o1 + l1 <= o2
