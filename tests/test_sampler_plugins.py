"""Tests for the sampler plugins against a synthetic host."""

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv
from repro.core.sampler import default_sample_cost
from repro.nodefs import GpcdrModel, HostModel, HostProfile
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport
from repro.util.errors import ConfigError


@pytest.fixture
def world():
    eng = Engine()
    clock = {"t": 0.0}
    host = HostModel("n0", clock=lambda: clock["t"], seed=2)
    gp = GpcdrModel(clock=lambda: clock["t"], fs=host.fs)
    d = Ldmsd("n0", env=SimEnv(eng), fs=host.fs,
              transports={"rdma": SimTransport(SimFabric(eng), "rdma")})
    return clock, host, gp, d


class TestMeminfoSampler:
    def test_default_metrics(self, world):
        clock, host, gp, d = world
        p = d.load_sampler("meminfo", instance="m", component_id=1)
        p.sample(0.0)
        assert p.set.get("MemTotal") == host.profile.mem_total_kb

    def test_custom_metric_list(self, world):
        _, _, _, d = world
        p = d.load_sampler("meminfo", instance="m", component_id=1,
                           metrics="MemFree,Dirty")
        assert p.set.metric_names() == ["MemFree", "Dirty"]

    def test_empty_metric_list_rejected(self, world):
        _, _, _, d = world
        with pytest.raises(ConfigError):
            d.load_sampler("meminfo", instance="m", metrics=",")

    def test_tracks_host_state(self, world):
        clock, host, _, d = world
        p = d.load_sampler("meminfo", instance="m", component_id=1)
        host.mem_active_kb = 7_000_000
        clock["t"] = 1.0
        p.sample(1.0)
        assert p.set.get("Active") == 7_000_000


class TestProcstatSampler:
    def test_aggregate_only_by_default(self, world):
        _, _, _, d = world
        p = d.load_sampler("procstat", instance="c", component_id=1)
        assert not any(m.startswith("cpu0") for m in p.set.metric_names())

    def test_percpu_discovers_cores(self, world):
        _, host, _, d = world
        p = d.load_sampler("procstat", instance="c", component_id=1,
                           percpu=True)
        names = p.set.metric_names()
        assert f"cpu{host.profile.ncpus - 1}_user" in names
        assert p.set.card == 8 + host.profile.ncpus * 8 + 4

    def test_percpu_string_coercion(self, world):
        _, _, _, d = world
        p = d.load_sampler("procstat", instance="c", component_id=1,
                           percpu="true")
        assert p.percpu


class TestLustreSampler:
    def test_auto_discovery(self, world):
        _, _, _, d = world
        p = d.load_sampler("lustre", instance="l", component_id=1)
        assert "open#stats.snx11024" in p.set.metric_names()

    def test_explicit_mount(self, world):
        _, _, _, d = world
        p = d.load_sampler("lustre", instance="l", component_id=1,
                           mounts="snx11024")
        p.sample(0.0)
        assert p.set.get("open#stats.snx11024") >= 0

    def test_missing_mount_rejected(self, world):
        _, _, _, d = world
        with pytest.raises(ConfigError):
            d.load_sampler("lustre", instance="l", mounts="snx99999")

    def test_paper_metric_names(self, world):
        """§IV-B shows names like dirty_pages_hits#stats.snx11024."""
        _, _, _, d = world
        p = d.load_sampler("lustre", instance="l", component_id=1)
        assert "dirty_pages_hits#stats.snx11024" in p.set.metric_names()


class TestEthernetInfiniband:
    def test_eth_auto(self, world):
        _, _, _, d = world
        p = d.load_sampler("ethernet", instance="e", component_id=1)
        assert "rx_bytes#eth0" in p.set.metric_names()
        assert p.set.card == 8

    def test_ib_counters(self, world):
        clock, host, _, d = world
        p = d.load_sampler("infiniband", instance="i", component_id=1)
        host.set_workload(ib_tx_bps=4e6)
        clock["t"] = 10.0
        p.sample(10.0)
        assert p.set.get("port_xmit_data#mlx4_0") > 0

    def test_eth_no_interfaces_rejected(self):
        eng = Engine()
        host = HostModel("n", clock=lambda: 0.0,
                         profile=HostProfile(eth_ifaces=()))
        d = Ldmsd("n", env=SimEnv(eng), fs=host.fs,
                  transports={"rdma": SimTransport(SimFabric(eng), "rdma")})
        with pytest.raises(ConfigError):
            d.load_sampler("ethernet", instance="e")


class TestGpcdrSampler:
    def test_card(self, world):
        _, _, _, d = world
        p = d.load_sampler("gpcdr", instance="g", component_id=1)
        assert p.set.card == 42  # 6 dirs x (4 raw + 3 derived)

    def test_derived_metrics(self, world):
        clock, _, gp, d = world
        p = d.load_sampler("gpcdr", instance="g", component_id=1)
        p.sample(0.0)
        # One minute at 50% of a cable link, 30% stall time.
        gp.add_traffic("X+", 0.5 * 4.68e9 * 60)
        gp.add_stall("X+", 18.0)
        clock["t"] = 60.0
        p.sample(60.0)
        assert p.set.get("percent_bw_X+") == pytest.approx(50.0, rel=0.02)
        assert p.set.get("percent_stalled_X+") == pytest.approx(30.0, rel=0.02)

    def test_first_sample_derives_zero(self, world):
        _, _, gp, d = world
        p = d.load_sampler("gpcdr", instance="g", component_id=1)
        gp.add_traffic("X+", 1e9)
        p.sample(0.0)
        assert p.set.get("percent_bw_X+") == 0.0

    def test_avg_packet_size(self, world):
        clock, _, gp, d = world
        p = d.load_sampler("gpcdr", instance="g", component_id=1)
        p.sample(0.0)
        gp.add_traffic("Y+", 1_000_000, npackets=1000)
        clock["t"] = 60.0
        p.sample(60.0)
        assert p.set.get("avg_packet_size_Y+") == pytest.approx(1000.0)


class TestBwCustomSampler:
    def test_card_matches_production_set(self):
        """With 27 llite mounts the combined set has the production 194
        metrics (§IV-F / DESIGN.md)."""
        eng = Engine()
        clock = {"t": 0.0}
        profile = HostProfile(
            ncpus=32,
            lustre_mounts=tuple(f"snx{11000 + i}" for i in range(27)),
            nfs=False, eth_ifaces=(), ib_devices=(), lnet=True)
        host = HostModel("n", clock=lambda: clock["t"], profile=profile)
        GpcdrModel(clock=lambda: clock["t"], fs=host.fs)
        d = Ldmsd("n", env=SimEnv(eng), fs=host.fs,
                  transports={"rdma": SimTransport(SimFabric(eng), "rdma")})
        p = d.load_sampler("bw_custom", instance="bw", component_id=1)
        assert p.set.card == 194
        p.sample(0.0)

    def test_set_size_near_24kb(self):
        eng = Engine()
        clock = {"t": 0.0}
        profile = HostProfile(
            lustre_mounts=tuple(f"snx{11000 + i}" for i in range(27)),
            nfs=False, eth_ifaces=(), ib_devices=(), lnet=True)
        host = HostModel("n", clock=lambda: clock["t"], profile=profile)
        GpcdrModel(clock=lambda: clock["t"], fs=host.fs)
        d = Ldmsd("n", env=SimEnv(eng), fs=host.fs,
                  transports={"rdma": SimTransport(SimFabric(eng), "rdma")})
        p = d.load_sampler("bw_custom", instance="bw", component_id=1)
        assert 14_000 < p.set.total_size < 30_000


class TestSyntheticSampler:
    def test_counter_pattern(self, world):
        _, _, _, d = world
        p = d.load_sampler("synthetic", instance="s", component_id=1,
                           num_metrics=3, pattern="counter")
        p.sample(0.0)
        p.sample(1.0)
        assert p.set.values() == [2, 4, 6]

    def test_constant_pattern(self, world):
        _, _, _, d = world
        p = d.load_sampler("synthetic", instance="s", component_id=1,
                           num_metrics=3, pattern="constant")
        p.sample(0.0)
        assert p.set.values() == [0, 1, 2]

    def test_random_deterministic_by_seed(self, world):
        _, _, _, d = world
        p1 = d.load_sampler("synthetic", instance="s1", component_id=1,
                            num_metrics=4, pattern="random", seed=9)
        p2 = d.load_sampler("synthetic", instance="s2", component_id=1,
                            num_metrics=4, pattern="random", seed=9)
        p1.sample(0.0)
        p2.sample(0.0)
        # Different instances derive different streams even at equal seed.
        assert p1.set.values() != p2.set.values()

    def test_bad_pattern_rejected(self, world):
        _, _, _, d = world
        with pytest.raises(ConfigError):
            d.load_sampler("synthetic", instance="s", pattern="fractal")

    def test_cost_scales_with_metrics(self, world):
        _, _, _, d = world
        small = d.load_sampler("synthetic", instance="a", component_id=1,
                               num_metrics=10)
        big = d.load_sampler("synthetic", instance="b", component_id=1,
                             num_metrics=500)
        assert big.sample_cost > small.sample_cost
        assert small.sample_cost == pytest.approx(default_sample_cost(10))


class TestPluginLifecycle:
    def test_samples_taken_counter(self, world):
        _, _, _, d = world
        p = d.load_sampler("loadavg", instance="la", component_id=1)
        p.sample(0.0)
        p.sample(1.0)
        assert p.samples_taken == 2

    def test_term_deletes_sets(self, world):
        _, _, _, d = world
        p = d.load_sampler("loadavg", instance="la", component_id=1)
        used = d.arena.used
        p.term()
        assert d.get_set("la") is None
        assert d.arena.used < used

    def test_double_config_rejected(self, world):
        _, _, _, d = world
        p = d.load_sampler("loadavg", instance="la", component_id=1)
        with pytest.raises(ConfigError):
            p.config(instance="other")

    def test_do_sample_failure_keeps_set_usable(self, world):
        """A failing source must not leave the transaction open."""
        clock, host, _, d = world
        p = d.load_sampler("meminfo", instance="m", component_id=1)
        host.fs.unregister("/proc/meminfo")
        with pytest.raises(FileNotFoundError):
            p.sample(0.0)
        # Transaction was closed in finally; next sample works again.
        host.fs.register_static("/proc/meminfo", "MemTotal: 5 kB\n")
        p.sample(1.0)
        assert p.set.get("MemTotal") == 5
