"""Unit tests for metric sets: layout, generations, consistency, mirroring."""

import pytest
from hypothesis import given, strategies as st

from repro.core import sanitize
from repro.core.memory import Arena
from repro.core.metric import MetricDesc, MetricType
from repro.core.metric_set import MetricSet, SchemaMismatch
from repro.util.errors import ReproError


@pytest.fixture
def arena():
    return Arena(1 << 20)


def make_set(arena, n=3, name="node1/test", schema="test"):
    return MetricSet.create(
        name, schema, [(f"m{i}", MetricType.U64, 1) for i in range(n)], arena
    )


class TestMetricType:
    def test_sizes(self):
        assert MetricType.U8.size == 1
        assert MetricType.U64.size == 8
        assert MetricType.F32.size == 4
        assert MetricType.F64.size == 8

    def test_parse(self):
        assert MetricType.parse("u64") is MetricType.U64
        assert MetricType.parse("F32") is MetricType.F32

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            MetricType.parse("u128")

    def test_unsigned_clamp_wraps(self):
        assert MetricType.U8.clamp(256) == 0
        assert MetricType.U8.clamp(-1) == 255
        assert MetricType.U64.clamp(2**64 + 5) == 5

    def test_signed_clamp_wraps(self):
        assert MetricType.S8.clamp(127) == 127
        assert MetricType.S8.clamp(128) == -128

    def test_float_passthrough(self):
        assert MetricType.F64.clamp(1.5) == 1.5

    @given(st.integers(min_value=-(2**80), max_value=2**80))
    def test_u64_clamp_in_range(self, v):
        assert 0 <= MetricType.U64.clamp(v) < 2**64


class TestMetricDesc:
    def test_pack_unpack_roundtrip(self):
        d = MetricDesc("open#stats.snx11024", MetricType.U64, 7, 24)
        assert MetricDesc.unpack(d.pack()) == d

    def test_name_too_long_rejected(self):
        with pytest.raises(ValueError):
            MetricDesc("x" * 64, MetricType.U64, 0, 0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricDesc("", MetricType.U64, 0, 0)


class TestCreation:
    def test_card(self, arena):
        assert make_set(arena, n=5).card == 5

    def test_duplicate_metric_names_rejected(self, arena):
        with pytest.raises(ValueError):
            MetricSet.create("s", "t", [("a", MetricType.U64, 0),
                                        ("a", MetricType.U64, 0)], arena)

    def test_empty_metrics_rejected(self, arena):
        with pytest.raises(ValueError):
            MetricSet.create("s", "t", [], arena)

    def test_mixed_type_alignment(self, arena):
        s = MetricSet.create(
            "s", "t",
            [("a", MetricType.U8, 0), ("b", MetricType.U64, 0),
             ("c", MetricType.U16, 0)], arena,
        )
        offs = {d.name: d.data_offset for d in s.descs}
        assert offs["b"] % 8 == 0
        assert offs["c"] % 2 == 0

    def test_data_fraction_is_small_for_wide_sets(self, arena):
        # Paper §IV-B: data chunk ~10% of total set size.
        s = make_set(arena, n=200)
        assert 0.05 < s.data_fraction < 0.20

    def test_delete_releases_memory(self, arena):
        used0 = arena.used
        s = make_set(arena)
        assert arena.used > used0
        s.delete()
        assert arena.used == used0


class TestTransactions:
    def test_initial_state_inconsistent(self, arena):
        s = make_set(arena)
        assert not s.is_consistent
        assert s.dgn == 0

    def test_set_all_makes_consistent(self, arena):
        s = make_set(arena)
        s.set_all([1, 2, 3], timestamp=10.0)
        assert s.is_consistent
        assert s.timestamp == 10.0
        assert s.values() == [1, 2, 3]

    def test_dgn_increments_per_element(self, arena):
        s = make_set(arena, n=3)
        s.set_all([1, 2, 3], timestamp=1.0)
        assert s.dgn == 3
        s.set_all([4, 5, 6], timestamp=2.0)
        assert s.dgn == 6

    def test_consistent_flag_clear_mid_transaction(self, arena):
        s = make_set(arena)
        s.begin_transaction()
        s.set_value("m0", 42)
        assert not s.is_consistent
        s.end_transaction(1.0)
        assert s.is_consistent

    def test_nested_transaction_rejected(self, arena):
        s = make_set(arena)
        s.begin_transaction()
        with pytest.raises(ReproError):
            s.begin_transaction()

    def test_end_without_begin_rejected(self, arena):
        with pytest.raises(ReproError):
            make_set(arena).end_transaction(0.0)

    def test_get_by_name_and_index(self, arena):
        s = make_set(arena)
        s.set_all([7, 8, 9], timestamp=0.0)
        assert s.get("m1") == 8
        assert s.get(1) == 8

    def test_as_dict(self, arena):
        s = make_set(arena)
        s.set_all([1, 2, 3], timestamp=0.0)
        assert s.as_dict() == {"m0": 1, "m1": 2, "m2": 3}

    def test_wrong_value_count_rejected(self, arena):
        with pytest.raises(ValueError):
            make_set(arena, n=3).set_all([1], timestamp=0.0)

    def test_float_metrics(self, arena):
        s = MetricSet.create("s", "t", [("f", MetricType.F64, 0)], arena)
        s.set_all([3.25], timestamp=0.0)
        assert s.get("f") == 3.25


class TestMirroring:
    def test_meta_roundtrip(self, arena):
        src = make_set(arena, n=4)
        dst_arena = Arena(1 << 20)
        mirror = MetricSet.from_meta(src.meta_bytes(), dst_arena)
        assert mirror.name == src.name
        assert mirror.schema == src.schema
        assert mirror.card == src.card
        assert mirror.mgn == src.mgn
        assert [d.name for d in mirror.descs] == [d.name for d in src.descs]

    def test_data_transfer(self, arena):
        src = make_set(arena)
        src.set_all([10, 20, 30], timestamp=5.0)
        mirror = MetricSet.from_meta(src.meta_bytes(), Arena(1 << 20))
        mirror.apply_data(src.data_bytes())
        assert mirror.values() == [10, 20, 30]
        assert mirror.timestamp == 5.0
        assert mirror.dgn == src.dgn

    def test_torn_read_detectable(self, arena):
        src = make_set(arena)
        src.set_all([1, 2, 3], timestamp=1.0)
        src.begin_transaction()
        src.set_value("m0", 99)
        torn = src.data_bytes()  # mid-transaction raw read
        src.end_transaction(2.0)
        mirror = MetricSet.from_meta(src.meta_bytes(), Arena(1 << 20))
        if sanitize.mode() == "raise":
            # Under REPRO_SANITIZE the torn install itself is flagged.
            with pytest.raises(sanitize.SanitizerError):
                mirror.apply_data(torn)
        else:
            mirror.apply_data(torn)
            assert not mirror.is_consistent  # consumer must discard

    def test_mgn_mismatch_raises(self, arena):
        src = make_set(arena)
        src.set_all([1, 2, 3], timestamp=1.0)
        mirror = MetricSet.from_meta(src.meta_bytes(), Arena(1 << 20))
        # Producer recreates the set with a bumped MGN (metadata change).
        src2 = MetricSet.create("other", "test",
                                [(f"m{i}", MetricType.U64, 1) for i in range(3)],
                                arena, mgn=2)
        src2.set_all([4, 5, 6], timestamp=2.0)
        with pytest.raises(SchemaMismatch):
            mirror.apply_data(src2.data_bytes())

    def test_wrong_size_data_rejected(self, arena):
        mirror = MetricSet.from_meta(make_set(arena).meta_bytes(), Arena(1 << 20))
        with pytest.raises(ValueError):
            mirror.apply_data(b"tiny")

    def test_truncated_meta_rejected(self):
        with pytest.raises(ValueError):
            MetricSet.from_meta(b"short", Arena(1024))

    def test_corrupt_magic_rejected(self, arena):
        meta = bytearray(make_set(arena).meta_bytes())
        meta[:4] = b"XXXX"
        with pytest.raises(ValueError):
            MetricSet.from_meta(bytes(meta), Arena(1 << 20))

    @given(st.lists(st.integers(min_value=0, max_value=2**63),
                    min_size=1, max_size=40))
    def test_any_values_roundtrip(self, values):
        arena = Arena(1 << 20)
        s = MetricSet.create(
            "s", "t", [(f"m{i}", MetricType.U64, 0) for i in range(len(values))],
            arena,
        )
        s.set_all(values, timestamp=1.0)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        mirror.apply_data(s.data_bytes())
        assert mirror.values() == values


class TestGeometryNumbers:
    """Paper §IV-D set-size fidelity checks."""

    def test_bw_set_size_close_to_24kb(self):
        # 194 metrics (the BW production set) should land near 24 kB
        # total, with metadata dominating.
        arena = Arena(1 << 20)
        s = MetricSet.create(
            "n/bw", "bw",
            [(f"metric_{i:03d}", MetricType.U64, 1) for i in range(194)],
            arena,
        )
        assert 15_000 < s.total_size < 30_000
        assert s.data_size < 0.2 * s.total_size

    def test_chama_467_metrics_near_44kb(self):
        arena = Arena(1 << 20)
        total = 0
        per_set = 467 // 7
        for k in range(7):
            s = MetricSet.create(
                f"n/set{k}", f"schema{k}",
                [(f"metric_{i:03d}", MetricType.U64, 1) for i in range(per_set)],
                arena,
            )
            total += s.total_size
        assert 30_000 < total < 60_000


class TestValuesArray:
    """Bulk decode: homogeneous fast path and the mixed-dtype cache."""

    def test_homogeneous_frombuffer(self):
        import numpy as np
        arena = Arena(1 << 20)
        s = make_set(arena, n=4)
        s.begin_transaction()
        s.set_values([1, 2, 3, 2**63])
        s.end_transaction(1.0)
        arr = s.values_array()
        assert arr.dtype == np.dtype("<u8")
        assert arr.tolist() == [1, 2, 3, 2**63]
        # Copied out: mutating the array must not touch the live chunk.
        arr[0] = 99
        assert s.get(0) == 1

    def test_mixed_dtype_cached_per_schema(self):
        import numpy as np
        arena = Arena(1 << 20)
        s = MetricSet.create(
            "n/mixed", "mixed",
            [("count", MetricType.U64, 1), ("load", MetricType.F64, 1)],
            arena,
        )
        cs = s._compiled
        assert cs.array_dtype is None  # genuinely mixed layout
        assert cs.mixed_dtype is None  # resolved lazily
        s.begin_transaction()
        s.set_values([7, 1.5])
        s.end_transaction(1.0)
        a1 = s.values_array()
        # u64 + f64 promote to float64, resolved once and cached on the
        # compiled schema (the regression: np.asarray with no dtype
        # re-ran full type inference over every element on every call).
        expected = np.result_type(np.uint64, np.float64)
        assert a1.dtype == expected
        assert cs.mixed_dtype == expected
        assert a1.tolist() == [7.0, 1.5]
        # Second call and a second same-schema set reuse the cache.
        assert s.values_array().dtype == expected
        s2 = MetricSet.create(
            "n2/mixed", "mixed",
            [("count", MetricType.U64, 1), ("load", MetricType.F64, 1)],
            arena,
        )
        assert s2._compiled is cs
        assert s2.values_array().dtype == expected

    def test_mixed_integer_promotion(self):
        import numpy as np
        arena = Arena(1 << 20)
        s = MetricSet.create(
            "n/ints", "ints",
            [("a", MetricType.U32, 1), ("b", MetricType.S32, 1)],
            arena,
        )
        s.begin_transaction()
        s.set_values([2**32 - 1, -5])
        s.end_transaction(1.0)
        arr = s.values_array()
        assert arr.dtype == np.result_type(np.uint32, np.int32)
        assert arr.tolist() == [2**32 - 1, -5]
