"""Regression tests for the schema-compiled fast paths.

The compiled whole-row pack/unpack, the DGN shadow, the aggregator's
peek-before-copy early-out, and the CSV formatter compilation must all
be *behaviourally invisible*: byte-for-byte wire compatibility with the
per-metric reference path, identical generation-number and consistency
semantics, and no dropped samples.
"""

import struct

import pytest
from hypothesis import given, strategies as st

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv, sanitize
from repro.core.memory import Arena
from repro.core.metric import MetricDesc, MetricType
from repro.core.metric_set import MetricSet, SchemaMismatch
from repro.core.store import StoreRecord
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport

ALL_TYPES = list(MetricType)

#: A representative in-range value per type.
SAMPLE_VALUES = {
    MetricType.U8: 200,
    MetricType.S8: -100,
    MetricType.U16: 60_000,
    MetricType.S16: -30_000,
    MetricType.U32: 4_000_000_000,
    MetricType.S32: -2_000_000_000,
    MetricType.U64: 2**64 - 7,
    MetricType.S64: -(2**62),
    MetricType.F32: 1.5,
    MetricType.F64: 3.141592653589793,
}


def reference_data_chunk(mset, values, dgn, consistent, timestamp):
    """The seed implementation's data chunk, reconstructed per metric:
    header packed field-by-field, each value clamped then packed at its
    descriptor offset, pad bytes left zero (the arena zero-fills)."""
    buf = bytearray(mset.data_size)
    struct.pack_into("<IQB3xd", buf, 0, mset.mgn, dgn, consistent, timestamp)
    for d, v in zip(mset.descs, values):
        struct.pack_into("<" + d.mtype.struct_code, buf, d.data_offset,
                         d.mtype.clamp(v))
    return bytes(buf)


@pytest.fixture
def arena():
    return Arena(1 << 20)


class TestWireCompatibility:
    """Acceptance: compiled-path bytes == seed per-metric-path bytes."""

    @pytest.mark.parametrize("mtype", ALL_TYPES, ids=lambda t: t.name)
    def test_single_metric_every_type(self, arena, mtype):
        s = MetricSet.create("n/t", "t", [("m", mtype, 1)], arena)
        v = SAMPLE_VALUES[mtype]
        s.set_all([v], timestamp=2.5)
        assert s.data_bytes() == reference_data_chunk(s, [v], dgn=1,
                                                      consistent=1,
                                                      timestamp=2.5)

    def test_mixed_types_with_pad_bytes(self, arena):
        # U8 then U64 forces a 7-byte alignment hole; U16 after F32 etc.
        metrics = [("a", MetricType.U8, 1), ("b", MetricType.U64, 1),
                   ("c", MetricType.U16, 1), ("d", MetricType.F32, 1),
                   ("e", MetricType.S8, 1), ("f", MetricType.F64, 1)]
        s = MetricSet.create("n/mix", "mix", metrics, arena)
        values = [7, 2**63, 999, 0.25, -5, -1.75]
        s.set_all(values, timestamp=10.0)
        assert s.data_bytes() == reference_data_chunk(
            s, values, dgn=len(values), consistent=1, timestamp=10.0)

    def test_out_of_range_values_clamp_like_seed(self, arena):
        s = MetricSet.create(
            "n/c", "c",
            [("u8", MetricType.U8, 0), ("s16", MetricType.S16, 0),
             ("u64", MetricType.U64, 0)], arena)
        values = [300, 40_000, -1]  # all out of range -> C-like wrap
        s.set_all(values, timestamp=0.0)
        assert s.values() == [300 % 256, (40_000 + 2**15) % 2**16 - 2**15,
                              2**64 - 1]
        assert s.data_bytes() == reference_data_chunk(
            s, values, dgn=3, consistent=1, timestamp=0.0)

    def test_float_value_in_int_metric_truncates_like_seed(self, arena):
        s = MetricSet.create("n/f", "f", [("m", MetricType.U64, 0)], arena)
        s.set_all([3.9], timestamp=0.0)
        assert s.get("m") == 3  # int() truncation, as clamp() always did

    def test_set_value_matches_set_values(self, arena):
        metrics = [(f"m{i}", MetricType.U64, 0) for i in range(8)]
        a = MetricSet.create("n/a", "x", metrics, arena)
        b = MetricSet.create("n/b", "x", metrics, arena)
        values = list(range(100, 108))
        a.set_all(values, timestamp=1.0)
        b.begin_transaction()
        for i, v in enumerate(values):
            b.set_value(i, v)
        b.end_transaction(1.0)
        # Same data bytes except the set-name-independent chunk is all
        # there is: DGN, flag, ts, values all match.
        assert a.data_bytes() == b.data_bytes()

    @given(st.lists(st.integers(min_value=-(2**70), max_value=2**70),
                    min_size=1, max_size=30))
    def test_any_u64_row_matches_reference(self, values):
        arena = Arena(1 << 20)
        s = MetricSet.create(
            "n/h", "h",
            [(f"m{i}", MetricType.U64, 0) for i in range(len(values))], arena)
        s.set_all(values, timestamp=4.0)
        assert s.data_bytes() == reference_data_chunk(
            s, values, dgn=len(values), consistent=1, timestamp=4.0)


class TestGenerationSemantics:
    def test_dgn_shadow_tracks_buffer(self, arena):
        s = MetricSet.create("n/g", "g",
                             [("a", MetricType.U64, 0),
                              ("b", MetricType.U64, 0)], arena)
        s.set_all([1, 2], timestamp=1.0)
        assert s.dgn == 2
        s.begin_transaction()
        s.set_value("a", 5)
        s.end_transaction(2.0)
        assert s.dgn == 3
        # Buffer and shadow agree.
        assert struct.unpack_from("<Q", s.data_bytes(), 4)[0] == 3

    def test_torn_read_semantics_survive_bulk_path(self, arena):
        s = MetricSet.create("n/t", "t",
                             [("a", MetricType.U64, 0),
                              ("b", MetricType.U64, 0)], arena)
        s.set_all([1, 2], timestamp=1.0)
        s.begin_transaction()
        s.set_values([8, 9])
        torn = s.data_bytes()  # mid-transaction raw read via the bulk path
        s.end_transaction(2.0)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        if sanitize.mode() == "raise":
            # Under REPRO_SANITIZE the torn install itself is flagged.
            with pytest.raises(sanitize.SanitizerError):
                mirror.apply_data(torn)
        else:
            mirror.apply_data(torn)
            assert not mirror.is_consistent  # consumer must discard
        mirror.apply_data(s.data_bytes())
        assert mirror.is_consistent
        assert mirror.values() == [8, 9]

    def test_mirror_set_value_after_apply_continues_dgn(self, arena):
        s = MetricSet.create("n/m", "m", [("a", MetricType.U64, 0)], arena)
        s.set_all([1], timestamp=1.0)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        mirror.apply_data(s.data_bytes())
        mirror.begin_transaction()
        mirror.set_value("a", 2)  # shadow must have synced to 1
        mirror.end_transaction(2.0)
        assert mirror.dgn == 2


class TestPeekAndMirrorDecode:
    def test_peek_matches_install(self, arena):
        s = MetricSet.create("n/p", "p", [("a", MetricType.U64, 0)], arena)
        s.set_all([42], timestamp=1.0)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        raw = s.data_bytes()
        dgn, consistent = mirror.peek_data_header(raw)
        assert (dgn, consistent) == (1, True)
        mirror.apply_data(raw)
        assert mirror.dgn == 1 and mirror.is_consistent

    def test_peek_rejects_wrong_size(self, arena):
        mirror = MetricSet.from_meta(
            MetricSet.create("n/p", "p", [("a", MetricType.U64, 0)],
                             arena).meta_bytes(), Arena(1 << 20))
        with pytest.raises(ValueError):
            mirror.peek_data_header(b"tiny")

    def test_peek_rejects_mgn_mismatch(self, arena):
        s = MetricSet.create("n/p", "p", [("a", MetricType.U64, 0)], arena)
        s2 = MetricSet.create("n/q", "p", [("a", MetricType.U64, 0)], arena,
                              mgn=2)
        s2.set_all([1], timestamp=1.0)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        with pytest.raises(SchemaMismatch):
            mirror.peek_data_header(s2.data_bytes())

    def test_skip_early_out_never_drops_a_changed_sample(self, arena):
        """Drive the exact aggregator decision sequence (peek -> skip or
        install) against a producer that only sometimes samples: every
        DGN advance is stored exactly once, every stale/torn fetch is
        skipped without a copy."""
        s = MetricSet.create(
            "n/e", "e",
            [("a", MetricType.U64, 0), ("b", MetricType.U64, 0)], arena)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        last_dgn = None
        stored = []
        changes = 0
        for k in range(60):
            if k % 3 == 0:  # producer samples on some ticks only
                s.set_all([k, 2 * k], timestamp=float(k))
                changes += 1
            raw = s.data_bytes()
            dgn, consistent = mirror.peek_data_header(raw)
            if not consistent:
                continue
            if last_dgn is not None and dgn == last_dgn:
                continue  # the early-out: no apply_data, no copy
            mirror.apply_data(raw)
            last_dgn = dgn
            stored.append(mirror.values())
        assert len(stored) == changes
        assert stored[-1] == [57, 114]

    @pytest.mark.parametrize("mtype", ALL_TYPES, ids=lambda t: t.name)
    def test_from_meta_mirror_decodes_identically(self, arena, mtype):
        s = MetricSet.create("n/d", "d",
                             [("x", mtype, 3), ("y", mtype, 3)], arena)
        v = SAMPLE_VALUES[mtype]
        s.set_all([v, v], timestamp=9.0)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        mirror.apply_data(s.data_bytes())
        assert mirror.values() == s.values()
        assert mirror.values_tuple() == s.values_tuple()
        assert list(mirror.values_array()) == list(s.values_array())
        assert mirror.as_dict() == s.as_dict()
        assert mirror.dgn == s.dgn
        assert mirror.timestamp == s.timestamp

    def test_values_array_homogeneous_is_detached_copy(self, arena):
        s = MetricSet.create(
            "n/v", "v",
            [(f"m{i}", MetricType.U64, 0) for i in range(4)], arena)
        s.set_all([1, 2, 3, 4], timestamp=0.0)
        arr = s.values_array()
        assert arr.dtype.kind == "u" and list(arr) == [1, 2, 3, 4]
        s.set_all([9, 9, 9, 9], timestamp=1.0)
        assert list(arr) == [1, 2, 3, 4]  # no aliasing of the live chunk

    def test_unordered_foreign_layout_falls_back(self):
        """A mirror built from metadata whose descriptors are not in
        offset order cannot use the whole-row Struct but must still
        read/write correctly via the per-metric path."""
        from repro.core.metric_set import _DATA_HDR_SIZE

        descs = [MetricDesc("hi", MetricType.U64, 0, _DATA_HDR_SIZE + 8),
                 MetricDesc("lo", MetricType.U64, 0, _DATA_HDR_SIZE)]
        s = MetricSet("n/w", "w", descs, Arena(1 << 20), mgn=1,
                      data_size=_DATA_HDR_SIZE + 16)
        assert s._compiled.row_struct is None
        s.set_all([111, 222], timestamp=0.0)
        assert s.values() == [111, 222]
        assert s.get("hi") == 111 and s.get("lo") == 222
        assert s.dgn == 2


class TestAggregatorEarlyOut:
    """Acceptance: when the DGN has not advanced, no StoreRecord is
    emitted and no data copy occurs (_install is never called)."""

    def _world(self):
        eng = Engine()
        env = SimEnv(eng)
        fabric = SimFabric(eng)
        samp = Ldmsd("s0", env=env,
                     transports={"rdma": SimTransport(fabric, "rdma",
                                                      node_id="s0")})
        self.plugin = samp.load_sampler("synthetic", instance="s0/syn",
                                        component_id=1, num_metrics=4)
        # Slow sampler (2 s) vs fast puller (0.25 s): most pulls are stale.
        samp.start_sampler("s0/syn", interval=2.0)
        samp.listen("rdma", "s0:411")
        agg = Ldmsd("agg", env=env,
                    transports={"rdma": SimTransport(fabric, "rdma",
                                                     node_id="agg")})
        return eng, samp, agg

    def test_stale_pulls_skip_copy_and_store(self, monkeypatch):
        eng, samp, agg = self._world()
        store = agg.add_store("memory")
        installs = []
        orig = MetricSet._install

        def counting_install(self, raw, dgn, consistent):
            installs.append(self.name)
            return orig(self, raw, dgn, consistent)

        monkeypatch.setattr(MetricSet, "_install", counting_install)
        agg.add_producer("s0", "rdma", "s0:411", interval=0.25,
                         sets=("s0/syn",))
        eng.run(until=20.0)
        st = agg.producers["s0"].stats
        assert st.skipped_stale > 0
        assert st.stored > 0
        # No copy on stale fetches: installs == stored, not completed.
        agg_installs = [n for n in installs if n == "s0/syn"]
        assert len(agg_installs) == st.stored
        assert st.updates_completed > st.stored
        # And exactly the stored records reached the store.
        assert len(store.rows) == st.stored

    def test_no_changed_sample_dropped_end_to_end(self):
        eng, samp, agg = self._world()
        store = agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=0.25,
                         sets=("s0/syn",))
        eng.run(until=20.0)
        st = agg.producers["s0"].stats
        # Every sample the producer took while we were connected must be
        # collected (puller is 8x faster); allow edge-of-window slack.
        assert st.stored >= self.plugin.samples_taken - 2
        dgns = [r.timestamp for r in store.rows]
        assert len(set(dgns)) == len(dgns)  # all distinct collections


class TestCsvFormatterCompilation:
    def test_compiled_rows_match_seed_formatting(self, tmp_path, arena):
        from repro.plugins.stores.csv_store import CsvStore

        s = MetricSet.create("n0/mix", "mix",
                             [("i", MetricType.U64, 1),
                              ("f", MetricType.F64, 1),
                              ("g", MetricType.F32, 1)], arena)
        s.set_all([123456789, 0.123456789, 2.5], timestamp=3.0)
        rec = StoreRecord.from_set(s, "n0")
        assert rec.mtypes == (MetricType.U64, MetricType.F64, MetricType.F32)
        store = CsvStore()
        store.config(path=str(tmp_path), buffer_lines=1)
        store.submit(rec)
        store.close()
        lines = (tmp_path / "mix.csv").read_text().splitlines()
        assert lines[0] == "Time,Producer,CompId,i,f,g"
        # Seed formatting: ints via str(), floats via %.6g.
        assert lines[1] == "3.000000,n0,1,123456789,0.123457,2.5"

    def test_records_without_mtypes_still_format(self, tmp_path):
        from repro.plugins.stores.csv_store import CsvStore

        store = CsvStore()
        store.config(path=str(tmp_path), buffer_lines=1)
        store.submit(StoreRecord(1.0, "n0", "n0/m", "m", ("a", "b"),
                                 (1, 1), (10, 2.25)))
        store.close()
        assert "10,2.25" in (tmp_path / "m.csv").read_text()

    def test_filtered_projects_mtypes(self, arena):
        s = MetricSet.create("n0/p", "p",
                             [("a", MetricType.U64, 1),
                              ("b", MetricType.F64, 1)], arena)
        s.set_all([1, 2.0], timestamp=0.0)
        rec = StoreRecord.from_set(s, "n0").filtered(["b"])
        assert rec.mtypes == (MetricType.F64,)
        assert rec.values == (2.0,)


class TestFrameDecoderCursor:
    def test_large_stream_random_chunking(self):
        import random

        from repro.core import wire

        rng = random.Random(7)
        frames_in = [(i % 9, i, bytes(rng.randrange(256)
                                      for _ in range(rng.randrange(0, 300))))
                     for i in range(200)]
        raw = b"".join(wire.encode_frame(m, r, p) for m, r, p in frames_in)
        dec = wire.FrameDecoder()
        out = []
        pos = 0
        while pos < len(raw):
            n = rng.randrange(1, 4096)
            out.extend(dec.feed(raw[pos:pos + n]))
            pos += n
        assert [(f.msg_type, f.request_id, f.payload) for f in out] == frames_in

    def test_buffer_fully_drains(self):
        from repro.core import wire

        dec = wire.FrameDecoder()
        for k in range(50):
            frames = dec.feed(wire.encode_frame(1, k, b"x" * 256))
            assert len(frames) == 1
        assert len(dec._buf) == 0 and dec._pos == 0
