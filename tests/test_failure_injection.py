"""Failure-injection tests: dead targets, memory pressure, overload,
torn reads under adversarial timing."""

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport


@pytest.fixture
def world():
    eng = Engine()
    return eng, SimEnv(eng), SimFabric(eng)


def sampler(world, name, metrics=8, interval=1.0):
    eng, env, fabric = world
    d = Ldmsd(name, env=env,
              transports={"rdma": SimTransport(fabric, "rdma", node_id=name)})
    d.load_sampler("synthetic", instance=f"{name}/syn", component_id=1,
                   num_metrics=metrics)
    d.start_sampler(f"{name}/syn", interval=interval)
    d.listen("rdma", f"{name}:411")
    return d


def aggregator(world, name="agg", **kw):
    eng, env, fabric = world
    return Ldmsd(name, env=env,
                 transports={"rdma": SimTransport(fabric, "rdma",
                                                  node_id=name)}, **kw)


class TestDeadAndSlowTargets:
    def test_dead_targets_do_not_block_live_ones(self, world):
        """§IV-B: problem nodes must not starve collection."""
        eng, env, fabric = world
        live = [sampler(world, f"live{i}") for i in range(4)]
        agg = aggregator(world, conn_threads=1)  # single connection thread
        st = agg.add_store("memory")
        # 20 producers point at hosts that will never exist.
        for i in range(20):
            agg.add_producer(f"ghost{i}", "rdma", f"ghost{i}:411",
                             interval=1.0, reconnect_interval=0.5)
        for i in range(4):
            agg.add_producer(f"live{i}", "rdma", f"live{i}:411",
                             interval=1.0)
        eng.run(until=15.0)
        per_live = {}
        for r in st.rows:
            per_live[r.set_name] = per_live.get(r.set_name, 0) + 1
        assert len(per_live) == 4
        assert all(v >= 10 for v in per_live.values())

    def test_target_dying_mid_run_is_bypassed(self, world):
        eng, env, fabric = world
        s0 = sampler(world, "s0")
        s1 = sampler(world, "s1")
        agg = aggregator(world)
        st = agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0)
        agg.add_producer("s1", "rdma", "s1:411", interval=1.0)
        eng.call_later(5.0, s1.shutdown)
        eng.run(until=20.0)
        s0_rows = [r for r in st.rows if r.set_name == "s0/syn"]
        s1_rows = [r for r in st.rows if r.set_name == "s1/syn"]
        assert len(s0_rows) >= 17  # unaffected
        assert len(s1_rows) <= 6  # stopped at death

    def test_set_deleted_under_aggregator(self, world):
        """Producer deletes the set mid-collection; the aggregator
        counts failures and recovers when it reappears."""
        eng, env, fabric = world
        s0 = sampler(world, "s0")
        agg = aggregator(world)
        st = agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0,
                         sets=("s0/syn",))
        eng.run(until=5.0)

        def remove():
            s0.stop_sampler("s0/syn")
            plug = s0.sampler_plugins()["s0/syn"]
            plug.term()
            del s0._plugins["s0/syn"]

        eng.call_later(0.5, remove)  # at t=5.5 (relative to now=5.0)
        eng.run(until=10.0)
        stats = agg.producers["s0"].stats
        assert stats.updates_failed > 0 or stats.lookups_failed > 0
        # Reload the plugin: collection resumes.
        def reload():
            s0.load_sampler("synthetic", instance="s0/syn", component_id=1,
                            num_metrics=8)
            s0.start_sampler("s0/syn", interval=1.0)

        eng.call_later(0.5, reload)  # at t=10.5
        n_before = len(st.rows)
        eng.run(until=20.0)
        assert len(st.rows) > n_before + 3


class TestMemoryPressure:
    def test_aggregator_arena_exhaustion_is_graceful(self, world):
        eng, env, fabric = world
        # Each 400-metric set needs ~35 kB of mirror memory; a 64 kB
        # aggregator arena fits one set but not four.
        for i in range(4):
            sampler(world, f"s{i}", metrics=400)
        agg = aggregator(world, mem="64kB")
        st = agg.add_store("memory")
        for i in range(4):
            agg.add_producer(f"s{i}", "rdma", f"s{i}:411", interval=1.0)
        eng.run(until=10.0)
        # Some sets collect; the rest fail lookups without crashing.
        collected = {r.set_name for r in st.rows}
        assert 1 <= len(collected) < 4
        failed = sum(p.stats.lookups_failed for p in agg.producers.values())
        assert failed > 0

    def test_sampler_arena_exhaustion_rejects_new_sets(self, world):
        eng, env, fabric = world
        d = Ldmsd("tiny", env=env, mem="16kB",
                  transports={"rdma": SimTransport(fabric, "rdma")})
        d.load_sampler("synthetic", instance="a", component_id=1,
                       num_metrics=100)
        from repro.util.errors import OutOfMemory

        with pytest.raises(OutOfMemory):
            d.load_sampler("synthetic", instance="b", component_id=1,
                           num_metrics=500)
        # The first set still works.
        d.sampler_plugins()["a"].sample(0.0)


class TestOverload:
    def test_slow_update_pipeline_bypasses(self, world):
        """When update processing cannot keep up, in-flight sets are
        bypassed, not queued without bound (§IV-E)."""
        eng, env, fabric = world
        for i in range(4):
            sampler(world, f"s{i}", interval=0.1)
        agg = aggregator(world, workers=1)
        agg.update_cpu_cost = 0.5  # pathological: 0.5 s per completion
        st = agg.add_store("memory")
        for i in range(4):
            agg.add_producer(f"s{i}", "rdma", f"s{i}:411", interval=0.1)
        eng.run(until=20.0)
        skipped = sum(p.stats.skipped_busy for p in agg.producers.values())
        assert skipped > 0
        # The system is still live and storing.
        assert len(st.rows) > 10


class TestTornReads:
    def test_slow_sampler_produces_inconsistent_reads(self, world):
        """A sampler whose sampling takes a large fraction of the
        collection period gets torn reads, which are skipped."""
        eng, env, fabric = world
        d = Ldmsd("slow", env=env,
                  transports={"rdma": SimTransport(fabric, "rdma",
                                                   node_id="slow")})
        plug = d.load_sampler("synthetic", instance="slow/syn",
                              component_id=1, num_metrics=8)
        # Force a long sampling busy window: half the sampling period.
        type(plug).sample_cost = property(lambda self: 0.5)
        try:
            d.start_sampler("slow/syn", interval=1.0)
            d.listen("rdma", "slow:411")
            agg = aggregator(world)
            st = agg.add_store("memory")
            agg.add_producer("slow", "rdma", "slow:411", interval=0.25)
            eng.run(until=30.0)
            stats = agg.producers["slow"].stats
            assert stats.skipped_inconsistent > 0
            # And no stored row ever came from a torn read: counters in
            # a consistent sample are monotone multiples.
            for r in st.rows:
                base = r.values[0]
                assert list(r.values) == [base * (i + 1)
                                          for i in range(len(r.values))]
        finally:
            # Undo the class-level patch for other tests.
            del type(plug).sample_cost
