"""BAD: blocking I/O on the per-sample hot path."""

import subprocess
import time


class Sampler:
    def do_sample(self, now):
        time.sleep(0.01)
        out = subprocess.check_output(["cat", "/proc/meminfo"])
        print(out)
        with open("/proc/loadavg") as f:
            return f.read()
