"""BAD: obs instrument calls allocate/format on the hot path unguarded."""


class Updater:
    def _complete_update(self, upd, data, now):
        # dict allocation in a record call, no enabled guard
        self.daemon.flight.record(now, "updater", "stored",
                                  {"set": upd.name, "dgn": upd.dgn})
        # f-string formatting on the span path, no guard
        self.daemon.spans.record(1, 2, 0, 2, f"update:{upd.name}", now, now)
        # list display into freshness observe
        self.daemon.freshness.observe(now, [upd.name])

    def _flush_rows(self, rows, now):
        # %-formatting into a tracer finish
        self.tracer.finish(rows, "flushed %d rows" % len(rows))
