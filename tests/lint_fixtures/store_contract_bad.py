"""BAD: unbounded in-memory buffering with no flush path."""

from repro.core.store import StorePlugin, register_store


@register_store("fixture_bad")
class BufferingStore(StorePlugin):
    def config(self, **kwargs):
        super().config(**kwargs)
        self.rows = []

    def store(self, record):
        self.rows.append(record)
