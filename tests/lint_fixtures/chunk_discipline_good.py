"""GOOD: values go through the MetricSet API so the DGN advances."""


def poke(mset, value):
    mset.begin_transaction()
    mset.set_value(0, value)
    mset.end_transaction(1.0)
    return mset.data_view()
