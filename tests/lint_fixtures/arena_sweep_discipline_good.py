"""Good: columnar sweeps — whole-block fancy indexing, tobytes framing."""

import numpy as np


def open_transactions(groups):
    # One vectorized flag write per (block, rows) group.
    for blk, rows in groups:
        blk.flags[rows] = 0


def commit(groups, now, card):
    for blk, rows in groups:
        blk.dgn[rows] += card
        blk.ts[rows] = now
        blk.flags[rows] = 1


def serialize(blk, rows, data_size):
    # One tobytes() for the whole row batch, sliced per frame.
    blob = blk.block[np.asarray(rows, dtype=np.intp)].tobytes()
    return [blob[i * data_size:(i + 1) * data_size] for i in range(len(rows))]


def accounting(members, now):
    # Per-member Python-object bookkeeping is fine — it never indexes
    # block columns row-by-row.
    for m in members:
        m.samples_taken += 1
        m.last_sample_ts = now
