"""GOOD: file handles bound at config(), hot path reads through fs."""


class Sampler:
    def config(self, instance):
        # config() is cold: opening here is fine.
        self._path = "/proc/meminfo"

    def do_sample(self, now):
        return self.daemon.fs.read(self._path)
