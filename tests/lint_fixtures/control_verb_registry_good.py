"""GOOD control-channel fixture.

Supported commands::

    load name=<plugin>
    quit
"""


class Channel:
    def _cmd_load(self, attrs):
        """``load name=<plugin>``: mark a plugin loadable."""
        return "ok"

    def _cmd_quit(self, attrs):
        """``quit``: shut down."""
        return "bye"
