"""BAD: per-sample name resolution and layout work in the sample body."""

from repro.core.sampler import SamplerPlugin, register_sampler


@register_sampler("fixture_bad")
class BadSampler(SamplerPlugin):
    def config(self, instance, component_id=0, **kwargs):
        super().config(instance, component_id, **kwargs)

    def do_sample(self, now):
        row = {"m0": 1, "m1": 2}
        self.set.set_value("m0", row["m0"])
        i = self.set.index_of("m1")
        self.set.set_value(i, getattr(self, "scale"))
