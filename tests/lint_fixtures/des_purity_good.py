"""GOOD: engine clock + injected Generator (the sanctioned sources)."""

from repro.util.rngtools import spawn_rng


def next_sample_time(env, seed):
    rng = spawn_rng(seed, "fixture")
    return env.now() + rng.uniform(0.0, 1.0)
