"""GOOD: layout at config(), one positional bulk write per sample."""

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler


@register_sampler("fixture_good")
class GoodSampler(SamplerPlugin):
    def config(self, instance, component_id=0, **kwargs):
        super().config(instance, component_id, **kwargs)
        self.set = self.create_set(
            instance, "fixture", [("m0", MetricType.U64), ("m1", MetricType.U64)]
        )

    def do_sample(self, now):
        vals = []
        vals.append(1)
        vals.append(2)
        self.set.set_values(vals)
