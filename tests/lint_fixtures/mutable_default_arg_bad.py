"""BAD: shared mutable defaults alias state across plugin instances."""


def config(instance, metrics=[], options={}, *, tags=set()):
    metrics.append(instance)
    return metrics, options, tags
