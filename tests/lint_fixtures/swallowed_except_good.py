"""GOOD: narrow types, counted failures (paper §IV-E: count and bypass)."""


def fetch_all(producers, err_counter):
    for p in producers:
        try:
            p.update()
        except TimeoutError:
            err_counter.inc()
