"""BAD control-channel fixture.

Supported commands::

    load name=<plugin>
"""


class Channel:
    def _cmd_load(self, attrs):
        return "ok"

    def _cmd_mystery(self, attrs):
        """A verb missing from the module's command reference."""
        return "?"
