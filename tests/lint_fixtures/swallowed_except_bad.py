"""BAD: broad handlers that erase the failure entirely."""


def fetch_all(producers):
    for p in producers:
        try:
            p.update()
        except Exception:
            continue
    try:
        producers.close()
    except:  # noqa: E722
        pass
