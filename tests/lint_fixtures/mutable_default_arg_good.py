"""GOOD: None defaults, built fresh per call."""


def config(instance, metrics=None, options=None, *, tags=()):
    metrics = list(metrics or ())
    metrics.append(instance)
    return metrics, dict(options or {}), tags
