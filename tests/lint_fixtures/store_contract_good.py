"""GOOD: buffering store with an explicit flush path."""

from repro.core.store import StorePlugin, register_store


@register_store("fixture_good")
class FlushingStore(StorePlugin):
    def config(self, **kwargs):
        super().config(**kwargs)
        self.rows = []

    def store(self, record):
        self.rows.append(record)

    def flush(self):
        """Drain buffered rows to the backend."""
        self.rows.clear()
