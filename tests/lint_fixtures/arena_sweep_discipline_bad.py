"""Bad: scalar row-at-a-time sweeps inside the arena module."""

import struct


def open_transactions(blk, rows):
    for r in rows:
        blk.flags[r] = 0  # per-row column write


def commit(blk, rows, now, card):
    for r in rows:
        blk.dgn[r] += card  # per-row AugAssign
        blk.ts[r] = now


def iterate_rows(blk):
    total = 0
    for row in blk.block:  # row-by-row iteration over the block
        total += int(row[0])
    return total


def serialize(blk, rows):
    return b"".join(
        struct.pack("<Q", int(blk.dgn[r])) for r in rows  # struct.pack
    )
