"""GOOD: hot-path obs calls pass scalars, or pay for arguments only
under the enabled-check idiom."""


class Updater:
    def _complete_update(self, upd, data, now):
        # Scalar arguments are free: attribute reads + a tuple append
        # inside the instrument, nothing allocated at the call site.
        self.daemon.flight.record(now, "updater", "stored", upd.dgn)
        self.daemon.spans.record(1, 2, 0, 2, "update", now, now)
        # Handle idiom: arm()/start() returned None when disabled, so
        # the whole block (including the formatted label) vanishes.
        fresh = self._fresh
        if fresh is not None:
            fresh.observe(now, 0)
        trace = self.tracer.start(upd.name)
        if trace is not None:
            self.tracer.finish(trace, f"stored:{upd.name}")

    def _flush_rows(self, rows, now):
        # Explicit enabled check guards the formatted detail record.
        if self.daemon.flight.enabled:
            self.daemon.flight.record(now, "store", "flush",
                                      {"rows": len(rows)})

    def render_report(self, rows):
        # Not a hot function: formatting here is out of scope.
        return self.tracer.finish(rows, f"report:{len(rows)}")
