"""BAD: wall clock and global RNG inside the deterministic world."""

import random
import time

import numpy as np


def next_sample_time(base):
    t = time.time()
    jitter = random.random()
    noise = np.random.normal(0.0, 1.0)
    return base + t + jitter + noise
