"""BAD: raw buffer writes to set storage outside the MetricSet layer."""

import struct


def poke(mset, value):
    struct.pack_into("<Q", mset._data, 24, value)
    view = memoryview(mset._data)
    return view
