"""Tests for the analysis layer: heatmaps, torus regions, impact, profiles."""

import numpy as np
import pytest

from repro.analysis import (
    ImpactSummary,
    compare_runs,
    congestion_regions,
    occupancy,
    region_wraps,
    significance,
    sustained_bands,
    systemwide_events,
    threshold_grid,
)
from repro.analysis.heatmap import band_durations
from repro.analysis.torus_view import extent
from repro.apps.base import RunResult
from repro.network.torus import GeminiTorus


class TestHeatmap:
    def test_threshold_drops_small(self):
        grid = np.array([[0.5, 2.0], [1.0, 0.0]])
        out = threshold_grid(grid, 1.0)
        assert np.isnan(out[0, 0]) and np.isnan(out[1, 1])
        assert out[0, 1] == 2.0

    def test_occupancy(self):
        grid = np.array([[0.0, 2.0], [3.0, 0.0]])
        assert occupancy(grid, 1.0) == 0.5

    def test_sustained_bands(self):
        grid = np.zeros((10, 4))
        grid[:, 1] = 100.0  # node 1 hot the whole time
        grid[:3, 2] = 100.0  # node 2 hot briefly
        bands = sustained_bands(grid, 50.0, min_duration_fraction=0.5)
        assert bands == [(1, 1.0)]

    def test_systemwide_events(self):
        grid = np.zeros((10, 4))
        grid[7, :] = 100.0
        events = systemwide_events(grid, 50.0, min_node_fraction=0.5)
        assert events == [(7, 1.0)]

    def test_band_durations(self):
        grid = np.zeros((10, 2))
        grid[2:7, 0] = 30.0  # 5 consecutive samples in [20, 45)
        grid[8:10, 0] = 30.0  # shorter later run
        out = band_durations(grid, 20.0, 45.0, sample_interval=60.0)
        assert out[0] == 300.0
        assert out[1] == 0.0

    def test_band_durations_respects_upper_bound(self):
        grid = np.full((5, 1), 80.0)
        assert band_durations(grid, 20.0, 45.0, 60.0)[0] == 0.0

    def test_nan_treated_as_zero(self):
        grid = np.array([[np.nan, 100.0]])
        assert sustained_bands(grid, 50.0, 0.5) == [(1, 1.0)]


class TestTorusView:
    def test_single_region(self):
        torus = GeminiTorus(dims=(4, 4, 4))
        values = np.zeros(torus.n_geminis)
        hot = [torus.gemini_index((1, 1, 1)), torus.gemini_index((2, 1, 1))]
        values[hot] = 50.0
        regions = congestion_regions(torus, values, 40.0)
        assert len(regions) == 1
        assert regions[0].geminis == frozenset(hot)
        assert regions[0].max_value == 50.0

    def test_disjoint_regions_sorted_by_size(self):
        torus = GeminiTorus(dims=(6, 6, 6))
        values = np.zeros(torus.n_geminis)
        big = [torus.gemini_index((x, 0, 0)) for x in range(3)]
        small = [torus.gemini_index((0, 3, 3))]
        values[big] = 60.0
        values[small] = 90.0
        regions = congestion_regions(torus, values, 50.0)
        assert [len(r) for r in regions] == [3, 1]

    def test_wrap_detection(self):
        torus = GeminiTorus(dims=(4, 4, 4))
        values = np.zeros(torus.n_geminis)
        wrap_pair = [torus.gemini_index((3, 2, 2)), torus.gemini_index((0, 2, 2))]
        values[wrap_pair] = 70.0
        regions = congestion_regions(torus, values, 50.0)
        assert len(regions) == 1  # connected through the wrap link
        assert region_wraps(torus, regions[0], dim=0)
        assert not region_wraps(torus, regions[0], dim=1)

    def test_extent(self):
        torus = GeminiTorus(dims=(6, 6, 6))
        values = np.zeros(torus.n_geminis)
        row = [torus.gemini_index((x, 1, 1)) for x in range(4)]
        values[row] = 60.0
        regions = congestion_regions(torus, values, 50.0)
        assert extent(torus, regions[0], 0) == 4
        assert extent(torus, regions[0], 1) == 1

    def test_shape_validation(self):
        torus = GeminiTorus(dims=(4, 4, 4))
        with pytest.raises(ValueError):
            congestion_regions(torus, np.zeros(5), 1.0)


def make_runs(times, label="x"):
    return [RunResult(app="a", spec_label=label, wall_time=t) for t in times]


class TestImpact:
    def test_normalization(self):
        base = make_runs([10.0, 10.0, 10.0])
        mon = {"1s": make_runs([11.0, 11.0, 11.0])}
        out = compare_runs(base, mon)
        assert out[0].label == "unmonitored"
        assert out[1].normalized_mean == pytest.approx(1.1)

    def test_significance_detects_shift(self):
        a = np.array([10.0, 10.1, 9.9, 10.0])
        b = np.array([12.0, 12.1, 11.9, 12.0])
        assert significance(a, b) < 0.01

    def test_significance_degenerate(self):
        assert significance(np.array([1.0]), np.array([2.0, 3.0])) == 1.0
        assert significance(np.array([1.0, 1.0]), np.array([1.0, 1.0])) == 1.0

    def test_significant_requires_disjoint_ranges(self):
        s = ImpactSummary(label="x", mean=10.0, lo=9.0, hi=11.0,
                          normalized_mean=1.01, normalized_lo=0.95,
                          normalized_hi=1.05, p_value=0.01,
                          baseline_lo_norm=0.97, baseline_hi_norm=1.03)
        assert not s.significant  # ranges overlap
        s2 = ImpactSummary(label="x", mean=12.0, lo=11.9, hi=12.1,
                           normalized_mean=1.2, normalized_lo=1.19,
                           normalized_hi=1.21, p_value=0.01,
                           baseline_lo_norm=0.97, baseline_hi_norm=1.03)
        assert s2.significant

    def test_family_significant_bonferroni(self):
        from repro.analysis.impact import family_significant

        def summary(p):
            return ImpactSummary(label="1s", mean=12.0, lo=11.9, hi=12.1,
                                 normalized_mean=1.2, normalized_lo=1.19,
                                 normalized_hi=1.21, p_value=p,
                                 baseline_lo_norm=0.97,
                                 baseline_hi_norm=1.03)

        def base():
            return ImpactSummary(label="unmonitored", mean=10.0, lo=9.7,
                                 hi=10.3, normalized_mean=1.0,
                                 normalized_lo=0.97, normalized_hi=1.03,
                                 p_value=1.0, baseline_lo_norm=0.97,
                                 baseline_hi_norm=1.03)

        # 10 series of 1 comparison each -> threshold 0.005.
        series = {f"s{i}": [base(), summary(0.01)] for i in range(10)}
        assert family_significant(series) == []
        series = {f"s{i}": [base(), summary(0.001)] for i in range(10)}
        assert len(family_significant(series)) == 10

    def test_phase_selection(self):
        base = [RunResult("a", "u", 10.0, phases={"io": 2.0})]
        base.append(RunResult("a", "u", 10.0, phases={"io": 2.2}))
        mon = {"1s": [RunResult("a", "m", 10.0, phases={"io": 2.1}),
                      RunResult("a", "m", 10.0, phases={"io": 2.3})]}
        out = compare_runs(base, mon, phase="io")
        assert out[0].mean == pytest.approx(2.1)
