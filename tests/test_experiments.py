"""Smoke + shape tests for every experiment harness at reduced scale.

The benchmarks run the full-scale versions; these tests confirm each
experiment reproduces the paper's qualitative shape quickly.
"""

import numpy as np
import pytest

from repro.experiments import (  # noqa: F401  (package docstring import)
    common,
)
from repro.experiments.common import PAPER


class TestGangliaCompare:
    def test_shape(self):
        from repro.experiments.ganglia_compare import run

        res = run(sweeps=30)
        assert res.ldms_us_per_metric > 0
        assert res.ratio > 3.0  # Ganglia is several times costlier


class TestFootprint:
    def test_chama(self):
        from repro.experiments.footprint import run_chama

        fp = run_chama()
        assert fp.n_sets == 8
        assert 400 <= fp.n_metrics <= 500
        assert 0.5 * PAPER.chama_set_bytes < fp.set_bytes < 1.5 * PAPER.chama_set_bytes
        assert fp.sampler_arena_bytes < PAPER.sampler_mem_limit
        assert 0.05 < fp.data_fraction < 0.2

    def test_blue_waters(self):
        from repro.experiments.footprint import run_blue_waters

        fp = run_blue_waters()
        assert fp.n_metrics == PAPER.bw_metrics
        assert 30e6 < fp.wire_bytes_per_interval < 70e6  # ~44 MB


class TestFanin:
    def test_transport_ordering_scaled(self):
        from repro.experiments.fanin import max_fanin, sweep_transport

        sock = max_fanin(sweep_transport("sock", [96, 144, 192],
                                         duration=20.0, scale=64))
        ugni = max_fanin(sweep_transport("ugni", [192, 256, 320],
                                         duration=20.0, scale=64))
        assert sock == 144
        assert ugni == 256
        assert ugni > sock

    def test_aggregator_utilization_small(self):
        from repro.experiments.fanin import aggregator_utilization

        util = aggregator_utilization(n_samplers=8, interval=10.0,
                                      duration=60.0)
        assert 0 < util.core_pct < 5.0


class TestFig5:
    def test_tail_matches_expectation(self):
        from repro.experiments.fig5_psnap_bw import run

        res = run(n_nodes=16, iterations=200_000)
        assert res.extra_tail_fraction == pytest.approx(
            res.expected_tail_fraction, rel=0.4)
        assert 50 <= res.extra_delay_lo_us <= 150
        assert 350 <= res.extra_delay_hi_us <= 480


class TestFig6:
    def test_no_significant_impact(self):
        from repro.experiments.fig6_bw_benchmarks import run

        res = run(scale=0.02)
        assert res.any_significant() == []
        assert len(res.series) == 11


class TestFig7:
    def test_no_significant_impact(self):
        from repro.experiments.fig7_chama_apps import run

        res = run(scale=0.125)
        assert res.any_significant() == []
        for summaries in res.series.values():
            for s in summaries:
                assert 0.85 < s.normalized_mean < 1.15


class TestFig8:
    def test_tail_ordering(self):
        from repro.experiments.fig8_psnap_chama import run

        res = run(n_nodes=60, iterations=100_000)
        fracs = res.tail_fractions()
        assert fracs["HM"] > 3.0 * fracs["HM_HALF"]
        assert fracs["HM_HALF"] < 2.0 * max(fracs["NM"], 1e-12)


class TestFig9:
    def test_features_small_torus(self):
        from repro.experiments.fig9_credit_stalls import run

        res = run(dims=(8, 8, 8))
        assert abs(res.max_stall_pct - PAPER.fig9_max_stall_pct) < 6.0
        assert res.band_20_45_hours >= 15.0
        assert 1.0 <= res.band_60_hours <= 3.0
        assert res.wrap_region_found


class TestFig10:
    def test_max_bandwidth_small_torus(self):
        from repro.experiments.fig10_bandwidth import run

        res = run(dims=(8, 8, 8))
        assert abs(res.max_bw_pct - PAPER.fig10_max_bw_pct) < 10.0
        assert res.stands_out


class TestFig11:
    def test_features_detected(self):
        from repro.experiments.fig11_lustre_opens import run

        res = run(n_nodes=256)
        assert res.bands_match
        assert res.events_match
        # Display threshold keeps the picture sparse.
        assert (np.nan_to_num(res.opens) >= 1.0).mean() < 0.6


class TestFig12:
    def test_oom_profile_small(self):
        from repro.experiments.fig12_oom_profile import run

        res = run(job_nodes=16, machine_nodes=20, interval=10.0)
        assert res.oom_killed
        assert res.imbalance_visible
        assert res.peak_node_kb > 0.8 * res.mem_total_kb
