"""Tests for counter-to-rate conversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.rates import deltas, rates, resample


class TestDeltas:
    def test_simple(self):
        t, d = deltas([0.0, 1.0, 2.0], [10, 15, 25])
        assert list(t) == [1.0, 2.0]
        assert list(d) == [5.0, 10.0]

    def test_empty_and_single(self):
        t, d = deltas([], [])
        assert t.size == 0
        t, d = deltas([1.0], [5.0])
        assert t.size == 0

    def test_wrap_u8(self):
        # 250 -> 5 with 8-bit counter: delta = 11.
        t, d = deltas([0.0, 1.0], [250, 5], counter_bits=8)
        assert d[0] == pytest.approx(11.0)

    def test_reset_detected_as_nan(self):
        # A u64 counter dropping from huge to small is a node reboot,
        # not a wrap (the wrapped delta would be astronomically large).
        t, d = deltas([0.0, 1.0], [2**50, 100], counter_bits=64)
        assert np.isnan(d[0])

    def test_gauge_mode_allows_negatives(self):
        t, d = deltas([0.0, 1.0], [50.0, 30.0], counter_bits=None)
        assert d[0] == -20.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            deltas([0.0, 1.0], [1.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2**40), min_size=2, max_size=30))
    def test_monotone_counters_roundtrip(self, increments):
        counts = np.cumsum(np.abs(increments))
        t = np.arange(len(counts), dtype=float)
        _, d = deltas(t, counts)
        assert np.allclose(d, np.diff(counts))


class TestRates:
    def test_uses_actual_dt(self):
        # Irregular sampling (a bypassed interval).
        t, r = rates([0.0, 1.0, 3.0], [0, 100, 500])
        assert r[0] == pytest.approx(100.0)
        assert r[1] == pytest.approx(200.0)  # 400 over 2 s

    def test_zero_dt_is_nan(self):
        t, r = rates([0.0, 0.0], [0, 5])
        assert np.isnan(r[0])


class TestResample:
    def test_locf(self):
        out = resample([1.0, 3.0], [10.0, 30.0], [0.0, 1.5, 2.9, 3.5])
        assert np.isnan(out[0])
        assert out[1] == 10.0
        assert out[2] == 10.0
        assert out[3] == 30.0

    def test_exact_timestamps(self):
        out = resample([1.0, 2.0], [5.0, 6.0], [1.0, 2.0])
        assert list(out) == [5.0, 6.0]

    def test_empty_series(self):
        out = resample([], [], [1.0, 2.0])
        assert np.isnan(out).all()

    def test_store_integration(self):
        """Resampling real stored series from a simulated deployment."""
        import repro.plugins  # noqa: F401
        from repro.cluster import chama

        m = chama(n_nodes=4)
        dep = m.deploy_ldms(interval=1.0, plugins=[("loadavg", {})], fanin=4)
        m.run(until=10.0)
        ts, vs = dep.store.series("total_procs", set_name="n0/loadavg")
        grid = np.arange(2.0, 9.0, 0.5)
        out = resample(ts, vs, grid)
        assert not np.isnan(out[2:]).any()
