"""Tests for the network models: torus, congestion, flows, fat tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    DIR_INDEX,
    DIRS,
    FatTree,
    FlowEngine,
    GeminiTorus,
    delivered_bandwidth,
    stall_fraction,
)
from repro.util.errors import SimulationError


@pytest.fixture
def torus():
    return GeminiTorus(dims=(8, 6, 4))


class TestTorusGeometry:
    def test_counts(self, torus):
        assert torus.n_geminis == 8 * 6 * 4
        assert torus.n_nodes == 2 * torus.n_geminis

    def test_coord_roundtrip(self, torus):
        for g in range(torus.n_geminis):
            assert torus.gemini_index(torus.coord(g)) == g

    def test_bad_coord_rejected(self, torus):
        with pytest.raises(ValueError):
            torus.gemini_index((8, 0, 0))

    def test_nodes_share_gemini(self, torus):
        assert torus.node_gemini(0) == torus.node_gemini(1) == 0
        assert torus.gemini_nodes(3) == [6, 7]

    def test_neighbor_wraps(self, torus):
        g = torus.gemini_index((7, 0, 0))
        assert torus.coord(torus.neighbor(g, "X+")) == (0, 0, 0)
        g0 = torus.gemini_index((0, 0, 0))
        assert torus.coord(torus.neighbor(g0, "X-")) == (7, 0, 0)

    def test_neighbor_inverse(self, torus):
        g = torus.gemini_index((3, 2, 1))
        for dim in range(3):
            plus = torus.neighbor(g, dim * 2)
            assert torus.neighbor(plus, dim * 2 + 1) == g

    def test_media_map(self, torus):
        mm = torus.media_map()
        assert set(mm) == set(DIRS)
        assert mm["X+"] == mm["X-"]

    def test_capacity_by_direction(self, torus):
        caps = torus.capacities()
        assert caps.shape == (6,)
        assert caps[DIR_INDEX["Y+"]] != caps[DIR_INDEX["X+"]]


class TestTorusRouting:
    def test_empty_route_same_gemini(self, torus):
        assert torus.route(5, 5) == []

    def test_route_reaches_destination(self, torus):
        src = torus.gemini_index((0, 0, 0))
        dst = torus.gemini_index((5, 4, 3))
        path = torus.route(src, dst)
        cur = src
        for gem, direction in path:
            assert gem == cur
            cur = torus.neighbor(gem, direction)
        assert cur == dst

    def test_dimension_order(self, torus):
        src = torus.gemini_index((0, 0, 0))
        dst = torus.gemini_index((2, 2, 2))
        dims = [d // 2 for _, d in torus.route(src, dst)]
        assert dims == sorted(dims)  # X hops, then Y, then Z

    def test_shortest_wrap_direction(self, torus):
        # 0 -> 7 in a size-8 dimension: one hop backwards (X-).
        src = torus.gemini_index((0, 0, 0))
        dst = torus.gemini_index((7, 0, 0))
        path = torus.route(src, dst)
        assert len(path) == 1
        assert path[0][1] == DIR_INDEX["X-"]

    def test_route_deterministic(self, torus):
        assert torus.route(3, 100) == torus.route(3, 100)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 8 * 6 * 4 - 1), st.integers(0, 8 * 6 * 4 - 1))
    def test_route_length_equals_hop_count(self, a, b):
        torus = GeminiTorus(dims=(8, 6, 4))
        assert len(torus.route(a, b)) == torus.hop_count(a, b)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 8 * 6 * 4 - 1), st.integers(0, 8 * 6 * 4 - 1))
    def test_hop_count_within_torus_diameter(self, a, b):
        torus = GeminiTorus(dims=(8, 6, 4))
        assert torus.hop_count(a, b) <= 8 // 2 + 6 // 2 + 4 // 2


class TestCongestionModel:
    def test_zero_load_zero_stall(self):
        assert stall_fraction(0.0, 1e9) == 0.0

    def test_monotone_in_load(self):
        loads = np.linspace(0, 1e10, 50)
        fracs = stall_fraction(loads, 1e9)
        assert (np.diff(fracs) >= 0).all()

    def test_bounded_below_one(self):
        assert stall_fraction(1e15, 1e9) < 1.0

    def test_saturation_point(self):
        # u=1 -> 1/3 by construction.
        assert stall_fraction(1e9, 1e9) == pytest.approx(1 / 3)

    def test_delivered_conserves_light_load(self):
        assert delivered_bandwidth(1e8, 1e9) == 1e8

    def test_delivered_caps_at_efficiency(self):
        assert delivered_bandwidth(1e12, 1e9) == pytest.approx(0.95e9)

    def test_zero_capacity(self):
        assert stall_fraction(5.0, 0.0) == 0.0


class TestFlowEngine:
    def test_load_added_along_route(self, torus):
        eng = FlowEngine(torus)
        fid = eng.add_flow(0, 100, 1e9)
        hops = eng._flow_objs[fid].hops
        assert len(hops) == torus.hop_count(torus.node_gemini(0),
                                            torus.node_gemini(100))
        for gem, d in hops:
            assert eng.load[gem, d] == 1e9

    def test_remove_restores_zero(self, torus):
        eng = FlowEngine(torus)
        fid = eng.add_flow(0, 100, 1e9)
        eng.remove_flow(fid)
        assert eng.load.max() == 0.0

    def test_double_remove_rejected(self, torus):
        eng = FlowEngine(torus)
        fid = eng.add_flow(0, 100, 1e9)
        eng.remove_flow(fid)
        with pytest.raises(SimulationError):
            eng.remove_flow(fid)

    def test_negative_rate_rejected(self, torus):
        with pytest.raises(SimulationError):
            FlowEngine(torus).add_flow(0, 1, -5.0)

    def test_flows_stack(self, torus):
        eng = FlowEngine(torus)
        eng.add_flow(0, 100, 1e9)
        eng.add_flow(0, 100, 1e9)
        assert eng.load.max() == 2e9

    def test_set_flow_rate(self, torus):
        eng = FlowEngine(torus)
        fid = eng.add_flow(0, 100, 1e9)
        eng.set_flow_rate(fid, 3e9)
        assert eng.load.max() == 3e9

    def test_accumulate_traffic(self, torus):
        eng = FlowEngine(torus)
        eng.add_flow(0, 100, 1e9)
        eng.accumulate(10.0)
        hops = len(torus.route(torus.node_gemini(0), torus.node_gemini(100)))
        assert eng.traffic.sum() == pytest.approx(1e9 * 10 * hops)

    def test_accumulate_to_clock(self, torus):
        clock = {"t": 0.0}
        eng = FlowEngine(torus, clock=lambda: clock["t"])
        eng.add_flow(0, 100, 1e9)
        clock["t"] = 5.0
        eng.accumulate_to()
        before = eng.traffic.sum()
        assert before > 0
        # Mutations auto-integrate first.
        clock["t"] = 10.0
        eng.add_flow(2, 50, 1e9)
        assert eng.traffic.sum() == pytest.approx(2 * before)

    def test_negative_dt_rejected(self, torus):
        with pytest.raises(SimulationError):
            FlowEngine(torus).accumulate(-1.0)

    def test_gpcdr_mirroring(self, torus):
        from repro.nodefs.gpcdr import GpcdrModel

        eng = FlowEngine(torus)
        gp = GpcdrModel(clock=lambda: 0.0, media=torus.media_map())
        eng.attach_gpcdr(0, gp)
        eng.add_flow(0, torus.nodes_per_gemini * 3, 1e9)  # leaves gemini 0
        eng.accumulate(10.0)
        assert sum(gp.traffic.values()) > 0

    def test_latency_increases_under_congestion(self, torus):
        eng = FlowEngine(torus)
        base = eng.latency(0, 100, 1024)
        eng.add_flow(0, 100, 50e9)  # saturate the path
        assert eng.latency(0, 100, 1024) > base

    def test_utilization_view(self, torus):
        eng = FlowEngine(torus)
        eng.add_flow(0, 100, 4.68e9)  # one cable-capacity flow
        u = eng.utilization()
        assert u.max() == pytest.approx(1.0, rel=0.01)


class TestFatTree:
    def test_same_leaf_no_uplink(self):
        ft = FatTree(n_nodes=36, radix=18, uplinks=4)
        ft.add_flow(0, 1, 1e9)
        assert ft.uplink_up.sum() == 0

    def test_cross_leaf_uses_uplink(self):
        ft = FatTree(n_nodes=36, radix=18, uplinks=4)
        ft.add_flow(0, 20, 1e9)
        assert ft.uplink_up.sum() == 1e9
        assert ft.uplink_down.sum() == 1e9

    def test_remove_flow(self):
        ft = FatTree(n_nodes=36, radix=18, uplinks=4)
        fid = ft.add_flow(0, 20, 1e9)
        ft.remove_flow(fid)
        assert ft.access_up.sum() == 0
        assert ft.uplink_up.sum() == 0

    def test_deterministic_uplink_choice(self):
        ft = FatTree(n_nodes=72, radix=18, uplinks=4)
        assert ft._uplink_for(0, 3) == ft._uplink_for(0, 3)

    def test_path_stall_grows_with_load(self):
        ft = FatTree(n_nodes=36, radix=18, uplinks=4)
        s0 = ft.path_stall(0, 20)
        ft.add_flow(0, 20, 8e9)
        assert ft.path_stall(0, 20) > s0

    def test_latency_cross_leaf_higher(self):
        ft = FatTree(n_nodes=36, radix=18, uplinks=4)
        assert ft.latency(0, 20, 1024) > ft.latency(0, 1, 1024)

    def test_bad_node_rejected(self):
        ft = FatTree(n_nodes=36)
        with pytest.raises(SimulationError):
            ft.leaf_of(36)
