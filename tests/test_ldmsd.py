"""Integration tests for ldmsd: sampling, aggregation, stores, failover.

All tests here run in the simulator (SimEnv + SimFabric) for
determinism; real-socket operation is covered in test_transport_sock.py.
"""

import pytest

import repro.plugins  # noqa: F401  (registers plugins)
from repro.core import Ldmsd, SimEnv
from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, sampler_registry, register_sampler
from repro.sim import Engine
from repro.transport import SimFabric, SimTransport
from repro.util.errors import ConfigError

if "ticker" not in sampler_registry:

    @register_sampler("ticker")
    class TickerSampler(SamplerPlugin):
        """Counts sampling events; used throughout these tests."""

        def config(self, instance, component_id=0, **kw):
            super().config(instance, component_id)
            self.set = self.create_set(
                instance, "ticker", [("count", MetricType.U64)]
            )
            self.n = 0

        def do_sample(self, now):
            self.n += 1
            self.set.set_value("count", self.n)


@pytest.fixture
def world():
    eng = Engine()
    return eng, SimEnv(eng), SimFabric(eng)


def make_sampler(world, name="n0", xprt="rdma", interval=1.0):
    eng, env, fabric = world
    d = Ldmsd(name, env=env,
              transports={xprt: SimTransport(fabric, xprt, node_id=name)})
    d.load_sampler("ticker", instance=f"{name}/ticker", component_id=1)
    d.start_sampler(f"{name}/ticker", interval=interval)
    d.listen(xprt, f"{name}:411")
    return d


def make_agg(world, name="agg", xprt="rdma"):
    eng, env, fabric = world
    return Ldmsd(name, env=env,
                 transports={xprt: SimTransport(fabric, xprt, node_id=name),
                             "sock": SimTransport(fabric, "sock", node_id=name)})


class TestSampling:
    def test_periodic_sampling_updates_set(self, world):
        eng, env, fabric = world
        d = make_sampler(world)
        eng.run(until=5.5)
        assert d.get_set("n0/ticker").get("count") == 5

    def test_stop_sampler_halts(self, world):
        eng, env, fabric = world
        d = make_sampler(world)
        eng.run(until=3.5)
        d.stop_sampler("n0/ticker")
        eng.run(until=10.0)
        assert d.get_set("n0/ticker").get("count") == 3

    def test_restart_with_new_interval(self, world):
        """The sampling frequency 'can be changed on the fly' (§IV-A)."""
        eng, env, fabric = world
        d = make_sampler(world, interval=1.0)
        eng.run(until=2.5)
        d.stop_sampler("n0/ticker")
        d.start_sampler("n0/ticker", interval=0.25)
        eng.run(until=3.6)  # fires at 2.75, 3.0, 3.25, 3.5 (+sample cost)
        assert d.get_set("n0/ticker").get("count") == 2 + 4

    def test_synchronous_sampling_aligned(self, world):
        eng, env, fabric = world
        d = Ldmsd("n0", env=env,
                  transports={"rdma": SimTransport(fabric, "rdma")})
        d.load_sampler("ticker", instance="t", component_id=1)
        eng.run(until=0.4)  # start mid-second
        d.start_sampler("t", interval=1.0, offset=0.0)
        eng.run(until=1.05)
        s = d.get_set("t")
        # First synchronous fire lands at the 1.0 wall boundary.
        assert s.get("count") == 1
        assert abs(s.timestamp - 1.0) < 0.01

    def test_duplicate_instance_rejected(self, world):
        d = make_sampler(world)
        with pytest.raises(ConfigError):
            d.load_sampler("ticker", instance="n0/ticker", component_id=1)

    def test_unknown_plugin_rejected(self, world):
        d = make_sampler(world)
        with pytest.raises(ConfigError):
            d.load_sampler("does_not_exist", instance="x")

    def test_start_unknown_instance_rejected(self, world):
        d = make_sampler(world)
        with pytest.raises(ConfigError):
            d.start_sampler("nope", interval=1.0)

    def test_double_start_rejected(self, world):
        d = make_sampler(world)
        with pytest.raises(ConfigError):
            d.start_sampler("n0/ticker", interval=2.0)

    def test_multiple_plugins_independent(self, world):
        eng, env, fabric = world
        d = make_sampler(world)
        d.load_sampler("ticker", instance="n0/ticker2", component_id=1)
        d.start_sampler("n0/ticker2", interval=0.5)
        eng.run(until=4.2)
        assert d.get_set("n0/ticker").get("count") == 4
        assert d.get_set("n0/ticker2").get("count") == 8


class TestAggregation:
    def test_explicit_set_list(self, world):
        eng, env, fabric = world
        make_sampler(world)
        agg = make_agg(world)
        st = agg.add_store("memory", schema="ticker")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0,
                         sets=("n0/ticker",))
        eng.run(until=10.0)
        assert len(st.rows) >= 8
        assert st.rows[-1].values[0] >= 8

    def test_dir_discovery(self, world):
        eng, env, fabric = world
        make_sampler(world)
        agg = make_agg(world)
        st = agg.add_store("memory")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0)  # sets=()
        eng.run(until=10.0)
        assert {r.set_name for r in st.rows} == {"n0/ticker"}

    def test_stale_data_not_stored(self, world):
        """A set whose DGN did not advance is skipped (§IV-A)."""
        eng, env, fabric = world
        make_sampler(world, interval=10.0)  # slow sampler
        agg = make_agg(world)
        st = agg.add_store("memory")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0)  # fast pull
        eng.run(until=30.0)
        stats = agg.producers["n0"].stats
        assert stats.skipped_stale > 0
        # Stored rows == distinct samples seen, no duplicates.
        counts = [r.values[0] for r in st.rows]
        assert counts == sorted(set(counts))

    def test_aggregator_of_aggregators(self, world):
        eng, env, fabric = world
        make_sampler(world)
        l1 = make_agg(world, "l1")
        l1.add_producer("n0", "rdma", "n0:411", interval=1.0)
        l1.listen("sock", "l1:411")
        l2 = make_agg(world, "l2")
        st = l2.add_store("memory")
        l2.add_producer("l1", "sock", "l1:411", interval=1.0)
        eng.run(until=15.0)
        assert len(st.rows) >= 5
        assert st.rows[-1].set_name == "n0/ticker"

    def test_multiple_producers_same_target(self, world):
        """Multiple connections between one aggregator and one target
        support different per-set frequencies (§IV-B)."""
        eng, env, fabric = world
        d = make_sampler(world)
        d.load_sampler("ticker", instance="n0/slow", component_id=1)
        d.start_sampler("n0/slow", interval=5.0)
        agg = make_agg(world)
        st = agg.add_store("memory")
        agg.add_producer("fast", "rdma", "n0:411", interval=1.0,
                         sets=("n0/ticker",))
        agg.add_producer("slow", "rdma", "n0:411", interval=5.0,
                         sets=("n0/slow",))
        eng.run(until=20.0)
        fast = [r for r in st.rows if r.set_name == "n0/ticker"]
        slow = [r for r in st.rows if r.set_name == "n0/slow"]
        assert len(fast) > 2.5 * len(slow)

    def test_producer_duplicate_name_rejected(self, world):
        agg = make_agg(world)
        agg.add_producer("p", "rdma", "n0:411", interval=1.0)
        with pytest.raises(ConfigError):
            agg.add_producer("p", "rdma", "n0:411", interval=1.0)

    def test_lookup_retried_until_set_appears(self, world):
        """Fig. 2 {a}/{b}: failed lookups repeat on the update loop."""
        eng, env, fabric = world
        d = Ldmsd("n0", env=env,
                  transports={"rdma": SimTransport(fabric, "rdma", node_id="n0")})
        d.listen("rdma", "n0:411")
        agg = make_agg(world)
        st = agg.add_store("memory")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0,
                         sets=("n0/ticker",))
        eng.run(until=5.0)
        assert agg.producers["n0"].stats.lookups_failed > 0
        # Now the plugin appears (on-the-fly configuration).
        d.load_sampler("ticker", instance="n0/ticker", component_id=1)
        d.start_sampler("n0/ticker", interval=1.0)
        eng.run(until=15.0)
        assert len(st.rows) > 0


class TestFailover:
    def test_standby_does_not_pull(self, world):
        eng, env, fabric = world
        make_sampler(world)
        agg = make_agg(world)
        st = agg.add_store("memory")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0, standby=True)
        eng.run(until=10.0)
        assert agg.producers["n0"].stats.updates_issued == 0
        assert agg.producers["n0"].connected  # connection is maintained

    def test_standby_activation_starts_pulls(self, world):
        eng, env, fabric = world
        make_sampler(world)
        agg = make_agg(world)
        st = agg.add_store("memory")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0, standby=True)
        eng.run(until=5.0)
        agg.activate_standby("n0")  # external watchdog decision (§IV-B)
        eng.run(until=15.0)
        assert len(st.rows) >= 8

    def test_failover_bounded_loss(self, world):
        """Primary dies at t=10; standby activated at t=12; data loss is
        bounded by the failover window."""
        eng, env, fabric = world
        make_sampler(world)
        primary = make_agg(world, "primary")
        sp = primary.add_store("memory")
        primary.add_producer("n0", "rdma", "n0:411", interval=1.0)
        backup = make_agg(world, "backup")
        sb = backup.add_store("memory")
        backup.add_producer("n0", "rdma", "n0:411", interval=1.0, standby=True)
        eng.call_later(10.0, primary.shutdown)
        eng.call_later(12.0, lambda: backup.activate_standby("n0"))
        eng.run(until=30.0)
        counts = sorted({int(r.values[0]) for r in sp.rows}
                        | {int(r.values[0]) for r in sb.rows})
        # Samples are 1..29; at most ~3 may be missing around the gap.
        missing = set(range(counts[0], counts[-1] + 1)) - set(counts)
        assert len(missing) <= 3

    def test_reconnect_after_listener_restart(self, world):
        eng, env, fabric = world
        d = make_sampler(world)
        agg = make_agg(world)
        st = agg.add_store("memory")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0,
                         reconnect_interval=0.5)
        eng.run(until=5.0)
        n_before = len(st.rows)
        # Kill every served connection (sampler "reboot").
        for ep in list(d._served_endpoints):
            ep.close()
        eng.run(until=15.0)
        assert len(st.rows) > n_before + 5


class TestStorePolicies:
    def test_schema_filter(self, world):
        eng, env, fabric = world
        d = make_sampler(world)
        d.load_sampler("synthetic", instance="n0/syn", component_id=1,
                       num_metrics=3)
        d.start_sampler("n0/syn", interval=1.0)
        agg = make_agg(world)
        st_tick = agg.add_store("memory", schema="ticker")
        st_syn = agg.add_store("memory", schema="synthetic")
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0)
        eng.run(until=5.0)
        assert {r.schema for r in st_tick.rows} == {"ticker"}
        assert {r.schema for r in st_syn.rows} == {"synthetic"}

    def test_metric_projection(self, world):
        eng, env, fabric = world
        d = make_sampler(world)
        d.load_sampler("synthetic", instance="n0/syn", component_id=1,
                       num_metrics=5)
        d.start_sampler("n0/syn", interval=1.0)
        agg = make_agg(world)
        st = agg.add_store("memory", schema="synthetic",
                           metrics=("metric_0", "metric_3"))
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0)
        eng.run(until=5.0)
        assert st.rows
        assert all(r.names == ("metric_0", "metric_3") for r in st.rows)

    def test_producer_filter(self, world):
        eng, env, fabric = world
        make_sampler(world, "n0")
        make_sampler(world, "n1")
        agg = make_agg(world)
        st = agg.add_store("memory", producers=("n1",))
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0)
        agg.add_producer("n1", "rdma", "n1:411", interval=1.0)
        eng.run(until=5.0)
        assert st.rows
        assert {r.producer for r in st.rows} == {"n1"}


class TestFootprint:
    def test_sampler_memory_under_2mb(self, world):
        """Paper §IV-D: samplers need <2 MB of metric-set memory."""
        eng, env, fabric = world
        d = make_sampler(world)
        d.load_sampler("synthetic", instance="n0/big", component_id=1,
                       num_metrics=467)
        eng.run(until=2.0)
        assert d.arena.used < 2 * 1024 * 1024

    def test_update_pulls_only_data_chunk(self, world):
        eng, env, fabric = world
        d = make_sampler(world)
        d.load_sampler("synthetic", instance="n0/syn", component_id=1,
                       num_metrics=100)
        d.start_sampler("n0/syn", interval=1.0)
        agg = make_agg(world)
        agg.add_producer("n0", "rdma", "n0:411", interval=1.0,
                         sets=("n0/syn",))
        eng.run(until=10.0)
        ep = agg.producers["n0"].endpoint
        mset = d.get_set("n0/syn")
        n_updates = agg.producers["n0"].stats.updates_completed
        assert n_updates > 0
        # One-sided reads moved ~data_size per update, not total_size.
        per_update = ep.rdma_bytes_read / n_updates
        assert per_update == pytest.approx(mset.data_size, rel=0.01)
        assert per_update < 0.2 * mset.total_size
