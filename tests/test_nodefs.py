"""Tests for the synthetic node filesystem and host counter models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nodefs import GEMINI_DIRECTIONS, GpcdrModel, HostModel, HostProfile, SynthFS
from repro.nodefs.fs import RealFS
from repro.plugins.samplers import parsers
from repro.util.errors import ReproError


class TestSynthFS:
    def test_register_and_read(self):
        fs = SynthFS()
        fs.register_static("/proc/foo", "bar\n")
        assert fs.read("/proc/foo") == "bar\n"

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            SynthFS().read("/proc/none")

    def test_duplicate_register_rejected(self):
        fs = SynthFS()
        fs.register_static("/a", "1")
        with pytest.raises(ReproError):
            fs.register_static("/a", "2")

    def test_unregister(self):
        fs = SynthFS()
        fs.register_static("/a", "1")
        fs.unregister("/a")
        assert not fs.exists("/a")

    def test_listdir(self):
        fs = SynthFS()
        fs.register_static("/sys/class/net/eth0/statistics/rx_bytes", "0")
        fs.register_static("/sys/class/net/eth1/statistics/rx_bytes", "0")
        assert fs.listdir("/sys/class/net") == ["eth0", "eth1"]

    def test_listdir_missing(self):
        with pytest.raises(FileNotFoundError):
            SynthFS().listdir("/nope")

    def test_exists_directory_prefix(self):
        fs = SynthFS()
        fs.register_static("/a/b/c", "x")
        assert fs.exists("/a/b")
        assert fs.exists("/a/b/c")
        assert not fs.exists("/a/x")

    def test_render_called_per_read(self):
        fs = SynthFS()
        calls = []
        fs.register("/f", lambda: calls.append(1) or str(len(calls)))
        assert fs.read("/f") == "1"
        assert fs.read("/f") == "2"


@pytest.fixture
def host():
    clock = {"t": 0.0}
    h = HostModel("n0", clock=lambda: clock["t"], seed=1)
    return clock, h


class TestHostModel:
    def test_counters_monotone(self, host):
        clock, h = host
        v1 = parsers.parse_proc_stat(h.fs.read("/proc/stat"))
        clock["t"] = 10.0
        v2 = parsers.parse_proc_stat(h.fs.read("/proc/stat"))
        for key in v1:
            assert v2[key] >= v1[key], key

    def test_cpu_fractions_integrate(self, host):
        clock, h = host
        h.set_workload(cpu_user_frac=0.5)
        clock["t"] = 100.0
        stat = parsers.parse_proc_stat(h.fs.read("/proc/stat"))
        total = sum(stat[f"cpu_{f}"] for f in parsers.CPU_FIELDS)
        assert stat["cpu_user"] / total == pytest.approx(0.5, abs=0.05)

    def test_meminfo_consistent(self, host):
        clock, h = host
        h.mem_active_kb = 10 * 1024 * 1024
        clock["t"] = 1.0
        mem = parsers.parse_meminfo(h.fs.read("/proc/meminfo"))
        assert mem["MemTotal"] == h.profile.mem_total_kb
        assert mem["Active"] == 10 * 1024 * 1024
        assert mem["MemFree"] + mem["Active"] + mem["Cached"] <= mem["MemTotal"]

    def test_lustre_rates(self, host):
        clock, h = host
        h.set_workload(lustre_open_rate=10.0)
        clock["t"] = 100.0
        stats = parsers.parse_lustre_stats(
            h.fs.read("/proc/fs/lustre/llite/snx11024-ffff0000/stats"))
        assert stats["open"] == pytest.approx(1000, rel=0.3)

    def test_set_workload_unknown_field_rejected(self, host):
        _, h = host
        with pytest.raises(AttributeError):
            h.set_workload(warp_drive=1.0)

    def test_idle_resets(self, host):
        clock, h = host
        h.set_workload(cpu_user_frac=0.9, lustre_read_bps=1e9)
        h.idle()
        assert h.cpu_user_frac == 0.0
        assert h.lustre_read_bps == 0.0

    def test_ib_counters_count_words(self, host):
        clock, h = host
        h.set_workload(ib_rx_bps=4000.0)
        clock["t"] = 100.0
        words = parsers.parse_counter_file(
            h.fs.read("/sys/class/infiniband/mlx4_0/ports/1/counters/port_rcv_data"))
        # 4000 B/s * 100 s / 4 bytes-per-word ~ 100,000 words.
        assert words == pytest.approx(100_000, rel=0.3)

    def test_profile_controls_files(self):
        clock = {"t": 0.0}
        p = HostProfile(nfs=False, eth_ifaces=(), ib_devices=(), lnet=True)
        h = HostModel("n", clock=lambda: clock["t"], profile=p)
        assert not h.fs.exists("/proc/net/rpc/nfs")
        assert not h.fs.exists("/sys/class/net")
        assert h.fs.exists("/proc/sys/lnet/stats")

    def test_deterministic_given_seed(self):
        def run(seed):
            clock = {"t": 0.0}
            h = HostModel("n0", clock=lambda: clock["t"], seed=seed)
            h.set_workload(cpu_user_frac=0.4)
            clock["t"] = 50.0
            return h.fs.read("/proc/stat")

        assert run(7) == run(7)
        assert run(7) != run(8)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                    max_size=10))
    def test_advance_order_independent_totals(self, steps):
        clock = {"t": 0.0}
        h = HostModel("n0", clock=lambda: clock["t"], seed=3)
        h.set_workload(lustre_open_rate=2.0)
        t = 0.0
        for dt in steps:
            t += dt
            clock["t"] = t
            h.advance()
        total = h.lustre["snx11024"]["open"]
        # Mean-rate integration with 5% jitter: within 40% of rate * t.
        assert total == pytest.approx(2.0 * t, rel=0.4)


class TestGpcdr:
    def test_render_and_parse(self):
        clock = {"t": 5.0}
        gp = GpcdrModel(clock=lambda: clock["t"])
        gp.add_traffic("X+", 1e6)
        gp.add_stall("Y-", 0.5)
        data = parsers.parse_gpcdr(gp.fs.read(
            "/sys/devices/virtual/gpcdr/gpcdr/metricsets/links/metrics"))
        assert data["traffic_X+"] == 1_000_000
        assert data["stalled_Y-"] == 500_000_000
        assert data["timestamp"] == pytest.approx(5.0)
        assert data["linkstatus_Z+"] == 3

    def test_media_controls_linkspeed(self):
        gp = GpcdrModel(clock=lambda: 0.0,
                        media={d: "backplane" for d in GEMINI_DIRECTIONS})
        assert gp.link_speed("X+") == pytest.approx(9.375e9)

    def test_unknown_media_rejected(self):
        with pytest.raises(ValueError):
            GpcdrModel(clock=lambda: 0.0, media={"X+": "string-and-cans"})

    def test_link_down(self):
        gp = GpcdrModel(clock=lambda: 0.0)
        gp.set_link_status("Z-", 0)
        data = parsers.parse_gpcdr(gp.fs.read(
            "/sys/devices/virtual/gpcdr/gpcdr/metricsets/links/metrics"))
        assert data["linkstatus_Z-"] == 0

    def test_sync_hook_called_on_render(self):
        gp = GpcdrModel(clock=lambda: 0.0)
        calls = []
        gp.sync_hook = lambda: calls.append(1)
        gp.render()
        assert calls == [1]


@pytest.mark.skipif(not RealFS().exists("/proc/meminfo"),
                    reason="no /proc on this platform")
class TestRealFS:
    def test_reads_real_proc(self):
        fs = RealFS()
        mem = parsers.parse_meminfo(fs.read("/proc/meminfo"))
        assert mem["MemTotal"] > 0

    def test_listdir(self):
        fs = RealFS()
        assert "meminfo" in fs.listdir("/proc")

    def test_synth_renders_parse_like_real(self):
        """The synthetic renders parse with the same code as real files."""
        real = parsers.parse_meminfo(RealFS().read("/proc/meminfo"))
        clock = {"t": 1.0}
        h = HostModel("n", clock=lambda: clock["t"])
        synth = parsers.parse_meminfo(h.fs.read("/proc/meminfo"))
        # The deployment-relevant keys exist in both renderings
        # (containers may trim the real file, so exact key parity is
        # not required).
        for key in ("MemTotal", "MemFree", "Cached", "Active", "Dirty"):
            assert key in real and key in synth
