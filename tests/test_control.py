"""Tests for the control channel: command parsing, verbs, UNIX server."""

import json
import os
import socket
import time

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv
from repro.core.control import ControlChannel, UnixControlServer, parse_command
from repro.nodefs.host import HostModel
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport
from repro.util.errors import ConfigError


class TestParseCommand:
    def test_basic(self):
        verb, attrs = parse_command("load name=meminfo")
        assert verb == "load"
        assert attrs == {"name": "meminfo"}

    def test_multiple_attrs(self):
        verb, attrs = parse_command(
            "config name=x instance=node0/x component_id=3")
        assert attrs["component_id"] == "3"

    def test_quoted_values(self):
        _, attrs = parse_command('config name=x path="/tmp/a b"')
        assert attrs["path"] == "/tmp/a b"

    def test_case_insensitive_verb(self):
        verb, _ = parse_command("LOAD name=x")
        assert verb == "load"

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            parse_command("   ")

    def test_malformed_attr_rejected(self):
        with pytest.raises(ConfigError):
            parse_command("load meminfo")

    def test_missing_key_rejected(self):
        with pytest.raises(ConfigError):
            parse_command("load =value")


@pytest.fixture
def channel():
    eng = Engine()
    env = SimEnv(eng)
    host = HostModel("n0", clock=lambda: eng.now)
    fabric = SimFabric(eng)
    d = Ldmsd("n0", env=env, fs=host.fs,
              transports={"rdma": SimTransport(fabric, "rdma", node_id="n0")})
    return eng, d, ControlChannel(d)


class TestControlVerbs:
    def test_load_config_start_stop(self, channel):
        eng, d, ch = channel
        assert ch.handle("load name=meminfo").startswith("0")
        assert ch.handle(
            "config name=meminfo instance=n0/mem component_id=1"
        ).startswith("0")
        assert ch.handle("start name=n0/mem interval=1000000").startswith("0")
        eng.run(until=3.5)
        assert d.get_set("n0/mem").get("MemTotal") > 0
        assert ch.handle("stop name=n0/mem").startswith("0")

    def test_config_without_load_fails(self, channel):
        _, _, ch = channel
        assert ch.handle("config name=meminfo instance=x").startswith("E")

    def test_load_unknown_plugin_fails(self, channel):
        _, _, ch = channel
        assert ch.handle("load name=not_a_plugin").startswith("E")

    def test_unknown_verb_fails(self, channel):
        _, _, ch = channel
        reply = ch.handle("frobnicate name=x")
        assert reply.startswith("E")
        assert "unknown command" in reply

    def test_interval_is_microseconds(self, channel):
        eng, d, ch = channel
        ch.handle("load name=synthetic")
        ch.handle("config name=synthetic instance=n0/s component_id=1 "
                  "num_metrics=2")
        ch.handle("start name=n0/s interval=500000")  # 0.5 s
        eng.run(until=2.2)
        assert d.get_set("n0/s").get("metric_0") == 4

    def test_term_unloads(self, channel):
        eng, d, ch = channel
        ch.handle("load name=synthetic")
        ch.handle("config name=synthetic instance=n0/s component_id=1")
        ch.handle("start name=n0/s interval=1000000")
        assert ch.handle("term name=n0/s").startswith("0")
        assert d.get_set("n0/s") is None
        eng.run(until=3.0)  # no crash from orphan timer

    def test_dir_json(self, channel):
        _, d, ch = channel
        ch.handle("load name=synthetic")
        ch.handle("config name=synthetic instance=n0/s component_id=1 "
                  "num_metrics=3")
        reply = ch.handle("dir")
        assert reply.startswith("0 ")
        payload = json.loads(reply[2:])
        assert payload[0]["name"] == "n0/s"
        assert payload[0]["card"] == 3

    def test_stats_json(self, channel):
        _, _, ch = channel
        reply = ch.handle("stats")
        stats = json.loads(reply[2:])
        assert stats["name"] == "n0"

    def test_stats_schema_includes_obs_snapshot(self, channel):
        eng, d, ch = channel
        ch.handle("load name=synthetic")
        ch.handle("config name=synthetic instance=n0/s component_id=1")
        ch.handle("start name=n0/s interval=1000000")
        eng.run(until=3.5)
        stats = json.loads(ch.handle("stats")[2:])
        # stable top-level schema
        assert {"name", "sets", "arena_used", "arena_peak", "arena_size",
                "plugins", "producers", "records_delivered", "stores",
                "obs"} <= set(stats)
        obs = stats["obs"]
        assert obs["enabled"] is True
        assert set(obs) == {"enabled", "counters", "gauges", "histograms"}
        # command handling and sampling were themselves counted
        assert obs["counters"]["control.commands"] >= 4
        assert obs["counters"]["sampler.samples"] == 3
        h = obs["histograms"]["sample.duration"]
        assert set(h) == {"count", "sum", "min", "max", "mean",
                          "p50", "p95", "p99"}
        assert h["count"] == 3

    def test_prof_json_histogram_dumps(self, channel):
        eng, d, ch = channel
        ch.handle("load name=synthetic")
        ch.handle("config name=synthetic instance=n0/s component_id=1")
        ch.handle("start name=n0/s interval=1000000")
        eng.run(until=2.5)
        prof = json.loads(ch.handle("prof")[2:])
        assert set(prof) == {"name", "histograms", "traces", "arena",
                             "freshness", "flight", "spans", "shard"}
        assert prof["name"] == "n0"
        # Schema-stable shard block: present and zeroed when sharding
        # is off.
        assert prof["shard"] == {
            "shards": 0, "shard_id": 0, "shard_windows": 0,
            "shard_barrier_wait_ns": 0, "cross_shard_frames": 0,
            "shard_lookahead_ns": 0}
        assert isinstance(prof["traces"], list)
        assert set(prof["arena"]) == {"sweeps", "rows_vectorized",
                                      "fallback_sets", "pool"}
        h = prof["histograms"]["sample.duration"]
        # full dump: summary plus the bucket vector
        assert {"count", "sum", "min", "max", "mean", "p50", "p95", "p99",
                "edges", "buckets"} == set(h)
        assert len(h["buckets"]) == len(h["edges"]) + 1
        assert sum(h["buckets"]) == h["count"] == 2

    def test_stats_and_prof_on_disabled_daemon(self):
        eng = Engine()
        env = SimEnv(eng)
        fabric = SimFabric(eng)
        d = Ldmsd("n0", env=env, obs_enabled=False,
                  transports={"rdma": SimTransport(fabric, "rdma",
                                                   node_id="n0")})
        ch = ControlChannel(d)
        stats = json.loads(ch.handle("stats")[2:])
        assert stats["obs"] == {"enabled": False, "counters": {},
                                "gauges": {}, "histograms": {}}
        prof = json.loads(ch.handle("prof")[2:])
        assert prof["histograms"] == {} and prof["traces"] == []

    def test_add_remove_producer(self, channel):
        eng, d, ch = channel
        d.listen("rdma", "n0:411")
        assert ch.handle(
            "add host=n0:411 xprt=rdma interval=1000000 name=self"
        ).startswith("0")
        assert "self" in d.producers
        assert ch.handle("remove name=self").startswith("0")
        assert "self" not in d.producers

    def test_add_with_sets_and_standby(self, channel):
        eng, d, ch = channel
        d.listen("rdma", "n0:411")
        ch.handle("add host=n0:411 xprt=rdma interval=1000000 name=sb "
                  "sets=a,b standby=true")
        prod = d.producers["sb"]
        assert not prod.active
        assert set(prod.updaters) == {"a", "b"}
        assert ch.handle("standby_activate name=sb").startswith("0")
        assert prod.active

    def test_store_config(self, channel, tmp_path):
        _, d, ch = channel
        reply = ch.handle(
            f"store name=store_csv schema=meminfo path={tmp_path}")
        assert reply.startswith("0")
        assert d.stores[0].plugin_name == "store_csv"
        assert d.stores[0].policy.schema == "meminfo"

    def test_enable_query(self, channel, tmp_path):
        _, d, ch = channel
        assert ch.handle("enable_query").startswith("E")  # no sos store yet
        ch.handle(f"store name=sos path={tmp_path} rollups=10")
        reply = ch.handle("enable_query hot_window=15 cache_entries=32")
        assert reply.startswith("0")
        assert d.query_engine is not None
        assert d.query_engine.hot_window == 15.0
        assert d.query_engine.cache_entries == 32


class TestUnixControlServer:
    def test_round_trip_over_socket(self, channel, tmp_path):
        _, d, ch = channel
        path = str(tmp_path / "ctl.sock")
        server = UnixControlServer(ch, path)
        try:
            # Owner-only permissions, as in ldmsd.
            assert (os.stat(path).st_mode & 0o777) == 0o600
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.settimeout(5.0)
                s.connect(path)
                s.sendall(b"load name=meminfo\nstats\n")
                buf = b""
                deadline = time.time() + 5.0
                while buf.count(b"\n") < 2 and time.time() < deadline:
                    buf += s.recv(4096)
            lines = buf.decode().splitlines()
            assert lines[0].startswith("0")
            assert json.loads(lines[1][2:])["name"] == "n0"
        finally:
            server.close()
        assert not os.path.exists(path)
