"""Tests for the command-line tools (in-process invocation)."""

import threading
import time

import pytest

import repro.plugins  # noqa: F401
from repro.cli.ldms_ls_cli import main as ldms_ls_main
from repro.cli.ldmsctl_cli import send_command
from repro.cli.ldmsd_cli import build_parser, main as ldmsd_main


class TestLdmsdCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.xprt == "sock"
        assert args.mem == "2MB"

    def test_bad_command_exits_nonzero(self, capsys):
        rc = ldmsd_main(["--cmd", "load name=no_such_plugin",
                         "--duration", "0.1"])
        assert rc == 1

    def test_runs_with_script(self, tmp_path, capsys):
        script = tmp_path / "boot.ctl"
        script.write_text(
            "# startup script\n"
            "load name=synthetic\n"
            "config name=synthetic instance=n0/s component_id=1 num_metrics=3\n"
            "start name=n0/s interval=50000\n"
        )
        rc = ldmsd_main(["--script", str(script), "--duration", "0.4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "listening on" in out
        assert "'start name=n0/s interval=50000' -> 0" in out


class TestFullCliPipeline:
    def test_daemon_ctl_and_ls(self, tmp_path, capsys):
        """Start a daemon thread, control it over the UNIX socket, list
        its sets over TCP — the complete operator workflow."""
        ctl = str(tmp_path / "ctl.sock")
        port_holder = {}

        # Patch: grab the ephemeral port by parsing daemon stdout is
        # awkward under capsys; instead run the daemon pieces directly.
        from repro.core import Ldmsd
        from repro.core.control import ControlChannel, UnixControlServer

        daemon = Ldmsd("clinode")
        channel = ControlChannel(daemon)
        listener = daemon.listen("sock", ("127.0.0.1", 0))
        server = UnixControlServer(channel, ctl)
        try:
            reply = send_command(ctl, "load name=synthetic")
            assert reply.startswith("0")
            send_command(
                ctl, "config name=synthetic instance=cli/s component_id=1 "
                     "num_metrics=4")
            send_command(ctl, "start name=cli/s interval=100000")
            time.sleep(0.5)

            rc = ldms_ls_main(["--port", str(listener.port), "-l"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "cli/s" in out
            assert "schema=synthetic" in out
            assert "metric_0" in out
            assert "consistent" in out
        finally:
            server.close()
            daemon.shutdown()

    def test_ls_verbose_renders_self_set(self, capsys):
        """``ldms_ls -v`` shows ldmsd_self sets as a health block."""
        from repro.core import Ldmsd

        daemon = Ldmsd("vnode")
        listener = daemon.listen("sock", ("127.0.0.1", 0))
        try:
            daemon.load_sampler("ldmsd_self", instance="vnode/self",
                                component_id=1)
            daemon.start_sampler("vnode/self", interval=0.1)
            time.sleep(0.35)

            rc = ldms_ls_main(["--port", str(listener.port), "-v"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "vnode/self" in out
            assert "sampling :" in out and "end2end" in out
            # the raw 59-metric dump is replaced by the rendering
            assert "sample_us_p50" not in out
        finally:
            daemon.shutdown()

    def test_ctl_error_reply(self, tmp_path):
        from repro.core import Ldmsd
        from repro.core.control import ControlChannel, UnixControlServer

        ctl = str(tmp_path / "ctl2.sock")
        daemon = Ldmsd("clinode2")
        server = UnixControlServer(ControlChannel(daemon), ctl)
        try:
            assert send_command(ctl, "bogus verb=1").startswith("E")
        finally:
            server.close()
            daemon.shutdown()


class TestReproTopClockBoundary:
    def test_repro_top_routes_clock_through_timeutil(self):
        # Regression (found by repro-flow): the poll loop read
        # time.monotonic()/time.sleep() directly instead of going
        # through the sanctioned repro.util.timeutil boundary.
        import inspect

        import repro.cli.repro_top_cli as mod

        src = inspect.getsource(mod)
        assert "time.monotonic(" not in src
        assert "time.sleep(" not in src
        assert "timeutil.monotonic(" in src
        assert "timeutil.sleep(" in src
