"""Tests for the application models and monitoring specs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    Adagio,
    Cth,
    ImbAllreduce,
    LinkTest,
    Milc,
    MiniGhost,
    MonitoringSpec,
    Nalu,
    NoiseModel,
    Psnap,
)
from repro.util.rngtools import spawn_rng


class TestMonitoringSpec:
    def test_unmonitored(self):
        spec = MonitoringSpec.unmonitored()
        assert not spec.monitored
        assert spec.effective_cost == 0.0
        assert spec.active_plugin_costs == ()

    def test_single_event_cost(self):
        spec = MonitoringSpec.interval_1s()
        assert spec.effective_cost == pytest.approx(400e-6)

    def test_half_metrics_cost_between(self):
        full = MonitoringSpec.interval_1s()
        half = MonitoringSpec.half_metrics()
        none = MonitoringSpec(interval=1.0, metric_fraction=0.0)
        assert none.effective_cost < half.effective_cost < full.effective_cost

    def test_chama_plugin_mix(self):
        spec = MonitoringSpec.chama_plugins()
        assert len(spec.active_plugin_costs) == 7
        half = MonitoringSpec.chama_plugins(metric_fraction=0.5)
        assert len(half.active_plugin_costs) == 4
        # The cheap plugins are the ones kept.
        assert max(half.active_plugin_costs) < max(spec.active_plugin_costs)

    def test_without_network(self):
        spec = MonitoringSpec.interval_1s().without_network()
        assert spec.monitored and not spec.aggregation

    def test_labels(self):
        assert MonitoringSpec.unmonitored().label() == "unmonitored"
        assert MonitoringSpec.interval_60s().label() == "60s"
        assert "no net" in MonitoringSpec.interval_1s().without_network().label()


class TestNoiseModel:
    def test_unmonitored_no_fires(self):
        rng = spawn_rng(1, "nm")
        nm = NoiseModel(MonitoringSpec.unmonitored(), 4, rng)
        assert nm.fires_in(0.0, 100.0).sum() == 0

    def test_fire_count_matches_rate(self):
        rng = spawn_rng(1, "nm")
        nm = NoiseModel(MonitoringSpec.interval_1s(), 10, rng)
        fires = nm.fires_in(0.0, 100.0)
        assert (fires == 100).all()

    def test_synchronized_zero_offsets(self):
        rng = spawn_rng(1, "nm")
        nm = NoiseModel(MonitoringSpec(interval=1.0, synchronized=True), 5, rng)
        assert (nm.offsets == 0).all()

    def test_node_fire_times_consistent_with_counts(self):
        rng = spawn_rng(2, "nm")
        nm = NoiseModel(MonitoringSpec.interval_20s(), 8, rng)
        for node in range(8):
            times = nm.node_fire_times(node, 10.0, 200.0)
            assert len(times) == nm.fires_in(10.0, np.full(8, 200.0))[node]
            assert ((times >= 10.0) & (times < 200.0)).all()

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.1, 50.0), st.floats(0.0, 100.0), st.floats(0.01, 200.0))
    def test_fires_in_window_additive(self, interval, t0, width):
        rng = spawn_rng(3, "nm")
        nm = NoiseModel(MonitoringSpec(interval=interval), 4, rng)
        mid = t0 + width / 2
        t1 = t0 + width
        total = nm.fires_in(t0, t1)
        split = nm.fires_in(t0, mid) + nm.fires_in(mid, t1)
        assert (total == split).all()


class TestPsnap:
    def test_histogram_total_exact(self):
        p = Psnap(n_nodes=4, iterations=10_000, tasks_per_node=8)
        rng = spawn_rng(4, "psnap")
        h = p.run_histogram(MonitoringSpec.interval_1s(), rng)
        assert h.total == p.total_loops

    def test_monitored_tail_exceeds_unmonitored(self):
        p = Psnap(n_nodes=16, iterations=100_000)
        rng = spawn_rng(5, "psnap")
        nm = p.run_histogram(MonitoringSpec.unmonitored(), rng)
        hm = p.run_histogram(MonitoringSpec.interval_1s(), rng)
        assert hm.tail_fraction(200.0) > nm.tail_fraction(200.0)

    def test_tail_fraction_matches_expectation(self):
        p = Psnap(n_nodes=64, iterations=200_000)
        rng = spawn_rng(6, "psnap")
        spec = MonitoringSpec.interval_1s()
        hm = p.run_histogram(spec, rng, hi_us=600.0)
        nm = p.run_histogram(MonitoringSpec.unmonitored(), rng, hi_us=600.0)
        measured = hm.tail_fraction(190.0) - nm.tail_fraction(190.0)
        assert measured == pytest.approx(
            p.expected_sampler_tail_fraction(spec), rel=0.3)

    def test_delays_bounded_by_plugin_cost(self):
        p = Psnap(n_nodes=8, iterations=50_000, bg_rate=0.0)
        rng = spawn_rng(7, "psnap")
        h = p.run_histogram(MonitoringSpec.interval_1s(), rng, hi_us=1000.0)
        # No mass beyond loop + 1.04 * cost (+jitter).
        assert h.tail_count(100 + 430) == 0

    def test_runtime_property(self):
        p = Psnap(loop_us=100.0, iterations=1_000_000)
        assert p.runtime == pytest.approx(100.0)


ALL_APPS = [Milc, MiniGhost, ImbAllreduce, Nalu, Cth, Adagio]


class TestBspApps:
    @pytest.mark.parametrize("App", ALL_APPS)
    def test_runs_and_reports_phases(self, App):
        app = App(n_nodes=32)
        rng = spawn_rng(8, "bsp", App.__name__)
        res = app.run(MonitoringSpec.interval_1s(), rng)
        assert res.wall_time > 0
        assert res.iterations == app.iterations
        for phase in app.phase_fractions:
            assert phase in res.phases

    @pytest.mark.parametrize("App", ALL_APPS)
    def test_monitoring_effect_is_small(self, App):
        """<1% average slowdown (the §III-B requirement)."""
        app = App(n_nodes=64)
        rng = spawn_rng(9, "bsp", App.__name__)
        nm = np.mean([app.run(MonitoringSpec.unmonitored(), rng).wall_time
                      for _ in range(6)])
        hm = np.mean([app.run(MonitoringSpec.interval_1s(), rng).wall_time
                      for _ in range(6)])
        assert hm / nm < 1.02

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            MiniGhost(warp_factor=9)

    def test_perturbed_iterations_zero_unmonitored(self):
        app = Cth(n_nodes=16, iterations=50)
        rng = spawn_rng(10, "bsp")
        res = app.run(MonitoringSpec.unmonitored(), rng)
        assert res.perturbed_iterations == 0

    def test_sync_sampling_bounds_perturbation(self):
        app = MiniGhost(n_nodes=128)
        rng = spawn_rng(11, "bsp")
        sync = np.mean([app.run(MonitoringSpec(interval=1.0, synchronized=True),
                                rng).perturbed_iterations for _ in range(4)])
        async_ = np.mean([app.run(MonitoringSpec(interval=1.0), rng)
                          .perturbed_iterations for _ in range(4)])
        assert sync <= async_

    def test_no_net_removes_comm_overhead(self):
        app = ImbAllreduce(n_nodes=64)
        assert app.net_overhead(MonitoringSpec.interval_1s()) > 0
        assert app.net_overhead(
            MonitoringSpec.interval_1s().without_network()) == 0
        assert app.net_overhead(MonitoringSpec.unmonitored()) == 0

    def test_ensemble_size(self):
        app = Adagio(n_nodes=16)
        rng = spawn_rng(12, "bsp")
        runs = app.ensemble(MonitoringSpec.unmonitored(), rng, repeats=4)
        assert len(runs) == 4

    def test_adagio_has_io_phase(self):
        app = Adagio(n_nodes=16)
        rng = spawn_rng(13, "bsp")
        res = app.run(MonitoringSpec.unmonitored(), rng)
        assert res.phases["io"] > 0


class TestLinkTest:
    def test_message_time_scale(self):
        lt = LinkTest()
        rng = spawn_rng(14, "lt")
        res = lt.run(MonitoringSpec.unmonitored(), rng)
        per_msg = res.phases["per_message"]
        # 8 kB / 4.68 GB/s + 1.4 us ~ 3.2 us, plus jitter.
        assert 2e-6 < per_msg < 6e-6

    def test_monitoring_shift_is_negligible(self):
        """Paper: difference 'not statistically significant' (20 ns)."""
        lt = LinkTest()
        rng = spawn_rng(15, "lt")
        nm = np.mean([lt.run(MonitoringSpec.unmonitored(), rng)
                      .phases["per_message"] for _ in range(5)])
        hm = np.mean([lt.run(MonitoringSpec.interval_1s(), rng)
                      .phases["per_message"] for _ in range(5)])
        assert abs(hm - nm) / nm < 0.05
