"""End-to-end integration on real threads and real TCP sockets.

These tests exercise the same code the simulator runs, but in RealEnv:
actual wall-clock scheduling, actual sockets on localhost, actual files
for the stores — the configuration a user deploys on a workstation.
"""

import os
import time

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd
from repro.nodefs.fs import RealFS
from repro.nodefs.host import HostModel


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def synth_fs():
    host = HostModel("it0", clock=time.monotonic)
    return host.fs


class TestRealPipeline:
    def test_sampler_to_aggregator_over_tcp(self, synth_fs):
        sampler = Ldmsd("node0", fs=synth_fs)
        agg = Ldmsd("agg0")
        try:
            sampler.load_sampler("meminfo", instance="node0/meminfo",
                                 component_id=1)
            sampler.start_sampler("node0/meminfo", interval=0.1)
            listener = sampler.listen("sock", ("127.0.0.1", 0))
            store = agg.add_store("memory")
            agg.add_producer("node0", "sock", ("127.0.0.1", listener.port),
                             interval=0.1)
            assert wait_for(lambda: len(store.rows) >= 5)
            row = store.rows[-1]
            assert row.schema == "meminfo"
            assert dict(zip(row.names, row.values))["MemTotal"] > 0
        finally:
            agg.shutdown()
            sampler.shutdown()

    def test_stale_skipped_in_real_time(self, synth_fs):
        sampler = Ldmsd("node0", fs=synth_fs)
        agg = Ldmsd("agg0")
        try:
            sampler.load_sampler("loadavg", instance="node0/la",
                                 component_id=1)
            sampler.start_sampler("node0/la", interval=1.0)  # slow
            listener = sampler.listen("sock", ("127.0.0.1", 0))
            store = agg.add_store("memory")
            agg.add_producer("node0", "sock", ("127.0.0.1", listener.port),
                             interval=0.05)  # fast pull
            assert wait_for(lambda: len(store.rows) >= 1)
            time.sleep(1.0)
            stats = agg.producers["node0"].stats
            assert stats.skipped_stale > 0
        finally:
            agg.shutdown()
            sampler.shutdown()

    def test_csv_store_writes_files(self, synth_fs, tmp_path):
        sampler = Ldmsd("node0", fs=synth_fs)
        agg = Ldmsd("agg0")
        try:
            sampler.load_sampler("procstat", instance="node0/cpu",
                                 component_id=1)
            sampler.start_sampler("node0/cpu", interval=0.1)
            listener = sampler.listen("sock", ("127.0.0.1", 0))
            store = agg.add_store("store_csv", path=str(tmp_path),
                                  buffer_lines=1)
            agg.add_producer("node0", "sock", ("127.0.0.1", listener.port),
                             interval=0.1)
            assert wait_for(lambda: store.records_stored >= 3)
            store.flush()
            csv = tmp_path / "procstat.csv"
            assert csv.exists()
            lines = csv.read_text().splitlines()
            assert lines[0].startswith("Time,Producer,CompId,cpu_user")
            assert len(lines) >= 4
        finally:
            agg.shutdown()
            sampler.shutdown()

    def test_two_level_aggregation_real(self, synth_fs):
        sampler = Ldmsd("node0", fs=synth_fs)
        l1 = Ldmsd("l1")
        l2 = Ldmsd("l2")
        try:
            sampler.load_sampler("loadavg", instance="node0/la",
                                 component_id=1)
            sampler.start_sampler("node0/la", interval=0.1)
            s_lst = sampler.listen("sock", ("127.0.0.1", 0))
            l1.add_producer("node0", "sock", ("127.0.0.1", s_lst.port),
                            interval=0.1)
            l1_lst = l1.listen("sock", ("127.0.0.1", 0))
            store = l2.add_store("memory")
            l2.add_producer("l1", "sock", ("127.0.0.1", l1_lst.port),
                            interval=0.1)
            assert wait_for(lambda: len(store.rows) >= 3)
            assert store.rows[-1].set_name == "node0/la"
        finally:
            l2.shutdown()
            l1.shutdown()
            sampler.shutdown()

    def test_reconnect_after_sampler_restart(self, synth_fs):
        agg = Ldmsd("agg0")
        sampler1 = Ldmsd("node0", fs=synth_fs)
        try:
            sampler1.load_sampler("loadavg", instance="node0/la",
                                  component_id=1)
            sampler1.start_sampler("node0/la", interval=0.1)
            lst1 = sampler1.listen("sock", ("127.0.0.1", 0))
            port = lst1.port
            store = agg.add_store("memory")
            agg.add_producer("node0", "sock", ("127.0.0.1", port),
                             interval=0.1, reconnect_interval=0.2)
            assert wait_for(lambda: len(store.rows) >= 2)
            n_before = len(store.rows)
            sampler1.shutdown()  # node "crashes"
            time.sleep(0.5)
            # Node comes back on the same port.
            host2 = HostModel("it1", clock=time.monotonic)
            sampler2 = Ldmsd("node0b", fs=host2.fs)
            try:
                sampler2.load_sampler("loadavg", instance="node0/la",
                                      component_id=1)
                sampler2.start_sampler("node0/la", interval=0.1)
                sampler2.listen("sock", ("127.0.0.1", port))
                assert wait_for(lambda: len(store.rows) >= n_before + 3)
            finally:
                sampler2.shutdown()
        finally:
            agg.shutdown()

    @pytest.mark.skipif(not RealFS().exists("/proc/meminfo"),
                        reason="no /proc on this platform")
    def test_real_proc_sampling(self):
        """Sample the actual /proc of the machine running the tests."""
        daemon = Ldmsd("realnode")  # default fs = RealFS
        try:
            daemon.load_sampler("meminfo", instance="real/mem",
                                component_id=1)
            daemon.start_sampler("real/mem", interval=0.1)
            mset = daemon.get_set("real/mem")
            assert wait_for(lambda: mset.dgn > 0)
            with open("/proc/meminfo") as f:
                for line in f:
                    if line.startswith("MemTotal:"):
                        actual = int(line.split()[1])
                        break
            assert mset.get("MemTotal") == actual
        finally:
            daemon.shutdown()
