"""Tests for the figure-data exporters."""

import numpy as np
import pytest

from repro.analysis.figdata import (
    write_histograms,
    write_job_profile,
    write_node_time_grid,
    write_torus_snapshot,
)
from repro.util.stats import Histogram


class TestHistogramExport:
    def test_rows_and_header(self, tmp_path):
        h1 = Histogram.from_samples([100.0, 100.0, 300.0], 95, 500, nbins=10)
        h2 = Histogram.from_samples([100.0], 95, 500, nbins=10)
        path = tmp_path / "fig5.csv"
        n = write_histograms(str(path), {"NM": h1, "HM": h2})
        lines = path.read_text().splitlines()
        assert lines[0] == "bin_center_us,NM,HM"
        assert len(lines) == n + 1
        # Total counts are preserved in the export.
        total_nm = sum(int(l.split(",")[1]) for l in lines[1:])
        assert total_nm == h1.total

    def test_mismatched_bins_rejected(self, tmp_path):
        h1 = Histogram.from_samples([1.0], 0, 10, nbins=5)
        h2 = Histogram.from_samples([1.0], 0, 10, nbins=7)
        with pytest.raises(ValueError):
            write_histograms(str(tmp_path / "x.csv"), {"a": h1, "b": h2})


class TestGridExport:
    def test_threshold_applied(self, tmp_path):
        times = np.array([60.0, 120.0])
        grid = np.array([[0.5, 30.0], [2.0, np.nan]])
        path = tmp_path / "fig9.csv"
        n = write_node_time_grid(str(path), times, grid, threshold=1.0,
                                 value_name="stall_pct")
        assert n == 2  # 30.0 and 2.0 survive
        text = path.read_text()
        assert "time_s,node,stall_pct" in text
        assert "60.0,1,30.000" in text
        assert "120.0,0,2.000" in text

    def test_full_experiment_roundtrip(self, tmp_path):
        from repro.network.torus import GeminiTorus
        from repro.sim.fleet import HsnFleetTrace

        torus = GeminiTorus(dims=(4, 4, 4))
        tr = HsnFleetTrace(torus, sample_interval=60.0)
        tr.add_flow_window(0.0, 300.0, 0, 32, 5e9)
        res = tr.run(300.0, directions=("X+",))
        n = write_node_time_grid(str(tmp_path / "grid.csv"), res.times,
                                 res.node_view("X+"))
        assert n > 0


class TestSnapshotExport:
    def test_rows(self, tmp_path):
        coords = np.array([[0, 0, 0], [1, 2, 3]])
        values = np.array([0.2, 55.0])
        n = write_torus_snapshot(str(tmp_path / "snap.csv"), coords, values)
        assert n == 1
        assert "1,2,3,55.000" in (tmp_path / "snap.csv").read_text()


class TestProfileExport:
    def test_fig12_export(self, tmp_path):
        from repro.experiments.fig12_oom_profile import run

        res = run(job_nodes=8, machine_nodes=10, interval=10.0)
        path = tmp_path / "fig12.csv"
        n = write_job_profile(str(path), res.profile)
        assert n > 0
        lines = path.read_text().splitlines()
        assert lines[0] == "time_s,node,value,in_job"
        in_job_flags = {line.rsplit(",", 1)[1] for line in lines[1:]}
        assert in_job_flags == {"0", "1"}  # both margins and job window
