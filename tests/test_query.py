"""The query/serving tier: wire codec, engine cache paths, feature
gate, end-to-end DES round-trips (arena on/off), and replay."""

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv, wire
from repro.core.store import StoreRecord
from repro.obs.registry import Telemetry
from repro.obs.selfmetrics import SELF_METRIC_NAMES, collect
from repro.plugins.stores.sos import SosReader, SosStore, rollup_schema
from repro.query.clients import ClientMix, Poller, build_population
from repro.query.engine import QueryEngine
from repro.sim.engine import Engine
from repro.transport.base import BASE_FEATURES, Endpoint
from repro.transport.simfabric import SimFabric, SimTransport
from repro.util.errors import ConfigError


def rec(t=1.0, comp=1, values=(10.0, 20.0), schema="mem"):
    return StoreRecord(t, "n0", f"n0/{schema}", schema, ("a", "b"),
                       (comp, comp), tuple(values))


class TestQueryWire:
    def test_req_roundtrip(self):
        payload = wire.pack_query_req("meminfo", 12.5, 90.0, level=60,
                                      comp_id=7, max_records=100)
        assert wire.unpack_query_req(payload) == (
            "meminfo", 12.5, 90.0, 60, 7, 100)

    def test_req_defaults(self):
        payload = wire.pack_query_req("s", 0.0, 1.0)
        assert wire.unpack_query_req(payload) == ("s", 0.0, 1.0, 0, 0, 0)

    def test_reply_roundtrip(self):
        rows = [(1.0, 3, (1.5, 2.5)), (2.0, 4, (3.0, 4.0))]
        payload = wire.pack_query_reply(
            wire.E_OK, ("a", "b"), rows,
            flags=wire.QUERY_TRUNCATED | wire.QUERY_CACHE_HIT)
        status, flags, names, out = wire.unpack_query_reply(payload)
        assert status == wire.E_OK
        assert flags == wire.QUERY_TRUNCATED | wire.QUERY_CACHE_HIT
        assert names == ("a", "b")
        assert out == rows

    def test_reply_empty(self):
        status, flags, names, rows = wire.unpack_query_reply(
            wire.pack_query_reply(wire.E_NOENT))
        assert status == wire.E_NOENT
        assert flags == 0
        assert names == ()
        assert rows == []

    def test_msg_types_survive_flag_mask(self):
        # QUERY frames must round-trip through encode/decode like every
        # other MsgType (the high bit carries TRACE_FLAG).
        for mt in (wire.MsgType.QUERY_REQ, wire.MsgType.QUERY_REPLY):
            frame = wire.decode_frame(wire.encode_frame(mt, 42, b"x"))
            assert frame.msg_type == mt
            assert frame.request_id == 42


class TestQueryEngine:
    def _engine(self, tmp_path, **kw):
        store = SosStore()
        store.config(path=str(tmp_path), rollups="10")
        kw.setdefault("hot_window", 30.0)
        return store, QueryEngine(store, lambda: 0.0, **kw)

    def test_hot_window_serves_recent_data(self, tmp_path):
        store, eng = self._engine(tmp_path)
        for k in range(5):
            store.submit(rec(t=float(k), values=(k, k)))
        res = eng.query("mem", 0.0, 10.0)
        assert res.source == "hot"
        assert res.cache_hit
        assert [r[0] for r in res.rows] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert res.names == ("a", "b")
        store.close()

    def test_scan_then_lru_then_invalidation(self, tmp_path):
        store, eng = self._engine(tmp_path)
        for k in range(100):  # hot window 30: floor rises past t=0
            store.submit(rec(t=float(k)))
        res = eng.query("mem", 0.0, 20.0)
        assert res.source == "scan"
        assert not res.cache_hit
        assert len(res.rows) == 20
        # identical repeat: the LRU result cache answers
        res2 = eng.query("mem", 0.0, 20.0)
        assert res2.source == "lru"
        assert res2.cache_hit
        assert res2.rows == res.rows
        # any append bumps the container version: entry invalid
        store.submit(rec(t=100.0))
        res3 = eng.query("mem", 0.0, 20.0)
        assert res3.source == "scan"
        assert res3.rows == res.rows
        store.close()

    def test_hot_floor_guards_unseen_rows(self, tmp_path):
        # A window reaching below what the hot deque covers must scan,
        # even though some of its rows sit in the deque.
        store, eng = self._engine(tmp_path)
        for k in range(100):
            store.submit(rec(t=float(k)))
        res = eng.query("mem", 0.0, 100.0)
        assert res.source == "scan"
        assert len(res.rows) == 100
        store.close()

    def test_preexisting_container_never_hot_served(self, tmp_path):
        # Rows written before this session opened the container were
        # never ingested into the hot window — it must not answer.
        s1 = SosStore()
        s1.config(path=str(tmp_path))
        s1.submit(rec(t=1.0))
        s1.close()
        store = SosStore()
        store.config(path=str(tmp_path))
        eng = QueryEngine(store, lambda: 0.0, hot_window=30.0)
        store.submit(rec(t=2.0))
        res = eng.query("mem", 0.0, 10.0)
        assert res.source == "scan"
        assert [r[0] for r in res.rows] == [1.0, 2.0]
        store.close()

    def test_rollup_redirection(self, tmp_path):
        store, eng = self._engine(tmp_path)
        for k in range(25):  # seals rollup buckets [0,10) and [10,20)
            store.submit(rec(t=float(k), values=(k, 0)))
        res = eng.query("mem", 0.0, 100.0, level=10)
        assert res.status == wire.E_OK
        assert [r[0] for r in res.rows] == [0.0, 10.0]
        assert res.rows[0][2][0] == 4.5  # mean of 0..9
        store.close()

    def test_truncation_flag(self, tmp_path):
        store, eng = self._engine(tmp_path)
        for k in range(10):
            store.submit(rec(t=float(k)))
        res = eng.query("mem", 0.0, 10.0, max_records=3)
        assert res.truncated
        assert len(res.rows) == 3
        assert res.flags() & wire.QUERY_TRUNCATED
        store.close()

    def test_component_filter(self, tmp_path):
        store, eng = self._engine(tmp_path)
        for k in range(6):
            store.submit(rec(t=float(k), comp=1 + k % 2))
        res = eng.query("mem", 0.0, 10.0, comp_id=2)
        assert [r[1] for r in res.rows] == [2, 2, 2]
        store.close()

    def test_missing_container_is_noent(self, tmp_path):
        store, eng = self._engine(tmp_path)
        res = eng.query("nope", 0.0, 1.0)
        assert res.status == wire.E_NOENT
        assert res.source == "noent"
        store.close()

    def test_counters_and_stats(self, tmp_path):
        obs = Telemetry(enabled=True)
        store = SosStore()
        store.config(path=str(tmp_path))
        eng = QueryEngine(store, lambda: 0.0, obs=obs, hot_window=30.0)
        store.submit(rec(t=1.0))
        eng.query("mem", 0.0, 10.0)   # hot hit
        eng.query("nope", 0.0, 1.0)   # miss (noent)
        st = eng.stats()
        assert st["requests"] == 2
        assert st["cache_hits"] == 1
        assert st["cache_misses"] == 1
        assert st["rows_served"] == 1
        store.close()


class TestFeatureGate:
    def test_base_features_advertise_query(self):
        assert "query" in BASE_FEATURES

    def test_negotiate_sets_query_ok(self):
        ep = Endpoint()
        assert not ep.query_ok  # nothing assumed before the peer's HELLO
        ep._negotiate(frozenset({"trace-ctx"}))  # old build
        assert not ep.query_ok
        ep._negotiate(frozenset({"trace-ctx", "query"}))
        assert ep.query_ok

    def test_client_skips_peer_without_feature(self):
        class OldEp:
            closed = False
            query_ok = False

        p = Poller("p0", None, None, None, "mem",
                   Telemetry(enabled=False), interval=1.0)
        p.ep = OldEp()
        p._tick()
        assert p.skipped_nofeature == 1
        assert p.sent == 0


def _sos_world(tmp, arena, rollups="10", n=4, duration=30.0,
               enable_query=False, mix=None):
    """Small DES fan-in whose aggregator stores to SOS; optionally the
    full serving tier with a client population on top."""
    eng = Engine()
    env = SimEnv(eng, arena=arena)
    fabric = SimFabric(eng)
    for i in range(n):
        x = SimTransport(fabric, "sock", node_id=i)
        d = Ldmsd(f"n{i}", env=env, transports={"sock": x}, mem="8kB")
        d.load_sampler("synthetic", instance=f"n{i}/syn",
                       component_id=i + 1, num_metrics=4)
        d.start_sampler(f"n{i}/syn", interval=1.0)
        d.listen("sock", f"n{i}:411")
    agg = Ldmsd("agg", env=env,
                transports={"sock": SimTransport(fabric, "sock",
                                                 node_id="agg")})
    store = agg.add_store("sos", path=tmp, rollups=rollups)
    for i in range(n):
        agg.add_producer(f"n{i}", "sock", f"n{i}:411", interval=1.0,
                         sets=(f"n{i}/syn",))
    clients = []
    if enable_query:
        agg.enable_query(hot_window=15.0)
    if mix is not None:
        agg.listen("sock", "agg:412")
        telemetry = Telemetry(enabled=True)
        clients = build_population(
            env, lambda i: SimTransport(fabric, "sock",
                                        node_id=f"client{i}"),
            "agg:412", "synthetic", mix, telemetry)
        for c in clients:
            c.start()
    eng.run(until=duration)
    return agg, store, clients


class TestDesRoundTrip:
    """Satellite: records written through a real DES run read back
    correctly, identically with the set arena on and off."""

    def _records(self, tmp_path, arena):
        path = tmp_path / f"arena_{arena}"
        path.mkdir()
        agg, store, _ = _sos_world(str(path), arena)
        agg.shutdown()
        reader = SosReader(str(path), "synthetic")
        return reader, [(r.timestamp, r.component_id, r.values)
                        for r in reader]

    def test_arena_on_off_identical_and_boundaries(self, tmp_path):
        out = {}
        for arena in (True, False):
            reader, records = self._records(tmp_path, arena)
            assert records, "DES run stored nothing"
            out[arena] = records

            times = sorted({t for t, _, _ in records})
            t0, t1 = times[2], times[-2]
            rng = reader.range(t0, t1)
            # [t0, t1): closed at t0, open at t1
            assert any(r.timestamp == t0 for r in rng)
            assert all(t0 <= r.timestamp < t1 for r in rng)
            assert not any(r.timestamp == t1 for r in rng)
            # range agrees with filtering the full iteration
            expect = [(t, c, v) for t, c, v in records if t0 <= t < t1]
            assert [(r.timestamp, r.component_id, r.values)
                    for r in rng] == expect
        assert out[True] == out[False]

    def test_rollup_containers_match_across_arena(self, tmp_path):
        out = {}
        for arena in (True, False):
            path = tmp_path / f"roll_{arena}"
            path.mkdir()
            agg, store, _ = _sos_world(str(path), arena)
            agg.shutdown()
            rolled = list(SosReader(str(path),
                                    rollup_schema("synthetic", 10)))
            assert rolled
            out[arena] = rolled
        assert out[True] == out[False]


class TestServeEndToEnd:
    def test_population_served_and_selfmetrics(self, tmp_path):
        mix = ClientMix(pollers=2, evaluators=1, scanners=1,
                        eval_level=10, scan_level=10, scan_span=20.0)
        agg, store, clients = _sos_world(
            str(tmp_path), arena=False, duration=40.0,
            enable_query=True, mix=mix)
        assert sum(c.sent for c in clients) > 0
        assert sum(c.replies for c in clients) > 0
        assert sum(c.skipped_nofeature for c in clients) == 0
        assert sum(c.cache_hits_seen for c in clients) > 0
        assert sum(c.rows_received for c in clients) > 0

        qs = agg.stats()["query"]
        assert qs["requests"] >= sum(c.replies for c in clients)
        assert qs["rows_served"] >= sum(c.rows_received for c in clients)

        row = dict(zip(SELF_METRIC_NAMES, collect(agg)))
        assert row["query_requests"] == qs["requests"]
        assert row["query_cache_hits"] == qs["cache_hits"]
        assert row["store_multi_component_rejected"] == 0
        agg.shutdown()

    def test_daemon_without_engine_replies_noent(self, tmp_path):
        mix = ClientMix(pollers=1, evaluators=0, scanners=0)
        agg, store, clients = _sos_world(
            str(tmp_path), arena=False, duration=10.0,
            enable_query=False, mix=mix)
        (c,) = clients
        assert c.replies > 0
        assert c.errors == c.replies  # every reply was E_NOENT
        agg.shutdown()

    def test_enable_query_requires_sos_store(self, tmp_path):
        eng = Engine()
        env = SimEnv(eng)
        fabric = SimFabric(eng)
        d = Ldmsd("agg", env=env,
                  transports={"sock": SimTransport(fabric, "sock",
                                                   node_id="agg")})
        with pytest.raises(ConfigError):
            d.enable_query()
        d.shutdown()


class TestQueryLoadReplay:
    def test_same_seed_identical(self):
        from repro.experiments.query_load import run_query_load

        mix = ClientMix(pollers=2, evaluators=1, scanners=1)
        runs = [run_query_load(n_samplers=2, n_metrics=2, duration=25.0,
                               mix=mix) for _ in range(2)]
        assert runs[0].key() == runs[1].key()
        assert runs[0].query_requests > 0
        assert runs[0].poller.replies > 0


class TestQueryCli:
    def _container(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path), rollups="10")
        for k in range(20):
            s.submit(rec(t=float(k), values=(k, 2 * k)))
        s.close()

    def test_offline_range(self, tmp_path, capsys):
        from repro.cli.query_cli import main

        self._container(tmp_path)
        assert main(["--path", str(tmp_path), "--schema", "mem",
                     "--t0", "5", "--t1", "8"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "Time,CompId,a,b"
        assert lines[1] == "5.000000,1,5,10"
        assert len(lines) == 4

    def test_offline_rollup_level(self, tmp_path, capsys):
        from repro.cli.query_cli import main

        self._container(tmp_path)
        assert main(["--path", str(tmp_path), "--schema", "mem",
                     "--level", "10", "--t0", "0", "--t1", "100"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[1].startswith("0.000000,1,4.5,")

    def test_offline_missing_container(self, tmp_path, capsys):
        from repro.cli.query_cli import main

        assert main(["--path", str(tmp_path), "--schema", "nope",
                     "--t0", "0", "--t1", "1"]) == 1


class TestSelfMetricsSchema:
    def test_names_and_row_stay_aligned(self, tmp_path):
        agg, store, _ = _sos_world(str(tmp_path), arena=False,
                                   duration=5.0, enable_query=True)
        row = collect(agg)
        assert len(row) == len(SELF_METRIC_NAMES)
        assert "query_requests" in SELF_METRIC_NAMES
        agg.shutdown()
