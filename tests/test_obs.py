"""Tests for the self-instrumentation layer (repro.obs).

Registry semantics, histogram bucket/quantile math, pipeline-trace
propagation through a simulated update transaction, and the
``ldmsd_self`` sampler collected end-to-end over the simulated
transport into a CSV store.
"""

import json

import pytest

import repro.plugins  # noqa: F401
from repro import obs
from repro.core import Ldmsd, SimEnv
from repro.obs.registry import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from repro.obs.trace import TRACE_STATUSES, PipelineTrace, Tracer
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge(self):
        g = Gauge("x")
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5

    def test_default_edges_are_a_125_ladder(self):
        assert DEFAULT_LATENCY_EDGES[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_EDGES[-1] == pytest.approx(100.0)
        assert len(DEFAULT_LATENCY_EDGES) == 25
        # strictly increasing, mantissas cycle 1-2-5
        assert all(b > a for a, b in zip(DEFAULT_LATENCY_EDGES,
                                         DEFAULT_LATENCY_EDGES[1:]))

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=())


class TestHistogram:
    def test_bucket_edges_half_open(self):
        # searchsorted(side="right"): bucket i holds [edge[i-1], edge[i]).
        h = Histogram("h", edges=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.9, 2.0, 5.0, 100.0):
            h.observe(v)
        assert h.count == 6  # property read folds the staging list
        assert h.buckets == [1, 2, 1, 2]

    def test_exact_count_sum_min_max_mean(self):
        h = Histogram("h")
        for v in (1e-5, 3e-5, 2e-4):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(2.4e-4)
        assert h.min == pytest.approx(1e-5)
        assert h.max == pytest.approx(2e-4)
        assert h.mean == pytest.approx(8e-5)

    def test_deferred_fold_is_transparent(self):
        # Values sit in the staging list until a read or the fold
        # threshold; every surface must see them regardless.
        h = Histogram("h")
        for _ in range(Histogram._FOLD_AT - 1):
            h.observe(1e-3)
        assert h._count == 0          # not folded yet
        assert h.count == Histogram._FOLD_AT - 1   # lazy fold on read
        h.observe(1e-3)               # refill staging...
        for _ in range(Histogram._FOLD_AT - 1):
            h.observe(1e-3)
        assert h._count == 2 * Histogram._FOLD_AT - 1  # auto-fold hit

    def test_single_sample_quantiles_clamp(self):
        h = Histogram("h")
        h.observe(3.3e-4)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.3e-4)

    def test_quantile_interpolation(self):
        h = Histogram("h", edges=tuple(float(i) for i in range(1, 11)))
        for i in range(1000):
            h.observe(i / 100.0)  # uniform over [0, 10)
        assert h.quantile(0.5) == pytest.approx(5.0, abs=1.0)
        assert h.quantile(0.95) == pytest.approx(9.5, abs=1.0)

    def test_quantile_out_of_range_rejected(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_summary_is_zeroed(self):
        s = Histogram("h").summary()
        assert s == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                     "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_dump_includes_buckets(self):
        h = Histogram("h", edges=(1.0, 2.0))
        h.observe(1.5)
        d = h.dump()
        assert d["edges"] == [1.0, 2.0]
        assert d["buckets"] == [0, 1, 0]
        assert d["count"] == 1


class TestTelemetry:
    def test_instruments_cached_by_name(self):
        t = Telemetry()
        assert t.counter("a") is t.counter("a")
        assert t.gauge("g") is t.gauge("g")
        assert t.histogram("h") is t.histogram("h")

    def test_disabled_returns_shared_null(self):
        t = Telemetry(enabled=False)
        c = t.counter("a")
        assert c is t.gauge("g") is t.histogram("h")
        # every call is a no-op and every read is a zero
        c.inc()
        c.set(5.0)
        c.observe(1.0)
        assert c.value == 0 and c.count == 0
        assert c.quantile(0.5) == 0.0
        assert c.summary()["count"] == 0
        assert t.snapshot() == {"enabled": False, "counters": {},
                                "gauges": {}, "histograms": {}}

    def test_snapshot_shape_and_serializable(self):
        t = Telemetry()
        t.counter("c").inc(3)
        t.gauge("g").set(1.5)
        t.histogram("h").observe(2e-4)
        snap = json.loads(json.dumps(t.snapshot()))
        assert snap["enabled"] is True
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_dump_histograms(self):
        t = Telemetry()
        t.histogram("h").observe(2e-4)
        dumps = t.dump_histograms()
        assert set(dumps) == {"h"}
        assert len(dumps["h"]["buckets"]) == len(dumps["h"]["edges"]) + 1


class TestTracer:
    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            Tracer(lambda: 0.0, sample_every=0)

    def test_disabled_allocates_nothing(self):
        tr = Tracer(lambda: 0.0, enabled=False)
        assert tr.start("p", "s") is None
        tr.finish(None, "stored")  # no-op, no error
        assert tr.last() == []

    def test_exemplar_sampling(self):
        tr = Tracer(lambda: 0.0, sample_every=4)
        got = [tr.start("p", "s") for _ in range(9)]
        # first always sampled, then 1-in-4: ids 1, 5, 9
        sampled = [t for t in got if t is not None]
        assert [t.trace_id for t in sampled] == [1, 5, 9]

    def test_every_transaction_consumes_an_id(self):
        tr = Tracer(lambda: 0.0, sample_every=16)
        for _ in range(20):
            tr.start("p", "s")
        assert tr._next_id == 21

    def test_lazy_stage_slots_read_none(self):
        t = PipelineTrace(1, "p", "s", 0.5)
        assert t.t_fetched is None and t.status is None
        assert t.as_dict()["t_issue"] == 0.5
        with pytest.raises(AttributeError):
            t.not_a_slot

    def test_finish_validates_status(self):
        tr = Tracer(lambda: 1.0, sample_every=1)
        t = tr.start("p", "s")
        with pytest.raises(ValueError):
            tr.finish(t, "exploded")
        tr.finish(t, "stored")
        assert tr.last() == [t]
        assert tr.last("stored") == [t]
        assert tr.last("stale") == []

    def test_ring_bounded(self):
        tr = Tracer(lambda: 0.0, ring=4, sample_every=1)
        for _ in range(10):
            tr.finish(tr.start("p", "s"), "stored")
        assert len(tr.last()) == 4


def _world(obs_enabled=True):
    eng = Engine()
    env = SimEnv(eng)
    fabric = SimFabric(eng)
    samp = Ldmsd("s0", env=env, obs_enabled=obs_enabled,
                 transports={"rdma": SimTransport(fabric, "rdma",
                                                  node_id="s0")})
    agg = Ldmsd("agg", env=env, obs_enabled=obs_enabled,
                transports={"rdma": SimTransport(fabric, "rdma",
                                                 node_id="agg")})
    return eng, samp, agg


class TestTracePropagation:
    def test_trace_walks_every_stage_in_order(self):
        eng, samp, agg = _world()
        agg.tracer.sample_every = 1  # retain every transaction
        samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                          num_metrics=4)
        samp.start_sampler("s0/syn", interval=0.5)
        samp.listen("rdma", "s0:411")
        agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=0.5,
                         sets=("s0/syn",))
        eng.run(until=10.0)
        stored = agg.tracer.last("stored")
        assert stored
        for t in stored:
            assert t.producer == "s0" and t.set_name == "s0/syn"
            assert (t.t_issue <= t.t_fetched <= t.t_validated
                    <= t.t_store_submit <= t.t_store_done)
            # end-to-end latency anchored at the sampler's transaction
            assert 0 < t.sample_ts <= t.t_store_submit
            assert t.status in TRACE_STATUSES
        ids = [t.trace_id for t in agg.tracer.last()]
        assert ids == sorted(set(ids))

    def test_stale_pulls_traced_without_store_stages(self):
        eng, samp, agg = _world()
        agg.tracer.sample_every = 1
        samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                          num_metrics=4)
        samp.start_sampler("s0/syn", interval=2.0)  # slow sampler
        samp.listen("rdma", "s0:411")
        agg.add_producer("s0", "rdma", "s0:411", interval=0.25,
                         sets=("s0/syn",))  # fast puller -> stale pulls
        eng.run(until=10.0)
        stale = agg.tracer.last("stale")
        assert stale
        for t in stale:
            assert t.t_fetched is not None
            assert t.t_store_submit is None and t.t_store_done is None

    def test_update_stats_satellites(self):
        eng, samp, agg = _world()
        samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                          num_metrics=4)
        samp.start_sampler("s0/syn", interval=0.5)
        samp.listen("rdma", "s0:411")
        agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=0.5,
                         sets=("s0/syn",))
        eng.run(until=10.0)
        st = agg.producers["s0"].stats
        assert st.updates_completed > 0
        assert st.last_update_ts > 0
        assert 0 < st.update_time_total < 10.0
        # deep-detached stats: mutating the snapshot touches nothing live
        snap = agg.stats()
        snap["producers"]["s0"]["updates_completed"] = -1
        assert agg.producers["s0"].stats.updates_completed > 0
        assert {"plugin", "records", "failed", "dropped", "bytes_written"} \
            <= set(snap["stores"][0])

    def test_disabled_daemon_still_collects(self):
        eng, samp, agg = _world(obs_enabled=False)
        samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                          num_metrics=4)
        samp.start_sampler("s0/syn", interval=0.5)
        samp.listen("rdma", "s0:411")
        store = agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=0.5,
                         sets=("s0/syn",))
        eng.run(until=10.0)
        assert len(store.rows) > 0
        assert agg.tracer.last() == []
        assert agg.stats()["obs"] == {"enabled": False, "counters": {},
                                      "gauges": {}, "histograms": {}}


class TestLdmsdSelfEndToEnd:
    """Acceptance: an aggregator collects a sampler daemon's
    ``ldmsd_self`` set over the simulated transport into a CSV store."""

    def _run(self, tmp_path):
        eng, samp, agg = _world()
        samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                          num_metrics=8)
        samp.start_sampler("s0/syn", interval=1.0)
        samp.load_sampler("ldmsd_self", instance="s0/self", component_id=1)
        samp.start_sampler("s0/self", interval=1.0)
        samp.listen("rdma", "s0:411")
        agg.add_store("store_csv", path=str(tmp_path), buffer_lines=1)
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0,
                         sets=("s0/syn", "s0/self"))
        eng.run(until=30.0)
        agg.shutdown()
        samp.shutdown()
        return eng, samp, agg

    def test_self_set_stored_as_csv(self, tmp_path):
        self._run(tmp_path)
        csv = tmp_path / f"{obs.SELF_SCHEMA}.csv"
        assert csv.exists()
        lines = csv.read_text().splitlines()
        header = lines[0].split(",")
        assert header[:3] == ["Time", "Producer", "CompId"]
        assert header[3:] == list(obs.SELF_METRIC_NAMES)
        assert len(lines) > 10  # ~one row per second of sim time

    def test_self_metrics_reflect_daemon_activity(self, tmp_path):
        _, samp, _ = self._run(tmp_path)
        mset = samp.get_set("s0/self")
        vals = mset.as_dict()
        # the daemon sampled both sets ~30 times each
        assert vals["samples"] >= 40
        assert vals["sets"] == 2 and vals["plugins"] == 2
        # histogram-derived metrics (µs quantiles + counts) are live
        assert 0 < vals["sample_count"] <= vals["samples"]
        # the health rendering is printable text over the same values
        text = obs.render(vals)
        assert "samples" in text and "p99" in text

    def test_arena_metrics_exported_and_surfaced(self, tmp_path):
        from repro.core.control import ControlChannel
        from repro.core.set_arena import arena_default

        if not arena_default():
            pytest.skip("columnar arena reverted (REPRO_ARENA=0)")
        _, samp, agg = self._run(tmp_path)
        vals = samp.get_set("s0/self").as_dict()
        for name in ("arena_sweeps", "arena_rows_vectorized",
                     "arena_fallback_sets"):
            assert name in vals
        # synthetic rides a (single-member) cohort: ~one sweep and one
        # vectorized row per tick; ldmsd_self is not cohort-eligible
        # and lands on the scalar fallback path.
        assert vals["arena_sweeps"] >= 20
        assert vals["arena_rows_vectorized"] >= vals["arena_sweeps"]
        assert vals["arena_fallback_sets"] >= 1
        # the control verbs surface the same numbers
        ch = ControlChannel(samp)
        stats = json.loads(ch.handle("stats")[2:])
        assert stats["obs"]["counters"]["arena.sweeps"] == vals["arena_sweeps"]
        assert stats["set_pool"]["rows"] >= 2
        prof = json.loads(ch.handle("prof")[2:])
        assert prof["arena"]["sweeps"] == vals["arena_sweeps"]
        assert prof["arena"]["rows_vectorized"] == vals["arena_rows_vectorized"]
        assert prof["arena"]["pool"]["rows"] >= 2

    def test_self_sampler_on_disabled_daemon_reads_zeros(self):
        eng, samp, _ = _world(obs_enabled=False)
        samp.load_sampler("ldmsd_self", instance="s0/self", component_id=1)
        samp.start_sampler("s0/self", interval=1.0)
        eng.run(until=3.0)
        vals = samp.get_set("s0/self").as_dict()
        # structural fields stay live; telemetry-derived ones read zero
        assert vals["sets"] == 1 and vals["samples"] > 0
        for name, v in vals.items():
            if "_us_" in name or name.endswith("_count"):
                assert v == 0, name
