"""Tests for the fleet fast path, including DES cross-validation.

DESIGN.md promises: "Fidelity cross-checks between the two paths are
part of the test suite."  ``test_fleet_matches_des_pipeline`` runs the
same steady workload through (a) the real daemon pipeline in the DES
and (b) the vectorised fleet path, and requires the derived
percent-stalled values to agree.
"""

import numpy as np
import pytest

import repro.plugins  # noqa: F401
from repro.cluster import JobSpec, Scheduler, blue_waters
from repro.network.torus import GeminiTorus
from repro.sim.fleet import HsnFleetTrace, RateFleet
from repro.util.errors import SimulationError
from repro.util.rngtools import spawn_rng


class TestHsnFleetTrace:
    def _torus(self):
        return GeminiTorus(dims=(4, 4, 4))

    def test_shapes(self):
        tr = HsnFleetTrace(self._torus(), sample_interval=60.0)
        tr.add_flow_window(0.0, 1800.0, 0, 10, 1e9)
        res = tr.run(3600.0, directions=("X+",))
        assert res.stall_pct["X+"].shape == (60, 64)
        assert res.times[-1] == 3600.0

    def test_flow_window_respected(self):
        tr = HsnFleetTrace(self._torus(), sample_interval=60.0)
        tr.add_flow_window(600.0, 1200.0, 0, 32, 5e9)  # gemini (0,0,0)->(1,0,0): X+ hops
        res = tr.run(1800.0, directions=("X+",))
        grid = res.stall_pct["X+"]
        assert grid[:9].max() == 0.0  # before the window
        assert grid[11:19].max() > 0.0  # inside
        assert grid[21:].max() == 0.0  # after

    def test_partial_interval_weighting(self):
        """A flow active for half a sample interval contributes half."""
        tr = HsnFleetTrace(self._torus(), sample_interval=60.0)
        tr.add_flow_window(0.0, 30.0, 0, 32, 5e9)
        tr2 = HsnFleetTrace(self._torus(), sample_interval=60.0)
        tr2.add_flow_window(0.0, 60.0, 0, 32, 5e9)
        half = tr.run(60.0, ("X+",)).stall_pct["X+"][0].max()
        full = tr2.run(60.0, ("X+",)).stall_pct["X+"][0].max()
        assert half == pytest.approx(full / 2, rel=0.01)

    def test_bad_window_rejected(self):
        tr = HsnFleetTrace(self._torus())
        with pytest.raises(SimulationError):
            tr.add_flow_window(10.0, 5.0, 0, 1, 1e9)

    def test_node_view_doubles_rows(self):
        tr = HsnFleetTrace(self._torus(), sample_interval=60.0)
        tr.add_flow_window(0.0, 60.0, 0, 32, 1e9)
        res = tr.run(60.0, ("X+",))
        nv = res.node_view("X+")
        assert nv.shape == (1, 128)
        assert (nv[:, 0] == nv[:, 1]).all()  # nodes share a Gemini

    def test_argmax_and_snapshot(self):
        tr = HsnFleetTrace(self._torus(), sample_interval=60.0)
        tr.add_flow_window(0.0, 120.0, 0, 32, 8e9)
        res = tr.run(300.0, ("X+",))
        t_i, g_i, v = res.argmax("X+")
        coords, values = res.snapshot("X+", t_i)
        assert values[g_i] == pytest.approx(v, rel=1e-5)
        assert coords.shape == (64, 3)

    def test_ring_job_pattern(self):
        tr = HsnFleetTrace(self._torus(), sample_interval=60.0)
        tr.add_job(0.0, 60.0, np.arange(8), 1e9, pattern="ring")
        res = tr.run(60.0, ("X+", "Y+"))
        total = res.stall_pct["X+"].sum() + res.stall_pct["Y+"].sum()
        assert total >= 0  # and it ran; routing covered in network tests

    def test_unknown_pattern_rejected(self):
        tr = HsnFleetTrace(self._torus())
        with pytest.raises(SimulationError):
            tr.add_job(0, 1, np.arange(4), 1e9, pattern="starburst")


class TestRateFleet:
    def test_base_rate_everywhere(self):
        rf = RateFleet(8, sample_interval=60.0, seed=1, jitter=0.0)
        rf.base_rate = 2.0
        times, deltas = rf.run(300.0)
        assert deltas.shape == (5, 8)
        assert np.allclose(deltas, 120.0)

    def test_window_adds_rate(self):
        rf = RateFleet(8, sample_interval=60.0, seed=1, jitter=0.0)
        rf.add_rate_window(60.0, 180.0, [2, 3], 1.0)
        _, deltas = rf.run(300.0)
        assert deltas[0].sum() == 0.0
        assert deltas[1, 2] == pytest.approx(60.0)
        assert deltas[1, 0] == 0.0
        assert deltas[4].sum() == 0.0

    def test_partial_overlap_scaled(self):
        rf = RateFleet(2, sample_interval=60.0, seed=1, jitter=0.0)
        rf.add_rate_window(30.0, 60.0, [0], 2.0)  # half an interval
        _, deltas = rf.run(60.0)
        assert deltas[0, 0] == pytest.approx(60.0)  # 2/s x 30s

    def test_deltas_never_negative(self):
        rf = RateFleet(16, sample_interval=60.0, seed=2, jitter=0.5)
        rf.base_rate = 0.1
        _, deltas = rf.run(3600.0)
        assert (deltas >= 0).all()

    def test_bad_window_rejected(self):
        with pytest.raises(SimulationError):
            RateFleet(4).add_rate_window(5.0, 5.0, [0], 1.0)


class TestFleetVsDes:
    def test_fleet_matches_des_pipeline(self):
        """The fleet fast path and the full daemon pipeline agree on
        derived percent-stalled for the same steady workload."""
        # --- DES: real daemons sampling gpcdr over simulated RDMA ------
        m = blue_waters(n_nodes=16, seed=3)
        dep = m.deploy_ldms(interval=5.0, fanin=8, second_level=False,
                            xprt="ugni")
        sched = Scheduler(m)
        sched.submit(JobSpec("steady", n_nodes=8, duration=120.0,
                             net_bps_per_node=3e9))
        m.run(until=100.0)
        store = dep.stores[0]
        des_vals = {}
        for d in ("X+", "Y+", "Z+"):
            per_gem = []
            for n in range(8):
                ts, vs = store.series(f"percent_stalled_{d}",
                                      set_name=f"n{n}/bw_custom")
                if len(vs) > 4:
                    per_gem.append(float(np.median(vs[2:])))
            des_vals[d] = per_gem

        # --- fleet: same flows through the analytic path ----------------
        trace = HsnFleetTrace(m.network, sample_interval=5.0)
        nodes = np.arange(8)
        trace.add_job(0.0, 120.0, nodes, 3e9, pattern="ring")
        res = trace.run(100.0, directions=("X+", "Y+", "Z+"))

        for d in ("X+", "Y+", "Z+"):
            grid = res.stall_pct[d]
            fleet_busy = sorted(v for v in grid[-1] if v > 0.5)
            des_busy = sorted(v for v in des_vals[d] if v > 0.5)
            # The sets of per-link stall levels match within 5%.
            for fv, dv in zip(fleet_busy, des_busy):
                assert dv == pytest.approx(fv, rel=0.05)
        dep.shutdown()
