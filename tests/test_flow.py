"""Tests for the whole-program flow analyzer (repro.analysis.flow).

Coverage follows the analyzer's layers: module summary extraction,
call-graph resolution + effect propagation (via ``analyze_sources``),
wire-protocol conformance, the digest-guarded summary cache, the
``repro-flow`` CLI against the deliberately-broken fixture projects
under ``tests/flow_fixtures/``, and a self-host pass asserting the
shipped tree is clean under the repo's own ``pyproject.toml``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow import (
    EFFECTS,
    FlowConfig,
    SummaryStore,
    analyze,
    analyze_sources,
    effect_of,
    extract_module,
)
from repro.analysis.flow.cli import main as flow_main
from repro.analysis.flow.config import FlowConfigError
from repro.analysis.flow.report import FLOW_RULE_IDS

FIXTURES = Path(__file__).parent / "flow_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def des_config(**overrides) -> FlowConfig:
    """A config scoped to a synthetic DES-pure package ``p``."""
    base = dict(
        des_pure_packages=("p",),
        boundary_modules=(),
        ordered_packages=("p",),
        wire_modules=(),
        transport_modules=(),
        dispatch_roots=(),
    )
    base.update(overrides)
    return FlowConfig(**base)


def rule_ids(report):
    return [v.rule_id for v in report.violations if not v.suppressed]


class TestCatalog:
    def test_lattice_atoms(self):
        assert len(EFFECTS) == 6
        assert "wall_clock" in EFFECTS and "allocates" in EFFECTS

    def test_effect_of_known_calls(self):
        assert effect_of("time.time") == "wall_clock"
        assert effect_of("time.sleep") == "blocking_io"
        assert effect_of("os.urandom") == "ambient_rng"
        assert effect_of("random.random") == "ambient_rng"
        assert effect_of("os.listdir") == "unordered_iteration"

    def test_seeded_numpy_generator_is_sanctioned(self):
        # default_rng(seed) is the reproducible path; ambient module-level
        # numpy.random.* is not.
        assert effect_of("numpy.random.default_rng") is None
        assert effect_of("numpy.random.shuffle") == "ambient_rng"

    def test_unknown_is_none(self):
        assert effect_of("math.sqrt") is None


class TestSummaryExtraction:
    def test_import_alias_expansion(self):
        src = "import numpy as np\n\ndef f(x):\n    np.random.shuffle(x)\n"
        summary = extract_module(src, "m", "<m>")
        names = [c.name for c in summary.functions["f"].calls]
        assert "numpy.random.shuffle" in names

    def test_set_iteration_flagged_and_sorted_sanctioned(self):
        src = textwrap.dedent(
            """
            def bad(s: set):
                out = []
                for x in s:
                    out.append(x)
                return out

            def good(s: set):
                out = []
                for x in sorted(s):
                    out.append(x)
                return out
            """
        )
        summary = extract_module(src, "m", "<m>")
        bad = [e for e in summary.functions["bad"].effects
               if e.effect == "unordered_iteration"]
        good = [e for e in summary.functions["good"].effects
                if e.effect == "unordered_iteration"]
        assert bad and not good

    def test_setcomp_order_free_but_listcomp_flagged(self):
        src = textwrap.dedent(
            """
            def shrink(s: set):
                return {x for x in s if x}

            def leak(s: set):
                return [x for x in s if x]
            """
        )
        summary = extract_module(src, "m", "<m>")
        assert not [e for e in summary.functions["shrink"].effects
                    if e.effect == "unordered_iteration"]
        assert [e for e in summary.functions["leak"].effects
                if e.effect == "unordered_iteration"]

    def test_getattr_prefix_dispatch_recorded(self):
        src = textwrap.dedent(
            """
            class Control:
                def handle(self, verb, arg):
                    fn = getattr(self, f"_cmd_{verb}")
                    return fn(arg)

                def _cmd_start(self, arg):
                    return arg
            """
        )
        summary = extract_module(src, "m", "<m>")
        assert ["handle", "_cmd_"] in [
            list(p) for p in summary.classes["Control"].prefix_dispatch
        ]

    def test_summary_json_round_trip(self):
        src = "import time\n\nclass C:\n    def m(self):\n        return time.time()\n"
        summary = extract_module(src, "m", "<m>")
        clone = type(summary).from_obj(summary.to_obj())
        assert clone.to_obj() == summary.to_obj()

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            extract_module("def f(:\n", "m", "<m>")


class TestPropagation:
    def test_transitive_chain_across_modules(self):
        report = analyze_sources(
            {
                "p": "",
                "p.engine": "from p import helper\n\ndef tick():\n    return helper.stamp()\n",
                "p.helper": "import ext\n\ndef stamp():\n    return ext.wallclock()\n",
                "ext": "import time\n\ndef wallclock():\n    return time.time()\n",
            },
            des_config(),
        )
        purity = [v for v in report.violations if v.rule_id == "flow-des-purity"]
        assert len(purity) == 1
        v = purity[0]
        assert "p.helper.stamp" in v.message and "wall_clock" in v.message
        # the chain walks out of the DES scope down to the clock read
        assert any("ext.wallclock" in fr.note for fr in v.chain)
        assert any("time.time" in fr.note for fr in v.chain)

    def test_frontier_only_no_duplicate_per_chain(self):
        # p.a -> p.b -> time.time(): only the frontier function (p.b,
        # which owns the intrinsic site) reports; p.a inherits silently.
        report = analyze_sources(
            {
                "p": "",
                "p.a": "from p import b\n\ndef outer():\n    return b.inner()\n",
                "p.b": "import time\n\ndef inner():\n    return time.time()\n",
            },
            des_config(),
        )
        purity = [v for v in report.violations if v.rule_id == "flow-des-purity"]
        assert len(purity) == 1
        assert "p.b.inner" in purity[0].message

    def test_boundary_module_strips_effects(self):
        report = analyze_sources(
            {
                "p": "",
                "p.engine": "import clockutil\n\ndef now():\n    return clockutil.monotonic()\n",
                "clockutil": "import time\n\ndef monotonic():\n    return time.monotonic()\n",
            },
            des_config(boundary_modules=("clockutil",)),
        )
        assert "flow-des-purity" not in rule_ids(report)

    def test_virtual_dispatch_reaches_override(self):
        # Base.run() calls self.hook(); the subclass override iterates a
        # set, so calling run() from DES-pure code is a violation.
        report = analyze_sources(
            {
                "p": "",
                "p.base": textwrap.dedent(
                    """
                    class Base:
                        def run(self):
                            return self.hook()

                        def hook(self):
                            return 0
                    """
                ),
                "p.sub": textwrap.dedent(
                    """
                    from p.base import Base

                    class Sub(Base):
                        def hook(self):
                            acc = 0
                            for x in self.pending:
                                acc += x
                            return acc

                        def __init__(self):
                            self.pending: set = set()
                    """
                ),
            },
            des_config(),
        )
        purity = [v for v in report.violations if v.rule_id == "flow-des-purity"]
        assert any("Sub.hook" in v.message for v in purity)

    def test_ambient_numpy_flagged_seeded_generator_clean(self):
        report = analyze_sources(
            {
                "p": "",
                "p.bad": "import numpy as np\n\ndef jitter():\n    return np.random.random()\n",
                "p.good": (
                    "import numpy as np\n\n"
                    "def jitter(seed):\n"
                    "    rng = np.random.default_rng(seed)\n"
                    "    return rng.random()\n"
                ),
            },
            des_config(),
        )
        purity = [v for v in report.violations if v.rule_id == "flow-des-purity"]
        assert any("p.bad" in v.path or "p.bad" in v.message for v in purity)
        assert not any("p.good" in v.path or "p.good" in v.message for v in purity)

    def test_suppression_requires_justification(self):
        src = (
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # reprolint: ignore[flow-des-purity] -- sim boot only\n"
        )
        report = analyze_sources({"p": "", "p.x": src}, des_config())
        assert "flow-des-purity" not in rule_ids(report)
        assert any(v.rule_id == "flow-des-purity" for v in report.suppressed)

        bare = src.replace(" -- sim boot only", "")
        report2 = analyze_sources({"p": "", "p.x": bare}, des_config())
        assert "flow-des-purity" in rule_ids(report2)


class TestShardIsolation:
    def config(self):
        return des_config(
            des_pure_packages=(),
            ordered_packages=(),
            shard_entry_points=("p.worker.run_shard",),
            shard_allowed_modules=("p.plane",),
        )

    def test_mutation_outside_allowed_modules_flagged_with_chain(self):
        report = analyze_sources(
            {
                "p": "",
                "p.worker": (
                    "from p import helper\n"
                    "def run_shard(s):\n"
                    "    return helper.record(s)\n"
                ),
                "p.helper": (
                    "CACHE = {}\n"
                    "def record(s):\n"
                    "    CACHE[s] = True\n"
                    "    return s\n"
                ),
            },
            self.config(),
        )
        assert rule_ids(report) == ["flow-shard-isolation"]
        v = report.violations[0]
        assert "p.helper.record" in v.message
        assert "p.worker.run_shard" in v.message
        notes = [f.note for f in v.chain]
        assert notes[0] == "calls p.helper.record"
        assert "CACHE" in notes[-1]

    def test_allowed_module_mutation_is_sanctioned(self):
        report = analyze_sources(
            {
                "p": "",
                "p.worker": (
                    "from p import plane\n"
                    "def run_shard(s):\n"
                    "    plane.bump()\n"
                ),
                "p.plane": (
                    "N = 0\n"
                    "def bump():\n"
                    "    global N\n"
                    "    N += 1\n"
                ),
            },
            self.config(),
        )
        assert rule_ids(report) == []

    def test_unreachable_mutation_not_flagged(self):
        report = analyze_sources(
            {
                "p": "",
                "p.worker": "def run_shard(s):\n    return s\n",
                "p.helper": (
                    "SEEN = []\n"
                    "def poison():\n"
                    "    SEEN.append(1)\n"
                ),
            },
            self.config(),
        )
        assert rule_ids(report) == []

    def test_rule_off_without_entry_points(self):
        report = analyze_sources(
            {
                "p": "",
                "p.worker": (
                    "from p import helper\n"
                    "def run_shard(s):\n"
                    "    return helper.record(s)\n"
                ),
                "p.helper": (
                    "CACHE = {}\n"
                    "def record(s):\n"
                    "    CACHE[s] = True\n"
                    "    return s\n"
                ),
            },
            des_config(des_pure_packages=(), ordered_packages=()),
        )
        assert rule_ids(report) == []


class TestWireConformance:
    def wire_config(self):
        return FlowConfig(
            des_pure_packages=(),
            boundary_modules=(),
            ordered_packages=(),
            wire_modules=("w",),
            transport_modules=("w",),
            dispatch_roots=(),
        )

    def test_matching_pair_is_clean(self):
        src = textwrap.dedent(
            """
            import struct

            class MsgType:
                DATA = 1

            def pack_data(seq, val):
                return struct.pack("<IQ", seq, val)

            def unpack_data(payload):
                return struct.unpack_from("<IQ", payload, 0)
            """
        )
        report = analyze_sources({"w": src}, self.wire_config())
        assert not [v for v in report.violations
                    if v.rule_id == "flow-wire-conformance" and v.severity == "error"]

    def test_format_mismatch_reports_frame_layout(self):
        src = (FIXTURES / "bad_wire" / "src" / "badwire.py").read_text()
        report = analyze_sources({"w": src}, self.wire_config())
        wire = [v for v in report.violations if v.rule_id == "flow-wire-conformance"]
        mismatch = [v for v in wire if "disagrees" in v.message]
        assert mismatch and mismatch[0].chain  # both frame layouts in the trace
        offsets = [v for v in wire if "slices the payload" in v.message]
        assert offsets and "16 bytes" in offsets[0].message


class TestSummaryCache:
    def write_project(self, root: Path) -> Path:
        src = root / "src"
        (src / "pkg").mkdir(parents=True)
        (src / "pkg" / "__init__.py").write_text("")
        (src / "pkg" / "a.py").write_text("def f():\n    return 1\n")
        (src / "pkg" / "b.py").write_text("def g():\n    return 2\n")
        return src

    def quiet_config(self):
        return FlowConfig(
            des_pure_packages=(), boundary_modules=(), ordered_packages=(),
            wire_modules=(), transport_modules=(), dispatch_roots=(),
        )

    def test_warm_run_hits_and_edit_invalidates(self, tmp_path):
        src = self.write_project(tmp_path)
        cache = tmp_path / "cache.json"
        cfg = self.quiet_config()

        r1 = analyze([src], cfg, store=SummaryStore(cache))
        assert r1.stats["flow_cache_hits"] == 0
        assert r1.stats["flow_modules_analyzed"] == 3
        assert cache.exists()

        r2 = analyze([src], cfg, store=SummaryStore(cache))
        assert r2.stats["flow_cache_hits"] == 3
        assert r2.stats["flow_cache_misses"] == 0

        (src / "pkg" / "a.py").write_text("def f():\n    return 3\n")
        r3 = analyze([src], cfg, store=SummaryStore(cache))
        assert r3.stats["flow_cache_hits"] == 2
        assert r3.stats["flow_cache_misses"] == 1

    def test_store_prunes_untouched_entries(self, tmp_path):
        path = tmp_path / "store.json"
        s = SummaryStore(path)
        s.put("ns", "keep", "d1", {"v": 1})
        s.put("ns", "drop", "d2", {"v": 2})
        s.save()

        s2 = SummaryStore(path)
        assert s2.get("ns", "keep", "d1") == {"v": 1}
        s2.save()

        s3 = SummaryStore(path)
        assert s3.get("ns", "drop", "d2") is None
        assert s3.get("ns", "keep", "d1") == {"v": 1}

    def test_corrupt_store_is_tolerated(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        s = SummaryStore(path)
        assert s.get("ns", "k", "d") is None
        s.put("ns", "k", "d", [1])
        s.save()
        assert SummaryStore(path).get("ns", "k", "d") == [1]


class TestCliFixtures:
    def run_fixture(self, name, capsys, extra=()):
        fixture = FIXTURES / name
        code = flow_main(
            [str(fixture / "src"), "--config", str(fixture / "pyproject.toml"),
             "--no-cache", *extra]
        )
        return code, capsys.readouterr().out

    def test_bad_des_traces_the_full_chain(self, capsys):
        code, out = self.run_fixture("bad_des", capsys)
        assert code == 1
        assert "flow-des-purity" in out
        assert "despkg.helper.stamp" in out
        # the chain must cross the package boundary down to the clock read
        assert "in despkg.helper.stamp: calls extutil.wallclock" in out
        assert "in extutil.wallclock: calls time.time()" in out

    def test_bad_wire_reports_format_and_offset(self, capsys):
        code, out = self.run_fixture("bad_wire", capsys)
        assert code == 1
        assert "flow-wire-conformance" in out
        assert "decoder reads [I I] but encoder writes [I Q]" in out
        assert "slices the payload at byte 12" in out
        assert "'<iQI' is 16 bytes" in out

    def test_bad_hello_gate_can_never_open(self, capsys):
        code, out = self.run_fixture("bad_hello", capsys)
        assert code == 1
        assert "flow-hello-symmetry" in out
        assert "never advertised" in out
        assert "trace-ctx-v2" in out

    def test_bad_shard_traces_worker_to_registry(self, capsys):
        code, out = self.run_fixture("bad_shard", capsys)
        assert code == 1
        assert "flow-shard-isolation" in out
        assert "shardpkg.registry.record_result" in out
        assert ("in shardpkg.worker.run_shard: "
                "calls shardpkg.registry.record_result") in out
        assert "mutates module global 'RESULTS'" in out
        # the shard plane's own counters are sanctioned
        assert "note_window" not in out

    def test_json_report_schema(self, capsys):
        code, out = self.run_fixture("bad_des", capsys, extra=("--format", "json"))
        assert code == 1
        doc = json.loads(out)
        assert doc["schema_version"] == 1
        assert doc["tool"] == "repro-flow"
        assert doc["counts"]["by_rule"]["flow-des-purity"] >= 1
        assert doc["stats"]["flow_modules_analyzed"] == 4
        assert set(FLOW_RULE_IDS) == set(doc["stats"]["rules"])

    def test_sarif_output(self, capsys, tmp_path):
        sarif_file = tmp_path / "flow.sarif"
        code, out = self.run_fixture(
            "bad_wire", capsys,
            extra=("--format", "sarif", "--sarif-out", str(sarif_file)),
        )
        assert code == 1
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-flow"
        assert any(r["id"] == "flow-wire-conformance" for r in driver["rules"])
        assert doc == json.loads(sarif_file.read_text())

    def test_list_rules(self, capsys):
        assert flow_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in FLOW_RULE_IDS:
            assert rule_id in out

    def test_unknown_config_key_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "pyproject.toml"
        bad.write_text("[tool.reprolint.flow]\nno-such-key = []\n")
        (tmp_path / "src").mkdir()
        code = flow_main([str(tmp_path / "src"), "--config", str(bad)])
        assert code == 2
        assert "no-such-key" in capsys.readouterr().err


class TestConfig:
    def test_from_table_rejects_unknown_keys(self):
        with pytest.raises(FlowConfigError):
            FlowConfig.from_table({"wat": []})

    def test_digest_changes_with_scope(self):
        a = FlowConfig()
        b = FlowConfig(des_pure_packages=("other",))
        assert a.digest() != b.digest()

    def test_package_scoping(self):
        cfg = FlowConfig(des_pure_packages=("repro.sim",))
        assert cfg.in_des_pure("repro.sim")
        assert cfg.in_des_pure("repro.sim.des")
        assert not cfg.in_des_pure("repro.simx")


class TestSelfHost:
    def test_tree_is_flow_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        cfg = FlowConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        report = analyze(["src"], cfg)
        assert report.errors == []
        assert report.warnings == []
        assert report.exit_code() == 0
        assert report.stats["flow_modules_analyzed"] > 100
        assert report.stats["flow_edges"] > 0
        assert report.stats["elapsed_s"] < 30  # cold-pass budget

    def test_warm_self_host_within_budget(self, monkeypatch, tmp_path):
        monkeypatch.chdir(REPO_ROOT)
        cfg = FlowConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        cache = tmp_path / "cache.json"
        analyze(["src"], cfg, store=SummaryStore(cache))
        warm = analyze(["src"], cfg, store=SummaryStore(cache))
        assert warm.stats["flow_cache_hits"] == warm.stats["flow_modules_analyzed"]
        assert warm.stats["elapsed_s"] < 5  # warm-pass budget
