"""Tests for extension features: passive connections, jobid sampler,
CSV rollover, per-job user-level daemons (§IV-G)."""

import pytest

import repro.plugins  # noqa: F401
from repro.cluster import JobSpec, Scheduler, chama
from repro.core import Ldmsd, SimEnv
from repro.core.metric import MetricType
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport
from repro.util.errors import ConfigError


@pytest.fixture
def world():
    eng = Engine()
    return eng, SimEnv(eng), SimFabric(eng)


def daemon(world, name, xprt="rdma"):
    eng, env, fabric = world
    return Ldmsd(name, env=env,
                 transports={xprt: SimTransport(fabric, xprt, node_id=name)})


class TestPassiveConnections:
    """§IV-B asymmetric network access: the sampler dials out."""

    def _passive_pair(self, world):
        eng, env, fabric = world
        agg = daemon(world, "agg")
        agg.listen("rdma", "agg:411")
        st = agg.add_store("memory")
        agg.add_producer("node0", "rdma", interval=1.0, passive=True)
        samp = daemon(world, "node0")
        samp.load_sampler("synthetic", instance="node0/syn",
                          component_id=1, num_metrics=4)
        samp.start_sampler("node0/syn", interval=1.0)
        samp.advertise("rdma", "agg:411")
        return agg, samp, st

    def test_passive_collection_flows(self, world):
        eng, _, _ = world
        agg, samp, st = self._passive_pair(world)
        eng.run(until=10.0)
        assert len(st.rows) >= 7
        assert st.rows[-1].set_name == "node0/syn"
        assert agg.producers["node0"].connected

    def test_passive_requires_no_addr(self, world):
        agg = daemon(world, "agg")
        agg.add_producer("p", "rdma", interval=1.0, passive=True)  # ok
        with pytest.raises(ConfigError):
            agg.add_producer("q", "rdma", interval=1.0)  # active, no addr

    def test_unknown_advertiser_ignored(self, world):
        eng, _, _ = world
        agg = daemon(world, "agg")
        agg.listen("rdma", "agg:411")
        st = agg.add_store("memory")
        samp = daemon(world, "mystery")
        samp.load_sampler("synthetic", instance="m/s", component_id=1)
        samp.start_sampler("m/s", interval=1.0)
        samp.advertise("rdma", "agg:411")  # no producer named "mystery"
        eng.run(until=5.0)
        assert st.rows == []

    def test_readvertise_after_aggregator_drop(self, world):
        eng, _, _ = world
        agg, samp, st = self._passive_pair(world)
        eng.run(until=5.0)
        n_before = len(st.rows)
        # Aggregator drops the connection (e.g. restart of its endpoint).
        agg.producers["node0"].endpoint.close()
        eng.run(until=15.0)
        assert len(st.rows) > n_before + 3  # sampler re-advertised

    def test_passive_does_not_dial(self, world):
        eng, env, fabric = world
        agg = daemon(world, "agg")
        agg.add_producer("node0", "rdma", interval=1.0, passive=True)
        eng.run(until=5.0)
        assert not agg.producers["node0"].connected
        assert fabric.total_messages == 0


class TestJobidSampler:
    def test_jobid_tracks_scheduler(self):
        m = chama(n_nodes=8)
        dep = m.deploy_ldms(interval=1.0, plugins=[("jobid", {})],
                            fanin=8)
        sched = Scheduler(m)
        job = sched.submit(JobSpec("tagged", n_nodes=4, duration=10.0),
                           delay=3.0)
        m.run(until=20.0)
        ts, ids = dep.store.series("job_id", set_name="n0/jobid")
        assert 0 in ids  # idle before/after
        assert job.job_id in ids  # while running
        # The id appears only within the job's lifetime.
        inside = ids[(ts >= job.start_time) & (ts < job.end_time)]
        assert (inside == job.job_id).all()

    def test_jobid_zero_without_file(self, world):
        d = daemon(world, "n0")  # RealFS has no /var/run/ldms_jobid
        from repro.nodefs.fs import SynthFS

        d.fs = SynthFS()
        p = d.load_sampler("jobid", instance="n0/jobid", component_id=1)
        p.sample(0.0)
        assert p.set.get("job_id") == 0


class TestCsvRollover:
    def _rec(self, t):
        from repro.core.store import StoreRecord

        return StoreRecord(t, "n0", "n0/s", "s", ("a",), (1,), (int(t),))

    def test_rolls_at_size(self, tmp_path):
        from repro.plugins.stores.csv_store import CsvStore

        st = CsvStore()
        st.config(path=str(tmp_path), buffer_lines=1, roll_bytes=200)
        for k in range(40):
            st.submit(self._rec(float(k)))
        st.close()
        rolled = sorted(p.name for p in tmp_path.glob("s.csv.*"))
        assert len(rolled) >= 2
        # Every rolled file stays near the limit.
        for p in tmp_path.glob("s.csv.*"):
            assert p.stat().st_size <= 300
        # Each fresh file re-writes the header.
        assert (tmp_path / "s.csv.2").read_text().startswith("Time,")

    def test_no_roll_by_default(self, tmp_path):
        from repro.plugins.stores.csv_store import CsvStore

        st = CsvStore()
        st.config(path=str(tmp_path), buffer_lines=1)
        for k in range(40):
            st.submit(self._rec(float(k)))
        st.close()
        assert list(tmp_path.glob("s.csv.*")) == []

    def test_rows_survive_rollover_intact(self, tmp_path):
        from repro.plugins.stores.csv_store import CsvStore

        st = CsvStore()
        st.config(path=str(tmp_path), buffer_lines=1, roll_bytes=150)
        for k in range(30):
            st.submit(self._rec(float(k)))
        st.close()
        values = []
        for p in sorted(tmp_path.glob("s.csv*")):
            for line in p.read_text().splitlines():
                if not line.startswith("Time"):
                    values.append(int(line.rsplit(",", 1)[1]))
        assert sorted(values) == list(range(30))


class TestUserLevelDaemon:
    """§IV-G: 'Users seeking additional data ... may run another LDMS
    instance configured to use their specified samplers and a different
    network port as part of their batch jobs.'"""

    def test_two_daemons_one_node(self, world):
        eng, env, fabric = world
        from repro.nodefs.host import HostModel

        host = HostModel("n0", clock=lambda: eng.now)
        system = Ldmsd("n0-sys", env=env, fs=host.fs,
                       transports={"rdma": SimTransport(fabric, "rdma")})
        system.load_sampler("meminfo", instance="n0/meminfo", component_id=1)
        system.start_sampler("n0/meminfo", interval=10.0)
        system.listen("rdma", "n0:411")

        user = Ldmsd("n0-user", env=env, fs=host.fs,
                     transports={"rdma": SimTransport(fabric, "rdma")})
        user.load_sampler("loadavg", instance="job42/loadavg",
                          component_id=1)
        user.start_sampler("job42/loadavg", interval=0.1)  # high fidelity
        user.listen("rdma", "n0:412")  # different port

        agg = daemon(world, "agg")
        st_sys = agg.add_store("memory", schema="meminfo")
        st_user = agg.add_store("memory", schema="loadavg")
        agg.add_producer("sys", "rdma", "n0:411", interval=10.0)
        agg.add_producer("user", "rdma", "n0:412", interval=0.1)
        eng.run(until=30.0)
        assert len(st_user.rows) > 5 * len(st_sys.rows)
        assert {r.schema for r in st_user.rows} == {"loadavg"}
