"""Tests for the reprolint AST rule engine (repro.analysis.lint).

Each rule is exercised against a good/bad fixture pair under
``tests/lint_fixtures/``: the bad snippet must fire the rule, the good
snippet must stay silent.  Engine behaviours (suppressions, config,
reporters, exit codes, module scoping) are covered directly, and one
self-host test asserts the shipped tree lints clean under the repo's
own ``pyproject.toml``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Engine,
    LintConfig,
    LintConfigError,
    all_rules,
)
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.engine import JSON_SCHEMA_VERSION

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent

#: rule id -> module name the fixture is linted as (must fall inside the
#: rule's default package scope).
FIXTURE_MODULES = {
    "arena-sweep-discipline": "repro.core.set_arena.fixture",
    "des-purity": "repro.core.fixture",
    "sampler-contract": "repro.plugins.samplers.fixture",
    "store-contract": "repro.plugins.stores.fixture",
    "chunk-discipline": "repro.transport.fixture",
    "swallowed-except": "repro.core.fixture",
    "control-verb-registry": "repro.core.control",
    "no-blocking-io-in-hot-path": "repro.plugins.samplers.fixture",
    "obs-hotpath-discipline": "repro.core.fixture",
    "mutable-default-arg": "repro.anywhere.fixture",
}


def lint_fixture(rule_id: str, kind: str):
    """Lint one fixture file with only ``rule_id`` selected."""
    fname = rule_id.replace("-", "_") + f"_{kind}.py"
    source = (FIXTURES / fname).read_text()
    engine = Engine(LintConfig(select=(rule_id,)))
    return engine.lint_source(source, module=FIXTURE_MODULES[rule_id],
                              path=fname)


class TestFixturePairs:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_MODULES))
    def test_bad_fixture_fires(self, rule_id):
        report = lint_fixture(rule_id, "bad")
        hits = [v for v in report.violations if v.rule == rule_id]
        assert hits, f"{rule_id}: bad fixture produced no violations"
        for v in hits:
            assert v.line > 0
            assert v.severity == "error"
            assert v.message

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_MODULES))
    def test_good_fixture_silent(self, rule_id):
        report = lint_fixture(rule_id, "good")
        hits = [v for v in report.violations if v.rule == rule_id]
        assert hits == [], f"{rule_id}: good fixture fired: {hits}"

    def test_every_registered_rule_has_a_fixture_pair(self):
        for rule_id in all_rules():
            assert rule_id in FIXTURE_MODULES
            base = rule_id.replace("-", "_")
            assert (FIXTURES / f"{base}_bad.py").exists()
            assert (FIXTURES / f"{base}_good.py").exists()


class TestModuleScoping:
    def test_rule_ignores_out_of_scope_module(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        engine = Engine(LintConfig(select=("des-purity",)))
        report = engine.lint_source(source, module="scripts.helper")
        assert report.violations == []

    def test_allowed_module_is_exempt(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        cfg = LintConfig.from_table({
            "select": ["des-purity"],
            "rules": {"des-purity": {"allowed-modules": ["repro.util.timeutil"]}},
        })
        report = Engine(cfg).lint_source(source, module="repro.util.timeutil")
        assert report.violations == []
        report2 = Engine(cfg).lint_source(source, module="repro.util.other")
        assert [v.rule for v in report2.violations] == ["des-purity"]

    def test_module_name_mapping(self):
        engine = Engine(LintConfig())
        assert engine.module_name(
            Path("src/repro/core/metric_set.py")) == "repro.core.metric_set"
        assert engine.module_name(
            Path("src/repro/analysis/lint/__init__.py")) == "repro.analysis.lint"

    def test_import_alias_resolution(self):
        # `from time import time as clock` must still resolve.
        source = "from time import time as clock\n\ndef f():\n    return clock()\n"
        engine = Engine(LintConfig(select=("des-purity",)))
        report = engine.lint_source(source, module="repro.core.x")
        assert [v.rule for v in report.violations] == ["des-purity"]


class TestSuppressions:
    SOURCE = (
        "import time\n"
        "\n"
        "def f():\n"
        "    return time.time()  # reprolint: ignore[des-purity] -- fixture timing\n"
    )

    def engine(self):
        return Engine(LintConfig(select=("des-purity",)))

    def test_justified_suppression_moves_to_suppressed(self):
        report = self.engine().lint_source(self.SOURCE, module="repro.core.x")
        assert report.violations == []
        assert len(report.suppressed) == 1
        s = report.suppressed[0]
        assert s.rule == "des-purity"
        assert s.suppressed
        assert s.justification == "fixture timing"
        assert report.exit_code == 0

    def test_unjustified_suppression_is_a_violation(self):
        src = self.SOURCE.replace(" -- fixture timing", "")
        report = self.engine().lint_source(src, module="repro.core.x")
        rules = sorted(v.rule for v in report.violations)
        assert rules == ["suppression"]
        # The des-purity hit itself is still suppressed (not doubled).
        assert len(report.suppressed) == 1
        assert report.exit_code == 1

    def test_unknown_rule_id_is_a_violation(self):
        src = self.SOURCE.replace("des-purity]", "no-such-rule]")
        report = self.engine().lint_source(src, module="repro.core.x")
        rules = sorted(v.rule for v in report.violations)
        assert rules == ["des-purity", "suppression"]

    def test_suppression_comment_inside_string_is_inert(self):
        src = (
            'DOC = "# reprolint: ignore[des-purity]"\n'
            "import time\n"
            "\n"
            "def f():\n"
            "    return time.time()\n"
        )
        report = self.engine().lint_source(src, module="repro.core.x")
        assert [v.rule for v in report.violations] == ["des-purity"]
        assert report.suppressed == []


class TestConfig:
    def test_unknown_rule_id_in_config_rejected(self):
        with pytest.raises(LintConfigError):
            LintConfig.from_table({"rules": {"nope": {}}})

    def test_unknown_table_key_rejected(self):
        with pytest.raises(LintConfigError):
            LintConfig.from_table({"bogus": 1})

    def test_unknown_rule_option_rejected(self):
        cfg = LintConfig.from_table(
            {"rules": {"des-purity": {"frobnicate": True}}})
        with pytest.raises(LintConfigError):
            Engine(cfg)

    def test_bad_severity_rejected(self):
        cfg = LintConfig.from_table(
            {"rules": {"des-purity": {"severity": "fatal"}}})
        with pytest.raises(LintConfigError):
            Engine(cfg)

    def test_severity_off_disables_rule(self):
        cfg = LintConfig.from_table(
            {"select": ["des-purity"],
             "rules": {"des-purity": {"severity": "off"}}})
        report = Engine(cfg).lint_source(
            "import time\nx = time.time()\n", module="repro.core.x")
        assert report.violations == []

    def test_warning_severity_does_not_gate(self):
        cfg = LintConfig.from_table(
            {"select": ["des-purity"],
             "rules": {"des-purity": {"severity": "warning"}}})
        report = Engine(cfg).lint_source(
            "import time\nx = time.time()\n", module="repro.core.x")
        assert len(report.warnings) == 1
        assert report.exit_code == 0

    def test_select_unknown_rule_rejected(self):
        with pytest.raises(LintConfigError):
            Engine(LintConfig(select=("no-such-rule",)))


class TestReporters:
    def make_report(self):
        return Engine(LintConfig(select=("des-purity",))).lint_source(
            "import time\nx = time.time()\n",
            module="repro.core.x", path="x.py")

    def test_text_format(self):
        text = self.make_report().render_text()
        assert "x.py:2:" in text
        assert "[des-purity]" in text
        assert "1 errors" in text

    def test_json_schema(self):
        doc = json.loads(self.make_report().render_json())
        assert doc["tool"] == "reprolint"
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["files_scanned"] == 1
        assert doc["summary"] == {
            "errors": 1,
            "warnings": 0,
            "suppressed": 0,
            "files_replayed_from_cache": 0,
        }
        assert doc["exit_code"] == 1
        (v,) = doc["violations"]
        assert set(v) == {"path", "line", "col", "rule", "severity", "message"}
        assert v["rule"] == "des-purity"
        assert v["line"] == 2

    def test_parse_error_reported_not_raised(self):
        report = Engine(LintConfig()).lint_source(
            "def broken(:\n", module="repro.core.x")
        assert [v.rule for v in report.violations] == ["parse-error"]
        assert report.exit_code == 1


class TestCli:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out

    def test_bad_select_exits_2(self, capsys):
        assert lint_main(["--select", "no-such-rule", str(FIXTURES)]) == 2
        assert "repro-lint" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert lint_main(["definitely_missing.txt"]) == 2

    def test_json_output_on_fixture(self, capsys):
        bad = str(FIXTURES / "mutable_default_arg_bad.py")
        code = lint_main(["--format", "json",
                          "--config", str(REPO_ROOT / "pyproject.toml"), bad])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["summary"]["errors"] >= 1


class TestSelfHost:
    def test_shipped_tree_is_clean(self):
        """`repro-lint src/` exits 0 on the repo, with zero suppressions."""
        cfg = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        report = Engine(cfg).lint_paths([REPO_ROOT / "src"])
        assert report.files, "no files linted — wrong repo root?"
        problems = [v.format() for v in report.violations]
        assert problems == []
        # Acceptance: the tree ships without blanket mutes; any per-line
        # suppression must carry a justification (else it is an error,
        # which the empty violations list above already rules out).
        for s in report.suppressed:
            assert s.justification


class TestSuppressionEdgeCases:
    """Scanner corner cases: multi-line statements, reprolint-lookalike
    text inside f-strings, decorated defs, and external ``flow-`` ids
    shared with ``repro-flow``."""

    def engine(self, *rules):
        return Engine(LintConfig(select=rules or ("des-purity",)))

    def test_multiline_statement_suppressed_on_call_line(self):
        # The violation is reported at the offending call's physical
        # line, so that is where the suppression must sit — even when
        # the statement spans several lines.
        src = (
            "import time\n\n"
            "def f():\n"
            "    return (\n"
            "        time.time()  # reprolint: ignore[des-purity] -- boot stamp\n"
            "    )\n"
        )
        report = self.engine().lint_source(src, module="repro.core.x")
        assert report.violations == []
        assert [s.line for s in report.suppressed] == [5]

    def test_multiline_statement_opening_line_comment_does_not_apply(self):
        # Suppressions are line-scoped: a comment on the statement's
        # opening line does not cover a call on a continuation line.
        src = (
            "import time\n\n"
            "def f():\n"
            "    return (  # reprolint: ignore[des-purity] -- wrong line\n"
            "        time.time()\n"
            "    )\n"
        )
        report = self.engine().lint_source(src, module="repro.core.x")
        assert [v.rule for v in report.violations] == ["des-purity"]
        assert report.violations[0].line == 5

    def test_fstring_lookalike_is_inert_and_not_malformed(self):
        # An f-string *containing* suppression syntax is data, not a
        # live comment: it must neither suppress nor be flagged as a
        # malformed suppression.
        src = (
            "import time\n"
            "def g(rule):\n"
            '    return f"# reprolint: ignore[{rule}]"\n'
            "def f():\n"
            "    return time.time()\n"
        )
        report = self.engine().lint_source(src, module="repro.core.x")
        assert [v.rule for v in report.violations] == ["des-purity"]
        assert report.suppressed == []

    def test_decorated_def_suppression_on_def_line(self):
        # mutable-default-arg reports on the signature line; the def
        # line carries the suppression even under a decorator.
        src = (
            "import functools\n"
            "@functools.lru_cache\n"
            "def f(x=[]):  # reprolint: ignore[mutable-default-arg] -- interned\n"
            "    return x\n"
        )
        report = self.engine("mutable-default-arg").lint_source(
            src, module="repro.core.x")
        assert report.violations == []
        assert [s.rule for s in report.suppressed] == ["mutable-default-arg"]

    def test_decorated_def_suppression_on_decorator_line_does_not_apply(self):
        src = (
            "import functools\n"
            "@functools.lru_cache  # reprolint: ignore[mutable-default-arg] -- nope\n"
            "def f(x=[]):\n"
            "    return x\n"
        )
        report = self.engine("mutable-default-arg").lint_source(
            src, module="repro.core.x")
        assert [v.rule for v in report.violations] == ["mutable-default-arg"]

    def test_flow_rule_ids_are_known_to_the_lint_engine(self):
        # flow- ids belong to repro-flow; the lint engine must accept
        # them as known (no unknown-rule error) while still demanding a
        # justification.
        from repro.analysis.lint.engine import scan_suppression_comments

        supp, problems = scan_suppression_comments(
            "x = 1  # reprolint: ignore[flow-des-purity] -- sim boot\n",
            known_ids={"des-purity"},
        )
        assert supp[1] == ({"flow-des-purity"}, "sim boot")
        assert problems == []

        _supp, problems = scan_suppression_comments(
            "x = 1  # reprolint: ignore[flow-des-purity]\n",
            known_ids={"des-purity"},
        )
        assert any("justification" in msg for (_l, _c, msg) in problems)

    def test_mixed_known_and_flow_ids_in_one_comment(self):
        src = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  "
            "# reprolint: ignore[des-purity, flow-des-purity] -- fixture\n"
        )
        report = self.engine().lint_source(src, module="repro.core.x")
        assert report.violations == []
        assert len(report.suppressed) == 1


class TestChangedOnly:
    """--changed-only incremental mode: unchanged files replay their
    cached verdicts (violations included) from the shared summary
    store; edited files are re-linted."""

    def write_project(self, root):
        src = root / "src" / "repro" / "core"
        src.mkdir(parents=True)
        (src / "bad.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n")
        (src / "ok.py").write_text("def g():\n    return 1\n")
        return root / "src"

    def run(self, tmp_path, capsys):
        code = lint_main([
            str(tmp_path / "src"), "--select", "des-purity",
            "--changed-only", "--cache", str(tmp_path / "cache.json"),
            "--config", str(tmp_path / "pyproject.toml"),
        ])
        return code, capsys.readouterr().out

    def test_replay_and_invalidation(self, tmp_path, capsys):
        self.write_project(tmp_path)

        code1, out1 = self.run(tmp_path, capsys)
        assert code1 == 1
        assert "des-purity" in out1
        assert "cached" not in out1  # cold run replays nothing

        code2, out2 = self.run(tmp_path, capsys)
        assert code2 == 1
        assert "des-purity" in out2  # violations replay verbatim
        assert "2 cached" in out2

        # fixing the file invalidates only its entry
        (tmp_path / "src" / "repro" / "core" / "bad.py").write_text(
            "def f():\n    return 0\n")
        code3, out3 = self.run(tmp_path, capsys)
        assert code3 == 0
        assert "1 cached" in out3

    def test_json_reports_replay_count(self, tmp_path, capsys):
        self.write_project(tmp_path)
        args = [
            str(tmp_path / "src"), "--select", "des-purity",
            "--changed-only", "--cache", str(tmp_path / "cache.json"),
            "--config", str(tmp_path / "pyproject.toml"),
            "--format", "json",
        ]
        lint_main(args)
        capsys.readouterr()
        lint_main(args)
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["files_replayed_from_cache"] == 2
