"""Tests for the cluster-wide observability plane (PR 7).

Wire-level trace context, span recording + Chrome export, the
freshness/completeness tracker, the always-on flight recorder with
postmortem dumps, and the exemplar-sampling determinism contract
(same seed => same traced transactions, regardless of sanitizer or
arena toggles).
"""

import json
import os
import subprocess
import sys

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv, wire
from repro.core.control import ControlChannel
from repro.obs import flight as flightmod
from repro.obs.flight import FlightRecorder
from repro.obs.freshness import FreshnessTracker
from repro.obs.spans import (
    HOP_NAMES,
    HOP_SAMPLE,
    HOP_SERVE,
    HOP_STORE,
    HOP_UPDATE,
    SpanRecorder,
    causal_chains,
    chrome_trace_events,
    validate_chrome_trace,
)
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------
class TestWireTraceCtx:
    def test_pack_unpack_roundtrip(self):
        ctx = ((0, 12345, 678, 2), (3, 99, 1, 3))
        assert wire.unpack_trace_ctx(wire.pack_trace_ctx(ctx))[0] == ctx

    def test_frame_flag_set_and_stripped(self):
        raw = wire.encode_frame(wire.MsgType.RDMA_READ_REQ, 7, b"xyz",
                                trace=((0, 5, 6, 2),))
        assert raw[4] & wire.TRACE_FLAG  # msg_type byte follows the u32 length
        frame = wire.decode_frame(raw)
        assert frame.msg_type == wire.MsgType.RDMA_READ_REQ
        assert frame.trace == ((0, 5, 6, 2),)
        assert frame.payload == b"xyz"

    def test_untraced_frame_has_no_ctx(self):
        frame = wire.decode_frame(wire.encode_frame(wire.MsgType.DIR_REQ, 1))
        assert frame.trace is None

    def test_hello_roundtrip(self):
        blob = wire.pack_hello(12.5, frozenset({"trace-ctx", "x"}))
        now, feats = wire.unpack_hello(blob)
        assert now == 12.5
        assert feats == frozenset({"trace-ctx", "x"})


class TestSpanRecorder:
    def test_disabled_records_nothing(self):
        r = SpanRecorder("d", enabled=False)
        r.record(1, 1, 0, HOP_UPDATE, "update", 0.0, 1.0)
        assert r.total == 0 and not r.spans

    def test_ring_bounded_total_cumulative(self):
        r = SpanRecorder("d", ring=4)
        for i in range(10):
            r.record(1, r.alloc(), 0, HOP_UPDATE, "update", 0.0, 1.0)
        assert len(r.spans) == 4 and r.total == 10

    def test_aux_trace_ids_disjoint_from_tracer_ids(self):
        r = SpanRecorder("d")
        assert r.alloc_trace() >= 1 << 48

    def test_chrome_export_valid(self):
        r = SpanRecorder("agg")
        sid = r.alloc()
        r.record(7, sid, 0, HOP_UPDATE, "update", 1.0, 2.0)
        r.record(7, r.alloc(), sid, HOP_STORE, "store_flush", 2.0, 2.5)
        doc = chrome_trace_events([r])
        assert validate_chrome_trace(doc) is None
        kinds = [e["ph"] for e in doc["traceEvents"]]
        assert "M" in kinds and kinds.count("X") == 2
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_validate_rejects_malformed(self):
        assert validate_chrome_trace({"nope": 1}) is not None
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X"}], "displayTimeUnit": "ms"}
        ) is not None

    def test_causal_chain_ordering(self):
        samp, agg = SpanRecorder("s0"), SpanRecorder("agg")
        usid = agg.alloc()
        agg.record(9, usid, 0, HOP_UPDATE, "update", 1.0, 3.0)
        ssid = samp.alloc()
        samp.record(9, ssid, usid, HOP_SERVE, "serve_read", 1.2, 1.4)
        samp.record(9, samp.alloc(), ssid, HOP_SAMPLE, "sample", 0.8, 0.9)
        agg.record(9, agg.alloc(), usid, HOP_STORE, "store_flush", 3.0, 3.2)
        chains = causal_chains([samp, agg], min_hops=4)
        assert list(chains) == [9]
        hops = [span.hop for _, span in chains[9]]
        assert hops == sorted(hops)
        assert [HOP_NAMES[h] for h in hops] == [
            "sample", "serve", "update", "store"]


class TestFreshness:
    def test_disabled_arm_returns_none(self):
        t = FreshnessTracker(enabled=False)
        assert t.arm("p", 1.0, 1, 0.0) is None
        assert t.fleet(10.0)["completeness"] == 1.0

    def test_expected_ramps_after_first_interval(self):
        t = FreshnessTracker()
        p = t.arm("p", 5.0, 2, 0.0)
        assert p.expected(4.9) == 0
        assert p.expected(30.0) == (int(30.0 / 5.0) - 1) * 2

    def test_completeness_and_missed(self):
        t = FreshnessTracker()
        p = t.arm("p", 1.0, 1, 0.0)
        for i in range(8):
            p.observe(float(i + 1), 0)
        p.observe(10.0, 1)  # one skipped interval
        fleet = t.fleet(11.0)
        assert fleet["delivered"] == 9 and fleet["missed"] == 1
        assert fleet["completeness"] == pytest.approx(9 / 10)

    def test_staleness_flags_silent_producer(self):
        t = FreshnessTracker()
        p = t.arm("p", 1.0, 1, 0.0)
        p.observe(1.0, 0)
        assert t.fleet(1.5)["stale_producers"] == 0
        fleet = t.fleet(1.0 + FreshnessTracker.STALE_AFTER * 1.0 + 0.1)
        assert fleet["stale_producers"] == 1
        assert fleet["max_staleness"] > FreshnessTracker.STALE_AFTER

    def test_rearm_keeps_epoch_and_counters(self):
        t = FreshnessTracker()
        p = t.arm("p", 1.0, 1, 0.0)
        p.observe(1.0, 0)
        p2 = t.arm("p", 1.0, 3, 50.0)  # set count grew mid-run
        assert p2 is p and p2.t0 == 0.0 and p2.delivered == 1
        assert p2.nsets == 3


class TestFlightRecorder:
    def test_ring_and_disabled(self):
        fl = FlightRecorder("d", ring=3)
        for i in range(5):
            fl.record(float(i), "daemon", "tick", i)
        assert fl.total == 5 and len(fl.events) == 3
        off = FlightRecorder("d", enabled=False)
        off.record(0.0, "daemon", "tick")
        assert off.total == 0

    def test_window_covers_retained_events(self):
        fl = FlightRecorder("d", ring=8)
        for i in range(4):
            fl.record(float(i), "conn", "up", i)
        lo, hi = fl.window()
        assert (lo, hi) == (0.0, 3.0)

    def test_postmortem_dump_structure(self):
        flightmod.reset_postmortems()
        eng = Engine()
        env = SimEnv(eng)
        d = Ldmsd("pm0", env=env,
                  transports={"rdma": SimTransport(SimFabric(eng), "rdma",
                                                   node_id="pm0")})
        d.flight.record(1.0, "fault", "crash")
        doc = flightmod.postmortem("test_reason", 1.0, (d,))
        assert doc["reason"] == "test_reason"
        assert flightmod.postmortems[-1] is doc
        rec = next(r for r in doc["daemons"] if r["daemon"] == "pm0")
        assert any(e["category"] == "fault" and e["event"] == "crash"
                   for e in rec["events"])
        lo, hi = rec["window"]
        assert lo <= 1.0 <= hi
        flightmod.reset_postmortems()
        assert not flightmod.postmortems

    def test_postmortem_dir_env_writes_file(self, tmp_path, monkeypatch):
        flightmod.reset_postmortems()
        monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))
        fl = FlightRecorder("solo")
        fl.record(0.5, "watchdog", "promote")

        class _Carrier:
            name = "solo"
            flight = fl
        flightmod.postmortem("watchdog_promotion:solo", 1.0, (_Carrier(),))
        files = list(tmp_path.iterdir())
        assert files, "postmortem dump file not written"
        doc = json.loads(files[0].read_text())
        assert doc["reason"] == "watchdog_promotion:solo"
        flightmod.reset_postmortems()


# ---------------------------------------------------------------------------
# end to end over the simulated fabric
# ---------------------------------------------------------------------------
def _world(obs_enabled=True):
    eng = Engine()
    env = SimEnv(eng)
    fabric = SimFabric(eng)
    samp = Ldmsd("s0", env=env, obs_enabled=obs_enabled,
                 transports={"rdma": SimTransport(fabric, "rdma",
                                                  node_id="s0")})
    agg = Ldmsd("agg", env=env, obs_enabled=obs_enabled,
                transports={"rdma": SimTransport(fabric, "rdma",
                                                 node_id="agg")})
    samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                      num_metrics=4)
    samp.start_sampler("s0/syn", interval=0.5)
    samp.listen("rdma", "s0:411")
    agg.add_store("memory")
    agg.add_producer("s0", "rdma", "s0:411", interval=0.5, sets=("s0/syn",))
    return eng, samp, agg


class TestEndToEndChain:
    def test_four_hop_causal_chain(self):
        eng, samp, agg = _world()
        agg.tracer.sample_every = 1
        eng.run(until=10.0)
        chains = causal_chains([samp.spans, agg.spans], min_hops=4)
        assert chains, "no 4-hop chain stitched"
        for tid, chain in chains.items():
            by_hop = {span.hop: (daemon, span) for daemon, span in chain}
            assert set(by_hop) >= {HOP_SAMPLE, HOP_SERVE, HOP_UPDATE,
                                   HOP_STORE}
            # parenting: serve's parent is the update span, sample's
            # parent is the serve span, store's parent is the update.
            assert by_hop[HOP_SERVE][0] == "s0"
            assert by_hop[HOP_UPDATE][0] == "agg"
            assert (by_hop[HOP_SERVE][1].parent_span
                    == by_hop[HOP_UPDATE][1].span_id)
            assert (by_hop[HOP_SAMPLE][1].parent_span
                    == by_hop[HOP_SERVE][1].span_id)
            assert (by_hop[HOP_STORE][1].parent_span
                    == by_hop[HOP_UPDATE][1].span_id)
        doc = chrome_trace_events([samp.spans, agg.spans])
        assert validate_chrome_trace(doc) is None

    def test_trace_ctx_needs_peer_feature(self):
        """A peer that never advertised trace-ctx gets plain frames."""
        eng, samp, agg = _world()
        agg.tracer.sample_every = 1

        def strip():
            # Simulate an old peer: clear the negotiated feature on
            # every aggregator endpoint after connect.
            for p in agg.producers.values():
                if p.endpoint is not None:
                    p.endpoint.trace_ok = False

        agg.env.call_later(1.0, strip)
        eng.run(until=10.0)
        # Updates keep flowing without trace headers; the sampler only
        # served spans for the pre-strip window.
        assert sum(p.stats.stored for p in agg.producers.values()) > 0
        served_after = [s for s in samp.spans.spans if s.t0 > 1.5]
        assert not served_after

    def test_freshness_tracks_healthy_run_complete(self):
        eng, samp, agg = _world()
        eng.run(until=20.0)
        fleet = agg.freshness.fleet(20.0)
        assert fleet["producers"] == 1
        assert fleet["missed"] == 0
        assert fleet["completeness"] == 1.0

    def test_disabled_obs_is_inert(self):
        eng, samp, agg = _world(obs_enabled=False)
        eng.run(until=5.0)
        assert agg.spans.total == 0
        assert samp.spans.total == 0
        assert agg.flight.total == 0
        assert agg.freshness.fleet(5.0)["producers"] == 0

    def test_prof_export_chrome_verb(self):
        eng, samp, agg = _world()
        agg.tracer.sample_every = 1
        eng.run(until=5.0)
        ch = ControlChannel(agg)
        reply = ch.handle("prof export=chrome")
        status, _, body = reply.partition(" ")
        assert status == "0"
        doc = json.loads(body)
        assert validate_chrome_trace(doc) is None
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_stats_pool_key_schema_stable(self):
        """The deep snapshot always carries the arena keys, zeroed when
        the pool is off (satellite: schema-stable stats JSON)."""
        eng, samp, agg = _world()
        eng.run(until=2.0)
        agg.set_pool = None  # arena disabled mid-run
        stats = agg.stats()
        assert stats["set_pool"] == {"arenas": 0, "blocks": 0, "rows": 0}
        prof = json.loads(ControlChannel(agg).handle("prof").partition(" ")[2])
        assert prof["arena"]["pool"] == {"arenas": 0, "blocks": 0, "rows": 0}
        assert "freshness" in prof and "flight" in prof and "spans" in prof


# ---------------------------------------------------------------------------
# exemplar-sampling determinism (satellite): same seed => identical
# traced transactions across plain / sanitized / arena-off runs.
# ---------------------------------------------------------------------------
_DETERMINISM_SCRIPT = """
import json, sys
import repro.plugins
from repro.core import Ldmsd, SimEnv
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport

eng = Engine(); env = SimEnv(eng); fabric = SimFabric(eng)
samp = Ldmsd("s0", env=env,
             transports={"rdma": SimTransport(fabric, "rdma", node_id="s0")})
agg = Ldmsd("agg", env=env,
            transports={"rdma": SimTransport(fabric, "rdma", node_id="agg")})
samp.load_sampler("synthetic", instance="s0/syn", component_id=1,
                  num_metrics=4)
samp.start_sampler("s0/syn", interval=0.5)
samp.listen("rdma", "s0:411")
agg.add_store("memory")
agg.add_producer("s0", "rdma", "s0:411", interval=0.5, sets=("s0/syn",))
eng.run(until=20.0)
traced = sorted({s.trace_id for s in agg.spans.spans})
print(json.dumps({"traced": traced,
                  "completed": [t.trace_id for t in agg.tracer.last()]}))
"""


class TestExemplarDeterminism:
    def test_traced_set_invariant_across_modes(self):
        plain = self._run({})
        assert plain["traced"], "exemplar sampling traced nothing"
        sanitized = self._run({"REPRO_SANITIZE": "1"})
        arena_off = self._run({"REPRO_ARENA": "0"})
        assert sanitized == plain
        assert arena_off == plain

    @staticmethod
    def _run(env_overrides):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env.pop("REPRO_SANITIZE", None)
        env["REPRO_ARENA"] = "1"
        env.update(env_overrides)
        out = subprocess.run([sys.executable, "-c", _DETERMINISM_SCRIPT],
                             env=env, capture_output=True, text=True,
                             timeout=120)
        assert out.returncode == 0, out.stderr
        return json.loads(out.stdout)


# ---------------------------------------------------------------------------
# repro-top rendering (no sockets)
# ---------------------------------------------------------------------------
class TestReproTopRender:
    def _row(self, **kw):
        from repro.obs import SELF_METRIC_NAMES
        base = {m: 0 for m in SELF_METRIC_NAMES}
        base.update(completeness_permille=987, samples=100)
        base.update(kw)
        return base

    def test_totals_then_rates(self):
        from repro.cli.repro_top_cli import render_fleet
        first = {"agg/self": self._row()}
        lines = render_fleet(first, None, 0.0)
        assert len(lines) == 2 and "agg" in lines[1]
        assert "98.7" in lines[1]
        second = {"agg/self": self._row(samples=150)}
        lines2 = render_fleet(second, first, 2.0)
        assert "25.0" in lines2[1]  # (150-100)/2 samples/s

    def test_empty_fleet_hint(self):
        from repro.cli.repro_top_cli import render_fleet
        lines = render_fleet({}, None, 0.0)
        assert any("ldmsd_self" in line for line in lines)
