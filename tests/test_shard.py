"""Sharded-parallel DES: conservative windows, byte-identity, toggles.

The contract under test (ROADMAP 3b): partitioning the cluster across
shard engines — in-process or across forked workers — must leave every
observable output byte-identical to the single-engine run restricted to
that shard's daemons: stored rows, CSV bytes, freshness, refusal
counters.  Windows are synchronized conservatively with lookahead
``min(base_latency, connect_latency / 2)``; zero-lookahead partitions
are rejected loudly at partition time.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv, sanitize
from repro.experiments.bw_day import run_day, run_day_sharded
from repro.experiments.fanin import run_point, sweep_transport
from repro.cluster.machine import Machine, blue_waters, plan_shards, shard_deploy
from repro.network.fattree import FatTree
from repro.sim.engine import Engine
from repro.sim.fleet import HsnFleetTrace, RateFleet
from repro.sim.shard import (
    RUNTIME,
    maybe_parallel,
    run_parallel,
    run_windowed,
    run_windowed_mp,
    runtime_snapshot,
    shards_default,
)
from repro.network.torus import GeminiTorus
from repro.transport.base import get_transport_profile
from repro.transport.simfabric import (
    ShardGateway,
    SimFabric,
    SimTransport,
    lookahead_of,
)
from repro.util.errors import ConfigError, SimulationError, TransportError

# Big latencies so byte-identity runs take few windows.
PROFILE = replace(get_transport_profile("sock"), base_latency=0.02,
                  connect_latency=0.2, per_byte=1e-9)


@pytest.fixture(autouse=True)
def _reset_shard_runtime():
    """The windowed drivers account into the process-global RUNTIME;
    keep each test hermetic."""
    RUNTIME.reset()
    yield
    RUNTIME.reset()


class World:
    def __init__(self, shard_id=None, nshards=2, lookahead=None, arena=None):
        self.engine = Engine()
        self.env = (SimEnv(self.engine) if arena is None
                    else SimEnv(self.engine, arena=arena))
        self.fabric = SimFabric(self.engine)
        self.gateway = None
        if shard_id is not None:
            self.gateway = ShardGateway(
                self.fabric, shard_id, nshards,
                lookahead_of(PROFILE) if lookahead is None else lookahead)


def _build_samplers(world, n, profile=PROFILE):
    daemons = []
    for i in range(n):
        x = SimTransport(world.fabric, profile, node_id=i)
        d = Ldmsd(f"n{i}", env=world.env, transports={"sock": x}, mem="64kB")
        d.load_sampler("synthetic", instance=f"n{i}/syn", component_id=i + 1,
                       num_metrics=4)
        d.start_sampler(f"n{i}/syn", interval=1.0)
        d.listen("sock", f"n{i}:411")
        daemons.append(d)
    return daemons


def _build_agg(world, n, profile=PROFILE, store="memory", **store_kwargs):
    agg = Ldmsd("agg", env=world.env,
                transports={"sock": SimTransport(world.fabric, profile,
                                                 node_id="agg")})
    st = agg.add_store(store, **store_kwargs)
    for i in range(n):
        agg.add_producer(f"n{i}", "sock", f"n{i}:411", interval=1.0,
                         sets=(f"n{i}/syn",))
    return agg, st


def _rows(store):
    return [(r.timestamp, r.producer, r.set_name,
             tuple(r.values.items()) if hasattr(r.values, "items")
             else tuple(r.values))
            for r in store.rows]


def _unsharded(n, duration, profile=PROFILE, arena=None, **store_kwargs):
    w = World(arena=arena)
    _build_samplers(w, n, profile)
    agg, store = _build_agg(w, n, profile, **store_kwargs)
    w.engine.run(until=duration)
    return w, agg, store


def _sharded(n, duration, profile=PROFILE, arena=None, **store_kwargs):
    """Samplers on shard 0, aggregator on shard 1, windowed in-process."""
    w0 = World(shard_id=0, arena=arena,
               lookahead=lookahead_of(profile))
    w1 = World(shard_id=1, arena=arena,
               lookahead=lookahead_of(profile))
    _build_samplers(w0, n, profile)
    for i in range(n):
        w1.gateway.add_route(f"n{i}:411", 0)
    agg, store = _build_agg(w1, n, profile, **store_kwargs)
    nwin = run_windowed([w0, w1], duration)
    return (w0, w1), agg, store, nwin


class TestLookahead:
    def test_profile_lookaheads(self):
        assert lookahead_of(get_transport_profile("sock")) == pytest.approx(40e-6)
        assert lookahead_of(get_transport_profile("rdma")) == pytest.approx(4e-6)
        assert lookahead_of(get_transport_profile("local")) == 0.0

    def test_zero_lookahead_gateway_rejected(self):
        w = World()
        with pytest.raises(ConfigError, match="zero lookahead"):
            ShardGateway(w.fabric, 0, 2, 0.0)

    def test_local_xprt_partition_rejected(self):
        with pytest.raises(ConfigError, match="lookahead"):
            plan_shards(16, 2, 4, l2_xprt="local")

    def test_torus_partition_rejected(self):
        with pytest.raises(ConfigError, match="torus"):
            plan_shards(16, 2, 4, network=blue_waters(16).network)
        with pytest.raises(ConfigError, match="torus"):
            Machine("bw", 16, network=GeminiTorus(dims=(2, 2, 2)),
                    node_indices=range(8))


class TestWindows:
    def test_run_window_accounting(self):
        eng = Engine()
        fired = []
        eng.call_at(0.5, fired.append, 1)
        n = eng.run_window(1.0)
        assert n == 1 and fired == [1]
        assert eng.windows_run == 1
        assert eng.now == 1.0 and eng.horizon == 1.0

    def test_emit_below_lookahead_rejected(self):
        w = World(shard_id=0, lookahead=0.5)
        with pytest.raises(TransportError, match="lookahead"):
            w.gateway.emit(1, "frame", 0.25, ("c", b"x"))

    def test_frame_exactly_on_window_edge_is_processed(self):
        # deliver_at == W_1: ingested at the barrier before window 1 and
        # processed because run deadlines are inclusive.
        w0 = World(shard_id=0, lookahead=0.5)
        w1 = World(shard_id=1, lookahead=0.5)
        w0.gateway.emit(1, "frame", 0.5, (("nope", 0), b"x"))
        nwin = run_windowed([w0, w1], 0.5)
        assert nwin == 1
        assert w1.engine.events_processed == 1
        assert w1.engine.now == 0.5

    def test_out_of_sync_engines_rejected(self):
        w0 = World(shard_id=0, lookahead=0.5)
        w1 = World(shard_id=1, lookahead=0.5)
        w0.engine.run(until=1.0)
        with pytest.raises(SimulationError, match="out of sync"):
            run_windowed([w0, w1], 2.0)

    def test_unknown_destination_shard_rejected(self):
        w0 = World(shard_id=0, lookahead=0.5)
        w1 = World(shard_id=1, lookahead=0.5)
        w0.gateway.emit(5, "frame", 1.0, (("c", 0), b"x"))
        with pytest.raises(SimulationError, match="unknown shard"):
            run_windowed([w0, w1], 0.5)


class TestByteIdentity:
    N = 4
    DUR = 30.0

    @pytest.mark.parametrize("arena", [True, False])
    def test_windowed_rows_and_freshness_match(self, arena):
        _, agg0, store0 = _unsharded(self.N, self.DUR, arena=arena)
        _, agg1, store1, nwin = _sharded(self.N, self.DUR, arena=arena)
        assert _rows(store0) == _rows(store1)
        assert len(store1.rows) > 0
        assert agg0.freshness.fleet(self.DUR) == agg1.freshness.fleet(self.DUR)
        assert nwin > 1  # actually windowed, not one big free-run

    def test_windowed_rows_match_under_sanitizer(self):
        prev = sanitize.configure("raise")
        try:
            _, _, store0 = _unsharded(self.N, self.DUR)
            _, _, store1, _ = _sharded(self.N, self.DUR)
            assert _rows(store0) == _rows(store1)
        finally:
            sanitize.configure(prev)

    def test_csv_bytes_match(self, tmp_path):
        def read_dir(p):
            return b"".join((p / name).read_bytes()
                            for name in sorted(os.listdir(p)))

        p0 = tmp_path / "unsharded"
        p0.mkdir()
        _, _, store0 = _unsharded(self.N, self.DUR, store="store_csv",
                                  path=str(p0))
        store0.close()
        p1 = tmp_path / "sharded"
        p1.mkdir()
        _, _, store1, _ = _sharded(self.N, self.DUR, store="store_csv",
                                   path=str(p1))
        store1.close()
        assert read_dir(p0) == read_dir(p1)
        assert read_dir(p0)

    def test_mp_workers_match_unsharded(self):
        _, agg0, store0 = _unsharded(self.N, self.DUR)
        rows0 = _rows(store0)
        n = self.N

        def build(shard_id):
            w = World(shard_id=shard_id)
            if shard_id == 0:
                _build_samplers(w, n)
                w.agg = w.store = None
            else:
                for i in range(n):
                    w.gateway.add_route(f"n{i}:411", 0)
                w.agg, w.store = _build_agg(w, n)
            return w

        def finish(w):
            snap = runtime_snapshot()
            if w.store is None:
                return (None, snap)
            return (_rows(w.store), snap)

        res = run_windowed_mp(build, finish, 2, self.DUR)
        rows_by_shard = [r[0] for r in res]
        assert rows_by_shard[0] is None
        assert rows_by_shard[1] == rows0
        for shard_id, (_, snap) in enumerate(res):
            assert snap["shards"] == 2 and snap["shard_id"] == shard_id
            assert snap["shard_windows"] > 1
            assert snap["shard_lookahead_ns"] == int(lookahead_of(PROFILE) * 1e9)
        # the aggregator shard emitted lookups/updates across the boundary
        assert res[1][1]["cross_shard_frames"] > 0

    def test_refusals_match_unsharded(self):
        # More samplers than the aggregator transport accepts: the
        # refusal count, surviving connections, and stored rows must all
        # match the single-engine run.
        tight = replace(PROFILE, max_connections=3)
        n, dur = 5, 10.0
        w, agg0, store0 = _unsharded(n, dur, profile=tight)
        agg0_x = agg0.transports["sock"]
        _, agg1, store1, _ = _sharded(n, dur, profile=tight)
        agg1_x = agg1.transports["sock"]
        assert agg0_x.refused_connections == agg1_x.refused_connections > 0
        c0 = sum(1 for p in agg0.producers.values() if p.connected)
        c1 = sum(1 for p in agg1.producers.values() if p.connected)
        assert c0 == c1 == 3
        assert _rows(store0) == _rows(store1)


class TestShardsToggle:
    def test_shards_default_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert shards_default() == 0
        for raw, want in (("0", 0), ("1", 0), ("2", 2), ("8", 8)):
            monkeypatch.setenv("REPRO_SHARDS", raw)
            assert shards_default() == want
        monkeypatch.setenv("REPRO_SHARDS", "nope")
        with pytest.raises(ConfigError):
            shards_default()
        monkeypatch.setenv("REPRO_SHARDS", "-2")
        with pytest.raises(ConfigError):
            shards_default()

    @pytest.mark.parametrize("arena_env", ["0", "1"])
    def test_sweep_identical_across_shard_counts(self, monkeypatch, arena_env):
        """REPRO_SHARDS=0/2/4 × REPRO_ARENA × sanitizer: same points,
        same per-point row digests (forked workers inherit the toggles)."""
        monkeypatch.setenv("REPRO_ARENA", arena_env)
        prev = sanitize.configure("raise")
        try:
            sizes = [4, 6, 9]

            def job(n):
                pt, info = run_point(n, "sock", interval=1.0, duration=5.0,
                                     scale=1024, digest=True)
                return pt, info["digest"]

            inline = [job(n) for n in sizes]
            for nshards in (2, 4):
                assert run_parallel(job, sizes, nshards) == inline
        finally:
            sanitize.configure(prev)

    def test_sweep_transport_respects_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        sharded = sweep_transport("sock", sizes=[4, 6], interval=1.0,
                                  duration=5.0, scale=1024)
        monkeypatch.setenv("REPRO_SHARDS", "0")
        inline = sweep_transport("sock", sizes=[4, 6], interval=1.0,
                                 duration=5.0, scale=1024)
        assert sharded == inline


class TestParallelRunner:
    def test_results_in_payload_order(self):
        res = run_parallel(lambda x: x * 10, list(range(7)), 3)
        assert res == [x * 10 for x in range(7)]

    def test_worker_error_propagates(self):
        def boom(x):
            if x == 2:
                raise ValueError("shard job exploded")
            return x

        with pytest.raises(SimulationError, match="shard job exploded"):
            run_parallel(boom, [1, 2, 3], 2)

    def test_maybe_parallel_inline_when_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "0")
        calls = []

        def job(x):
            calls.append(x)
            return x

        assert maybe_parallel(job, [1, 2, 3]) == [1, 2, 3]
        assert calls == [1, 2, 3]  # ran inline, in order


class TestFleetSlices:
    def test_hsn_trace_slices_are_bit_identical(self):
        torus = GeminiTorus(dims=(4, 4, 4))
        t = HsnFleetTrace(torus, sample_interval=60.0)
        t.add_flow_window(30.0, 290.0, 0, 9, 2e9)
        t.add_flow_window(120.0, 240.0, 4, 20, 3e9)
        full = t.run(600.0)
        for s0, s1 in ((0, 3), (3, 7), (7, 10)):
            part = t.run(600.0, sample_range=(s0, s1))
            assert np.array_equal(part.times, full.times[s0:s1])
            for d in ("X+", "Y+"):
                assert np.array_equal(part.stall_pct[d], full.stall_pct[d][s0:s1])
                assert np.array_equal(part.bw_pct[d], full.bw_pct[d][s0:s1])

    def test_hsn_bad_slice_rejected(self):
        t = HsnFleetTrace(GeminiTorus(dims=(4, 4, 4)))
        with pytest.raises(SimulationError, match="sample_range"):
            t.run(600.0, sample_range=(5, 99))

    def test_rate_fleet_slice_burns_jitter_stream(self):
        def fleet():
            f = RateFleet(8, sample_interval=10.0, seed=7)
            f.base_rate = 3.0
            f.add_rate_window(20.0, 70.0, [1, 3], 5.0)
            return f

        times, deltas = fleet().run(100.0)
        t_s, d_s = fleet().run(100.0, sample_range=(4, 8))
        assert np.array_equal(times[4:8], t_s)
        assert np.array_equal(deltas[4:8], d_s)

    def test_run_day_sharded_matches_single_process(self):
        kw = dict(dims=(4, 4, 4), sample_interval=3600.0, background_jobs=4)
        r0, _ = run_day(**kw)
        r1, _ = run_day_sharded(nshards=3, **kw)
        assert np.array_equal(r0.times, r1.times)
        for d in ("X+", "Y+"):
            assert np.array_equal(r0.stall_pct[d], r1.stall_pct[d])
            assert np.array_equal(r0.bw_pct[d], r1.bw_pct[d])

    def test_run_day_env_toggle_routes_to_sharded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        kw = dict(dims=(4, 4, 4), sample_interval=3600.0, background_jobs=4)
        r_sharded, _ = run_day(**kw)
        monkeypatch.setenv("REPRO_SHARDS", "0")
        r_plain, _ = run_day(**kw)
        assert np.array_equal(r_sharded.stall_pct["X+"], r_plain.stall_pct["X+"])


class TestSelfMetrics:
    def test_counters_live_after_windowed_run(self):
        (w0, w1), agg, _, nwin = _sharded(4, 10.0)
        snap = runtime_snapshot()
        assert snap["shards"] == 2
        assert snap["shard_windows"] == nwin
        assert snap["cross_shard_frames"] > 0
        assert snap["shard_lookahead_ns"] == int(lookahead_of(PROFILE) * 1e9)
        # the stats() block mirrors the runtime snapshot, schema-stable
        assert agg.stats()["shard"] == snap

    def test_ldmsd_self_row_carries_shard_plane(self):
        from repro.obs.selfmetrics import SELF_METRIC_NAMES, collect

        (w0, w1), agg, _, _ = _sharded(4, 10.0)
        row = dict(zip(SELF_METRIC_NAMES, collect(agg)))
        assert row["shard_windows"] > 0
        assert row["cross_shard_frames"] > 0
        assert row["shard_lookahead_ns"] == int(lookahead_of(PROFILE) * 1e9)
        assert row["shard_barrier_wait_ns"] == 0  # in-process: no barrier

    def test_schema_stable_zeros_when_off(self):
        from repro.obs.selfmetrics import SELF_METRIC_NAMES, collect

        w, agg, _ = _unsharded(2, 5.0)
        row = dict(zip(SELF_METRIC_NAMES, collect(agg)))
        assert (row["shard_windows"], row["shard_barrier_wait_ns"],
                row["cross_shard_frames"], row["shard_lookahead_ns"]) == (0, 0, 0, 0)
        assert agg.stats()["shard"] == {
            "shards": 0, "shard_id": 0, "shard_windows": 0,
            "shard_barrier_wait_ns": 0, "cross_shard_frames": 0,
            "shard_lookahead_ns": 0}


class TestMachinePartition:
    N, FANIN = 16, 4

    def _tree(self):
        return FatTree(n_nodes=self.N, radix=18, uplinks=9)

    def test_plan_contiguous_and_complete(self):
        plan = plan_shards(self.N, 2, self.FANIN, network=self._tree())
        assert plan.nshards == 2
        assert plan.groups == ((0, 1), (2, 3))
        all_nodes = sorted(i for shard in plan.nodes for i in shard)
        assert all_nodes == list(range(self.N))
        assert plan.lookahead > 0

    def test_plan_clamps_to_group_count(self):
        plan = plan_shards(self.N, 99, self.FANIN)
        assert plan.nshards == 4  # one shard per fan-in group

    def test_shard_deploy_matches_unsharded(self):
        kw = dict(plugins=[("meminfo", {})], interval=0.5, xprt="rdma",
                  fanin=self.FANIN)
        m = Machine("m", self.N, network=self._tree(), seed=3)
        dep = m.deploy_ldms(second_level=True, store="memory", **kw)
        m.run(2.0)
        rows0 = _rows(dep.store)

        plan = plan_shards(self.N, 2, self.FANIN, network=self._tree())
        machines, deps = [], []
        for s in range(plan.nshards):
            ms = Machine("m", self.N, network=self._tree(), seed=3,
                         node_indices=plan.nodes[s])
            deps.append(shard_deploy(ms, plan, s, store="memory", **kw))
            machines.append(ms)
        run_windowed(machines, 2.0, lookahead=plan.lookahead)
        assert rows0 == _rows(deps[0].store)
        assert len(rows0) > 0
        # non-L2 shards host no store
        assert deps[1].stores == []
