"""Focused unit tests for aggregator internals: state machine, stats,
pull phase jitter, and protocol edge cases."""

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv
from repro.core.aggregator import SetState
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport


@pytest.fixture
def world():
    eng = Engine()
    return eng, SimEnv(eng), SimFabric(eng)


def sampler(world, name="s0", metrics=4, interval=1.0):
    eng, env, fabric = world
    d = Ldmsd(name, env=env,
              transports={"rdma": SimTransport(fabric, "rdma", node_id=name)})
    d.load_sampler("synthetic", instance=f"{name}/syn", component_id=1,
                   num_metrics=metrics)
    d.start_sampler(f"{name}/syn", interval=interval)
    d.listen("rdma", f"{name}:411")
    return d


def aggregator(world, name="agg", **kw):
    eng, env, fabric = world
    return Ldmsd(name, env=env,
                 transports={"rdma": SimTransport(fabric, "rdma",
                                                  node_id=name)}, **kw)


class TestStateMachine:
    def test_lifecycle_states(self, world):
        eng, env, fabric = world
        sampler(world)
        agg = aggregator(world)
        prod = agg.add_producer("s0", "rdma", "s0:411", interval=1.0,
                                sets=("s0/syn",))
        upd = prod.updaters["s0/syn"]
        assert upd.state is SetState.NEW
        eng.run(until=0.3)
        assert upd.state is SetState.READY
        assert upd.mirror is not None

    def test_mirror_registered_for_reexport(self, world):
        eng, env, fabric = world
        sampler(world)
        agg = aggregator(world)
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0)
        eng.run(until=3.0)
        assert "s0/syn" in agg.set_names()

    def test_stop_producer_cleans_up(self, world):
        eng, env, fabric = world
        sampler(world)
        agg = aggregator(world)
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0)
        eng.run(until=3.0)
        used = agg.arena.used
        assert used > 0
        agg.remove_producer("s0")
        assert agg.arena.used < used
        assert "s0/syn" not in agg.set_names()
        eng.run(until=6.0)  # no residual timers fire into dead state

    def test_stats_accounting_consistent(self, world):
        eng, env, fabric = world
        sampler(world)
        agg = aggregator(world)
        agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=1.0)
        eng.run(until=10.0)
        st = agg.producers["s0"].stats
        assert st.updates_completed <= st.updates_issued
        assert (st.stored + st.skipped_stale + st.skipped_inconsistent
                <= st.updates_completed)
        assert st.stored == agg.records_delivered


class TestPhaseJitter:
    def test_deterministic_per_name(self, world):
        """The pull phase offset is a pure function of the producer
        name, so restarts don't move collection phases."""
        from repro.util.rngtools import stable_seed

        a = (stable_seed("producer-phase", "n17") % 997) / 997.0
        b = (stable_seed("producer-phase", "n17") % 997) / 997.0
        c = (stable_seed("producer-phase", "n18") % 997) / 997.0
        assert a == b
        assert a != c

    def test_producers_spread_over_phase_window(self, world):
        eng, env, fabric = world
        from repro.util.rngtools import stable_seed

        # The configured phases for a block of producer names are
        # well spread (no thundering herd onto the aggregator)...
        phases = {round((stable_seed("producer-phase", f"s{i}") % 997) / 997, 3)
                  for i in range(8)}
        assert len(phases) >= 7
        # ...and collection under those phases is complete for everyone.
        for i in range(8):
            sampler(world, f"s{i}")
        agg = aggregator(world)
        st = agg.add_store("memory")
        for i in range(8):
            agg.add_producer(f"s{i}", "rdma", f"s{i}:411", interval=1.0)
        eng.run(until=5.0)
        per = {}
        for r in st.rows:
            per[r.set_name] = per.get(r.set_name, 0) + 1
        assert len(per) == 8
        assert all(v >= 3 for v in per.values())

    def test_no_torn_reads_under_phase_lock_risk(self, world):
        """Samplers with sampling windows longer than the connect
        latency used to phase-lock with pulls; jitter prevents it."""
        eng, env, fabric = world
        sampler(world, "big", metrics=400)  # 670 us sampling window
        agg = aggregator(world)
        agg.add_producer("big", "rdma", "big:411", interval=1.0)
        eng.run(until=20.0)
        st = agg.producers["big"].stats
        assert st.stored > 0.8 * st.updates_completed


class TestProtocolEdges:
    def test_dir_of_empty_daemon(self, world):
        eng, env, fabric = world
        empty = Ldmsd("empty", env=env,
                      transports={"rdma": SimTransport(fabric, "rdma")})
        empty.listen("rdma", "empty:411")
        agg = aggregator(world)
        agg.add_producer("empty", "rdma", "empty:411", interval=1.0)
        eng.run(until=5.0)
        # Discovery keeps retrying without error.
        assert agg.producers["empty"].stats.updates_issued == 0

    def test_late_plugin_discovered_by_dir_retry(self, world):
        eng, env, fabric = world
        d = Ldmsd("late", env=env,
                  transports={"rdma": SimTransport(fabric, "rdma",
                                                   node_id="late")})
        d.listen("rdma", "late:411")
        agg = aggregator(world)
        st = agg.add_store("memory")
        agg.add_producer("late", "rdma", "late:411", interval=1.0)
        eng.run(until=3.0)

        def appear():
            d.load_sampler("synthetic", instance="late/syn", component_id=1,
                           num_metrics=2)
            d.start_sampler("late/syn", interval=1.0)

        eng.call_later(0.5, appear)
        eng.run(until=10.0)
        assert len(st.rows) >= 4

    def test_same_set_via_two_aggregators(self, world):
        """Multiple aggregators may pull the same sampler (§IV-A:
        'multiple aggregators may aggregate from the same sampler')."""
        eng, env, fabric = world
        sampler(world)
        a1, a2 = aggregator(world, "a1"), aggregator(world, "a2")
        s1, s2 = a1.add_store("memory"), a2.add_store("memory")
        a1.add_producer("s0", "rdma", "s0:411", interval=1.0)
        a2.add_producer("s0", "rdma", "s0:411", interval=2.0)
        eng.run(until=10.0)
        assert len(s1.rows) >= 8
        assert len(s2.rows) >= 4
        assert len(s1.rows) > len(s2.rows)

    def test_sampler_interval_change_visible_downstream(self, world):
        eng, env, fabric = world
        d = sampler(world, interval=2.0)
        agg = aggregator(world)
        st = agg.add_store("memory")
        agg.add_producer("s0", "rdma", "s0:411", interval=0.5)
        eng.run(until=10.0)
        slow_rows = len(st.rows)
        # Speed sampling up on the fly (§IV-A).
        d.stop_sampler("s0/syn")
        d.start_sampler("s0/syn", interval=0.5)
        eng.run(until=20.0)
        fast_rows = len(st.rows) - slow_rows
        assert fast_rows > 2.5 * slow_rows
