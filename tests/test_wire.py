"""Unit tests for the wire protocol: framing and message codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.core import wire
from repro.core.metric_set import SetInfo
from repro.util.errors import ReproError


class TestFraming:
    def test_roundtrip_single(self):
        raw = wire.encode_frame(wire.MsgType.DIR_REQ, 7, b"payload")
        frames = wire.FrameDecoder().feed(raw)
        assert len(frames) == 1
        f = frames[0]
        assert f.msg_type == wire.MsgType.DIR_REQ
        assert f.request_id == 7
        assert f.payload == b"payload"

    def test_multiple_frames_in_one_chunk(self):
        raw = wire.encode_frame(1, 1, b"a") + wire.encode_frame(2, 2, b"bb")
        frames = wire.FrameDecoder().feed(raw)
        assert [f.msg_type for f in frames] == [1, 2]
        assert [f.payload for f in frames] == [b"a", b"bb"]

    def test_byte_by_byte_feed(self):
        raw = wire.encode_frame(3, 99, b"hello world")
        dec = wire.FrameDecoder()
        frames = []
        for i in range(len(raw)):
            frames.extend(dec.feed(raw[i : i + 1]))
        assert len(frames) == 1
        assert frames[0].payload == b"hello world"

    def test_split_across_chunks(self):
        raw = wire.encode_frame(3, 1, b"x" * 1000)
        dec = wire.FrameDecoder()
        assert dec.feed(raw[:500]) == []
        frames = dec.feed(raw[500:])
        assert frames[0].payload == b"x" * 1000

    def test_decode_frame_rejects_trailing_garbage(self):
        raw = wire.encode_frame(1, 1) + wire.encode_frame(1, 2)
        with pytest.raises(ReproError):
            wire.decode_frame(raw)

    def test_corrupt_length_rejected(self):
        with pytest.raises(ReproError):
            wire.FrameDecoder().feed(b"\x01\x00\x00\x00abcdefgh")

    @given(st.binary(max_size=2048), st.integers(0, 127),
           st.integers(0, 2**64 - 1))
    def test_any_payload_roundtrips(self, payload, mtype, rid):
        # msg_type is 7 bits on the wire: the high bit is the
        # trace-context flag (wire.TRACE_FLAG).
        f = wire.decode_frame(wire.encode_frame(mtype, rid, payload))
        assert (f.msg_type, f.request_id, f.payload) == (mtype, rid, payload)

    @given(st.binary(max_size=512), st.integers(0, 127),
           st.integers(0, 2**64 - 1))
    def test_traced_payload_roundtrips(self, payload, mtype, rid):
        ctx = ((0, 42, 7, 2),)
        f = wire.decode_frame(wire.encode_frame(mtype, rid, payload,
                                                trace=ctx))
        assert (f.msg_type, f.request_id, f.payload, f.trace) == (
            mtype, rid, payload, ctx)


class TestDirCodec:
    def test_roundtrip(self):
        infos = [
            SetInfo("n0/meminfo", "meminfo", 7, 1000, 100),
            SetInfo("n0/lustre", "lustre", 42, 4000, 400),
        ]
        out = wire.unpack_dir_reply(wire.pack_dir_reply(infos))
        assert out == infos

    def test_empty_dir(self):
        assert wire.unpack_dir_reply(wire.pack_dir_reply([])) == []


class TestLookupCodec:
    def test_req_roundtrip(self):
        assert wire.unpack_lookup_req(wire.pack_lookup_req("node9/gpcdr")) == "node9/gpcdr"

    def test_reply_ok(self):
        status, rid, meta = wire.unpack_lookup_reply(
            wire.pack_lookup_reply(wire.E_OK, 55, b"metadata-bytes")
        )
        assert status == wire.E_OK
        assert rid == 55
        assert meta == b"metadata-bytes"

    def test_reply_error_carries_no_meta(self):
        status, rid, meta = wire.unpack_lookup_reply(
            wire.pack_lookup_reply(wire.E_NOENT)
        )
        assert status == wire.E_NOENT
        assert meta == b""


class TestUpdateCodec:
    def test_req_roundtrip(self):
        assert wire.unpack_update_req(wire.pack_update_req(1234)) == 1234

    def test_reply_roundtrip(self):
        status, data = wire.unpack_update_reply(
            wire.pack_update_reply(wire.E_OK, b"\x00\x01\x02")
        )
        assert status == wire.E_OK
        assert data == b"\x00\x01\x02"
