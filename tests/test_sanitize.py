"""Tests for the REPRO_SANITIZE runtime sanitizer (repro.core.sanitize).

Each test seeds a deliberate discipline violation — a torn write behind
the API's back, a DGN regression, metadata mutation, an inconsistent
read — and asserts the diagnostic fires (raise mode) or counts into a
telemetry registry (count mode) while sanctioned traffic stays silent.
"""

from __future__ import annotations

import struct

import pytest

from repro.core import sanitize
from repro.core.memory import Arena
from repro.core.metric import MetricType
from repro.core.metric_set import MetricSet
from repro.obs.registry import Telemetry


@pytest.fixture
def raise_mode():
    prev = sanitize.configure("raise")
    yield
    sanitize.configure(prev)


@pytest.fixture
def count_mode():
    prev = sanitize.configure("count")
    yield
    sanitize.configure(prev)


def make_set(name="node1/fix", n=3):
    arena = Arena(1 << 20)
    return MetricSet.create(
        name, "fix", [(f"m{i}", MetricType.U64, 1) for i in range(n)], arena
    )


def torn_poke(mset, value=0xDEAD):
    """Write a value byte-for-byte into the data chunk, skipping the API
    (and therefore the DGN bump) — the §IV-B violation."""
    struct.pack_into("<Q", mset._data, mset._compiled.offsets[0], value)


class TestRaiseMode:
    def test_sanctioned_traffic_is_silent(self, raise_mode):
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        s.begin_transaction()
        s.set_value("m0", 9)
        s.set_values([4, 5, 6])
        s.end_transaction(2.0)
        assert s.values() == [4, 5, 6]
        assert s.data_bytes()  # publish checkpoint passes

    def test_torn_write_detected_at_publish(self, raise_mode):
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        torn_poke(s)
        with pytest.raises(sanitize.SanitizerError, match="torn_write"):
            s.data_bytes()

    def test_torn_write_detected_at_next_transaction(self, raise_mode):
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        torn_poke(s)
        with pytest.raises(sanitize.SanitizerError, match="torn_write"):
            s.begin_transaction()

    def test_metadata_mutation_detected(self, raise_mode):
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        s._meta[40] ^= 0xFF
        with pytest.raises(sanitize.SanitizerError, match="meta_mutation"):
            s.data_bytes()

    def test_dgn_regression_detected_on_apply(self, raise_mode):
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        old = s.data_bytes()
        s.set_all([4, 5, 6], timestamp=2.0)
        fresh = s.data_bytes()
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        mirror.apply_data(fresh)
        with pytest.raises(sanitize.SanitizerError, match="dgn_regression"):
            mirror.apply_data(old)

    def test_inconsistent_apply_detected(self, raise_mode):
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        s.begin_transaction()
        s.set_values([7, 8, 9])
        torn = bytes(s._data)  # raw mid-transaction fetch
        s.end_transaction(2.0)
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        with pytest.raises(sanitize.SanitizerError, match="inconsistent_apply"):
            mirror.apply_data(torn)

    def test_inconsistent_mirror_read_detected(self, raise_mode):
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        # A fresh mirror has never had data applied: flag is clear.
        mirror = MetricSet.from_meta(s.meta_bytes(), Arena(1 << 20))
        with pytest.raises(sanitize.SanitizerError, match="inconsistent_read"):
            mirror.values_tuple()
        mirror.apply_data(s.data_bytes())
        assert mirror.values() == [1, 2, 3]  # consistent now: silent

    def test_producer_side_reads_unchecked(self, raise_mode):
        # A producer may read its own set mid-transaction.
        s = make_set()
        s.set_all([1, 2, 3], timestamp=1.0)
        s.begin_transaction()
        s.set_value("m0", 5)
        assert s.get("m0") == 5
        s.end_transaction(2.0)


class TestCountMode:
    def test_violations_count_into_registered_registry(self, count_mode):
        obs = Telemetry(enabled=True)
        sanitize.register_registry(obs)
        s = make_set("node2/fix")
        s.set_all([1, 2, 3], timestamp=1.0)
        torn_poke(s)
        data = s.data_bytes()  # no raise in count mode
        assert len(data) == s.data_size
        assert obs.counter("sanitizer.torn_write").value == 1
        assert obs.counter("sanitizer.violations").value == 1

    def test_register_registry_idempotent(self, count_mode):
        obs = Telemetry(enabled=True)
        sanitize.register_registry(obs)
        sanitize.register_registry(obs)
        s = make_set("node3/fix")
        s.set_all([1, 2, 3], timestamp=1.0)
        torn_poke(s)
        s.data_bytes()
        assert obs.counter("sanitizer.violations").value == 1


class TestDisabled:
    def test_no_shadow_when_off(self):
        prev = sanitize.configure("off")
        try:
            s = make_set("node4/fix")
            assert s._shadow is None
            s.set_all([1, 2, 3], timestamp=1.0)
            torn_poke(s)
            s.data_bytes()  # no checks, no raise
        finally:
            sanitize.configure(prev)

    def test_mode_parsing(self):
        assert sanitize._parse_mode("") == "off"
        assert sanitize._parse_mode("0") == "off"
        assert sanitize._parse_mode("1") == "raise"
        assert sanitize._parse_mode("raise") == "raise"
        assert sanitize._parse_mode("count") == "count"
        assert sanitize._parse_mode("obs") == "count"
        with pytest.raises(ValueError):
            sanitize._parse_mode("loudly")


class TestPipelineUnderSanitizer:
    def test_sim_pipeline_runs_clean(self, raise_mode):
        """A small sample->transport->store DES run stays violation-free."""
        import repro.plugins  # noqa: F401  (register plugins)
        from repro.core import Ldmsd, SimEnv
        from repro.sim.engine import Engine
        from repro.transport.simfabric import SimFabric, SimTransport

        engine = Engine()
        fabric = SimFabric(engine)
        env = SimEnv(engine)
        samp = Ldmsd("samp", env=env,
                     transports={"sock": SimTransport(fabric, "sock",
                                                      node_id="samp")})
        aggr = Ldmsd("aggr", env=env,
                     transports={"sock": SimTransport(fabric, "sock",
                                                      node_id="aggr")})
        samp.load_sampler("synthetic", instance="samp/synth",
                          num_metrics=8, pattern="counter")
        samp.start_sampler("samp/synth", interval=1.0)
        samp.listen("sock", "samp:411")
        store = aggr.add_store("memory")
        aggr.add_producer("samp", "sock", "samp:411", interval=1.0,
                          sets=("samp/synth",))
        engine.run(until=10.0)
        assert store.records_stored > 0
        samp.shutdown()
        aggr.shutdown()
