"""Tests for the cluster layer: machines, deployment, scheduler, OOM."""

import numpy as np
import pytest

import repro.plugins  # noqa: F401
from repro.cluster import JobSpec, JobState, Scheduler, blue_waters, chama
from repro.cluster.machine import Machine
from repro.network.torus import GeminiTorus
from repro.util.errors import ConfigError, SimulationError


class TestMachineBuilders:
    def test_chama_shape(self):
        m = chama(n_nodes=16)
        assert len(m.nodes) == 16
        assert m.nodes[0].profile.ncpus == 16
        assert m.nodes[0].fs.exists("/proc/net/rpc/nfs")
        assert m.flow_engine is None  # fat tree, not torus

    def test_blue_waters_shape(self):
        m = blue_waters(n_nodes=16)
        assert len(m.nodes) == 16
        assert m.nodes[0].gpcdr is not None
        assert m.flow_engine is not None
        assert not m.nodes[0].fs.exists("/proc/net/rpc/nfs")

    def test_bw_nodes_share_gemini_counters(self):
        m = blue_waters(n_nodes=8)
        # Node 0 and 1 share Gemini 0 and see identical gpcdr values.
        assert m.nodes[0].gpcdr is m.nodes[1].gpcdr
        assert m.nodes[2].gpcdr is not m.nodes[0].gpcdr

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ConfigError):
            Machine("m", n_nodes=100, network=GeminiTorus(dims=(2, 2, 2)))

    def test_full_torus_dims_pin_geometry(self):
        m = blue_waters(n_nodes=8, full_torus_dims=(4, 4, 4))
        assert m.network.dims == (4, 4, 4)


class TestDeployment:
    def test_level_counts(self):
        m = chama(n_nodes=32)
        dep = m.deploy_ldms(interval=5.0, fanin=8)
        assert len(dep.samplers) == 32
        assert len(dep.level1) == 4
        assert dep.level2 is not None
        assert len(dep.stores) == 1

    def test_no_second_level_stores_on_l1(self):
        m = blue_waters(n_nodes=8)
        dep = m.deploy_ldms(interval=5.0, fanin=4, second_level=False)
        assert dep.level2 is None
        assert len(dep.stores) == len(dep.level1) == 2

    def test_store_property_requires_single(self):
        m = blue_waters(n_nodes=8)
        dep = m.deploy_ldms(interval=5.0, fanin=4, second_level=False)
        with pytest.raises(ConfigError):
            dep.store

    def test_collects_all_nodes(self):
        m = chama(n_nodes=12)
        dep = m.deploy_ldms(interval=2.0, fanin=6,
                            plugins=[("loadavg", {})])
        m.run(until=15.0)
        store = dep.store
        assert len(store.set_names()) == 12
        assert len(store.rows) >= 12 * 4

    def test_standby_connections_present(self):
        m = chama(n_nodes=8)
        dep = m.deploy_ldms(interval=2.0, fanin=4, standby=True,
                            plugins=[("loadavg", {})])
        m.run(until=5.0)
        agg0 = dep.level1[0]
        standbys = [p for n, p in agg0.producers.items()
                    if n.startswith("standby-")]
        assert len(standbys) == 4
        assert all(not p.active and p.connected for p in standbys)

    def test_component_ids_match_nodes(self):
        m = chama(n_nodes=4)
        dep = m.deploy_ldms(interval=2.0, plugins=[("loadavg", {})])
        m.run(until=5.0)
        rows = dep.store.select(set_name="n2/loadavg")
        assert rows and set(rows[0].component_ids) == {3}

    def test_monitoring_traffic_accounted(self):
        m = chama(n_nodes=8)
        m.deploy_ldms(interval=1.0, plugins=[("loadavg", {})])
        m.run(until=10.0)
        assert m.monitor_bytes > 0


@pytest.fixture
def sched_world():
    m = chama(n_nodes=16)
    return m, Scheduler(m, oom_interval=1.0)


class TestScheduler:
    def test_fcfs_runs_job(self, sched_world):
        m, sched = sched_world
        job = sched.submit(JobSpec("j", n_nodes=4, duration=10.0))
        m.run(until=15.0)
        assert job.state is JobState.COMPLETED
        assert job.start_time == 0.0
        assert job.end_time == pytest.approx(10.0)

    def test_queueing_when_full(self, sched_world):
        m, sched = sched_world
        j1 = sched.submit(JobSpec("big", n_nodes=16, duration=10.0))
        j2 = sched.submit(JobSpec("waits", n_nodes=4, duration=5.0))
        m.run(until=30.0)
        assert j2.start_time >= j1.end_time

    def test_oversized_job_rejected(self, sched_world):
        m, sched = sched_world
        with pytest.raises(SimulationError):
            sched.submit(JobSpec("huge", n_nodes=999, duration=1.0))

    def test_workload_applied_and_reset(self, sched_world):
        m, sched = sched_world
        sched.submit(JobSpec("j", n_nodes=2, duration=10.0,
                             cpu_user_frac=0.75))
        m.run(until=5.0)
        assert m.nodes[0].host.cpu_user_frac == 0.75
        assert m.nodes[2].host.cpu_user_frac == 0.0  # not allocated
        m.run(until=15.0)
        assert m.nodes[0].host.cpu_user_frac == 0.0  # job ended

    def test_memory_growth(self, sched_world):
        m, sched = sched_world
        sched.submit(JobSpec("leak", n_nodes=2, duration=100.0,
                             mem_active_kb=1024,
                             mem_growth_kb_s=1000.0, update_interval=1.0))
        m.run(until=50.0)
        assert m.nodes[0].host.mem_active_kb == pytest.approx(
            1024 + 1000 * 49, rel=0.05)

    def test_oom_kill(self, sched_world):
        m, sched = sched_world
        total = m.nodes[0].mem_total_kb
        job = sched.submit(JobSpec("oom", n_nodes=2, duration=1e6,
                                   mem_active_kb=total * 0.5,
                                   mem_growth_kb_s=total / 20.0,
                                   update_interval=1.0))
        m.run(until=60.0)
        assert job.state is JobState.OOM_KILLED
        assert any(ev == "oom" for _, ev, _, _ in sched.log)
        # Nodes were freed and reset.
        assert m.nodes[0].host.mem_active_kb < total * 0.1

    def test_mem_profile_callable(self, sched_world):
        m, sched = sched_world
        sched.submit(JobSpec("scripted", n_nodes=1, duration=100.0,
                             mem_profile=lambda t, slot: 1000.0 * (1 + t),
                             update_interval=1.0))
        m.run(until=11.0)
        assert m.nodes[0].host.mem_active_kb == pytest.approx(11000.0, rel=0.1)

    def test_kill(self, sched_world):
        m, sched = sched_world
        job = sched.submit(JobSpec("victim", n_nodes=2, duration=1e6))
        m.run(until=5.0)
        sched.kill(job)
        assert job.state is JobState.KILLED
        m.run(until=10.0)

    def test_job_log_events(self, sched_world):
        m, sched = sched_world
        sched.submit(JobSpec("j", n_nodes=2, duration=5.0))
        m.run(until=10.0)
        events = [ev for _, ev, _, _ in sched.log]
        assert events == ["submitted", "start", "end"]

    def test_last_job_of_node(self, sched_world):
        m, sched = sched_world
        job = sched.submit(JobSpec("j", n_nodes=2, duration=5.0))
        m.run(until=10.0)
        assert sched.job_of_node(0) is None  # finished
        assert sched.last_job_of_node(0) is job

    def test_delayed_submission(self, sched_world):
        m, sched = sched_world
        job = sched.submit(JobSpec("later", n_nodes=2, duration=5.0),
                           delay=7.0)
        m.run(until=20.0)
        assert job.start_time == pytest.approx(7.0)

    def test_bad_growth_shape_rejected(self, sched_world):
        m, sched = sched_world
        with pytest.raises(SimulationError):
            # Nodes are free, so the job starts (and validates) at submit.
            sched.submit(JobSpec("bad", n_nodes=4, duration=5.0,
                                 mem_growth_kb_s=np.ones(3)))

    def test_torus_jobs_create_flows(self):
        m = blue_waters(n_nodes=16)
        sched = Scheduler(m)
        job = sched.submit(JobSpec("net", n_nodes=8, duration=20.0,
                                   net_bps_per_node=1e9))
        m.run(until=5.0)
        assert m.flow_engine.load.max() > 0
        m.run(until=30.0)
        assert m.flow_engine.load.max() == 0  # removed at job end
