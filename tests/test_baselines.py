"""Tests for the comparison baselines: Ganglia, RRD, collectl."""

import numpy as np
import pytest

from repro.baselines import (
    Collectl,
    GangliaMetric,
    Gmetad,
    Gmond,
    RoundRobinDatabase,
    RRArchive,
)
from repro.nodefs.host import HostModel


@pytest.fixture
def host():
    clock = {"t": 0.0}
    return clock, HostModel("n0", clock=lambda: clock["t"], seed=5)


def mem_metrics(*keys):
    return [GangliaMetric.meminfo(k.lower(), k) for k in keys]


class TestGmond:
    def test_collects_values(self, host):
        clock, h = host
        gmond = Gmond(h.fs, mem_metrics("MemTotal"))
        value = gmond.collect_metric(gmond.metrics[0], 0.0)
        assert value == h.profile.mem_total_kb

    def test_metadata_carried_every_send(self, host):
        """Unlike LDMS, every Ganglia message carries metric metadata."""
        _, h = host
        sink_msgs = []

        class Sink:
            def receive(self, host_, metric, t, value, message):
                sink_msgs.append(message)

        gmond = Gmond(h.fs, mem_metrics("MemFree"), sink=Sink(),
                      value_threshold=0.0, time_threshold=0.5)
        gmond.collect_and_send(0.0)
        gmond.collect_and_send(1.0)
        assert len(sink_msgs) == 2
        for msg in sink_msgs:
            assert 'NAME="memfree"' in msg
            assert 'UNITS="kB"' in msg
            assert 'SLOPE=' in msg

    def test_value_threshold_suppresses(self, host):
        clock, h = host
        gmond = Gmond(h.fs, mem_metrics("MemTotal"),  # constant value
                      value_threshold=10.0, time_threshold=1e9)
        gmond.collect_and_send(0.0)
        gmond.collect_and_send(1.0)
        gmond.collect_and_send(2.0)
        assert gmond.messages_sent == 1  # first send only
        assert gmond.suppressed == 2

    def test_time_threshold_forces_send(self, host):
        clock, h = host
        gmond = Gmond(h.fs, mem_metrics("MemTotal"),
                      value_threshold=1e12, time_threshold=60.0)
        gmond.collect_and_send(0.0)
        gmond.collect_and_send(30.0)
        gmond.collect_and_send(61.0)
        assert gmond.messages_sent == 2  # t=0 and t=61

    def test_each_metric_rereads_file(self, host):
        """The architectural cost driver: N metrics = N file reads."""
        _, h = host
        reads = []
        orig_read = h.fs.read

        def counting_read(path):
            reads.append(path)
            return orig_read(path)

        h.fs.read = counting_read
        gmond = Gmond(h.fs, mem_metrics("MemTotal", "MemFree", "Cached",
                                        "Active", "Dirty"))
        gmond.collect_and_send(0.0)
        assert len(reads) == 5


class TestGmetad:
    def test_stores_to_rrd(self, host):
        _, h = host
        gmetad = Gmetad()
        gmond = Gmond(h.fs, mem_metrics("MemFree"), sink=gmetad,
                      value_threshold=0.0, time_threshold=0.5,
                      host="node7")
        for t in range(10):
            gmond.collect_and_send(float(t))
        ts, vs = gmetad.series("node7", "memfree")
        assert len(ts) == 10

    def test_scalability_ceiling_tracked(self):
        gmetad = Gmetad()
        for i in range(Gmetad.SCALABILITY_CEILING + 5):
            gmetad.receive(f"host{i}", "m", 0.0, 1.0, "<METRIC/>")
        assert gmetad.over_ceiling_events == 5


class TestRRD:
    def test_consolidation(self):
        rra = RRArchive(steps=4, rows=10, cf="AVERAGE")
        for i in range(8):
            rra.update(float(i), float(i))
        ts, vs = rra.series()
        assert len(vs) == 2
        assert vs[0] == pytest.approx(np.mean([0, 1, 2, 3]))

    def test_max_consolidation(self):
        rra = RRArchive(steps=2, rows=4, cf="MAX")
        for v in (1.0, 5.0, 2.0, 3.0):
            rra.update(0.0, v)
        _, vs = rra.series()
        assert list(vs) == [5.0, 3.0]

    def test_aging_out(self):
        """The paper's §IV-E point: RRD overwrites old data."""
        rra = RRArchive(steps=1, rows=5)
        for i in range(12):
            rra.update(float(i), float(i))
        assert rra.overwritten == 7
        ts, vs = rra.series()
        assert len(vs) == 5
        assert vs.min() == 7.0  # rows 0..6 are gone

    def test_bad_cf_rejected(self):
        with pytest.raises(ValueError):
            RRArchive(steps=1, rows=1, cf="MODE")

    def test_rrd_fetch_resolution(self):
        rrd = RoundRobinDatabase()
        for i in range(500):
            rrd.update(float(i), float(i))
        ts, vs = rrd.fetch(max_age_points=100)  # fine archive suffices
        assert len(vs) > 0
        ts2, vs2 = rrd.fetch(max_age_points=5000)  # needs consolidation
        assert len(vs2) <= len(vs) or True  # coarser archive
        assert rrd.updates == 500


class TestCollectl:
    def test_sample_format(self, host):
        clock, h = host
        lines = []
        c = Collectl(h.fs, lines.append)
        c.sample(0.0)
        clock["t"] = 1.0
        line = c.sample(1.0)
        assert "cpu user=" in line
        assert "mem free=" in line

    def test_record_subsecond(self, host):
        """'Only collectl supports subsecond collection intervals'."""
        clock, h = host
        c = Collectl(h.fs, lambda s: None)

        def advance(dt):
            clock["t"] += dt

        n = c.record(lambda: clock["t"], advance, duration=1.0, interval=0.1)
        assert n == 10

    def test_bad_interval_rejected(self, host):
        _, h = host
        c = Collectl(h.fs, lambda s: None)
        with pytest.raises(ValueError):
            c.record(lambda: 0.0, lambda dt: None, 1.0, 0.0)
