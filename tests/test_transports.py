"""Tests for the transport layer: local, real TCP, simulated fabric."""

import threading

import pytest

from repro.core import wire
from repro.sim.engine import Engine
from repro.sim.resources import CpuCore
from repro.transport import (
    LocalTransport,
    PROFILES,
    SimFabric,
    SimTransport,
    SockTransport,
    get_transport_profile,
)
from repro.util.errors import ConfigError, TransportError


def frame(payload=b"x"):
    return wire.encode_frame(wire.MsgType.DIR_REQ, 1, payload)


class TestProfiles:
    def test_known_transports(self):
        assert set(PROFILES) >= {"sock", "rdma", "ugni", "local"}

    def test_rdma_zero_target_cpu(self):
        assert get_transport_profile("rdma").target_cpu_per_read == 0.0
        assert get_transport_profile("ugni").target_cpu_per_read == 0.0
        assert get_transport_profile("sock").target_cpu_per_read > 0.0

    def test_fanin_ordering(self):
        # §IV-A: ugni fan-in exceeds sock/rdma.
        assert (get_transport_profile("ugni").max_connections
                > get_transport_profile("sock").max_connections)

    def test_unknown_transport(self):
        with pytest.raises(ConfigError):
            get_transport_profile("carrier-pigeon")


class TestLocalTransport:
    def test_connect_and_send(self):
        x = LocalTransport()
        got = []
        server_eps = []
        x.listen("a", lambda ep: server_eps.append(ep))
        client = {}
        x.connect("a", lambda ep: client.update(ep=ep))
        server_eps[0].on_message = got.append
        client["ep"].send(frame(b"hello"))
        assert len(got) == 1
        assert wire.decode_frame(got[0]).payload == b"hello"

    def test_connect_unknown_address(self):
        x = LocalTransport()
        result = {}
        x.connect("missing", lambda ep: result.update(ep=ep))
        assert result["ep"] is None

    def test_duplicate_listen_rejected(self):
        x = LocalTransport()
        x.listen("a", lambda ep: None)
        with pytest.raises(TransportError):
            x.listen("a", lambda ep: None)

    def test_listener_close_frees_address(self):
        x = LocalTransport()
        lst = x.listen("a", lambda ep: None)
        lst.close()
        x.listen("a", lambda ep: None)  # no error

    def test_rdma_read_roundtrip(self):
        x = LocalTransport()
        eps = []
        x.listen("a", eps.append)
        client = {}
        x.connect("a", lambda ep: client.update(ep=ep))
        eps[0].register_region(7, lambda: b"region-bytes")
        out = []
        client["ep"].rdma_read(7, out.append)
        assert out == [b"region-bytes"]

    def test_rdma_read_missing_region(self):
        x = LocalTransport()
        eps = []
        x.listen("a", eps.append)
        client = {}
        x.connect("a", lambda ep: client.update(ep=ep))
        out = []
        client["ep"].rdma_read(99, out.append)
        assert out == [None]

    def test_close_notifies_peer(self):
        x = LocalTransport()
        eps = []
        x.listen("a", eps.append)
        client = {}
        x.connect("a", lambda ep: client.update(ep=ep))
        closed = []
        eps[0].on_close = lambda: closed.append(True)
        client["ep"].close()
        assert closed == [True]
        with pytest.raises(TransportError):
            client["ep"].send(frame())

    def test_duplicate_region_rejected(self):
        x = LocalTransport()
        eps = []
        x.listen("a", eps.append)
        x.connect("a", lambda ep: None)
        eps[0].register_region(1, lambda: b"")
        with pytest.raises(TransportError):
            eps[0].register_region(1, lambda: b"")


class TestSockTransport:
    """Real TCP on localhost."""

    def _pair(self):
        x = SockTransport()
        accepted = []
        server_ready = threading.Event()

        def on_conn(ep):
            accepted.append(ep)
            server_ready.set()

        lst = x.listen(("127.0.0.1", 0), on_conn)
        client = {}
        done = threading.Event()

        def connected(ep):
            client["ep"] = ep
            done.set()

        x.connect(("127.0.0.1", lst.port), connected)
        assert done.wait(5.0)
        assert server_ready.wait(5.0)
        return lst, accepted[0], client["ep"]

    def test_send_receive(self):
        lst, server, client = self._pair()
        got = threading.Event()
        frames = []

        def on_msg(raw):
            frames.append(wire.decode_frame(raw))
            got.set()

        server.on_message = on_msg
        client.send(frame(b"over tcp"))
        assert got.wait(5.0)
        assert frames[0].payload == b"over tcp"
        client.close()
        lst.close()

    def test_large_frame(self):
        lst, server, client = self._pair()
        payload = bytes(range(256)) * 4096  # 1 MB
        got = threading.Event()
        frames = []

        def on_msg(raw):
            frames.append(wire.decode_frame(raw))
            got.set()

        server.on_message = on_msg
        client.send(frame(payload))
        assert got.wait(10.0)
        assert frames[0].payload == payload
        client.close()
        lst.close()

    def test_rdma_read_emulation(self):
        lst, server, client = self._pair()
        server.register_region(5, lambda: b"server-memory")
        done = threading.Event()
        out = []

        def complete(data):
            out.append(data)
            done.set()

        client.rdma_read(5, complete)
        assert done.wait(5.0)
        assert out == [b"server-memory"]
        client.close()
        lst.close()

    def test_rdma_read_unknown_region_returns_none(self):
        lst, server, client = self._pair()
        done = threading.Event()
        out = []
        client.rdma_read(404, lambda d: (out.append(d), done.set()))
        assert done.wait(5.0)
        assert out == [None]
        client.close()
        lst.close()

    def test_peer_close_detected(self):
        lst, server, client = self._pair()
        closed = threading.Event()
        client.on_close = closed.set
        server.close()
        assert closed.wait(5.0)
        lst.close()

    def test_connect_refused(self):
        x = SockTransport()
        done = threading.Event()
        result = {}

        def connected(ep):
            result["ep"] = ep
            done.set()

        x.connect(("127.0.0.1", 1), connected)  # port 1: refused
        assert done.wait(15.0)
        assert result["ep"] is None


class TestSimFabric:
    def _world(self):
        eng = Engine()
        fabric = SimFabric(eng)
        return eng, fabric

    def test_message_latency(self):
        eng, fabric = self._world()
        server = SimTransport(fabric, "rdma", node_id="s")
        client = SimTransport(fabric, "rdma", node_id="c")
        eps = []
        server.listen("s:1", eps.append)
        got = []
        cl = {}
        client.connect("s:1", lambda ep: cl.update(ep=ep))
        eng.run()
        eps[0].on_message = lambda raw: got.append(eng.now)
        t0 = eng.now
        cl["ep"].send(frame())
        eng.run()
        assert got and got[0] > t0  # nonzero latency

    def test_rdma_read_charges_no_target_cpu(self):
        eng, fabric = self._world()
        core = CpuCore()
        server = SimTransport(fabric, "rdma", node_id="s", core=core)
        client = SimTransport(fabric, "rdma", node_id="c")
        eps = []
        server.listen("s:1", eps.append)
        cl = {}
        client.connect("s:1", lambda ep: cl.update(ep=ep))
        eng.run()
        eps[0].register_region(1, lambda: bytes(1000))
        out = []
        cl["ep"].rdma_read(1, out.append)
        eng.run()
        assert out == [bytes(1000)]
        assert core.busy_total == 0.0

    def test_sock_read_charges_target_cpu(self):
        eng, fabric = self._world()
        core = CpuCore()
        server = SimTransport(fabric, "sock", node_id="s", core=core)
        client = SimTransport(fabric, "sock", node_id="c")
        eps = []
        server.listen("s:1", eps.append)
        cl = {}
        client.connect("s:1", lambda ep: cl.update(ep=ep))
        eng.run()
        eps[0].register_region(1, lambda: bytes(1000))
        out = []
        cl["ep"].rdma_read(1, out.append)
        eng.run()
        assert out == [bytes(1000)]
        assert core.busy_total > 0.0

    def test_connection_capacity_refusal(self):
        eng, fabric = self._world()
        from dataclasses import replace

        profile = replace(get_transport_profile("sock"), max_connections=2)
        server = SimTransport(fabric, profile, node_id="s")
        server.listen("s:1", lambda ep: None)
        results = []
        for i in range(4):
            client = SimTransport(fabric, "sock", node_id=f"c{i}")
            client.connect("s:1", results.append)
        eng.run()
        ok = [r for r in results if r is not None]
        assert len(ok) == 2
        assert server.refused_connections == 2

    def test_traffic_accounting(self):
        eng, fabric = self._world()
        seen = []
        fabric.traffic_cb = lambda s, d, n, t: seen.append((s, d, n))
        server = SimTransport(fabric, "rdma", node_id="s")
        client = SimTransport(fabric, "rdma", node_id="c")
        server.listen("s:1", lambda ep: None)
        cl = {}
        client.connect("s:1", lambda ep: cl.update(ep=ep))
        eng.run()
        cl["ep"].send(frame(b"abc"))
        eng.run()
        assert any(s == "c" and d == "s" for s, d, n in seen)
        assert fabric.total_bytes > 0

    def test_latency_fn_applied(self):
        eng = Engine()
        fabric = SimFabric(eng, latency_fn=lambda s, d, n: 1.0)
        server = SimTransport(fabric, "rdma", node_id="s")
        client = SimTransport(fabric, "rdma", node_id="c")
        eps = []
        server.listen("s:1", eps.append)
        cl = {}
        client.connect("s:1", lambda ep: cl.update(ep=ep))
        eng.run()
        got = []
        eps[0].on_message = lambda raw: got.append(eng.now)
        t0 = eng.now
        cl["ep"].send(frame())
        eng.run()
        assert got[0] >= t0 + 1.0

    def test_registered_memory_accounting(self):
        eng, fabric = self._world()
        server = SimTransport(fabric, "rdma", node_id="s")
        server.listen("s:1", lambda ep: None)
        for i in range(3):
            SimTransport(fabric, "rdma", node_id=f"c{i}").connect(
                "s:1", lambda ep: None)
        eng.run()
        # "a similar amount of registered memory per connection" (§IV-D)
        assert server.registered_memory == 3 * 4096
