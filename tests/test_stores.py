"""Tests for the store plugins: CSV, flat file, SOS, memory."""

import os

import numpy as np
import pytest

import repro.plugins  # noqa: F401
from repro.core.store import StorePolicy, StoreRecord
from repro.plugins.stores.csv_store import CsvStore
from repro.plugins.stores.flatfile import FlatFileStore
from repro.plugins.stores.memstore import MemoryStore
from repro.plugins.stores.sos import SosReader, SosStore, rollup_schema
from repro.util.errors import ConfigError, StoreError


def rec(t=1.0, producer="n0", set_name="n0/mem", schema="mem",
        names=("a", "b"), comp=(1, 1), values=(10, 20)):
    return StoreRecord(t, producer, set_name, schema, tuple(names),
                       tuple(comp), tuple(values))


class TestStoreRecord:
    def test_filtered_projection(self):
        r = rec(names=("a", "b", "c"), comp=(1, 1, 1), values=(1, 2, 3))
        f = r.filtered(["a", "c"])
        assert f.names == ("a", "c")
        assert f.values == (1, 3)

    def test_filtered_unknown_metric_rejected(self):
        with pytest.raises(ConfigError):
            rec().filtered(["zzz"])


class TestStorePolicy:
    def test_schema_match(self):
        p = StorePolicy(schema="mem")
        assert p.matches(rec())
        assert not p.matches(rec(schema="cpu"))

    def test_producer_match(self):
        p = StorePolicy(producers=frozenset({"n1"}))
        assert not p.matches(rec())
        assert p.matches(rec(producer="n1"))

    def test_projection(self):
        p = StorePolicy(metrics=("b",))
        out = p.project(rec())
        assert out.names == ("b",)


class TestCsvStore:
    def _store(self, tmp_path, **cfg):
        s = CsvStore()
        s.config(path=str(tmp_path), buffer_lines=1, **cfg)
        return s

    def test_rows_written(self, tmp_path):
        s = self._store(tmp_path)
        s.submit(rec(t=1.0))
        s.submit(rec(t=2.0, values=(11, 21)))
        s.close()
        lines = (tmp_path / "mem.csv").read_text().splitlines()
        assert lines[0] == "Time,Producer,CompId,a,b"
        assert lines[1] == "1.000000,n0,1,10,20"
        assert lines[2].endswith("11,21")

    def test_altheader(self, tmp_path):
        s = self._store(tmp_path, altheader=True)
        s.submit(rec())
        s.close()
        assert (tmp_path / "mem.HEADER").exists()
        data = (tmp_path / "mem.csv").read_text()
        assert not data.startswith("Time")

    def test_schema_split(self, tmp_path):
        s = self._store(tmp_path)
        s.submit(rec(schema="mem"))
        s.submit(rec(schema="cpu", set_name="n0/cpu"))
        s.close()
        assert (tmp_path / "mem.csv").exists()
        assert (tmp_path / "cpu.csv").exists()

    def test_layout_change_rejected(self, tmp_path):
        s = self._store(tmp_path)
        s.submit(rec())
        with pytest.raises(StoreError):
            s.submit(rec(names=("x", "y")))
        s.close()

    def test_float_formatting(self, tmp_path):
        s = self._store(tmp_path)
        s.submit(rec(values=(1.5, 2.25)))
        s.close()
        assert "1.5,2.25" in (tmp_path / "mem.csv").read_text()

    def test_buffering_flush(self, tmp_path):
        s = CsvStore()
        s.config(path=str(tmp_path), buffer_lines=100)
        s.submit(rec())
        assert (not (tmp_path / "mem.csv").exists()
                or (tmp_path / "mem.csv").stat().st_size == 0)
        s.flush()
        assert (tmp_path / "mem.csv").stat().st_size > 0
        s.close()

    def test_bytes_written(self, tmp_path):
        s = self._store(tmp_path)
        s.submit(rec())
        s.flush()
        assert s.bytes_written() == (tmp_path / "mem.csv").stat().st_size
        s.close()

    def test_missing_path_rejected(self):
        with pytest.raises(ConfigError):
            CsvStore().config()

    def test_store_many_drain_order_is_sorted(self, tmp_path, monkeypatch):
        # Regression (found by repro-flow): the batched path collected
        # touched schemas in a set and drained in set-iteration order,
        # which varies with PYTHONHASHSEED.  Drain order must be sorted
        # regardless of record arrival order.
        drained: list[str] = []
        orig = CsvStore._drain

        def spy(self, schema):
            drained.append(schema)
            return orig(self, schema)

        monkeypatch.setattr(CsvStore, "_drain", spy)
        s = self._store(tmp_path)
        s.store_many([
            rec(schema="zeta", set_name="n0/zeta"),
            rec(schema="alpha", set_name="n0/alpha"),
            rec(schema="mid", set_name="n0/mid"),
        ])
        s.close()
        assert drained[:3] == ["alpha", "mid", "zeta"]

    def test_policy_applied_via_submit(self, tmp_path):
        s = self._store(tmp_path)
        s.policy = StorePolicy(schema="other")
        s.submit(rec())
        s.close()
        assert not (tmp_path / "mem.csv").exists()
        assert s.records_stored == 0


class TestFlatFileStore:
    def test_file_per_metric(self, tmp_path):
        s = FlatFileStore()
        s.config(path=str(tmp_path), buffer_lines=1)
        s.submit(rec())
        s.close()
        # Paper: "Active and Cached ... stored in 2 separate files".
        assert (tmp_path / "mem" / "a").exists()
        assert (tmp_path / "mem" / "b").exists()
        line = (tmp_path / "mem" / "a").read_text().splitlines()[0]
        assert line == "1.000000 1 10"

    def test_appends(self, tmp_path):
        s = FlatFileStore()
        s.config(path=str(tmp_path), buffer_lines=1)
        s.submit(rec(t=1.0))
        s.submit(rec(t=2.0))
        s.close()
        assert len((tmp_path / "mem" / "a").read_text().splitlines()) == 2

    def test_unsafe_names_sanitized(self, tmp_path):
        s = FlatFileStore()
        s.config(path=str(tmp_path), buffer_lines=1)
        s.submit(rec(names=("open#stats.snx11024", "b"),
                     values=(5, 6)))
        s.close()
        assert (tmp_path / "mem" / "open#stats.snx11024").exists()


class TestSosStore:
    def test_roundtrip(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path))
        for k in range(10):
            s.submit(rec(t=float(k), values=(k, k * 2)))
        s.close()
        reader = SosReader(str(tmp_path), "mem")
        assert len(reader) == 10
        assert reader.metric_names == ["a", "b"]
        records = list(reader)
        assert records[3].values == (3.0, 6.0)
        assert records[3].component_id == 1

    def test_time_range_query(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path))
        for k in range(100):
            s.submit(rec(t=float(k)))
        s.close()
        reader = SosReader(str(tmp_path), "mem")
        out = reader.range(10.0, 20.0)
        assert len(out) == 10
        assert out[0].timestamp == 10.0
        assert out[-1].timestamp == 19.0

    def test_layout_change_rejected(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path))
        s.submit(rec())
        with pytest.raises(StoreError):
            s.submit(rec(names=("z",), comp=(1,), values=(0,)))
        s.close()

    def test_bytes_written_positive(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path))
        s.submit(rec())
        assert s.bytes_written() > 0
        s.close()

    def test_out_of_order_appends_range(self, tmp_path):
        # Regression: arrival timestamps are not monotone across
        # producers, so the append-ordered .sidx is not binary
        # searchable.  The old reader bisected it raw and returned
        # wrong (silently incomplete) ranges; the index must be sorted
        # at load.
        s = SosStore()
        s.config(path=str(tmp_path))
        for t in (5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0):
            s.submit(rec(t=t, values=(t, 2 * t)))
        s.close()
        reader = SosReader(str(tmp_path), "mem")
        assert [r.timestamp for r in reader.range(2.0, 8.0)] == [
            2.0, 3.0, 5.0, 7.0]
        # iteration order agrees with the sorted index
        assert [r.timestamp for r in reader] == sorted(
            (5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0))
        # values travel with their (re-ordered) timestamps
        assert reader.range(3.0, 4.0)[0].values == (3.0, 6.0)

    def test_equal_timestamps_keep_append_order(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path))
        s.submit(rec(t=1.0, values=(10, 0)))
        s.submit(rec(t=1.0, values=(20, 0)))
        s.submit(rec(t=0.5, values=(5, 0)))
        s.close()
        reader = SosReader(str(tmp_path), "mem")
        # sort is stable on (timestamp, offset): ties stay in append order
        assert [r.values[0] for r in reader.range(1.0, 2.0)] == [10.0, 20.0]

    def test_refresh_folds_in_new_appends(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path))
        s.submit(rec(t=1.0))
        s.flush()
        reader = SosReader(str(tmp_path), "mem")
        assert len(reader) == 1
        # an append-ordered tail that is *older* than what the reader
        # already holds must still land in sorted position
        s.submit(rec(t=3.0))
        s.submit(rec(t=0.5))
        s.flush()
        assert reader.refresh() == 2
        assert [r.timestamp for r in reader] == [0.5, 1.0, 3.0]
        assert reader.refresh() == 0  # idempotent: tail already consumed
        s.close()

    def test_multi_component_record_rejected(self, tmp_path):
        # Regression: a record spanning several component ids used to
        # store component_ids[0] and silently drop the rest.  The SOS
        # record format has one u32 slot — reject loudly and count it.
        s = SosStore()
        s.config(path=str(tmp_path))
        with pytest.raises(StoreError):
            s.submit(rec(comp=(1, 2)))
        assert s.multi_component_rejected == 1
        assert s.records_failed == 1
        # uniform component ids (the common projected-row shape) store fine
        s.submit(rec(t=2.0, comp=(7, 7)))
        s.close()
        records = list(SosReader(str(tmp_path), "mem"))
        assert [r.component_id for r in records] == [7]

    def test_reopen_layout_mismatch_rejected(self, tmp_path):
        # Regression: reopening a container after restart appended
        # whatever shape arrived, corrupting the fixed-width stream.
        # The .schema.json sidecar is the layout contract.
        s = SosStore()
        s.config(path=str(tmp_path))
        s.submit(rec(t=1.0))
        s.close()
        s2 = SosStore()
        s2.config(path=str(tmp_path))
        with pytest.raises(StoreError, match="layout mismatch"):
            s2.submit(rec(t=2.0, names=("x", "y")))
        s2.close()
        # the container is untouched by the rejected append
        assert len(SosReader(str(tmp_path), "mem")) == 1

    def test_reopen_matching_layout_appends(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path))
        s.submit(rec(t=1.0))
        s.close()
        s2 = SosStore()
        s2.config(path=str(tmp_path))
        s2.submit(rec(t=2.0))
        # reopened containers are flagged: the query tier's hot window
        # must not claim to cover rows it never saw ingested
        assert "mem" in s2.preexisting
        s2.close()
        assert [r.timestamp for r in SosReader(str(tmp_path), "mem")] == [
            1.0, 2.0]


class TestSosRollups:
    def test_mean_buckets_per_component(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path), rollups="10")
        for k in range(25):  # a = k, b = 2k; buckets [0,10) [10,20) [20,30)
            s.submit(rec(t=float(k), values=(k, 2 * k)))
        s.close()  # seals the open [20,30) bucket
        reader = SosReader(str(tmp_path), rollup_schema("mem", 10))
        assert reader.metric_names == ["a", "b"]
        rolled = list(reader)
        assert [r.timestamp for r in rolled] == [0.0, 10.0, 20.0]
        assert rolled[0].values == (4.5, 9.0)    # mean of 0..9
        assert rolled[1].values == (14.5, 29.0)  # mean of 10..19
        assert rolled[2].values == (22.0, 44.0)  # mean of 20..24

    def test_rollup_sidecar_names_base_and_level(self, tmp_path):
        import json

        s = SosStore()
        s.config(path=str(tmp_path), rollups="10")
        for k in range(12):
            s.submit(rec(t=float(k)))
        s.close()
        with open(tmp_path / "mem.r10.schema.json", encoding="utf-8") as f:
            meta = json.load(f)
        assert meta["base"] == "mem"
        assert meta["level"] == 10
        assert meta["agg"] == "mean"

    def test_components_bucketed_separately(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path), rollups="10")
        for k in range(10):
            s.submit(rec(t=float(k), comp=(1, 1), values=(1, 1)))
            s.submit(rec(t=float(k), comp=(2, 2), values=(3, 3)))
        s.close()
        rolled = list(SosReader(str(tmp_path), rollup_schema("mem", 10)))
        by_comp = {r.component_id: r.values[0] for r in rolled}
        assert by_comp == {1: 1.0, 2: 3.0}

    def test_bad_rollup_spec_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            SosStore().config(path=str(tmp_path), rollups="10,-5")

    def test_rollup_levels_parsed_sorted_deduped(self, tmp_path):
        s = SosStore()
        s.config(path=str(tmp_path), rollups="60, 10,60")
        assert s.rollups == (10, 60)
        s.close()


class TestMemoryStore:
    def _filled(self):
        s = MemoryStore()
        s.config()
        for k in range(5):
            s.submit(rec(t=float(k), producer="n0", set_name="n0/mem",
                         values=(k, 2 * k)))
            s.submit(rec(t=float(k), producer="n1", set_name="n1/mem",
                         values=(10 + k, 20 + k)))
        return s

    def test_select_by_producer(self):
        s = self._filled()
        assert len(s.select(producer="n0")) == 5

    def test_select_by_set_name(self):
        s = self._filled()
        assert len(s.select(set_name="n1/mem")) == 5

    def test_select_time_window(self):
        s = self._filled()
        assert len(s.select(t0=1.0, t1=3.0)) == 4  # 2 producers x 2 samples

    def test_series(self):
        s = self._filled()
        ts, vs = s.series("a", producer="n0")
        assert list(vs) == [0, 1, 2, 3, 4]

    def test_series_missing_metric_empty(self):
        s = self._filled()
        ts, vs = s.series("nope")
        assert len(ts) == 0

    def test_matrix_by_set_names(self):
        s = self._filled()
        times, grid = s.matrix("a", set_names=["n0/mem", "n1/mem"])
        assert grid.shape == (2, 5)
        assert grid[1, 0] == 10

    def test_matrix_requires_exactly_one_axis(self):
        s = self._filled()
        with pytest.raises(ValueError):
            s.matrix("a")
        with pytest.raises(ValueError):
            s.matrix("a", set_names=["x"], producers=["y"])

    def test_matrix_missing_cells_nan(self):
        s = MemoryStore()
        s.config()
        s.submit(rec(t=1.0, set_name="n0/mem"))
        s.submit(rec(t=2.0, set_name="n1/mem"))
        _, grid = s.matrix("a", set_names=["n0/mem", "n1/mem"])
        assert np.isnan(grid[0, 1]) and np.isnan(grid[1, 0])

    def test_introspection(self):
        s = self._filled()
        assert s.producers() == ["n0", "n1"]
        assert s.schemas() == ["mem"]
        assert s.set_names() == ["n0/mem", "n1/mem"]
        assert s.component_ids() == [1]
