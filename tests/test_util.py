"""Unit tests for repro.util: units, stats, rng tools, errors."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    ConfigError,
    GIB,
    Histogram,
    KIB,
    MIB,
    Summary,
    format_interval,
    format_size,
    normalized,
    parse_interval,
    parse_size,
    percentile,
    spawn_rng,
    stable_seed,
)
from repro.util.stats import overlap_fraction


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_kb(self):
        assert parse_size("512kB") == 512 * KIB

    def test_mb(self):
        assert parse_size("2MB") == 2 * MIB

    def test_gb_fractional(self):
        assert parse_size("1.5GB") == int(1.5 * GIB)

    def test_bare_number_string(self):
        assert parse_size("1000") == 1000

    def test_case_insensitive(self):
        assert parse_size("1mib") == MIB

    def test_negative_int_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("5parsecs")


class TestFormatSize:
    def test_bytes(self):
        assert format_size(100) == "100B"

    def test_kb(self):
        assert format_size(45056) == "44.0kB"

    def test_mb(self):
        assert format_size(2 * MIB) == "2.0MB"

    def test_roundtrip_order(self):
        # format then parse lands within rounding error
        n = 37 * MIB
        assert abs(parse_size(format_size(n)) - n) / n < 0.05


class TestParseInterval:
    def test_number_is_seconds(self):
        assert parse_interval(2.5) == 2.5

    def test_seconds_suffix(self):
        assert parse_interval("20s") == 20.0

    def test_microseconds(self):
        assert parse_interval("400us") == pytest.approx(400e-6)

    def test_milliseconds(self):
        assert parse_interval("100ms") == pytest.approx(0.1)

    def test_minutes(self):
        assert parse_interval("1min") == 60.0

    def test_hours(self):
        assert parse_interval("24h") == 86400.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            parse_interval(-3)

    def test_format_roundtrip(self):
        for s in (0.0004, 0.02, 1.0, 20.0, 90.0, 7200.0):
            assert parse_interval(format_interval(s)) == pytest.approx(s)


class TestHistogram:
    def test_from_samples_counts(self):
        h = Histogram.from_samples([1.0, 1.5, 2.0, 9.0], lo=0, hi=10, nbins=10)
        assert h.total == 4

    def test_out_of_range_clipped_not_dropped(self):
        h = Histogram.from_samples([-5.0, 50.0], lo=0, hi=10, nbins=10)
        assert h.total == 2
        assert h.counts[0] == 1 and h.counts[-1] == 1

    def test_tail_count(self):
        h = Histogram.from_samples([1, 2, 3, 98, 99], lo=0, hi=100, nbins=100)
        assert h.tail_count(90) == 2

    def test_tail_fraction(self):
        h = Histogram.from_samples([1] * 99 + [99], lo=0, hi=100, nbins=10)
        assert h.tail_fraction(90) == pytest.approx(0.01)

    def test_add_accumulates(self):
        h = Histogram.from_samples([1.0], lo=0, hi=10, nbins=5)
        h.add([2.0, 3.0])
        assert h.total == 3

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(edges=np.array([1.0, 1.0, 2.0]))

    def test_rows_shape(self):
        h = Histogram.from_samples([5.0], lo=0, hi=10, nbins=10)
        rows = h.rows()
        assert len(rows) == 10
        assert sum(c for _, c in rows) == 1

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=1, max_size=200))
    def test_total_always_equals_sample_count(self, samples):
        h = Histogram.from_samples(samples, lo=0, hi=100, nbins=17)
        assert h.total == len(samples)


class TestSummary:
    def test_basic(self):
        s = Summary.from_samples([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0 and s.max == 3.0
        assert s.range == pytest.approx(2.0)

    def test_single_sample_std_zero(self):
        s = Summary.from_samples([5.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.from_samples([])


class TestNormalized:
    def test_values(self):
        assert normalized([10.0, 11.0], 10.0).tolist() == [1.0, 1.1]

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalized([1.0], 0.0)


class TestOverlapFraction:
    def test_disjoint(self):
        assert overlap_fraction(np.array([0.0, 1.0]), np.array([2.0, 3.0])) == 0.0

    def test_contained(self):
        assert overlap_fraction(np.array([0.0, 10.0]), np.array([2.0, 3.0])) == 1.0

    def test_partial(self):
        f = overlap_fraction(np.array([0.0, 2.0]), np.array([1.0, 3.0]))
        assert f == pytest.approx(0.5)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0


class TestRngTools:
    def test_stable_seed_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_stable_seed_key_sensitivity(self):
        assert stable_seed("a") != stable_seed("b")

    def test_spawn_rng_reproducible(self):
        a = spawn_rng(42, "x").integers(0, 1 << 30, 10)
        b = spawn_rng(42, "x").integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_spawn_rng_independent_streams(self):
        a = spawn_rng(42, "x").integers(0, 1 << 30, 10)
        b = spawn_rng(42, "y").integers(0, 1 << 30, 10)
        assert (a != b).any()

    @given(st.integers(min_value=0, max_value=2**31))
    def test_stable_seed_in_u32_range(self, n):
        assert 0 <= stable_seed(n) < 2**32


class TestTimeutil:
    def test_sleep_exists_and_sleeps(self):
        from repro.util import timeutil

        t0 = timeutil.monotonic()
        timeutil.sleep(0.01)
        assert timeutil.monotonic() - t0 >= 0.005

    def test_clock_functions_return_floats(self):
        from repro.util import timeutil

        assert isinstance(timeutil.monotonic(), float)
        assert isinstance(timeutil.perf_counter(), float)
        assert isinstance(timeutil.wall_clock(), float)
