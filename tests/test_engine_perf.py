"""Determinism tests for the engine fast paths.

The bucketed calendar queue, the zero-allocation periodic timers, the
inline pool-grant fast path, and the GC pause are pure performance
mechanisms: with the wheel on or off, a same-seed run must produce the
same simulated history — byte-for-byte identical stored output — and
equal-time events must fire in FIFO scheduling order, including work
appended to the live batch from inside a firing callback.
"""

import gc
import os

import pytest

import repro.plugins  # noqa: F401
from repro.core import Ldmsd, SimEnv
from repro.core.env import RealEnv
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport


def _read_csv_dir(path: str) -> bytes:
    """Concatenate every CSV file the store wrote, in sorted order."""
    blobs = []
    for name in sorted(os.listdir(path)):
        with open(os.path.join(path, name), "rb") as f:
            blobs.append(f.read())
    return b"".join(blobs)


def _fanin_world(timer_wheel: bool, csv_path: str, n: int = 16):
    """A small sock fan-in: n samplers, one aggregator, CSV storage."""
    eng = Engine(timer_wheel=timer_wheel)
    env = SimEnv(eng)
    fabric = SimFabric(eng)
    samplers = []
    for i in range(n):
        x = SimTransport(fabric, "sock", node_id=i)
        d = Ldmsd(f"n{i}", env=env, transports={"sock": x}, mem="8kB")
        d.load_sampler("synthetic", instance=f"n{i}/syn", component_id=i + 1,
                       num_metrics=4)
        d.start_sampler(f"n{i}/syn", interval=1.0)
        d.listen("sock", f"n{i}:411")
        samplers.append(d)
    agg = Ldmsd("agg", env=env,
                transports={"sock": SimTransport(fabric, "sock", node_id="agg")})
    store = agg.add_store("store_csv", path=csv_path)
    for i in range(n):
        agg.add_producer(f"n{i}", "sock", f"n{i}:411", interval=1.0,
                         sets=(f"n{i}/syn",))
    return eng, agg, store


class TestWheelTransparency:
    """Acceptance: wheel on/off runs are byte-identical."""

    def test_fanin_csv_identical_with_wheel_on_and_off(self, tmp_path):
        outputs = {}
        for wheel in (True, False):
            path = tmp_path / f"wheel_{wheel}"
            path.mkdir()
            eng, agg, store = _fanin_world(wheel, str(path))
            eng.run(until=10.0)
            store.close()
            outputs[wheel] = _read_csv_dir(str(path))
        assert outputs[True] == outputs[False]
        assert outputs[True]  # non-empty: rows actually flushed

    def test_event_counts_identical_with_wheel_on_and_off(self, tmp_path):
        counts = {}
        for wheel in (True, False):
            eng, agg, _ = _fanin_world(wheel, str(tmp_path / f"c{wheel}.csv"))
            eng.run(until=5.0)
            counts[wheel] = eng.events_processed
        assert counts[True] == counts[False]


class TestEqualTimeFifo:
    """Equal-timestamp events fire in scheduling order."""

    def test_same_instant_callbacks_fire_in_schedule_order(self):
        eng = Engine()
        hits = []
        for i in range(10):
            eng.call_later(1.0, hits.append, i)
        eng.run()
        assert hits == list(range(10))

    def test_zero_delay_append_joins_live_batch(self):
        """Work scheduled at ``now`` from inside a firing callback runs
        at the same instant, after the already-scheduled batch items —
        exactly where a plain heap would pop it."""
        eng = Engine()
        hits = []

        def first():
            hits.append("first")
            eng.call_later(0.0, lambda: hits.append("appended"))

        eng.call_later(2.0, first)
        eng.call_later(2.0, lambda: hits.append("second"))
        eng.run()
        assert hits == ["first", "second", "appended"]
        assert eng.now == 2.0

    def test_mid_batch_append_chain_preserves_fifo(self):
        eng = Engine(timer_wheel=True)
        hits = []

        def chain(depth):
            hits.append(depth)
            if depth < 3:
                eng.call_later(0.0, chain, depth + 1)

        eng.call_later(1.0, chain, 0)
        eng.call_later(1.0, hits.append, "peer")
        eng.run()
        assert hits == [0, "peer", 1, 2, 3]

    def test_step_matches_run_order(self):
        """step()-driven execution drains batches in the same order as
        the run() fast loop."""
        order_run, order_step = [], []
        for mode in ("run", "step"):
            eng = Engine()
            sink = order_run if mode == "run" else order_step
            for i in range(5):
                eng.call_later(0.5, sink.append, i)
            eng.call_later(0.5, lambda s=sink: eng.call_later(0.0, s.append, "x"))
            if mode == "run":
                eng.run()
            else:
                while eng.peek() != float("inf"):
                    eng.step()
        assert order_run == order_step


class TestPeriodicFastPath:
    def test_schedule_periodic_matches_env_call_every_times(self):
        eng = Engine()
        ticks = []
        env = SimEnv(eng)
        env.call_every(0.25, lambda: ticks.append(eng.now))
        eng.run(until=2.0)
        assert ticks == pytest.approx([0.25 * k for k in range(1, 8 + 1)])
        assert eng.timer_fastpath_ticks == len(ticks)

    def test_cancel_stops_periodic(self):
        eng = Engine()
        ticks = []
        handle = SimEnv(eng).call_every(1.0, lambda: ticks.append(eng.now))
        eng.call_later(3.5, handle.cancel)
        eng.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert handle.cancelled

    def test_timer_cancel_is_noop_fire(self):
        eng = Engine()
        hits = []
        t = eng.call_later(1.0, hits.append, "a")
        eng.call_later(1.0, hits.append, "b")
        t.cancel()
        eng.run()
        assert hits == ["b"]


class TestInlinePoolGrant:
    """The free-worker inline grant must preserve cost accounting and
    completion timing."""

    def test_fixed_cost_task_completes_at_cost_horizon(self):
        eng = Engine()
        env = SimEnv(eng)
        pool = env.make_pool("p", 1)
        done = []
        eng.call_later(1.0, lambda: pool.submit(lambda: done.append(eng.now),
                                                cost=0.25))
        eng.run()
        assert done == [1.25]
        assert pool.busy_time == pytest.approx(0.25)
        assert pool.tasks_run == 1

    def test_queued_tasks_serialize_on_one_worker(self):
        eng = Engine()
        env = SimEnv(eng)
        pool = env.make_pool("p", 1)
        done = []

        def go():
            pool.submit(lambda: done.append(("a", eng.now)), cost=1.0)
            pool.submit(lambda: done.append(("b", eng.now)), cost=1.0)

        eng.call_later(0.0, go)
        eng.run()
        assert done == [("a", 1.0), ("b", 2.0)]
        assert pool.busy_time == pytest.approx(2.0)

    def test_lazy_cost_still_priced_at_grant(self):
        """Callable costs are evaluated at the grant slot, not at
        submit: work queued at the same instant is included."""
        eng = Engine()
        env = SimEnv(eng)
        pool = env.make_pool("p", 1)
        rows = []
        done = []

        def seal():
            return 0.1 * len(rows)

        def go():
            pool.submit(lambda: done.append(eng.now), cost=seal)
            rows.extend([1, 2, 3])  # same-instant appends must be priced

        eng.call_later(1.0, go)
        eng.run()
        assert done == [pytest.approx(1.3)]
        assert pool.busy_time == pytest.approx(0.3)


class TestGcPause:
    def test_run_restores_collector_state(self):
        eng = Engine()
        eng.call_later(1.0, lambda: None)
        assert gc.isenabled()
        eng.run()
        assert gc.isenabled()

    def test_run_pauses_collection_while_draining(self):
        eng = Engine()
        seen = []
        eng.call_later(1.0, lambda: seen.append(gc.isenabled()))
        eng.run()
        assert seen == [False]

    def test_env_toggle_disables_pause(self, monkeypatch):
        monkeypatch.setenv("REPRO_GC_PAUSE", "0")
        eng = Engine()
        seen = []
        eng.call_later(1.0, lambda: seen.append(gc.isenabled()))
        eng.run()
        assert seen == [True]

    def test_disabled_collector_stays_disabled(self):
        eng = Engine()
        eng.call_later(1.0, lambda: None)
        gc.disable()
        try:
            eng.run()
            assert not gc.isenabled()
        finally:
            gc.enable()


class TestRealEnvTimerCompaction:
    def test_cancelled_timers_are_compacted(self):
        env = RealEnv()
        try:
            handles = [env.call_later(60.0, lambda: None) for _ in range(300)]
            assert len(env._heap) == 300
            for h in handles:
                h.cancel()
            # Cancellation alone marks; compaction runs on the next
            # scheduling once the cancelled share passes the threshold.
            env.call_later(60.0, lambda: None)
            assert len(env._heap) < 300
        finally:
            env.shutdown()
