"""Does monitoring perturb applications?  (§V in miniature.)

Runs PSNAP and two bulk-synchronous application models under
unmonitored / 20 s / 1 s LDMS configurations and prints the comparison
the paper makes: tail growth for PSNAP, normalized runtimes with
observation ranges for the applications.

    python examples/app_impact.py
"""

from __future__ import annotations

from repro.analysis.impact import compare_runs
from repro.apps import Cth, MiniGhost, Psnap
from repro.apps.base import MonitoringSpec
from repro.util.rngtools import spawn_rng


def main() -> None:
    rng = spawn_rng(17, "impact-example")
    specs = {
        "20s": MonitoringSpec.interval_20s(),
        "1s": MonitoringSpec.interval_1s(),
    }

    # --- PSNAP: the microscope -------------------------------------------
    psnap = Psnap(n_nodes=32, iterations=100_000, tasks_per_node=16)
    print("PSNAP: 100 us loops, 32 nodes x 16 tasks "
          f"({psnap.total_loops:,} loops)")
    for label, spec in [("unmonitored", MonitoringSpec.unmonitored()),
                        *specs.items()]:
        hist = psnap.run_histogram(spec, rng)
        frac = hist.tail_fraction(180.0)
        print(f"  {label:12s} loops delayed beyond 180us: {frac:.2e}")
    print("  -> sampling leaves a visible but tiny tail; each fire delays "
          "exactly one loop of one task\n")

    # --- applications: does the tail matter? -------------------------------
    for app in (MiniGhost(n_nodes=512), Cth(n_nodes=128, iterations=300)):
        base = app.ensemble(MonitoringSpec.unmonitored(), rng, repeats=3)
        monitored = {lbl: app.ensemble(spec, rng, repeats=3)
                     for lbl, spec in specs.items()}
        print(f"{app.name} ({app.n_nodes} nodes, {app.iterations} iters):")
        for s in compare_runs(base, monitored):
            print(f"  {s.label:12s} normalized mean {s.normalized_mean:.4f} "
                  f"range [{s.normalized_lo:.4f}, {s.normalized_hi:.4f}] "
                  f"p={s.p_value:.2f}")
        print("  -> monitored means sit inside the unmonitored run-to-run "
              "range (the paper's conclusion)\n")


if __name__ == "__main__":
    main()
