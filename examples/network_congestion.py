"""HSN congestion analysis on a simulated Blue Waters (Figs. 9/10 in
miniature).

Builds an 8x8x8 Gemini torus (1,024 nodes), runs six hours of scheduled
traffic including one badly-placed communication-heavy job, samples the
gpcdr-derived link metrics once a minute through the fleet fast path,
and then locates the congestion the way the paper does: persistent
bands in node-time, plus a 3-D torus snapshot with wraparound region
detection.

    python examples/network_congestion.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.heatmap import band_durations
from repro.analysis.torus_view import congestion_regions, extent, region_wraps
from repro.network.torus import GeminiTorus
from repro.sim.fleet import HsnFleetTrace
from repro.util.rngtools import spawn_rng

HOUR = 3600.0


def main() -> None:
    torus = GeminiTorus(dims=(8, 8, 8))
    trace = HsnFleetTrace(torus, sample_interval=60.0)
    rng = spawn_rng(3, "congestion-example")

    # Background: well-placed compact jobs.
    for _ in range(12):
        t0 = float(rng.uniform(0, 4 * HOUR))
        size = int(rng.integers(16, 64))
        start = int(rng.integers(0, torus.n_nodes - size))
        trace.add_job(t0, t0 + float(rng.uniform(0.5, 2.0)) * HOUR,
                      np.arange(start, start + size),
                      float(rng.uniform(0.2e9, 0.8e9)), pattern="ring")

    # The offender: a fragmented job whose traffic funnels through a
    # handful of X links for four hours.
    bad_nodes = rng.choice(torus.n_nodes, size=96, replace=False)
    trace.add_job(1 * HOUR, 5 * HOUR, bad_nodes, 3.5e9, pattern="random",
                  rng=rng)

    print("running 6 simulated hours of link-load integration...")
    res = trace.run(6 * HOUR, directions=("X+", "Y+"))
    grid = res.stall_pct["X+"]

    t_i, g_i, vmax = res.argmax("X+")
    print(f"\npeak X+ stall: {vmax:.1f}% on Gemini {torus.coord(g_i)} "
          f"at t={res.times[t_i] / 3600:.2f} h")

    longest = band_durations(grid, 20.0, sample_interval=60.0)
    hot = np.argsort(longest)[-5:][::-1]
    print("\nGeminis stalled >20% the longest:")
    for g in hot:
        print(f"  {torus.coord(int(g))}: {longest[g] / 3600:.2f} h")

    coords, values = res.snapshot("X+", t_i)
    regions = congestion_regions(torus, values.astype(float), threshold=15.0)
    print(f"\ncongestion regions (>15% stall) at the peak: "
          f"{[len(r) for r in regions[:5]]} Geminis each")
    if regions:
        r0 = regions[0]
        print(f"largest region: max={r0.max_value:.1f}% "
              f"X-extent={extent(torus, r0, 0)} "
              f"wraps-in-X={region_wraps(torus, r0, 0)}")

    # Which applications share those links?  (the §II motivation)
    affected = {g for r in regions[:3] for g in r.geminis}
    victims = [n for n in range(torus.n_nodes)
               if torus.node_gemini(n) in affected]
    print(f"\n{len(victims)} nodes route traffic through the congested "
          f"region and may see degraded messaging rates")


if __name__ == "__main__":
    main()
