"""Aggregator failover with standby connections (§IV-B, Fig. 3).

A sampler is pulled by a primary aggregator while a backup maintains a
*standby* connection (connected, looked-up, not pulling).  At t=30 the
primary dies; at t=33 an external watchdog activates the standby — as
in LDMS, "there is currently no internal mechanism for a standby
aggregator to detect a primary has gone down".  The demo measures the
data actually lost during the failover window.

    python examples/failover.py
"""

from __future__ import annotations

from repro.core import Ldmsd, SimEnv
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport


def main() -> None:
    engine = Engine()
    env = SimEnv(engine)
    fabric = SimFabric(engine)

    def make(name, xprt="rdma"):
        return Ldmsd(name, env=env,
                     transports={xprt: SimTransport(fabric, xprt, node_id=name)})

    sampler = make("node0")
    sampler.load_sampler("synthetic", instance="node0/syn", component_id=1,
                         num_metrics=8, pattern="counter")
    sampler.start_sampler("node0/syn", interval=1.0)
    sampler.listen("rdma", "node0:411")

    primary = make("primary")
    primary_store = primary.add_store("memory")
    primary.add_producer("node0", "rdma", "node0:411", interval=1.0)

    backup = make("backup")
    backup_store = backup.add_store("memory")
    backup.add_producer("node0", "rdma", "node0:411", interval=1.0,
                        standby=True)

    engine.call_later(30.0, primary.shutdown)  # primary crashes
    engine.call_later(33.0, lambda: backup.activate_standby("node0"))
    engine.run(until=60.0)

    got_primary = sorted(int(r.values[0]) for r in primary_store.rows)
    got_backup = sorted(int(r.values[0]) for r in backup_store.rows)
    print(f"primary collected samples {got_primary[0]}..{got_primary[-1]} "
          f"({len(got_primary)})")
    print(f"backup  collected samples {got_backup[0]}..{got_backup[-1]} "
          f"({len(got_backup)})")
    all_seen = set(got_primary) | set(got_backup)
    produced = set(range(1, max(all_seen) + 1))
    lost = sorted(produced - all_seen)
    print(f"samples lost during the 3 s failover window: {lost}")
    print("standby connections bound the loss to the watchdog latency; "
          "without them the backup would also pay connect+lookup time")

    backup.shutdown()
    sampler.shutdown()


if __name__ == "__main__":
    main()
