"""Passive connections: monitoring across an asymmetric network (§IV-B).

Compute nodes behind a NAT/firewall (or on a network where only
outbound connections are allowed) cannot be dialed by the aggregator.
LDMS supports "initiation of a connection from either side": the
*aggregator* declares a passive producer and the *sampler* connects out
and advertises itself — after which the normal pull protocol runs over
that connection, pull direction unchanged.

This demo runs on real TCP: only the aggregator listens; the samplers
make strictly outbound connections.

    python examples/asymmetric_network.py
"""

from __future__ import annotations

import time

from repro.core import Ldmsd
from repro.nodefs.host import HostModel


def main() -> None:
    # --- aggregator: the only listener anywhere -------------------------
    aggregator = Ldmsd("agg0")
    store = aggregator.add_store("memory")
    listener = aggregator.listen("sock", ("127.0.0.1", 0))
    for i in range(3):
        aggregator.add_producer(f"edge{i}", "sock", interval=0.5,
                                passive=True)
    print(f"aggregator listening on :{listener.port}; "
          "declared 3 passive producers")

    # --- edge nodes: outbound-only --------------------------------------
    samplers = []
    for i in range(3):
        host = HostModel(f"edge{i}", clock=time.monotonic)
        d = Ldmsd(f"edge{i}", fs=host.fs)
        d.load_sampler("loadavg", instance=f"edge{i}/loadavg",
                       component_id=i + 1)
        d.start_sampler(f"edge{i}/loadavg", interval=0.5)
        # No listen() call on the sampler side — outbound only.
        d.advertise("sock", ("127.0.0.1", listener.port))
        samplers.append(d)
    print("edge daemons advertised themselves (no inbound ports opened)")

    time.sleep(3.0)
    per = {}
    for r in store.rows:
        per[r.set_name] = per.get(r.set_name, 0) + 1
    print("\ncollected rows per edge node:")
    for name in sorted(per):
        print(f"  {name}: {per[name]}")
    for name, prod in aggregator.producers.items():
        print(f"producer {name}: connected={prod.connected} "
              f"stored={prod.stats.stored}")

    for d in samplers:
        d.shutdown()
    aggregator.shutdown()


if __name__ == "__main__":
    main()
