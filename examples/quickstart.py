"""Quickstart: a real sampler -> aggregator -> CSV store pipeline.

Runs two ldmsd instances *in this process on real threads and real TCP
sockets*: a sampler reading this host's /proc (falling back to a
synthetic host model when /proc is absent) at 1-second intervals, and
an aggregator pulling the metric sets and storing them to CSV.

    python examples/quickstart.py

Output lands in ./quickstart_out/.
"""

from __future__ import annotations

import os
import time

from repro import obs
from repro.core import Ldmsd
from repro.nodefs.fs import RealFS


def pick_fs():
    real = RealFS()
    if real.exists("/proc/meminfo") and real.exists("/proc/stat"):
        return real, "this host's /proc"
    from repro.nodefs.host import HostModel

    host = HostModel("synth0", clock=time.monotonic)
    return host.fs, "a synthetic host model"


def main() -> None:
    fs, source = pick_fs()
    print(f"sampling {source} every second for 5 seconds...")

    # --- the sampler daemon -------------------------------------------------
    sampler = Ldmsd("node0", fs=fs)
    for plugin, instance in [("meminfo", "node0/meminfo"),
                             ("procstat", "node0/procstat"),
                             ("loadavg", "node0/loadavg"),
                             ("ldmsd_self", "node0/ldmsd_self")]:
        sampler.load_sampler(plugin, instance=instance, component_id=1)
        sampler.start_sampler(instance, interval=1.0)
    listener = sampler.listen("sock", ("127.0.0.1", 0))
    port = listener.port
    print(f"sampler listening on 127.0.0.1:{port}")

    # --- the aggregator daemon ------------------------------------------------
    outdir = os.path.join(os.path.dirname(__file__) or ".", "quickstart_out")
    aggregator = Ldmsd("agg0")
    store = aggregator.add_store("store_csv", path=outdir, buffer_lines=1)
    aggregator.add_producer("node0", "sock", ("127.0.0.1", port),
                            interval=1.0)

    time.sleep(5.0)
    store.flush()
    stats = aggregator.stats()["producers"]["node0"]
    print(f"updates completed: {stats['updates_completed']}, "
          f"stored: {stats['stored']}")
    for fname in sorted(os.listdir(outdir)):
        path = os.path.join(outdir, fname)
        with open(path) as f:
            lines = f.readlines()
        print(f"\n{path} ({len(lines)} lines):")
        for line in lines[:3]:
            print("  " + line.rstrip()[:110])

    # The sampler daemon monitors itself: its ldmsd_self set travelled
    # the same pull/store pipeline as meminfo.  Render its final state.
    self_set = sampler.get_set("node0/ldmsd_self")
    print("\nnode0/ldmsd_self (the daemon's own pipeline health):")
    print(obs.render(self_set.as_dict()))

    aggregator.shutdown()
    sampler.shutdown()


if __name__ == "__main__":
    main()
