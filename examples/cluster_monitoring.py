"""Monitor a simulated capacity cluster (the Chama deployment, Fig. 4).

Builds a 64-node Chama slice in the discrete-event simulator, deploys
the full LDMS hierarchy (per-node samplers over simulated IB RDMA, two
first-level aggregators, a second-level aggregator with an in-memory
store), runs a small job mix through the scheduler, and then answers
the §III-B administrator questions from the stored data:

* what did each job do to memory and Lustre?
* which nodes are outliers?

    python examples/cluster_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.profiles import build_job_profile
from repro.cluster import JobSpec, Scheduler, chama


def main() -> None:
    print("building a 64-node Chama slice...")
    machine = chama(n_nodes=64, seed=42)
    deployment = machine.deploy_ldms(interval=10.0, fanin=32,
                                     second_level=True, store="memory")
    scheduler = Scheduler(machine)

    jobs = [
        scheduler.submit(JobSpec("cfd-run", n_nodes=24, duration=300.0,
                                 cpu_user_frac=0.8, lustre_read_bps=5e6,
                                 mem_active_kb=12 * 1024 * 1024)),
        scheduler.submit(JobSpec("io-heavy", n_nodes=16, duration=200.0,
                                 cpu_user_frac=0.3, lustre_open_rate=40.0,
                                 lustre_write_bps=5e7,
                                 mem_active_kb=4 * 1024 * 1024), delay=60.0),
        scheduler.submit(JobSpec("leaky", n_nodes=8, duration=400.0,
                                 mem_active_kb=2 * 1024 * 1024,
                                 mem_growth_kb_s=np.linspace(1e3, 3e4, 8)),
                         delay=30.0),
    ]

    print("running 8 simulated minutes...")
    machine.run(until=480.0)
    store = deployment.store
    print(f"store holds {len(store.rows)} records from "
          f"{len(store.set_names())} metric sets")

    # --- per-job application profiles -----------------------------------
    for job in jobs:
        if job.start_time is None:
            continue
        profile = build_job_profile(store, scheduler, job, metric="Active",
                                    schema="meminfo", margin=30.0)
        growth = profile.growth() / 1024 / 1024
        print(f"\njob {job.spec.name!r} ({job.exit_reason}): "
              f"{len(job.nodes)} nodes, "
              f"{(job.end_time or 480.0) - job.start_time:.0f} s")
        print(f"  memory imbalance ratio: {profile.imbalance_ratio:.2f}")
        print(f"  per-node growth GB: min={growth.min():.2f} "
              f"max={growth.max():.2f}")

    # --- outlier hunting: who hammered Lustre opens? ----------------------
    opens_by_node = {}
    for idx in range(len(machine.nodes)):
        ts, vs = store.series("open#stats.snx11024",
                              set_name=f"n{idx}/lustre")
        if len(vs) >= 2:
            opens_by_node[idx] = float(vs[-1] - vs[0])
    top = sorted(opens_by_node.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop Lustre-open nodes (total opens during the window):")
    for idx, count in top:
        job = scheduler.last_job_of_node(idx)
        owner = job.spec.name if job else "(idle)"
        print(f"  n{idx:<3d} {count:8.0f} opens   last job: {owner}")

    deployment.shutdown()


if __name__ == "__main__":
    main()
