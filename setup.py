"""Setuptools entry point.

Kept alongside pyproject metadata because this environment lacks the
``wheel`` package needed for PEP 517 editable builds; ``pip install -e .``
falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
