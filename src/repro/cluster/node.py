"""A simulated compute (or service) node."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nodefs.fs import SynthFS
from repro.nodefs.gpcdr import GpcdrModel
from repro.nodefs.host import HostModel, HostProfile
from repro.sim.resources import CpuCore

__all__ = ["Node"]


@dataclass
class Node:
    """One node: counter state, cores, and (optionally) an ldmsd.

    Attributes
    ----------
    index:
        Machine-wide node index (doubles as the LDMS component id + 1).
    host:
        The /proc counter model.
    fs:
        The node's synthetic file tree (shared with ``host``/``gpcdr``).
    cores:
        One :class:`CpuCore` per CPU; monitoring noise lands on these
        and application models read it back out.
    gpcdr:
        HSN counter model (torus machines only).
    daemon:
        The sampler ldmsd deployed on the node, if any.
    """

    index: int
    name: str
    host: HostModel
    fs: SynthFS
    cores: list[CpuCore] = field(default_factory=list)
    gpcdr: Optional[GpcdrModel] = None
    daemon: object = None  # Ldmsd; untyped to avoid an import cycle
    job_id: Optional[int] = None  # currently running job

    @property
    def profile(self) -> HostProfile:
        return self.host.profile

    @property
    def ncpus(self) -> int:
        return self.host.profile.ncpus

    @property
    def mem_total_kb(self) -> int:
        return self.host.profile.mem_total_kb

    def mem_used_kb(self) -> int:
        h = self.host
        return int(h.mem_active_kb + h.mem_cached_kb + h.mem_used_extra_kb)

    @property
    def daemon_core(self) -> Optional[CpuCore]:
        """The core monitoring work is charged to (core 0 by convention;
        ldmsd is run per node, not per core, and may be bound, §IV-D)."""
        return self.cores[0] if self.cores else None
