"""Cluster models: nodes, machines, jobs, scheduling.

:class:`~repro.cluster.machine.Machine` assembles the substrates into a
simulated HPC system — per-node :class:`~repro.nodefs.host.HostModel`
counter state, a network model, a shared DES engine/fabric — and can
deploy a full LDMS hierarchy (sampler ldmsd per node, aggregator
levels, stores) onto it with one call.

Builders for the paper's two deployments:

* :func:`~repro.cluster.machine.blue_waters` — Gemini 3-D torus,
  2 nodes/Gemini, gpcdr HSN counters, 1-minute production sampling.
* :func:`~repro.cluster.machine.chama` — 1,296-node IB fat-tree
  capacity cluster, 7 metric sets per node, 20-second sampling.

Both accept a scale factor so DES experiments run at tractable node
counts while full-machine 24-hour traces use the vectorised fleet path
(:mod:`repro.sim.fleet`).
"""

from repro.cluster.node import Node
from repro.cluster.machine import Machine, blue_waters, chama
from repro.cluster.scheduler import Scheduler, JobSpec, Job, JobState

__all__ = [
    "Node",
    "Machine",
    "blue_waters",
    "chama",
    "Scheduler",
    "JobSpec",
    "Job",
    "JobState",
]
