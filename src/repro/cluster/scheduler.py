"""Job scheduler: FCFS allocation, workload application, OOM killer.

Jobs drive the synthetic counters the monitoring system observes.  A
:class:`JobSpec` describes per-node workload rates (CPU fractions,
Lustre traffic, memory footprint and growth) and a communication
intensity; the scheduler applies them to the allocated nodes' host
models and the machine's flow engine for the job's lifetime, then
restores the idle baseline.

The OOM killer watches per-node memory every ``oom_interval`` seconds
and terminates a job whose memory use exceeds the node's total — the
event behind Fig. 12 ("Active memory for a 64 node job terminated by
the OOM killer").  Job start/end/kill events are recorded in a job log
that the analysis layer joins with stored metric data to build
application profiles (§VI-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.cluster.machine import Machine
from repro.util.errors import SimulationError
from repro.util.rngtools import spawn_rng

__all__ = ["JobSpec", "Job", "JobState", "Scheduler"]


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    OOM_KILLED = "oom_killed"
    KILLED = "killed"


@dataclass
class JobSpec:
    """Workload description of one job.

    ``mem_growth_kb_s`` may be a scalar (uniform growth) or a per-node
    array; ``mem_profile`` overrides growth entirely with a callable
    ``(elapsed_seconds, node_slot) -> active kB`` for scripted shapes.
    """

    name: str
    n_nodes: int
    duration: float
    cpu_user_frac: float = 0.7
    cpu_sys_frac: float = 0.05
    lustre_open_rate: float = 0.5
    lustre_read_bps: float = 1e6
    lustre_write_bps: float = 5e5
    net_bps_per_node: float = 0.0  # nearest-neighbour flows on the torus
    mem_active_kb: float = 4 * 1024 * 1024  # steady active memory per node
    mem_growth_kb_s: float | np.ndarray = 0.0
    mem_profile: Optional[Callable[[float, int], float]] = None
    update_interval: float = 10.0


@dataclass
class Job:
    """Runtime state of a scheduled job."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    nodes: list[int] = field(default_factory=list)
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    flow_ids: list[int] = field(default_factory=list)
    _updater: object = None
    _end_handle: object = None

    @property
    def exit_reason(self) -> str:
        return self.state.value


class Scheduler:
    """FCFS scheduler over a :class:`Machine`."""

    def __init__(self, machine: Machine, oom_interval: float = 5.0, seed: int = 0):
        self.machine = machine
        self.env = machine.env
        self.rng = spawn_rng(seed, "scheduler", machine.name)
        self.oom_interval = oom_interval
        self._free = list(range(len(machine.nodes)))
        self._queue: list[Job] = []
        self._next_id = 1
        self.jobs: dict[int, Job] = {}
        #: node index -> job id of the most recent job placed there
        self.last_job: dict[int, int] = {}
        self.log: list[tuple[float, str, int, str]] = []  # (t, event, job, detail)
        self._oom_handle = self.env.call_every(oom_interval, self._oom_check)

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, delay: float = 0.0) -> Job:
        if spec.n_nodes > len(self.machine.nodes):
            raise SimulationError(
                f"job {spec.name!r} wants {spec.n_nodes} nodes; machine has "
                f"{len(self.machine.nodes)}"
            )
        job = Job(self._next_id, spec)
        self._next_id += 1
        self.jobs[job.job_id] = job
        if delay > 0:
            self.env.call_later(delay, lambda: self._enqueue(job))
        else:
            self._enqueue(job)
        return job

    def _enqueue(self, job: Job) -> None:
        self._queue.append(job)
        self._log(job, "submitted", job.spec.name)
        self._try_start()

    def _try_start(self) -> None:
        while self._queue and self._queue[0].spec.n_nodes <= len(self._free):
            job = self._queue.pop(0)
            self._start(job)

    def _start(self, job: Job) -> None:
        spec = job.spec
        job.nodes = self._free[: spec.n_nodes]
        del self._free[: spec.n_nodes]
        job.state = JobState.RUNNING
        job.start_time = self.env.now()
        self._log(job, "start", f"{spec.name} nodes={len(job.nodes)}")

        growth = np.asarray(spec.mem_growth_kb_s, dtype=np.float64)
        if growth.ndim == 0:
            growth = np.full(spec.n_nodes, float(growth))
        elif growth.shape != (spec.n_nodes,):
            raise SimulationError("mem_growth_kb_s must be scalar or (n_nodes,)")

        for slot, idx in enumerate(job.nodes):
            node = self.machine.nodes[idx]
            node.job_id = job.job_id
            self.last_job[idx] = job.job_id
            node.host.set_workload(
                cpu_user_frac=spec.cpu_user_frac,
                cpu_sys_frac=spec.cpu_sys_frac,
                lustre_open_rate=spec.lustre_open_rate,
                lustre_read_bps=spec.lustre_read_bps,
                lustre_write_bps=spec.lustre_write_bps,
                ib_rx_bps=spec.net_bps_per_node,
                ib_tx_bps=spec.net_bps_per_node,
                lnet_send_bps=spec.lustre_write_bps,
                lnet_recv_bps=spec.lustre_read_bps,
            )
            node.host.mem_active_kb = spec.mem_active_kb

        # Nearest-neighbour communication flows on the torus.
        if spec.net_bps_per_node > 0 and self.machine.flow_engine is not None:
            for slot, idx in enumerate(job.nodes):
                peer = job.nodes[(slot + 1) % len(job.nodes)]
                if peer != idx:
                    job.flow_ids.append(
                        self.machine.flow_engine.add_flow(
                            idx, peer, spec.net_bps_per_node, tag=spec.name
                        )
                    )

        # Periodic workload updater (memory growth / scripted profiles).
        def update() -> None:
            if job.state is not JobState.RUNNING:
                return
            elapsed = self.env.now() - job.start_time
            for slot, idx in enumerate(job.nodes):
                host = self.machine.nodes[idx].host
                if spec.mem_profile is not None:
                    host.mem_active_kb = float(spec.mem_profile(elapsed, slot))
                elif growth[slot] != 0.0:
                    host.mem_active_kb = spec.mem_active_kb + growth[slot] * elapsed

        job._updater = self.env.call_every(spec.update_interval, update)
        job._end_handle = self.env.call_later(
            spec.duration, lambda: self._finish(job, JobState.COMPLETED)
        )

    def _finish(self, job: Job, state: JobState) -> None:
        if job.state is not JobState.RUNNING:
            return
        job.state = state
        job.end_time = self.env.now()
        if job._updater is not None:
            job._updater.cancel()
        if job._end_handle is not None:
            job._end_handle.cancel()
        for fid in job.flow_ids:
            self.machine.flow_engine.remove_flow(fid)
        job.flow_ids.clear()
        for idx in job.nodes:
            node = self.machine.nodes[idx]
            node.job_id = None
            node.host.idle()
        self._free.extend(job.nodes)
        self._free.sort()
        self._log(job, "end", state.value)
        self._try_start()

    def kill(self, job: Job) -> None:
        self._finish(job, JobState.KILLED)

    def _oom_check(self) -> None:
        for job in list(self.jobs.values()):
            if job.state is not JobState.RUNNING:
                continue
            for idx in job.nodes:
                node = self.machine.nodes[idx]
                if node.mem_used_kb() >= node.mem_total_kb:
                    self._log(job, "oom", f"node {idx}")
                    self._finish(job, JobState.OOM_KILLED)
                    break

    def _log(self, job: Job, event: str, detail: str) -> None:
        self.log.append((self.env.now(), event, job.job_id, detail))

    # ------------------------------------------------------------------
    def job_of_node(self, idx: int) -> Optional[Job]:
        jid = self.machine.nodes[idx].job_id
        return self.jobs.get(jid) if jid is not None else None

    def last_job_of_node(self, idx: int) -> Optional[Job]:
        """The most recent job (running or finished) placed on a node —
        what an administrator correlating stored data with the job log
        actually asks (§VI-A3: 'easily correlated with user and job')."""
        jid = self.last_job.get(idx)
        return self.jobs.get(jid) if jid is not None else None

    def shutdown(self) -> None:
        self._oom_handle.cancel()
        for job in self.jobs.values():
            if job.state is JobState.RUNNING:
                self._finish(job, JobState.KILLED)
