"""Machine assembly: nodes + network + DES plumbing + LDMS deployment.

A :class:`Machine` owns the simulation engine, the transport fabric,
the per-node counter models, and the network model.  Its
:meth:`~Machine.deploy_ldms` method stands up the monitoring hierarchy
the paper describes: one sampler ldmsd per compute node (started "at
boot"), first-level aggregators on service nodes pulling over RDMA,
and optionally a second-level aggregator with a store (Chama's
configuration, Fig. 4) or aggregators writing stores directly (Blue
Waters' configuration, Fig. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.node import Node
from repro.core.env import SimEnv
from repro.core.ldmsd import Ldmsd
from repro.faults import FaultInjector, Watchdog
from repro.network.fattree import FatTree
from repro.network.torus import GeminiTorus
from repro.network.traffic import FlowEngine
from repro.nodefs.fs import SynthFS
from repro.nodefs.gpcdr import GpcdrModel
from repro.nodefs.host import HostModel, HostProfile
from repro.sim.engine import Engine
from repro.sim.resources import CpuCore
from repro.transport.base import get_transport_profile
from repro.transport.simfabric import SimFabric, SimTransport, ShardGateway, lookahead_of
from repro.util.errors import ConfigError

__all__ = ["Machine", "blue_waters", "chama", "LdmsDeployment",
           "ShardPlan", "plan_shards", "shard_deploy"]


@dataclass
class LdmsDeployment:
    """Handles to a deployed monitoring hierarchy."""

    samplers: list[Ldmsd] = field(default_factory=list)
    level1: list[Ldmsd] = field(default_factory=list)
    level2: Optional[Ldmsd] = None
    stores: list[object] = field(default_factory=list)
    #: Failover wiring of the standby config: primary aggregator name ->
    #: (name of the aggregator holding its standbys, standby producer
    #: names on that owner).  Empty unless deployed with standby=True.
    standby_plan: dict[str, tuple[str, tuple[str, ...]]] = field(default_factory=dict)

    @property
    def store(self):
        """The (single) store instance, when exactly one was configured."""
        if len(self.stores) != 1:
            raise ConfigError(f"deployment has {len(self.stores)} stores")
        return self.stores[0]

    def all_daemons(self) -> list[Ldmsd]:
        out = list(self.samplers) + list(self.level1)
        if self.level2 is not None:
            out.append(self.level2)
        return out

    def by_name(self, name: str) -> Ldmsd:
        for d in self.all_daemons():
            if d.name == name:
                return d
        raise ConfigError(f"no daemon named {name!r} in deployment")

    def shutdown(self) -> None:
        for d in self.all_daemons():
            d.shutdown()


class Machine:
    """A simulated cluster.

    Parameters
    ----------
    name:
        Machine name.
    n_nodes:
        Compute node count.
    engine:
        DES engine (a private one is created if omitted).
    network:
        ``GeminiTorus`` or ``FatTree`` (or None for no network model).
    host_profile:
        Per-node hardware shape.
    seed:
        Base RNG seed for per-host jitter streams.
    """

    def __init__(
        self,
        name: str,
        n_nodes: int,
        engine: Optional[Engine] = None,
        network: GeminiTorus | FatTree | None = None,
        host_profile: HostProfile = HostProfile(),
        seed: int = 0,
        node_indices: Optional[Sequence[int]] = None,
    ):
        self.name = name
        self.engine = engine if engine is not None else Engine()
        self.env = SimEnv(self.engine)
        self.network = network
        clock_fn = lambda: self.engine.now  # noqa: E731
        self.flow_engine: Optional[FlowEngine] = (
            FlowEngine(network, clock=clock_fn)
            if isinstance(network, GeminiTorus)
            else None
        )
        self.fabric = SimFabric(
            self.engine,
            latency_fn=self._latency,
            traffic_cb=self._traffic,
        )
        self.seed = seed
        self.monitor_bytes = 0  # total monitoring traffic over the fabric
        self.monitor_bytes_by_node: dict[object, int] = {}

        if isinstance(network, GeminiTorus) and n_nodes > network.n_nodes:
            raise ConfigError(
                f"{n_nodes} nodes exceed torus capacity {network.n_nodes}"
            )
        if isinstance(network, FatTree) and n_nodes > network.n_nodes:
            raise ConfigError(f"{n_nodes} nodes exceed fat tree capacity")

        if node_indices is None:
            node_indices = range(n_nodes)
        else:
            # One shard of a partitioned machine: nodes keep their
            # absolute indices (names, component ids, seeds) so the
            # shard's output is byte-identical to the unsharded run
            # restricted to these nodes.
            if isinstance(network, GeminiTorus):
                raise ConfigError(
                    "a torus machine cannot be node-subset: the shared "
                    "flow engine couples every link's latency, which is "
                    "a zero-lookahead partition")
            node_indices = sorted(int(i) for i in node_indices)
            if node_indices and not (0 <= node_indices[0]
                                     and node_indices[-1] < n_nodes):
                raise ConfigError(f"node_indices outside 0..{n_nodes - 1}")
        #: full machine size (capacity checks; shard subsets keep it)
        self.n_nodes = n_nodes

        clock = lambda: self.engine.now  # noqa: E731
        self.nodes: list[Node] = []
        for i in node_indices:
            fs = SynthFS()
            host = HostModel(f"{name}-n{i}", clock, host_profile, seed=seed + i, fs=fs)
            cores = [CpuCore(c) for c in range(host_profile.ncpus)]
            gpcdr = None
            if isinstance(network, GeminiTorus):
                gpcdr = GpcdrModel(clock, media=network.media_map(), fs=fs)
                if self.flow_engine is not None:
                    gem = network.node_gemini(i)
                    # Attach one live gpcdr per Gemini (nodes sharing a
                    # Gemini see the same values, §VI-A1) — the second
                    # node's fs gets the same model's render.
                    if network.gemini_nodes(gem)[0] == i:
                        self.flow_engine.attach_gpcdr(gem, gpcdr)
                        gpcdr.sync_hook = self.flow_engine.accumulate_to
                    else:
                        first = self.nodes[network.gemini_nodes(gem)[0]]
                        gpcdr = first.gpcdr
                        fs.unregister("/sys/devices/virtual/gpcdr/gpcdr/metricsets/links/metrics")
                        fs.register(
                            "/sys/devices/virtual/gpcdr/gpcdr/metricsets/links/metrics",
                            gpcdr.render,
                        )
            node = Node(index=i, name=f"n{i}", host=host, fs=fs,
                        cores=cores, gpcdr=gpcdr)
            # The resource-manager prolog drops the current job id where
            # the jobid sampler can read it (0 = no job).
            fs.register("/var/run/ldms_jobid",
                        lambda n=node: f"{n.job_id or 0}\n")
            self.nodes.append(node)

    # ------------------------------------------------------------------
    # fabric hooks
    # ------------------------------------------------------------------
    def _node_index(self, node_id) -> Optional[int]:
        if isinstance(node_id, int):
            return node_id
        if isinstance(node_id, str) and node_id.startswith("svc"):
            # Service nodes sit at evenly spaced network positions.
            try:
                k = int(node_id[3:])
            except ValueError:
                return None  # diskfull/storage hosts sit off the HSN
            return (k * 7919) % max(self.n_nodes, 1)
        return None

    def _latency(self, src, dst, nbytes: int) -> float:
        s, d = self._node_index(src), self._node_index(dst)
        if s is None or d is None:
            return 0.0
        if self.flow_engine is not None:
            return self.flow_engine.latency(s, d, nbytes)
        if isinstance(self.network, FatTree):
            return self.network.latency(s % self.network.n_nodes,
                                        d % self.network.n_nodes, nbytes)
        return 1e-6

    def _traffic(self, src, dst, nbytes: int, t: float) -> None:
        self.monitor_bytes += nbytes
        self.monitor_bytes_by_node[src] = self.monitor_bytes_by_node.get(src, 0) + nbytes

    # ------------------------------------------------------------------
    # LDMS deployment
    # ------------------------------------------------------------------
    def deploy_ldms(
        self,
        plugins: list[tuple[str, dict]] | None = None,
        interval: float = 20.0,
        xprt: str = "rdma",
        fanin: int = 256,
        second_level: bool = True,
        store: str = "memory",
        store_kwargs: dict | None = None,
        collect_interval: Optional[float] = None,
        sync_offset: Optional[float] = None,
        standby: bool = False,
        mem: str = "2MB",
        l2_groups: Optional[Sequence[int]] = None,
    ) -> LdmsDeployment:
        """Stand up monitoring across the machine.

        Parameters
        ----------
        plugins:
            ``[(plugin_name, extra_config), ...]`` per node; defaults to
            the machine's flavour (gpcdr-centric on a torus, the 7-set
            Chama list on a fat tree).
        interval:
            Sampling interval (seconds).
        fanin:
            Samplers per first-level aggregator.
        second_level:
            Chama-style second level aggregating the first level over
            ``sock`` and owning the store (Fig. 4); otherwise the
            first-level aggregators store directly (Fig. 3).
        store:
            Store plugin name (``"memory"``, ``"store_csv"``, ...).
        collect_interval:
            Aggregator pull interval; defaults to the sampling interval.
        sync_offset:
            Non-None makes sampling synchronous at this wall offset.
        standby:
            Give each sampler a standby connection from the *next*
            aggregator (Blue Waters' fast-failover config, Fig. 3).
        l2_groups:
            First-level group numbers the second-level aggregator pulls
            from; defaults to the groups deployed on this machine.  A
            sharded deployment passes the *full* plan's groups so the
            one L2 also reaches the aggregators hosted by other shards
            (their ``svc{g}:411`` addresses resolve through the shard
            gateway).

        Aggregators are numbered by the *absolute* node subtree they
        own (``node.index // fanin``), and any ``{agg}`` placeholder in
        a string ``store_kwargs`` value is substituted with that group
        number — so per-aggregator store paths land in the same place
        whether the machine is whole or one shard of a partition.
        """
        if plugins is None:
            plugins = self.default_plugins()
        collect_interval = collect_interval or interval
        store_kwargs = store_kwargs or {}

        dep = LdmsDeployment()
        # --- samplers ------------------------------------------------------
        for node in self.nodes:
            x = SimTransport(self.fabric, xprt, node_id=node.index,
                             core=node.daemon_core)
            d = Ldmsd(f"{self.name}-n{node.index}", env=self.env,
                      transports={xprt: x}, mem=mem, fs=node.fs,
                      core=node.daemon_core, workers=2, conn_threads=1,
                      flush_threads=1)
            for pname, extra in plugins:
                inst = f"n{node.index}/{pname}"
                d.load_sampler(pname, instance=inst,
                               component_id=node.index + 1, **extra)
                d.start_sampler(inst, interval=interval, offset=sync_offset)
            d.listen(xprt, f"n{node.index}:411")
            node.daemon = d
            dep.samplers.append(d)

        # --- first-level aggregators ---------------------------------------
        # Group by absolute subtree (node.index // fanin): identical to
        # the old contiguous [a*fanin, (a+1)*fanin) arithmetic on a
        # whole machine, and shard-stable on a node subset.
        groups: dict[int, list[Node]] = {}
        for node in self.nodes:
            groups.setdefault(node.index // fanin, []).append(node)
        group_ids = sorted(groups)
        whole = len(self.nodes) == self.n_nodes
        agg_mem_bytes = max(64 * 1024 * 1024, 1024 * 1024)
        if standby and not whole:
            raise ConfigError(
                "standby failover pairs neighbouring aggregator groups "
                "and cannot be deployed on one shard of a partition")
        for a in group_ids:
            xa = SimTransport(self.fabric, xprt, node_id=f"svc{a}")
            xs = SimTransport(self.fabric, "sock", node_id=f"svc{a}")
            agg = Ldmsd(f"{self.name}-agg{a}", env=self.env,
                        transports={xprt: xa, "sock": xs}, mem=agg_mem_bytes,
                        workers=4, conn_threads=2, flush_threads=2)
            for node in groups[a]:
                agg.add_producer(f"n{node.index}", xprt, f"n{node.index}:411",
                                 interval=collect_interval)
            if standby and len(group_ids) > 1:
                nxt = group_ids[(group_ids.index(a) + 1) % len(group_ids)]
                names = []
                for node in groups[nxt]:
                    agg.add_producer(f"standby-n{node.index}", xprt,
                                     f"n{node.index}:411",
                                     interval=collect_interval, standby=True)
                    names.append(f"standby-n{node.index}")
                # agg `a` covers for agg `nxt`: record the wiring so a
                # watchdog can be attached without re-deriving the
                # group arithmetic.
                dep.standby_plan[f"{self.name}-agg{nxt}"] = (
                    f"{self.name}-agg{a}", tuple(names))
            agg.listen("sock", f"svc{a}:411")
            dep.level1.append(agg)

        def agg_store_kwargs(a: int) -> dict:
            return {k: v.replace("{agg}", str(a)) if isinstance(v, str) else v
                    for k, v in store_kwargs.items()}

        # --- storage level ----------------------------------------------------
        if second_level:
            xs = SimTransport(self.fabric, "sock", node_id="svc-l2")
            l2 = Ldmsd(f"{self.name}-l2", env=self.env,
                       transports={"sock": xs}, mem=4 * agg_mem_bytes,
                       workers=4, conn_threads=2, flush_threads=2)
            for a in (group_ids if l2_groups is None else sorted(l2_groups)):
                l2.add_producer(f"agg{a}", "sock", f"svc{a}:411",
                                interval=collect_interval)
            dep.level2 = l2
            if store is not None:
                dep.stores.append(l2.add_store(store, **store_kwargs))
        elif store is not None:
            for a, agg in zip(group_ids, dep.level1):
                dep.stores.append(agg.add_store(store, **agg_store_kwargs(a)))
        return dep

    # ------------------------------------------------------------------
    # resilience plumbing
    # ------------------------------------------------------------------
    def attach_watchdog(
        self,
        dep: LdmsDeployment,
        check_interval: Optional[float] = None,
        k: int = 3,
    ) -> Watchdog:
        """Stand up the §IV-B external watchdog over a standby
        deployment: every primary aggregator in ``dep.standby_plan`` is
        watched, and its standby producers (held by the neighbouring
        aggregator) are promoted when it stalls for ``k`` checks.
        ``check_interval`` defaults to the primaries' collection
        interval; the watchdog is started before being returned.
        """
        if not dep.standby_plan:
            raise ConfigError(
                "deployment has no standby plan (deploy_ldms(standby=True))"
            )
        if check_interval is None:
            primary = dep.by_name(next(iter(dep.standby_plan)))
            check_interval = max(
                p.cfg.interval for p in primary.producers.values()
            )
        wd = Watchdog(self.env, check_interval=check_interval, k=k)
        for primary_name, (owner_name, names) in dep.standby_plan.items():
            wd.watch_aggregator(dep.by_name(primary_name),
                                dep.by_name(owner_name), names)
        wd.start()
        return wd

    def fault_injector(self, dep: LdmsDeployment, restart=None) -> FaultInjector:
        """An injector wired to this machine's fabric and ``dep``'s
        daemons, ready to ``arm()`` a :class:`~repro.faults.FaultPlan`."""
        daemons = {d.name: d for d in dep.all_daemons()}
        return FaultInjector(self.env, daemons=daemons, fabric=self.fabric,
                             restart=restart)

    def default_plugins(self) -> list[tuple[str, dict]]:
        if isinstance(self.network, GeminiTorus):
            # Blue Waters: one combined custom set (§IV-F).
            return [("bw_custom", {})]
        # Chama: 7 independent sets (§IV-G).
        return [
            ("meminfo", {}),
            ("procstat", {"percpu": True}),
            ("loadavg", {}),
            ("lustre", {}),
            ("nfs", {}),
            ("ethernet", {}),
            ("infiniband", {}),
        ]

    def run(self, until: float) -> None:
        self.engine.run(until=until)

    @property
    def gateway(self) -> Optional[ShardGateway]:
        """This machine's shard gateway (``None`` when not partitioned).

        Exposing it here makes a shard :class:`Machine` directly usable
        as a ``world`` for :func:`repro.sim.shard.run_windowed`."""
        return self.fabric.gateway


# ---------------------------------------------------------------------------
# cluster partitioning (sharded-parallel DES, ROADMAP 3b)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """A conservative partition of a machine by producer subtree.

    ``groups[s]`` are the first-level aggregator group numbers owned by
    shard ``s`` (whole fan-in subtrees, contiguous so aggregator
    numbering matches the unsharded deployment); ``nodes[s]`` the
    absolute node indices behind them.  ``lookahead`` is the window
    width every cross-shard link supports — the only links that cross
    are second-level ``sock`` pulls of remote ``svc{g}:411`` listeners,
    so it is :func:`~repro.transport.simfabric.lookahead_of` of the
    ``sock`` profile.
    """

    nshards: int
    fanin: int
    groups: tuple[tuple[int, ...], ...]
    nodes: tuple[tuple[int, ...], ...]
    lookahead: float

    def shard_of_group(self, g: int) -> int:
        for s, gs in enumerate(self.groups):
            if g in gs:
                return s
        raise ConfigError(f"group {g} not in plan")


def plan_shards(n_nodes: int, nshards: int, fanin: int,
                network: GeminiTorus | FatTree | None = None,
                l2_xprt: str = "sock") -> ShardPlan:
    """Partition ``n_nodes`` into at most ``nshards`` shards of whole
    fan-in subtrees, balanced by node count.

    Rejected loudly at partition time (:class:`ConfigError`):

    * a :class:`GeminiTorus` network — its shared flow engine makes
      every link's latency a function of every shard's state, i.e. a
      zero-lookahead partition;
    * a cross-shard transport profile with zero lookahead (the
      ``local`` profile).
    """
    if nshards < 1:
        raise ConfigError("plan_shards needs nshards >= 1")
    if isinstance(network, GeminiTorus):
        raise ConfigError(
            "cannot shard a torus machine: the shared flow-engine "
            "latency model couples all subtrees (zero lookahead)")
    la = lookahead_of(get_transport_profile(l2_xprt))
    if la <= 0.0:
        raise ConfigError(
            f"transport {l2_xprt!r} has zero lookahead and cannot carry "
            f"cross-shard links")
    n_groups = max(1, math.ceil(n_nodes / fanin))
    nshards = min(nshards, n_groups)
    groups = []
    nodes = []
    for s in range(nshards):
        lo = s * n_groups // nshards
        hi = (s + 1) * n_groups // nshards
        gs = tuple(range(lo, hi))
        groups.append(gs)
        nodes.append(tuple(i for g in gs
                           for i in range(g * fanin,
                                          min((g + 1) * fanin, n_nodes))))
    return ShardPlan(nshards=nshards, fanin=fanin, groups=tuple(groups),
                     nodes=tuple(nodes), lookahead=la)


def shard_deploy(machine: Machine, plan: ShardPlan, shard_id: int,
                 **deploy_kwargs) -> LdmsDeployment:
    """Deploy shard ``shard_id``'s slice of the hierarchy.

    ``machine`` must have been built with
    ``node_indices=plan.nodes[shard_id]``.  Installs the shard gateway,
    routes every remote aggregator listener, and puts the (single)
    second level on shard 0, pulling all groups — local ones directly,
    remote ones through window-batched cross-shard ``sock`` links.
    """
    if machine.fabric.gateway is None and plan.nshards > 1:
        ShardGateway(machine.fabric, shard_id, plan.nshards, plan.lookahead)
    gateway = machine.fabric.gateway
    second_level = deploy_kwargs.pop("second_level", True)
    if second_level and shard_id == 0 and gateway is not None:
        for s, gs in enumerate(plan.groups):
            if s == shard_id:
                continue
            for g in gs:
                gateway.add_route(f"svc{g}:411", s)
    all_groups = tuple(g for gs in plan.groups for g in gs)
    if second_level and shard_id != 0:
        # The store lives with the L2 on shard 0; this shard's L1
        # aggregators only serve.
        deploy_kwargs["store"] = None
    return machine.deploy_ldms(
        second_level=second_level and shard_id == 0,
        l2_groups=all_groups if second_level and shard_id == 0 else None,
        **deploy_kwargs)


def blue_waters(
    n_nodes: int = 128,
    engine: Optional[Engine] = None,
    seed: int = 0,
    full_torus_dims: tuple[int, int, int] | None = None,
) -> Machine:
    """NCSA Blue Waters (§III-A): Cray XE/XK, Gemini 3-D torus.

    The real machine is 27,648 nodes on a 24x24x24 torus; DES runs use a
    scaled node count on a proportionally scaled torus unless
    ``full_torus_dims`` pins the geometry.  Node profile: 32 integer
    cores (XE6), 64 GB.
    """
    if full_torus_dims is not None:
        dims = full_torus_dims
    else:
        # Smallest cube (even-ish) torus holding n_nodes at 2 nodes/Gemini.
        side = max(2, math.ceil((n_nodes / 2) ** (1 / 3)))
        dims = (side, side, side)
        while dims[0] * dims[1] * dims[2] * 2 < n_nodes:
            dims = (dims[0] + 1, dims[1], dims[2])
    torus = GeminiTorus(dims=dims)
    profile = HostProfile(ncpus=32, mem_total_kb=64 * 1024 * 1024,
                          lustre_mounts=("snx11001", "snx11002", "snx11003"),
                          nfs=False, eth_ifaces=(), ib_devices=(), lnet=True)
    return Machine("bluewaters", n_nodes, engine=engine, network=torus,
                   host_profile=profile, seed=seed)


def chama(
    n_nodes: int = 64,
    engine: Optional[Engine] = None,
    seed: int = 0,
) -> Machine:
    """SNL Chama (§III-B): 1,296-node IB capacity cluster, 16 cores and
    64 GB per node, Lustre shared with another cluster."""
    tree = FatTree(n_nodes=max(n_nodes, 18), radix=18, uplinks=9)
    profile = HostProfile(ncpus=16, mem_total_kb=64 * 1024 * 1024,
                          lustre_mounts=("snx11024",), nfs=True,
                          eth_ifaces=("eth0",), ib_devices=("mlx4_0",),
                          lnet=False)
    return Machine("chama", n_nodes, engine=engine, network=tree,
                   host_profile=profile, seed=seed)
