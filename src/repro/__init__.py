"""repro — a reproduction of the Lightweight Distributed Metric Service (LDMS).

This package reimplements, in Python, the system described in

    A. Agelastos et al., "The Lightweight Distributed Metric Service: A
    Scalable Infrastructure for Continuous Monitoring of Large Scale
    Computing Systems and Applications", SC14.

It provides:

* ``repro.core`` — the LDMS core: metric sets (metadata/data chunks with
  generation numbers), the ``ldmsd`` daemon runnable in sampler or
  aggregator mode, the pull-based aggregation protocol, and the storage
  pipeline.
* ``repro.plugins`` — sampler plugins (meminfo, procstat, lustre, gpcdr,
  ...) and store plugins (CSV, flat file, SOS).
* ``repro.transport`` — transport plugins: real TCP sockets, in-process
  loopback, and simulated RDMA (IB and Gemini/uGNI) for the simulator.
* ``repro.sim`` — a discrete-event simulation kernel used to run the same
  daemon code at cluster scale in simulated time.
* ``repro.nodefs`` — a synthetic /proc + /sys tree driven by workload
  models, so sampler plugins exercise identical code paths with or
  without real hardware counters.
* ``repro.network`` / ``repro.cluster`` — Gemini 3-D torus and IB
  fat-tree models, node/CPU/memory models, and machine builders for the
  paper's two deployments (Blue Waters, Chama).
* ``repro.apps`` — synthetic HPC application models (PSNAP, MILC,
  MiniGhost, LinkTest, IMB, Nalu, CTH, Adagio) used for the monitoring
  impact studies.
* ``repro.baselines`` — a Ganglia-style push-model monitoring baseline.
* ``repro.analysis`` / ``repro.experiments`` — the characterization and
  per-figure experiment harnesses.

Quickstart
----------
>>> from repro.core import Ldmsd
>>> from repro.plugins.samplers import MeminfoSampler
>>> d = Ldmsd(name="node0")
>>> plug = d.load_sampler("meminfo", instance="node0/meminfo", component_id=1)
>>> d.start_sampler(plug.instance, interval=1.0)

See ``examples/quickstart.py`` for a full sampler → aggregator → store
pipeline on real sockets.
"""

from repro._version import __version__

__all__ = ["__version__"]
