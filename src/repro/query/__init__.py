"""Query/serving tier over the SOS store (ROADMAP item 2).

``engine`` answers time-range queries from a live :class:`SosStore`
(hot-window cache for the dashboard-recency traffic, LRU result cache,
pre-computed rollup levels for the scans); ``clients`` models the CMS
workload mix — dashboard pollers, alert evaluators, ad-hoc range
scanners — as a DES client population speaking the wire QUERY API.
"""

from repro.query.engine import QueryEngine, QueryResult

__all__ = ["QueryEngine", "QueryResult"]
