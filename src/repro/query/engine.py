"""The aggregator-side query engine: SOS range scans, cached.

Serving structure (the CMS monitoring workload, PAPERS.md):

* **Hot window** — dashboard pollers overwhelmingly ask for the last
  few seconds of data.  Every record the attached
  :class:`~repro.plugins.stores.sos.SosStore` appends (base and
  rollup) is also pushed into a bounded per-container deque; a query
  whose window lies entirely inside the covered span is answered from
  memory without touching the container files.
* **LRU result cache** — repeated identical queries (alert evaluators
  re-checking a rollup window, several dashboards showing one panel)
  return the cached row set.  Validity is by append-version: the store
  counts appends per container, and a cached entry is good only while
  its container's count is unchanged, so a cache hit can never serve a
  stale row set.
* **Rollup redirection** — ``level=N`` queries read the
  ``<schema>.rN`` rollup container maintained on ingest, touching
  ``1/N`` of the base data.

The engine is DES-pure: time comes from the injected ``clock``
callable (``env.now``), there is no ambient randomness, and every
data structure iterates in a deterministic order — required for the
same-seed byte-identical replay the experiments assert.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core import wire
from repro.plugins.stores.sos import SosReader, SosStore, rollup_schema

__all__ = ["QueryEngine", "QueryResult"]

_INF = float("inf")


@dataclass(frozen=True)
class QueryResult:
    """One answered query: wire status, column names, and rows of
    ``(timestamp, comp_id, values)`` in ``(timestamp, append)`` order."""

    status: int
    names: tuple[str, ...]
    rows: tuple = field(default=())
    cache_hit: bool = False
    truncated: bool = False
    #: Which path answered: "hot", "lru", "scan", or "noent".
    source: str = "scan"

    def flags(self) -> int:
        f = 0
        if self.truncated:
            f |= wire.QUERY_TRUNCATED
        if self.cache_hit:
            f |= wire.QUERY_CACHE_HIT
        return f


class QueryEngine:
    """Range-query service over one live :class:`SosStore`."""

    def __init__(self, store: SosStore, clock: Callable[[], float],
                 obs=None, hot_window: float = 60.0,
                 cache_entries: int = 128):
        if obs is None:
            from repro.obs.registry import Telemetry

            obs = Telemetry(enabled=False)
        self.store = store
        self.clock = clock
        self.hot_window = float(hot_window)
        self.cache_entries = int(cache_entries)
        #: container -> deque[(ts, comp_id, values)] of recent appends.
        self._hot: dict[str, deque] = {}
        #: container -> oldest timestamp the hot deque still fully
        #: covers.  -inf once we have seen every row the container ever
        #: held (it was empty when the store opened it); +inf while a
        #: pre-existing container may hold rows we never saw ingested.
        self._floor: dict[str, float] = {}
        #: query key -> (container append-version, QueryResult).
        self._lru: "OrderedDict[tuple, tuple[int, QueryResult]]" = OrderedDict()
        self._readers: dict[str, SosReader] = {}
        self._c_requests = obs.counter("query.requests")
        self._c_hits = obs.counter("query.cache_hits")
        self._c_misses = obs.counter("query.cache_misses")
        self._c_rows = obs.counter("query.rows_served")
        store.set_observer(self._ingest)

    # -- ingest side --------------------------------------------------------
    def _ingest(self, container: str, ts: float, comp_id: int,
                values: tuple) -> None:
        dq = self._hot.get(container)
        if dq is None:
            dq = self._hot[container] = deque()
            self._floor[container] = (
                _INF if container in self.store.preexisting else -_INF)
        dq.append((ts, comp_id, values))
        cutoff = ts - self.hot_window
        if dq[0][0] < cutoff:
            while dq and dq[0][0] < cutoff:
                dq.popleft()
            # Everything at or above the cutoff arrived after attach
            # (nothing older ever sat in the deque), so from here the
            # hot window is authoritative for [cutoff, now].
            self._floor[container] = cutoff

    # -- query side ---------------------------------------------------------
    def query(self, schema: str, t0: float, t1: float, level: int = 0,
              comp_id: int = 0, max_records: int = 0) -> QueryResult:
        self._c_requests.inc()
        container = rollup_schema(schema, level) if level else schema
        version = self.store.rows_written.get(container, 0)
        key = (container, t0, t1, comp_id, max_records)
        cached = self._lru.get(key)
        if cached is not None and cached[0] == version:
            self._lru.move_to_end(key)
            self._c_hits.inc()
            res = cached[1]
            self._c_rows.inc(len(res.rows))
            if res.source != "lru":
                res = QueryResult(res.status, res.names, res.rows,
                                  cache_hit=True, truncated=res.truncated,
                                  source="lru")
                self._lru[key] = (version, res)
            return res

        dq = self._hot.get(container)
        if dq is not None and t0 >= self._floor.get(container, _INF):
            rows = [r for r in dq
                    if t0 <= r[0] < t1 and (not comp_id or r[1] == comp_id)]
            rows.sort(key=lambda r: r[0])  # stable: append order ties
            truncated = bool(max_records) and len(rows) > max_records
            if truncated:
                rows = rows[:max_records]
            names = self.store._names.get(container, ())
            self._c_hits.inc()
            self._c_rows.inc(len(rows))
            return QueryResult(wire.E_OK, tuple(names), tuple(rows),
                               cache_hit=True, truncated=truncated,
                               source="hot")

        self._c_misses.inc()
        res = self._scan(container, t0, t1, comp_id, max_records)
        self._c_rows.inc(len(res.rows))
        if res.status == wire.E_OK:
            self._lru[key] = (version, res)
            while len(self._lru) > self.cache_entries:
                self._lru.popitem(last=False)
        return res

    def _scan(self, container: str, t0: float, t1: float, comp_id: int,
              max_records: int) -> QueryResult:
        self.store.flush()
        reader = self._readers.get(container)
        if reader is None:
            try:
                reader = SosReader(self.store.path, container)
            except OSError:
                return QueryResult(wire.E_NOENT, (), source="noent")
            self._readers[container] = reader
        else:
            reader.refresh()
        rows = []
        truncated = False
        for rec in reader.range(t0, t1):
            if comp_id and rec.component_id != comp_id:
                continue
            if max_records and len(rows) >= max_records:
                truncated = True
                break
            rows.append((rec.timestamp, rec.component_id, rec.values))
        return QueryResult(wire.E_OK, tuple(reader.metric_names),
                           tuple(rows), truncated=truncated, source="scan")

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict:
        return {
            "requests": self._c_requests.value,
            "cache_hits": self._c_hits.value,
            "cache_misses": self._c_misses.value,
            "rows_served": self._c_rows.value,
            "lru_entries": len(self._lru),
            "hot_containers": len(self._hot),
        }
