"""DES client population for the query tier: the CMS workload mix.

The CMS monitoring paper (PAPERS.md) characterizes dashboard traffic
as three populations with very different shapes, which this module
models as wire-protocol clients driven by the simulation clock:

* :class:`Poller` — a dashboard refreshing a short recent window every
  few seconds.  Dominates request count; almost always answerable from
  the hot-window cache.
* :class:`AlertEvaluator` — re-evaluates a threshold over a rollup
  window on a fixed period.  Identical repeated queries: the LRU
  result cache absorbs the repeats between ingest batches.
* :class:`RangeScanner` — ad-hoc historical scans walking large
  windows.  Cache-hostile by design; exercises the sorted-index range
  scan and the rollup containers.

Every client speaks the feature-gated QUERY wire API over its own
endpoint: a request is only sent after the peer's HELLO advertised
``"query"`` (old aggregators never see the unknown MsgType).  Reply
round-trip times land in shared :mod:`repro.obs` histograms
(``client.<kind>.rtt``) so the experiment reports served p50/p95/p99
per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import wire

__all__ = ["ClientMix", "QueryClient", "Poller", "AlertEvaluator",
           "RangeScanner", "build_population"]

#: Golden-ratio fractional stagger: deterministic, no RNG, and spreads
#: client phases maximally for any population size.
_PHI = 0.618033988749895


@dataclass(frozen=True)
class ClientMix:
    """Population sizes and per-class query shapes."""

    pollers: int = 8
    evaluators: int = 4
    scanners: int = 2
    poll_interval: float = 2.0
    poll_window: float = 10.0
    eval_interval: float = 10.0
    eval_level: int = 10
    eval_window: float = 120.0
    eval_threshold: float = 0.0
    scan_interval: float = 15.0
    scan_span: float = 120.0
    scan_level: int = 60
    max_records: int = 0

    def total(self) -> int:
        return self.pollers + self.evaluators + self.scanners


class QueryClient:
    """One wire-protocol query client on a periodic schedule."""

    kind = "client"

    def __init__(self, name: str, env, transport, addr, schema: str,
                 obs, interval: float, offset: float = 0.0,
                 max_records: int = 0):
        self.name = name
        self.env = env
        self.transport = transport
        self.addr = addr
        self.schema = schema
        self.interval = interval
        self.offset = offset
        self.max_records = max_records
        self.hist = obs.histogram(f"client.{self.kind}.rtt")
        self.ep = None
        self.sent = 0
        self.replies = 0
        self.errors = 0
        self.rows_received = 0
        self.truncated = 0
        self.cache_hits_seen = 0
        self.skipped_nofeature = 0
        self._pending: dict[int, float] = {}
        self._rid = 0
        self._k = 0
        self._timer = None

    def start(self) -> None:
        self.transport.connect(self.addr, self._connected)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.ep is not None and not self.ep.closed:
            self.ep.close()

    def _connected(self, ep) -> None:
        self.ep = ep
        if ep is None:
            return
        ep.on_message = self._on_message
        self.env.call_later(self.offset, self._first_tick)

    def _first_tick(self) -> None:
        self._timer = self.env.call_every(self.interval, self._tick)
        self._tick()

    def _tick(self) -> None:
        ep = self.ep
        if ep is None or ep.closed:
            return
        if not ep.query_ok:
            # Feature gate (PR 7 negotiation rules): the peer never
            # advertised "query", so the MsgType would be rejected.
            self.skipped_nofeature += 1
            return
        window = self._window(self.env.now(), self._k)
        self._k += 1
        if window is None:
            return
        t0, t1, level, comp_id = window
        self._rid += 1
        self._pending[self._rid] = self.env.now()
        ep.send(wire.encode_frame(
            wire.MsgType.QUERY_REQ, self._rid,
            wire.pack_query_req(self.schema, t0, t1, level, comp_id,
                                self.max_records)))
        self.sent += 1

    def _window(self, now: float, k: int) -> Optional[tuple]:
        """(t0, t1, level, comp_id) of the k-th query, or None to skip."""
        raise NotImplementedError

    def _on_message(self, raw: bytes) -> None:
        frame = wire.decode_frame(raw)
        if frame.msg_type != wire.MsgType.QUERY_REPLY:
            return
        t_sent = self._pending.pop(frame.request_id, None)
        if t_sent is None:
            return
        self.hist.observe(self.env.now() - t_sent)
        status, flags, names, rows = wire.unpack_query_reply(frame.payload)
        self.replies += 1
        if status != wire.E_OK:
            self.errors += 1
            return
        self.rows_received += len(rows)
        if flags & wire.QUERY_TRUNCATED:
            self.truncated += 1
        if flags & wire.QUERY_CACHE_HIT:
            self.cache_hits_seen += 1
        self.on_rows(names, rows)

    def on_rows(self, names, rows) -> None:
        """Per-class reply hook."""


class Poller(QueryClient):
    """Dashboard refresh: the last ``window`` seconds of base data."""

    kind = "poller"

    def __init__(self, *args, window: float = 10.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.window = window

    def _window(self, now: float, k: int):
        return (max(now - self.window, 0.0), now, 0, 0)


class AlertEvaluator(QueryClient):
    """Threshold check over a rollup window; counts firings."""

    kind = "evaluator"

    def __init__(self, *args, window: float = 120.0, level: int = 10,
                 threshold: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.window = window
        self.level = level
        self.threshold = threshold
        self.alerts = 0

    def _window(self, now: float, k: int):
        return (max(now - self.window, 0.0), now, self.level, 0)

    def on_rows(self, names, rows) -> None:
        if not rows:
            return
        mean = sum(r[2][0] for r in rows) / len(rows)
        if mean > self.threshold:
            self.alerts += 1


class RangeScanner(QueryClient):
    """Ad-hoc historical scan walking ``span``-second windows."""

    kind = "scanner"

    def __init__(self, *args, span: float = 120.0, level: int = 60,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.span = span
        self.level = level

    def _window(self, now: float, k: int):
        span = self.span
        past_windows = max(int(now // span), 1)
        t0 = span * (k % past_windows)
        return (t0, t0 + span, self.level, 0)


def build_population(env, transport_for: Callable[[int], object], addr,
                     schema: str, mix: ClientMix, obs) -> list[QueryClient]:
    """Instantiate the mixed population, phase-staggered
    deterministically.  ``transport_for(i)`` supplies client *i*'s
    transport (its own fabric attachment in the DES)."""
    clients: list[QueryClient] = []
    i = 0
    for _ in range(mix.pollers):
        offset = mix.poll_interval * ((i * _PHI) % 1.0)
        clients.append(Poller(
            f"poller{i}", env, transport_for(i), addr, schema, obs,
            interval=mix.poll_interval, offset=offset,
            max_records=mix.max_records, window=mix.poll_window))
        i += 1
    for _ in range(mix.evaluators):
        offset = mix.eval_interval * ((i * _PHI) % 1.0)
        clients.append(AlertEvaluator(
            f"evaluator{i}", env, transport_for(i), addr, schema, obs,
            interval=mix.eval_interval, offset=offset,
            max_records=mix.max_records, window=mix.eval_window,
            level=mix.eval_level, threshold=mix.eval_threshold))
        i += 1
    for _ in range(mix.scanners):
        offset = mix.scan_interval * ((i * _PHI) % 1.0)
        clients.append(RangeScanner(
            f"scanner{i}", env, transport_for(i), addr, schema, obs,
            interval=mix.scan_interval, offset=offset,
            max_records=mix.max_records, span=mix.scan_span,
            level=mix.scan_level))
        i += 1
    return clients
