"""Blocking request/reply client shared by the CLI tools.

The transport API is callback-driven (``on_message``, completion
functions); the CLIs are sequential.  :class:`SyncClient` bridges the
two with a per-call :class:`threading.Event`, giving ``ldms-ls-repro``
and ``repro-top`` a plain ``request``/``read_region`` interface over a
live :class:`~repro.transport.sock.SockTransport` endpoint.

Because the sock transport's HELLO exchange happens inside its reader
loop (the frame is consumed before delivery), the endpoint's
``peer_age`` clock anchor is valid here too — the CLIs use it to turn
a remote set's transaction timestamp into a staleness age without
assuming the daemon and the CLI share a wall clock.
"""

from __future__ import annotations

import threading

from repro.core import wire
from repro.transport.sock import SockTransport

__all__ = ["SyncClient"]


class SyncClient:
    """Blocking request/reply wrapper over the callback endpoint API."""

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self.timeout = timeout
        done = threading.Event()
        holder = {}

        def connected(ep):
            holder["ep"] = ep
            done.set()

        SockTransport().connect((host, port), connected)
        if not done.wait(timeout) or holder.get("ep") is None:
            raise ConnectionError(f"cannot connect to {host}:{port}")
        self.ep = holder["ep"]
        self._reply = None
        self._have = threading.Event()
        self.ep.on_message = self._on_message

    def _on_message(self, raw: bytes) -> None:
        self._reply = wire.decode_frame(raw)
        self._have.set()

    def request(self, frame: bytes) -> wire.Frame:
        self._have.clear()
        self.ep.send(frame)
        if not self._have.wait(self.timeout):
            raise TimeoutError("no reply from daemon")
        return self._reply

    def read_region(self, region_id: int) -> bytes | None:
        holder = {}
        done = threading.Event()

        def complete(data):
            holder["data"] = data
            done.set()

        self.ep.rdma_read(region_id, complete)
        if not done.wait(self.timeout):
            raise TimeoutError("region read timed out")
        return holder.get("data")

    def query(self, schema: str, t0: float, t1: float, level: int = 0,
              comp_id: int = 0, max_records: int = 0):
        """Run one feature-gated QUERY round-trip; returns
        ``(status, flags, names, rows)``.

        The sock transport consumes the peer's HELLO inside its reader
        loop, so the feature set may land shortly after connect —
        wait for it before sending (old daemons never advertise
        ``"query"`` and must not see the unknown MsgType).
        """
        waited = 0.0
        while not self.ep.query_ok and waited < self.timeout:
            threading.Event().wait(0.02)
            waited += 0.02
        if not self.ep.query_ok:
            raise ConnectionError(
                "daemon did not advertise the 'query' feature")
        reply = self.request(wire.encode_frame(
            wire.MsgType.QUERY_REQ, 1,
            wire.pack_query_req(schema, t0, t1, level, comp_id,
                                max_records)))
        return wire.unpack_query_reply(reply.payload)

    def peer_age(self, ts: float) -> float | None:
        """Age of a remote timestamp on the peer's clock (see
        :meth:`repro.transport.base.Endpoint.peer_age`)."""
        return self.ep.peer_age(ts)

    def close(self) -> None:
        self.ep.close()
