"""``ldmsd-repro``: run an LDMS daemon on this host.

Examples
--------
Run a sampler with meminfo at 1 s, listening on TCP 10411::

    ldmsd-repro --name node0 --port 10411 --socket /tmp/node0.ctl \\
        --cmd "load name=meminfo" \\
        --cmd "config name=meminfo instance=node0/meminfo component_id=1" \\
        --cmd "start name=node0/meminfo interval=1000000"

Then control it live::

    ldmsctl-repro --socket /tmp/node0.ctl stats
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

import repro.plugins  # noqa: F401  (register plugins)
from repro.core import Ldmsd
from repro.core.control import ControlChannel, UnixControlServer

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="ldmsd-repro",
        description="Run an LDMS daemon (reproduction).",
    )
    p.add_argument("--name", default="ldmsd", help="daemon name")
    p.add_argument("--xprt", default="sock", choices=["sock"],
                   help="listening transport (real mode supports sock)")
    p.add_argument("--host", default="127.0.0.1", help="listen address")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral, printed at start)")
    p.add_argument("--mem", default="2MB",
                   help="metric-set memory (ldmsd -m), e.g. 512kB")
    p.add_argument("--workers", type=int, default=4,
                   help="worker thread pool size")
    p.add_argument("--socket", default=None,
                   help="UNIX control socket path (ldmsctl endpoint)")
    p.add_argument("--cmd", action="append", default=[],
                   help="control command to run at startup (repeatable)")
    p.add_argument("--script", default=None,
                   help="file of control commands to run at startup")
    p.add_argument("--duration", type=float, default=None,
                   help="exit after this many seconds (default: run forever)")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    daemon = Ldmsd(args.name, mem=args.mem, workers=args.workers)
    channel = ControlChannel(daemon)

    listener = daemon.listen(args.xprt, (args.host, args.port))
    print(f"ldmsd-repro {args.name}: listening on "
          f"{args.host}:{getattr(listener, 'port', args.port)}", flush=True)

    commands = list(args.cmd)
    if args.script:
        with open(args.script, "r", encoding="utf-8") as f:
            commands.extend(
                line for line in (ln.strip() for ln in f)
                if line and not line.startswith("#")
            )
    for command in commands:
        reply = channel.handle(command)
        print(f"ldmsd-repro: {command!r} -> {reply}", flush=True)
        if reply.startswith("E"):
            daemon.shutdown()
            return 1

    server = None
    if args.socket:
        server = UnixControlServer(channel, args.socket)
        print(f"ldmsd-repro: control socket at {args.socket}", flush=True)

    stop = threading.Event()

    def handle_signal(_sig, _frm):
        stop.set()

    signal.signal(signal.SIGINT, handle_signal)
    signal.signal(signal.SIGTERM, handle_signal)
    stop.wait(timeout=args.duration)

    if server is not None:
        server.close()
    daemon.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
