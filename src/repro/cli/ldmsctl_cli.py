"""``ldmsctl-repro``: control a running daemon over its UNIX socket.

One-shot::

    ldmsctl-repro --socket /tmp/node0.ctl "stats"

Interactive (reads commands from stdin)::

    ldmsctl-repro --socket /tmp/node0.ctl
"""

from __future__ import annotations

import argparse
import socket
import sys

__all__ = ["main"]


def send_command(path: str, line: str, timeout: float = 5.0) -> str:
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(path)
        s.sendall(line.encode("utf-8") + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(4096)
            if not chunk:
                break
            buf += chunk
    return buf.decode("utf-8").rstrip("\n")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="ldmsctl-repro",
                                description="Control a running ldmsd-repro.")
    p.add_argument("--socket", required=True, help="daemon control socket")
    p.add_argument("command", nargs="*",
                   help="command to send (omit for interactive mode)")
    args = p.parse_args(argv)

    if args.command:
        reply = send_command(args.socket, " ".join(args.command))
        print(reply)
        return 0 if reply.startswith("0") else 1

    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        if line in ("quit", "exit"):
            break
        print(send_command(args.socket, line))
    return 0


if __name__ == "__main__":
    sys.exit(main())
