"""``ldms-ls-repro``: list a daemon's metric sets over TCP.

Mirrors LDMS's ``ldms_ls``: bare invocation prints set names and
geometry; ``-l`` also performs a lookup + data read and prints current
metric values; ``-v`` additionally prints each set's age (time since
its last transaction, on the *daemon's* clock via the HELLO anchor)
and renders ``ldmsd_self`` sets as a grouped pipeline-health block
(sampling/lookup/update/store latency quantiles) instead of a flat
value dump.

    ldms-ls-repro --host 127.0.0.1 --port 10411 -l
    ldms-ls-repro --host 127.0.0.1 --port 10411 -v
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.cli.client import SyncClient
from repro.core import wire
from repro.core.memory import Arena
from repro.core.metric_set import MetricSet

__all__ = ["main"]

# Back-compat alias: the client predates repro.cli.client.
_SyncClient = SyncClient


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="ldms-ls-repro",
                                description="List a daemon's metric sets.")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("-l", "--long", action="store_true",
                   help="also read and print current metric values")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="like -l, and render ldmsd_self sets as a "
                        "pipeline-health summary")
    args = p.parse_args(argv)
    if args.verbose:
        args.long = True

    client = SyncClient(args.host, args.port)
    try:
        reply = client.request(wire.encode_frame(wire.MsgType.DIR_REQ, 1))
        infos = wire.unpack_dir_reply(reply.payload)
        if not infos:
            print("(no metric sets)")
            return 0
        for info in infos:
            print(f"{info.name}  schema={info.schema}  card={info.card}  "
                  f"meta={info.meta_size}B data={info.data_size}B")
            if not args.long:
                continue
            lreply = client.request(
                wire.encode_frame(wire.MsgType.LOOKUP_REQ, 2,
                                  wire.pack_lookup_req(info.name))
            )
            status, region_id, meta = wire.unpack_lookup_reply(lreply.payload)
            if status != wire.E_OK:
                print("  (lookup failed)")
                continue
            mirror = MetricSet.from_meta(meta, Arena(info.total_size * 2 + 4096))
            data = client.read_region(region_id)
            if data is None:
                print("  (read failed)")
                continue
            mirror.apply_data(data)
            flag = "consistent" if mirror.is_consistent else "INCONSISTENT"
            line = f"  ts={mirror.timestamp:.6f} dgn={mirror.dgn} [{flag}]"
            if args.verbose:
                # Staleness on the daemon's own clock: the sock HELLO
                # anchored its monotonic clock against ours at connect.
                age = client.peer_age(mirror.timestamp)
                line += f" age={age:.3f}s" if age is not None else " age=?"
            print(line)
            if args.verbose and info.schema == obs.SELF_SCHEMA:
                print(obs.render(mirror.as_dict()))
                continue
            for name, value in mirror.as_dict().items():
                print(f"    {name:40s} {value}")
    finally:
        client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
