"""``repro-top``: live fleet view of a monitored cluster.

Polls a daemon (usually the top aggregator, which republishes every
``ldmsd_self`` set it collects from the tree) and renders one row per
daemon: sample/update/store rates, collection completeness and
staleness from the freshness tracker, p95 pipeline latencies, and the
arena/coalescing fast-path counters.  Rates are deltas between polls;
the first frame shows cumulative totals.

    repro-top --host 127.0.0.1 --port 10411
    repro-top --host 127.0.0.1 --port 10411 --once
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.client import SyncClient
from repro.core import wire
from repro.core.memory import Arena
from repro.core.metric_set import MetricSet
from repro.obs import SELF_SCHEMA
from repro.util import timeutil

__all__ = ["main", "collect_fleet", "render_fleet"]

_HEADER = (f"{'daemon':<20} {'samp/s':>8} {'upd/s':>8} {'stor/s':>8} "
           f"{'compl%':>7} {'stale':>5} {'lag_ms':>7} {'upd_p95':>8} "
           f"{'coalesce':>9} {'arena':>9} {'spans':>7}")

#: Counters rendered as per-second rates between polls.
_RATED = ("samples", "updates_completed", "updates_stored")


def collect_fleet(client: SyncClient) -> dict[str, dict[str, int]]:
    """One poll: every ``ldmsd_self`` set visible on the peer, as
    ``{set_name: {metric: value}}``."""
    reply = client.request(wire.encode_frame(wire.MsgType.DIR_REQ, 1))
    fleet: dict[str, dict[str, int]] = {}
    for info in wire.unpack_dir_reply(reply.payload):
        if info.schema != SELF_SCHEMA:
            continue
        lreply = client.request(
            wire.encode_frame(wire.MsgType.LOOKUP_REQ, 2,
                              wire.pack_lookup_req(info.name)))
        status, region_id, meta = wire.unpack_lookup_reply(lreply.payload)
        if status != wire.E_OK:
            continue
        mirror = MetricSet.from_meta(meta, Arena(info.total_size * 2 + 4096))
        data = client.read_region(region_id)
        if data is None:
            continue
        mirror.apply_data(data)
        fleet[info.name] = mirror.as_dict()
    return fleet


def render_fleet(fleet: dict[str, dict[str, int]],
                 prev: dict[str, dict[str, int]] | None,
                 dt: float) -> list[str]:
    """Format one frame.  ``prev``/``dt`` turn counters into rates;
    with ``prev=None`` (first poll) cumulative totals are shown."""
    lines = [_HEADER]
    for name in sorted(fleet):
        v = fleet[name]
        last = prev.get(name) if prev else None

        def rate(key: str) -> str:
            if last is None or dt <= 0:
                return str(v[key])
            return f"{(v[key] - last[key]) / dt:8.1f}"

        daemon = name.rsplit("/", 1)[0] if "/" in name else name
        lines.append(
            f"{daemon:<20} {rate('samples'):>8} "
            f"{rate('updates_completed'):>8} {rate('updates_stored'):>8} "
            f"{v['completeness_permille'] / 10:7.1f} "
            f"{v['stale_producers']:>5} {v['max_staleness_ms']:>7} "
            f"{v['update_us_p95']:>8} {v['updates_coalesced']:>9} "
            f"{v['arena_rows_vectorized']:>9} {v['spans_recorded']:>7}")
    if not fleet:
        lines.append("(no ldmsd_self sets visible -- is the "
                     "ldmsd_self sampler loaded?)")
    return lines


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro-top",
        description="Live per-daemon fleet view from streamed "
                    "ldmsd_self sets.")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--interval", type=float, default=2.0,
                   help="poll period in seconds (default 2)")
    p.add_argument("--iterations", type=int, default=0,
                   help="stop after N frames (default: run until ^C)")
    p.add_argument("--once", action="store_true",
                   help="print a single frame of cumulative totals")
    args = p.parse_args(argv)
    if args.once:
        args.iterations = 1

    client = SyncClient(args.host, args.port)
    prev: dict[str, dict[str, int]] | None = None
    t_prev = timeutil.monotonic()
    frames = 0
    try:
        while True:
            fleet = collect_fleet(client)
            now = timeutil.monotonic()
            print("\n".join(render_fleet(fleet, prev, now - t_prev)))
            sys.stdout.flush()
            prev, t_prev = fleet, now
            frames += 1
            if args.iterations and frames >= args.iterations:
                break
            timeutil.sleep(args.interval)
            print()
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
