"""Command-line tools mirroring the LDMS binaries.

* ``ldmsd-repro`` — run a daemon (sampler and/or aggregator) with a
  UNIX-socket control channel and optional startup script.
* ``ldmsctl-repro`` — issue control commands to a running daemon.
* ``ldms-ls-repro`` — list (and optionally read) the metric sets a
  daemon publishes, over TCP.
"""
