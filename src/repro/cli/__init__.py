"""Command-line tools mirroring the LDMS binaries.

* ``ldmsd-repro`` — run a daemon (sampler and/or aggregator) with a
  UNIX-socket control channel and optional startup script.
* ``ldmsctl-repro`` — issue control commands to a running daemon.
* ``ldms-ls-repro`` — list (and optionally read) the metric sets a
  daemon publishes, over TCP; ``-v`` adds per-set age/staleness.
* ``repro-top`` — live fleet view: polls the ``ldmsd_self`` sets an
  aggregator republishes and renders per-daemon rates, completeness,
  p95 latencies, and fast-path counters.
* ``repro-trace`` — export a daemon's recorded spans as Chrome
  ``trace_event`` JSON via the control socket.
"""
