"""``repro-trace``: export a daemon's span ring as a Chrome trace.

Asks a running ``ldmsd-repro`` for ``prof export=chrome`` over its
UNIX control socket and writes the returned ``trace_event`` JSON,
ready to load in ``chrome://tracing`` or Perfetto.  Each hop of a
traced update (sample / serve / update / store) appears as one
complete ("X") event; events sharing a trace id form one causal chain.

    repro-trace --socket /tmp/node0.ctl --out trace.json
    repro-trace --socket /tmp/node0.ctl            # JSON to stdout
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli.ldmsctl_cli import send_command

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro-trace",
        description="Export a daemon's recorded spans as Chrome "
                    "trace_event JSON.")
    p.add_argument("--socket", required=True, help="daemon control socket")
    p.add_argument("--out", default=None,
                   help="output file (default: stdout)")
    args = p.parse_args(argv)

    reply = send_command(args.socket, "prof export=chrome")
    status, _, body = reply.partition(" ")
    if status != "0":
        print(f"error: {body or reply}", file=sys.stderr)
        return 1
    doc = json.loads(body)
    n = len(doc.get("traceEvents", []))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=1)
        print(f"wrote {n} trace events to {args.out}")
    else:
        json.dump(doc, sys.stdout, indent=1)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
