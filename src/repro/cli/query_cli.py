"""``repro-query``: time-range queries against the serving tier.

Live mode asks a running daemon over TCP through the feature-gated
wire QUERY API (the daemon must have ``enable_query`` configured):

    repro-query --host 127.0.0.1 --port 10412 --schema meminfo \\
        --t0 100 --t1 160

Offline mode reads a SOS container directly — no daemon needed, same
``[t0, t1)`` semantics, same rollup naming:

    repro-query --path /var/ldms/sos --schema meminfo --level 60 \\
        --t0 0 --t1 3600

Output is CSV: a ``Time,CompId,<metric...>`` header then one row per
record in timestamp order.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _print_rows(names, rows) -> None:
    print("Time,CompId," + ",".join(names))
    for ts, comp_id, values in rows:
        vals = ",".join(f"{v:g}" for v in values)
        print(f"{ts:.6f},{comp_id},{vals}")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro-query",
        description="Query stored metrics: live daemon or SOS container.")
    p.add_argument("--host", default=None, help="daemon host (live mode)")
    p.add_argument("--port", type=int, default=None,
                   help="daemon port (live mode)")
    p.add_argument("--path", default=None,
                   help="SOS container directory (offline mode)")
    p.add_argument("--schema", required=True)
    p.add_argument("--t0", type=float, default=0.0)
    p.add_argument("--t1", type=float, default=float("1e18"))
    p.add_argument("--level", type=int, default=0,
                   help="rollup level in seconds (0: base data)")
    p.add_argument("--comp-id", type=int, default=0,
                   help="restrict to one component (0: all)")
    p.add_argument("--max-records", type=int, default=0,
                   help="truncate the result (0: unbounded)")
    args = p.parse_args(argv)

    if args.path is not None:
        from repro.plugins.stores.sos import SosReader, rollup_schema

        container = (rollup_schema(args.schema, args.level)
                     if args.level else args.schema)
        try:
            reader = SosReader(args.path, container)
        except OSError as exc:
            print(f"cannot open container {container!r}: {exc}",
                  file=sys.stderr)
            return 1
        rows = []
        for rec in reader.range(args.t0, args.t1):
            if args.comp_id and rec.component_id != args.comp_id:
                continue
            if args.max_records and len(rows) >= args.max_records:
                break
            rows.append((rec.timestamp, rec.component_id, rec.values))
        _print_rows(reader.metric_names, rows)
        return 0

    if args.host is None or args.port is None:
        print("need --path (offline) or --host/--port (live)",
              file=sys.stderr)
        return 2

    from repro.cli.client import SyncClient
    from repro.core import wire

    client = SyncClient(args.host, args.port)
    try:
        status, flags, names, rows = client.query(
            args.schema, args.t0, args.t1, level=args.level,
            comp_id=args.comp_id, max_records=args.max_records)
    finally:
        client.close()
    if status != wire.E_OK:
        print(f"query failed: status {status}", file=sys.stderr)
        return 1
    _print_rows(names, rows)
    if flags & wire.QUERY_TRUNCATED:
        print(f"(truncated at {args.max_records} records)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
