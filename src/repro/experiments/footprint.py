"""§IV-D: resource footprints.

Reproduces the paper's numbers for the two deployments:

* metric-set sizes: Chama 7 sets / 467 metrics ~= 44 kB per node;
  Blue Waters 1 set / 194 metrics ~= 24 kB;
* data chunk ~10% of set size; only the data chunk moves per update
  (Chama: ~4 kB per node per 20 s interval; system-wide ~5 MB per
  interval; Blue Waters ~44 MB);
* sampler memory < 2 MB per node;
* daily CSV volume: Chama ~27 GB/day, Blue Waters ~43 GB/day.

Set sizes and CSV bytes are *measured* (real metric sets in a real
arena; real CSV rows written by the store plugin) and extrapolated to
the full machine size and duration.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.core import Ldmsd, SimEnv
from repro.core.store import StoreRecord
from repro.experiments.common import PAPER, print_header, print_table
from repro.nodefs.host import HostModel, HostProfile
from repro.plugins.stores.csv_store import CsvStore
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport

__all__ = ["DeploymentFootprint", "run_chama", "run_blue_waters", "main"]


@dataclass(frozen=True)
class DeploymentFootprint:
    name: str
    n_sets: int
    n_metrics: int
    set_bytes: int
    data_bytes: int
    sampler_arena_bytes: int
    csv_bytes_per_node_day: float
    nodes: int
    interval: float

    @property
    def data_fraction(self) -> float:
        return self.data_bytes / self.set_bytes

    @property
    def daily_csv_gb(self) -> float:
        return self.csv_bytes_per_node_day * self.nodes / 1e9

    @property
    def wire_bytes_per_interval(self) -> float:
        """System-wide data bytes per collection interval."""
        return self.data_bytes * self.nodes


def _measure(name: str, plugins: list[tuple[str, dict]], profile: HostProfile,
             nodes: int, interval: float, samples_for_csv: int = 20,
             hsn: bool = False) -> DeploymentFootprint:
    eng = Engine()
    env = SimEnv(eng)
    clock = {"t": 0.0}
    host = HostModel("n0", clock=lambda: clock["t"], profile=profile)
    gp = None
    if hsn:
        from repro.nodefs.gpcdr import GpcdrModel

        gp = GpcdrModel(clock=lambda: clock["t"], fs=host.fs)
    fabric = SimFabric(eng)
    d = Ldmsd("n0", env=env, fs=host.fs,
              transports={"sock": SimTransport(fabric, "sock")})
    plug_objs = []
    for pname, extra in plugins:
        plug_objs.append(
            d.load_sampler(pname, instance=f"n0/{pname}", component_id=1, **extra)
        )

    sets = [s for p in plug_objs for s in p.sets]
    set_bytes = sum(s.total_size for s in sets)
    data_bytes = sum(s.data_size for s in sets)
    n_metrics = sum(s.card for s in sets)

    # Measured CSV volume: run the store plugin on real records.  The
    # host gets a month of uptime and a working load first so counters
    # carry production-typical digit counts (a day-one node underprices
    # CSV rows).
    host.set_workload(
        cpu_user_frac=0.6, cpu_sys_frac=0.05,
        lustre_read_bps=5e7, lustre_write_bps=2e7,
        lustre_open_rate=5.0, lustre_close_rate=5.0,
        eth_rx_bps=1e6, eth_tx_bps=1e6, ib_rx_bps=5e7, ib_tx_bps=5e7,
        lnet_send_bps=2e7, lnet_recv_bps=5e7, nfs_ops_rate=20.0,
    )
    uptime = 30 * 86400.0
    with tempfile.TemporaryDirectory() as tmp:
        store = CsvStore()
        store.config(path=tmp, buffer_lines=1)
        for k in range(samples_for_csv):
            t = uptime + float(k) * interval
            clock["t"] = t
            if gp is not None:
                for direction in gp.traffic:
                    gp.add_traffic(direction, 2.0e8 * interval)
                    gp.add_stall(direction, 0.05 * interval)
            for p in plug_objs:
                p.sample(t)
                for s in p.sets:
                    store.submit(StoreRecord.from_set(s, "n0"))
        store.close()
        csv_bytes = sum(
            os.path.getsize(os.path.join(tmp, f)) for f in sorted(os.listdir(tmp))
        )
    rows_per_day = 86400.0 / interval
    csv_per_node_day = csv_bytes / samples_for_csv * rows_per_day

    return DeploymentFootprint(
        name=name,
        n_sets=len(sets),
        n_metrics=n_metrics,
        set_bytes=set_bytes,
        data_bytes=data_bytes,
        sampler_arena_bytes=d.arena.used,
        csv_bytes_per_node_day=csv_per_node_day,
        nodes=nodes,
        interval=interval,
    )


def run_chama() -> DeploymentFootprint:
    """Chama: the 7 production sets, padded to the production metric
    count with extra meminfo keys and per-cpu CPU rows (§IV-G lists the
    sources; the exact 467-metric list is site configuration)."""
    profile = HostProfile(ncpus=16)
    meminfo_keys = (
        "MemTotal,MemFree,Buffers,Cached,SwapCached,Active,Inactive,Dirty,"
        "Writeback,AnonPages,Mapped,Shmem,Slab,SwapTotal,SwapFree,"
        "CommitLimit,Committed_AS,VmallocTotal,VmallocUsed,HugePages_Total"
    )
    plugins = [
        ("meminfo", {"metrics": meminfo_keys}),
        ("procstat", {"percpu": True}),
        ("loadavg", {}),
        ("lustre", {}),
        ("nfs", {}),
        ("ethernet", {}),
        ("infiniband", {}),
        # Site-specific extra counters bringing the total toward 467.
        ("synthetic", {"num_metrics": 260, "pattern": "random"}),
    ]
    return _measure("Chama", plugins, profile,
                    nodes=PAPER.chama_nodes, interval=PAPER.chama_interval)


def run_blue_waters() -> DeploymentFootprint:
    """Blue Waters: one combined 194-metric custom set (§IV-F)."""
    profile = HostProfile(
        ncpus=32,
        lustre_mounts=tuple(f"snx{11000 + i}" for i in range(27)),
        nfs=False, eth_ifaces=(), ib_devices=(), lnet=True,
    )
    plugins = [("bw_custom", {})]
    return _measure("Blue Waters", plugins, profile, hsn=True,
                    nodes=PAPER.bw_nodes, interval=PAPER.bw_interval_production)


def main() -> tuple[DeploymentFootprint, DeploymentFootprint]:
    chama = run_chama()
    bw = run_blue_waters()
    print_header("Resource footprint (paper §IV-D)")
    print_table(
        ["quantity", "Chama measured", "Chama paper", "BW measured", "BW paper"],
        [
            ["metric sets/node", chama.n_sets, PAPER.chama_sets, bw.n_sets, 1],
            ["metrics/node", chama.n_metrics, PAPER.chama_metrics,
             bw.n_metrics, PAPER.bw_metrics],
            ["set bytes/node", chama.set_bytes, PAPER.chama_set_bytes,
             bw.set_bytes, PAPER.bw_set_bytes],
            ["data bytes/node", chama.data_bytes,
             PAPER.chama_data_bytes_per_node, bw.data_bytes, "~10% of set"],
            ["data fraction", chama.data_fraction, "~0.10",
             bw.data_fraction, "~0.10"],
            ["sampler arena bytes", chama.sampler_arena_bytes, "<2MB",
             bw.sampler_arena_bytes, "<2MB"],
            ["daily CSV GB (machine)", chama.daily_csv_gb,
             PAPER.chama_daily_csv_gb, bw.daily_csv_gb, PAPER.bw_daily_csv_gb],
            ["wire MB/interval (machine)",
             chama.wire_bytes_per_interval / 1e6, "~5",
             bw.wire_bytes_per_interval / 1e6, PAPER.bw_agg_wire_mb],
        ],
    )
    return chama, bw


if __name__ == "__main__":
    main()
