"""Fig. 7: Chama application runtime averages under NM / LM / HM.

"Three conditions were considered: no LDMS (NM - unmonitored),
sampling on the node at 20 second intervals (LM - low monitoring) and
sampling on the nodes at one second intervals (HM - high monitoring).
We ran the applications as a consistent ensemble of simulations ...
Two Nalu simulations utilizing 1,536 and 8,192 PE, two CTH simulations
utilizing 1,024 and 7,200 PE, and two Adagio simulations utilizing 512
and 1,024 PE ... each ensemble was simulated three times."

Acceptance criterion (paper): for every application the monitored
averages sit within the observed unmonitored range — "LDMS monitoring
appears to have no practical impact on the run time".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.impact import ImpactSummary, compare_runs
from repro.apps import Adagio, Cth, Nalu
from repro.apps.base import MonitoringSpec
from repro.experiments.common import print_header, print_table
from repro.util.rngtools import spawn_rng

__all__ = ["Fig7Result", "ENSEMBLE", "run", "main"]

#: (series label, app factory) — PE = nodes x 16 cores on Chama.
ENSEMBLE = [
    ("Nalu-8192", lambda s: Nalu(n_nodes=max(int(512 * s), 8))),
    ("Nalu-1536", lambda s: Nalu(n_nodes=max(int(96 * s), 8))),
    ("CTH-7200", lambda s: Cth(n_nodes=max(int(450 * s), 8))),
    ("CTH-1024", lambda s: Cth(n_nodes=max(int(64 * s), 8), iterations=600)),
    ("Adagio-1024", lambda s: Adagio(n_nodes=max(int(64 * s), 8))),
    ("Adagio-512", lambda s: Adagio(n_nodes=max(int(32 * s), 8))),
]

SPECS = {
    "20s interval": MonitoringSpec.interval_20s(),
    "1s interval": MonitoringSpec.interval_1s(),
}


@dataclass
class Fig7Result:
    series: dict[str, list[ImpactSummary]]

    def any_significant(self) -> list[tuple[str, str]]:
        """Family-wise (Bonferroni-corrected) significant impacts."""
        from repro.analysis.impact import family_significant

        return family_significant(self.series)


def run(repeats: int = 3, seed: int = 8, scale: float = 1.0) -> Fig7Result:
    rng = spawn_rng(seed, "fig7")
    series = {}
    for label, factory in ENSEMBLE:
        app = factory(scale)
        base = app.ensemble(MonitoringSpec.unmonitored(), rng, repeats)
        monitored = {lbl: app.ensemble(spec, rng, repeats)
                     for lbl, spec in SPECS.items()}
        series[label] = compare_runs(base, monitored)
    return Fig7Result(series=series)


def main() -> Fig7Result:
    res = run(scale=0.25)
    print_header("Fig. 7: Chama application runtime averages (seconds)")
    rows = []
    for name, summaries in res.series.items():
        for s in summaries:
            rows.append([name, s.label, s.mean, s.lo, s.hi, f"{s.p_value:.2f}"])
    print_table(["application", "config", "mean s", "min s", "max s",
                 "p-value"], rows)
    sig = res.any_significant()
    print(f"\nstatistically significant impacts: "
          f"{sig if sig else 'none (matches paper)'}")
    return res


if __name__ == "__main__":
    main()
