"""Fig. 11: Lustre opens — node x time features.

"Figure 11 illustrates how observing system wide information can
provide a simple means to determine what system components over what
times are consuming particular resources.  In this figure it can be
seen from the horizontal lines that certain hosts are performing a
significant and sustained level of Lustre opens.  These can be easily
correlated with user and job.  The vertical lines show times when
Lustre opens occur across most nodes of the system."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.heatmap import sustained_bands, systemwide_events, threshold_grid
from repro.experiments.common import print_header, print_table
from repro.sim.fleet import RateFleet
from repro.util.rngtools import spawn_rng

__all__ = ["Fig11Result", "run", "main"]

HOUR = 3600.0
DAY = 24 * HOUR


@dataclass
class Fig11Result:
    times: np.ndarray
    opens: np.ndarray  # (T, N) opens per interval
    abusive_nodes: list[int]
    detected_bands: list[tuple[int, float]]
    detected_events: list[tuple[int, float]]
    planted_event_times: list[float]

    @property
    def bands_match(self) -> bool:
        return set(self.abusive_nodes) == {n for n, _ in self.detected_bands}

    @property
    def events_match(self) -> bool:
        if not self.detected_events:
            return False
        detected_t = {self.times[i] for i, _ in self.detected_events}
        return all(
            any(abs(t - d) <= 2 * (self.times[1] - self.times[0])
                for d in detected_t)
            for t in self.planted_event_times
        )


def run(n_nodes: int = 1296, sample_interval: float = 60.0,
        seed: int = 11) -> Fig11Result:
    rng = spawn_rng(seed, "fig11")
    fleet = RateFleet(n_nodes, sample_interval, seed=seed)
    fleet.base_rate = 0.005  # idle background opens (mostly under threshold)

    # Normal jobs: moderate opens on blocks of nodes for some hours.
    for _ in range(30):
        t0 = float(rng.uniform(0.0, DAY - HOUR))
        t1 = min(t0 + float(rng.uniform(0.5, 8.0)) * HOUR, DAY)
        size = int(rng.integers(8, 65))
        start = int(rng.integers(0, n_nodes - size))
        fleet.add_rate_window(t0, t1, np.arange(start, start + size),
                              float(rng.uniform(0.2, 2.0)))

    # Horizontal lines: a few hosts sustaining heavy opens (a user job
    # opening files in a loop) for most of the day.
    abusive = sorted(int(x) for x in
                     rng.choice(n_nodes, size=4, replace=False))
    fleet.add_rate_window(1 * HOUR, 23 * HOUR, abusive, 50.0)

    # Vertical lines: system-wide open bursts (e.g. system software
    # touching a shared file on every node).
    planted = [6 * HOUR, 16 * HOUR]
    for t_ev in planted:
        fleet.add_rate_window(t_ev, t_ev + sample_interval,
                              np.arange(n_nodes), 30.0)

    times, opens = fleet.run(DAY)
    bands = sustained_bands(opens, value_threshold=500.0,
                            min_duration_fraction=0.5)
    events = systemwide_events(opens, value_threshold=500.0,
                               min_node_fraction=0.6)
    return Fig11Result(
        times=times,
        opens=opens,
        abusive_nodes=abusive,
        detected_bands=bands,
        detected_events=events,
        planted_event_times=planted,
    )


def main() -> Fig11Result:
    res = run()
    print_header("Fig. 11: Lustre opens per minute, node x time features")
    grid = threshold_grid(res.opens, threshold=1.0)
    shown = np.nan_to_num(grid, nan=0.0)
    print_table(
        ["feature", "value"],
        [
            ["nodes x samples", f"{res.opens.shape[1]} x {res.opens.shape[0]}"],
            ["cells above display threshold",
             f"{(shown > 0).mean():.1%}"],
            ["sustained horizontal bands (nodes)",
             [n for n, _ in res.detected_bands]],
            ["planted abusive nodes", res.abusive_nodes],
            ["bands identified correctly", res.bands_match],
            ["system-wide vertical events (times, h)",
             [round(res.times[i] / 3600.0, 2) for i, _ in res.detected_events]],
            ["planted event times (h)",
             [t / 3600.0 for t in res.planted_event_times]],
            ["events identified correctly", res.events_match],
        ],
    )
    return res


if __name__ == "__main__":
    main()
