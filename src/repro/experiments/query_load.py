"""Query-tier load: a mixed client population against one aggregator.

The north star's serving story (ROADMAP item 2): the aggregator that
collects the fleet also *serves* it.  This experiment stands the whole
read path up in the DES — N sampler daemons feed one aggregator whose
SOS store maintains rollup levels on ingest; a client population with
the CMS workload mix (dashboard pollers, alert evaluators, ad-hoc
range scanners, :mod:`repro.query.clients`) connects over the wire
QUERY API and hammers it for the run — and reports what the serving
tier is measured by:

* served round-trip p50/p95/p99 per client class (queries run on the
  aggregator's worker pool, so the tail includes queueing behind the
  update pipeline);
* cache effectiveness: hot-window + LRU hit rate out of the
  aggregator's own ``ldmsd_self`` counters;
* correctness anchors: every reply a client accepted came through the
  feature-gated wire path, and the same seed replays byte-identically
  (the result fingerprint includes a digest of the SOS containers).

``main()`` writes the ``BENCH_query.json`` trajectory CI uploads and
verifies the same-seed replay.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass

from repro.core import Ldmsd, SimEnv
from repro.experiments.common import print_header, print_table
from repro.query.clients import ClientMix, build_population
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport

__all__ = ["QueryLoadResult", "run_query_load", "main"]

_CLASSES = ("poller", "evaluator", "scanner")


@dataclass(frozen=True)
class ClassStats:
    """One client class's aggregate outcome."""

    clients: int
    sent: int
    replies: int
    errors: int
    rows: int
    rtt_us_p50: int
    rtt_us_p95: int
    rtt_us_p99: int
    rtt_us_max: int


@dataclass(frozen=True)
class QueryLoadResult:
    n_samplers: int
    n_metrics: int
    interval: float
    duration: float
    poller: ClassStats
    evaluator: ClassStats
    scanner: ClassStats
    alerts_fired: int
    #: Aggregator-side ldmsd_self counters.
    query_requests: int
    cache_hits: int
    cache_misses: int
    rows_served: int
    cache_hit_permille: int
    serve_us_p50: int
    serve_us_p95: int
    serve_us_p99: int
    records_stored: int
    #: Digest over every SOS container file (sorted), after shutdown —
    #: the byte-identical-replay anchor.
    container_sha256: str

    def key(self) -> tuple:
        """Determinism fingerprint: every measured number."""
        return (
            asdict(self.poller), asdict(self.evaluator),
            asdict(self.scanner), self.alerts_fired, self.query_requests,
            self.cache_hits, self.cache_misses, self.rows_served,
            self.serve_us_p50, self.serve_us_p95, self.serve_us_p99,
            self.records_stored, self.container_sha256,
        )


def _us(seconds: float) -> int:
    return int(seconds * 1e6) if seconds > 0 else 0


def _digest(path: str) -> str:
    h = hashlib.sha256()
    for name in sorted(os.listdir(path)):
        h.update(name.encode())
        with open(os.path.join(path, name), "rb") as f:
            h.update(f.read())
    return h.hexdigest()[:16]


def run_query_load(
    n_samplers: int = 16,
    n_metrics: int = 8,
    interval: float = 1.0,
    duration: float = 120.0,
    mix: ClientMix | None = None,
    hot_window: float = 30.0,
    cache_entries: int = 256,
    xprt: str = "sock",
) -> QueryLoadResult:
    """Build the topology, run it, and measure the serving tier."""
    if mix is None:
        mix = ClientMix()
    with tempfile.TemporaryDirectory(prefix="query_load_sos_") as tmp:
        eng = Engine()
        env = SimEnv(eng)
        fabric = SimFabric(eng)
        for i in range(n_samplers):
            x = SimTransport(fabric, xprt, node_id=i)
            d = Ldmsd(f"n{i}", env=env, transports={xprt: x},
                      mem=max(8 * 1024, 4096 + n_metrics * 256),
                      workers=1, conn_threads=1, flush_threads=1)
            d.load_sampler("synthetic", instance=f"n{i}/syn",
                           component_id=i + 1, num_metrics=n_metrics)
            d.start_sampler(f"n{i}/syn", interval=interval)
            d.listen(xprt, f"n{i}:411")
        agg_x = SimTransport(fabric, xprt, node_id="agg")
        agg = Ldmsd("agg", env=env, transports={xprt: agg_x},
                    mem=max(4 * 1024 * 1024, n_samplers * 4096),
                    workers=8, conn_threads=4, flush_threads=2)
        store = agg.add_store("sos", path=tmp,
                              rollups=f"{int(mix.eval_level)},"
                                      f"{int(mix.scan_level)}")
        for i in range(n_samplers):
            agg.add_producer(f"n{i}", xprt, f"n{i}:411", interval=interval,
                             sets=(f"n{i}/syn",))
        agg.enable_query(hot_window=hot_window, cache_entries=cache_entries)
        agg.listen(xprt, "agg:412")

        from repro.obs.registry import Telemetry

        telemetry = Telemetry(enabled=True)
        clients = build_population(
            env, lambda i: SimTransport(fabric, xprt, node_id=f"client{i}"),
            "agg:412", "synthetic", mix, telemetry)
        for c in clients:
            c.start()
        eng.run(until=duration)

        def class_stats(kind: str) -> ClassStats:
            group = [c for c in clients if c.kind == kind]
            h = telemetry.histogram(f"client.{kind}.rtt")
            return ClassStats(
                clients=len(group),
                sent=sum(c.sent for c in group),
                replies=sum(c.replies for c in group),
                errors=sum(c.errors for c in group),
                rows=sum(c.rows_received for c in group),
                rtt_us_p50=_us(h.quantile(0.50)),
                rtt_us_p95=_us(h.quantile(0.95)),
                rtt_us_p99=_us(h.quantile(0.99)),
                rtt_us_max=_us(h.max if h.count else 0.0),
            )

        per_class = {kind: class_stats(kind) for kind in _CLASSES}
        alerts = sum(getattr(c, "alerts", 0) for c in clients)
        hq = agg.obs.histogram("serve.query")
        requests = agg.obs.counter("query.requests").value
        hits = agg.obs.counter("query.cache_hits").value
        misses = agg.obs.counter("query.cache_misses").value
        rows_served = agg.obs.counter("query.rows_served").value
        records_stored = store.records_stored
        serve_p50, serve_p95, serve_p99 = (
            _us(hq.quantile(q)) for q in (0.50, 0.95, 0.99))
        agg.shutdown()  # seals rollup buckets + closes containers
        digest = _digest(tmp)

    return QueryLoadResult(
        n_samplers=n_samplers,
        n_metrics=n_metrics,
        interval=interval,
        duration=duration,
        poller=per_class["poller"],
        evaluator=per_class["evaluator"],
        scanner=per_class["scanner"],
        alerts_fired=alerts,
        query_requests=requests,
        cache_hits=hits,
        cache_misses=misses,
        rows_served=rows_served,
        cache_hit_permille=(
            int(hits * 1000 / requests + 0.5) if requests else 0),
        serve_us_p50=serve_p50,
        serve_us_p95=serve_p95,
        serve_us_p99=serve_p99,
        records_stored=records_stored,
        container_sha256=digest,
    )


def _report(r: QueryLoadResult) -> dict:
    doc = {
        "config": {
            "n_samplers": r.n_samplers,
            "n_metrics": r.n_metrics,
            "interval": r.interval,
            "duration": r.duration,
        },
        "clients": {
            kind: asdict(getattr(r, kind)) for kind in _CLASSES
        },
        "alerts_fired": r.alerts_fired,
        "aggregator": {
            "query_requests": r.query_requests,
            "cache_hits": r.cache_hits,
            "cache_misses": r.cache_misses,
            "cache_hit_permille": r.cache_hit_permille,
            "rows_served": r.rows_served,
            "serve_us": {"p50": r.serve_us_p50, "p95": r.serve_us_p95,
                         "p99": r.serve_us_p99},
        },
        "sos": {
            "records_stored": r.records_stored,
            "container_sha256": r.container_sha256,
        },
    }
    return doc


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(
        description="Query-tier load experiment (serving the CMS mix)")
    parser.add_argument("--samplers", type=int, default=16)
    parser.add_argument("--metrics", type=int, default=8)
    parser.add_argument("--interval", type=float, default=1.0)
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--out", default="BENCH_query.json",
                        help="trajectory file (CI artifact)")
    args = parser.parse_args(argv)

    print_header("Query/serving tier under the CMS client mix")
    r = run_query_load(n_samplers=args.samplers, n_metrics=args.metrics,
                       interval=args.interval, duration=args.duration)
    rows = []
    for kind in _CLASSES:
        s: ClassStats = getattr(r, kind)
        rows.append([kind, s.clients, s.sent, s.replies, s.errors, s.rows,
                     s.rtt_us_p50, s.rtt_us_p95, s.rtt_us_p99])
    print_table(
        ["class", "clients", "sent", "replies", "errors", "rows",
         "rtt p50 (us)", "p95", "p99"],
        rows,
    )
    print_table(
        ["query requests", "cache hits", "misses", "hit rate",
         "rows served", "serve p50 (us)", "p95", "p99"],
        [[r.query_requests, r.cache_hits, r.cache_misses,
          f"{r.cache_hit_permille / 10:.1f}%", r.rows_served,
          r.serve_us_p50, r.serve_us_p95, r.serve_us_p99]],
    )
    print_table(
        ["records stored", "alerts fired", "container sha256"],
        [[r.records_stored, r.alerts_fired, r.container_sha256]],
    )

    # Same seed, same timeline: everything runs on the simulation
    # clock, so a replay must reproduce every number — including the
    # bytes of the SOS containers.
    r2 = run_query_load(n_samplers=args.samplers, n_metrics=args.metrics,
                        interval=args.interval, duration=args.duration)
    deterministic = r.key() == r2.key()
    print(f"\nsame-seed replay identical: {'yes' if deterministic else 'NO'}")

    doc = _report(r)
    doc["deterministic"] = deterministic
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
    print(f"trajectory written to {args.out}")
    return {"run": r, "replay": r2, "deterministic": deterministic}


if __name__ == "__main__":
    main()
