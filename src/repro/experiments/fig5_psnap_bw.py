"""Fig. 5: PSNAP loop-time histogram on Blue Waters.

"PSNAP was run without its barrier mode ... 32 tasks per node were
executed with a 100 us loop.  Figure 5 compares monitored and
unmonitored results.  The one second sampling interval shows an
additional ~1e-4 fraction of events out in the tail with an additional
delay of 100-415 us.  This is in line with the expected delay caused by
the known sampling execution time of order 400 us and the expected
number of occurrences given the execution time of around a minute and
the sampling period of 1 second."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.psnap import Psnap
from repro.apps.base import MonitoringSpec
from repro.experiments.common import PAPER, print_header, print_table
from repro.util.rngtools import spawn_rng
from repro.util.stats import Histogram

__all__ = ["Fig5Result", "run", "main"]


@dataclass
class Fig5Result:
    unmonitored: Histogram
    monitored: Histogram
    tail_threshold_us: float
    extra_tail_fraction: float
    expected_tail_fraction: float
    extra_delay_lo_us: float
    extra_delay_hi_us: float


def run(n_nodes: int = 64, iterations: int = 600_000,
        seed: int = 5) -> Fig5Result:
    """~1 minute of 100 us loops, 32 tasks/node, NM vs 1 s sampling."""
    rng = spawn_rng(seed, "fig5")
    psnap = Psnap(loop_us=100.0, iterations=iterations, tasks_per_node=32,
                  n_nodes=n_nodes)
    nm = MonitoringSpec.unmonitored()
    hm = MonitoringSpec.interval_1s()
    h_nm = psnap.run_histogram(nm, rng, lo_us=98.0, hi_us=600.0, nbins=200)
    h_hm = psnap.run_histogram(hm, rng, lo_us=98.0, hi_us=600.0, nbins=200)

    threshold = 100.0 + PAPER.psnap_extra_delay_lo_us * 0.9  # past bg tail bulk
    extra = h_hm.tail_fraction(threshold) - h_nm.tail_fraction(threshold)

    # Where does the *extra* mass sit?  Difference histogram bounds.
    diff = np.maximum(h_hm.counts.astype(np.int64) - h_nm.counts, 0)
    centers = h_nm.centers
    nz = np.flatnonzero((diff > 0) & (centers >= threshold))
    lo = float(centers[nz[0]] - 100.0) if nz.size else 0.0
    hi = float(centers[nz[-1]] - 100.0) if nz.size else 0.0
    return Fig5Result(
        unmonitored=h_nm,
        monitored=h_hm,
        tail_threshold_us=threshold,
        extra_tail_fraction=extra,
        expected_tail_fraction=psnap.expected_sampler_tail_fraction(hm),
        extra_delay_lo_us=lo,
        extra_delay_hi_us=hi,
    )


def main() -> Fig5Result:
    res = run()
    print_header("Fig. 5: PSNAP occurrences vs loop time (Blue Waters)")
    rows = []
    for (c, n_nm), (_, n_hm) in zip(res.unmonitored.rows(), res.monitored.rows()):
        if n_nm or n_hm:
            rows.append([f"{c:.1f}", n_nm, n_hm])
    # Print a decimated view (the figure's visual content).
    print_table(["loop us", "unmonitored", "1s sampling"],
                rows[:: max(len(rows) // 40, 1)])
    print(f"\nextra tail fraction (>{res.tail_threshold_us:.0f} us): "
          f"{res.extra_tail_fraction:.2e} "
          f"(expected from sampler rate: {res.expected_tail_fraction:.2e})")
    print(f"extra delay band: {res.extra_delay_lo_us:.0f}-"
          f"{res.extra_delay_hi_us:.0f} us "
          f"(paper: {PAPER.psnap_extra_delay_lo_us:.0f}-"
          f"{PAPER.psnap_extra_delay_hi_us:.0f} us)")
    return res


if __name__ == "__main__":
    main()
