"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(...)`` returning a result object and a
``main()`` that prints the same rows/series the paper reports.  The
benchmarks in ``benchmarks/`` wrap these.  Paper-vs-measured values are
recorded in EXPERIMENTS.md.

=========================== =============================================
module                      reproduces
=========================== =============================================
``ganglia_compare``         §IV-E per-metric collection cost (126 vs
                            1.3 us/metric)
``footprint``               §IV-D resource footprints (set sizes, memory,
                            daily data volume, wire bytes)
``fanin``                   §IV-A fan-in limits by transport; §IV-D
                            aggregator CPU/memory
``fig5_psnap_bw``           Fig. 5 PSNAP histogram (Blue Waters)
``fig6_bw_benchmarks``      Fig. 6 benchmark variation under LDMS
``fig7_chama_apps``         Fig. 7 Chama application runtimes
``fig8_psnap_chama``        Fig. 8 PSNAP NM / HM_HALF / HM
``fig9_credit_stalls``      Fig. 9 credit stalls: 24 h node view + 3-D
                            torus snapshot
``fig10_bandwidth``         Fig. 10 percent max bandwidth
``fig11_lustre_opens``      Fig. 11 Lustre opens features
``fig12_oom_profile``       Fig. 12 OOM-killed job memory profile
=========================== =============================================
"""
