"""Fig. 8: PSNAP on Chama — NM vs HM_HALF vs HM.

"PSNAP was run on Chama under the conditions of: no monitoring (NM),
LDMS sampling on the nodes at 1 sec intervals with samplers
contributing about half the metrics (HM HALF), and all samplers at 1
sec intervals (HM).  1M iterations of a 100 us loop on 1200 nodes were
used ... While NM and HM HALF are comparable, there are substantially
more elements in the tail in HM case.  Sampling impact is expected to
be subject to the number of samplers and the time a sampler spends in
sampling."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import MonitoringSpec
from repro.apps.psnap import Psnap
from repro.experiments.common import print_header, print_table
from repro.util.rngtools import spawn_rng
from repro.util.stats import Histogram

__all__ = ["Fig8Result", "run", "main"]


@dataclass
class Fig8Result:
    histograms: dict[str, Histogram]
    tail_threshold_us: float

    def tail_fractions(self) -> dict[str, float]:
        return {k: h.tail_fraction(self.tail_threshold_us)
                for k, h in self.histograms.items()}


def run(n_nodes: int = 120, iterations: int = 200_000,
        seed: int = 8) -> Fig8Result:
    """Chama shape: 16 cores/node; NM / HM_HALF / HM at 1 s."""
    rng = spawn_rng(seed, "fig8")
    psnap = Psnap(loop_us=100.0, iterations=iterations, tasks_per_node=16,
                  n_nodes=n_nodes)
    specs = {
        "NM": MonitoringSpec.unmonitored(),
        "HM_HALF": MonitoringSpec.chama_plugins(interval=1.0,
                                                metric_fraction=0.5),
        "HM": MonitoringSpec.chama_plugins(interval=1.0),
    }
    hists = {
        label: psnap.run_histogram(spec, rng, lo_us=98.0, hi_us=600.0,
                                   nbins=200)
        for label, spec in specs.items()
    }
    return Fig8Result(histograms=hists, tail_threshold_us=180.0)


def main() -> Fig8Result:
    res = run()
    print_header("Fig. 8: PSNAP loop duration histograms (Chama)")
    labels = list(res.histograms)
    rows = []
    base = res.histograms[labels[0]]
    for i, c in enumerate(base.centers):
        counts = [int(res.histograms[k].counts[i]) for k in labels]
        if any(counts):
            rows.append([f"{c:.1f}"] + counts)
    print_table(["loop us"] + labels, rows[:: max(len(rows) // 40, 1)])
    fracs = res.tail_fractions()
    print(f"\ntail fractions beyond {res.tail_threshold_us:.0f} us:")
    for k, v in fracs.items():
        print(f"  {k:8s} {v:.2e}")
    comparable = fracs["HM_HALF"] < 2.0 * max(fracs["NM"], 1e-12)
    substantial = fracs["HM"] > 3.0 * max(fracs["HM_HALF"], 1e-12)
    print("paper shape (NM ~ HM_HALF, HM substantially larger):",
          comparable and substantial)
    return res


if __name__ == "__main__":
    main()
