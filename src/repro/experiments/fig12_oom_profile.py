"""Fig. 12: application profile of a 64-node job killed by the OOM killer.

"Application profiles are built from LDMS and scheduler data.  Active
memory for a 64 node job terminated by the OOM killer is shown ...
Total per node memory available is 64G.  Memory imbalance and change in
resource demands with time are readily apparent."  Grey pre/post-job
margins verify node state on entry and exit.

This experiment runs end-to-end through the real pipeline: a simulated
Chama slice with an ldmsd per node sampling /proc/meminfo every 20 s,
aggregated over (simulated) RDMA into a store, a scheduler running the
leaking job, the OOM killer terminating it, and the profile built by
joining the store with the job log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.profiles import JobProfile, build_job_profile
from repro.cluster import JobSpec, JobState, Scheduler, chama
from repro.experiments.common import print_header, print_table
from repro.util.rngtools import spawn_rng

__all__ = ["Fig12Result", "run", "main"]


@dataclass
class Fig12Result:
    profile: JobProfile
    oom_killed: bool
    mem_total_kb: int
    peak_node_kb: float

    @property
    def imbalance_visible(self) -> bool:
        return self.profile.imbalance_ratio > 1.5

    @property
    def growth_visible(self) -> bool:
        return float(np.max(self.profile.growth())) > 8 * 1024 * 1024  # >8 GB


def run(job_nodes: int = 64, machine_nodes: int = 72,
        interval: float = 20.0, seed: int = 12) -> Fig12Result:
    rng = spawn_rng(seed, "fig12")
    m = chama(n_nodes=machine_nodes, seed=seed)
    dep = m.deploy_ldms(
        plugins=[("meminfo", {})],
        interval=interval,
        fanin=max(machine_nodes // 2, 8),
        second_level=True,
        store="memory",
    )
    sched = Scheduler(m, oom_interval=interval / 2)

    # Imbalanced leak: every node grows, a few much faster — the fastest
    # hits 64 GB and triggers the OOM killer mid-run.
    growth = rng.uniform(8e3, 25e3, job_nodes)  # kB/s
    hogs = rng.choice(job_nodes, size=6, replace=False)
    growth[hogs] = rng.uniform(4e4, 7e4, hogs.size)
    spec = JobSpec(
        name="fig12-app",
        n_nodes=job_nodes,
        duration=3600.0,  # would run an hour, but OOM comes first
        mem_active_kb=4 * 1024 * 1024,
        mem_growth_kb_s=growth,
        update_interval=interval / 2,
    )
    job = sched.submit(spec, delay=120.0)  # pre-job margin with idle nodes
    # Run until the job ends (OOM expected) plus a post-job margin.
    while job.state in (JobState.PENDING, JobState.RUNNING) and m.engine.now < 7200.0:
        m.run(until=m.engine.now + 60.0)
    m.run(until=m.engine.now + 180.0)

    profile = build_job_profile(dep.store, sched, job, metric="Active",
                                schema="meminfo", margin=90.0,
                                set_suffix="meminfo")
    peak = float(np.nanmax(profile.values))
    dep.shutdown()
    return Fig12Result(
        profile=profile,
        oom_killed=job.state is JobState.OOM_KILLED,
        mem_total_kb=m.nodes[0].mem_total_kb,
        peak_node_kb=peak,
    )


def main() -> Fig12Result:
    res = run()
    p = res.profile
    print_header("Fig. 12: Active memory profile of an OOM-killed 64-node job")
    print_table(
        ["quantity", "value", "paper"],
        [
            ["job nodes", len(p.node_indices), 64],
            ["node memory (GB)", res.mem_total_kb / 1024 / 1024, 64],
            ["terminated by OOM killer", res.oom_killed, True],
            ["job duration (s)", p.end_time - p.start_time, "partial run"],
            ["peak node Active (GB)", res.peak_node_kb / 1024 / 1024,
             "~64 (at kill)"],
            ["imbalance ratio (max/min node mean)", p.imbalance_ratio,
             "apparent"],
            ["max in-job growth (GB)", float(np.max(p.growth())) / 1024 / 1024,
             "apparent"],
            ["pre/post margins quiet (<2 GB)",
             p.pre_post_quiet(2 * 1024 * 1024), True],
        ],
    )
    # The figure's content: a decimated per-node series summary.
    inside = (p.times >= p.start_time) & (p.times < p.end_time)
    t_in = p.times[inside]
    rows = []
    for k in range(0, len(t_in), max(len(t_in) // 12, 1)):
        col = p.values[:, inside][:, k] / 1024 / 1024
        rows.append([f"{t_in[k] - p.start_time:.0f}",
                     float(np.nanmin(col)), float(np.nanmedian(col)),
                     float(np.nanmax(col))])
    print("\nper-node Active memory during the job (GB):")
    print_table(["t since start (s)", "min node", "median node", "max node"],
                rows)
    return res


if __name__ == "__main__":
    main()
