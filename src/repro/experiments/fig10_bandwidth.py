"""Fig. 10: percent of theoretical max bandwidth used (Y+).

"A related but different quantity reflective of network congestion is
percent of theoretical maximum bandwidth used.  The theoretical maximum
is dependent on the link media type.  The highest value over the course
of the same day is in the Y+ direction at 63 percent.  Note the value
is significantly higher than typically observed values in the system
over this time and is readily apparent in the figure."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.bw_day import run_day
from repro.experiments.common import PAPER, print_header, print_table
from repro.sim.fleet import HsnTraceResult

__all__ = ["Fig10Result", "run", "main"]


@dataclass
class Fig10Result:
    result: HsnTraceResult
    max_bw_pct: float
    max_time_index: int
    max_gemini: int
    typical_p99_pct: float

    @property
    def stands_out(self) -> bool:
        """The paper's qualitative claim: the max is far above typical."""
        return self.max_bw_pct > 3.0 * self.typical_p99_pct


def run(dims: tuple[int, int, int] = (24, 24, 24),
        sample_interval: float = 60.0, seed: int = 9) -> Fig10Result:
    res, torus = run_day(dims=dims, sample_interval=sample_interval,
                         seed=seed, directions=("X+", "Y+"))
    grid = res.bw_pct["Y+"]
    t_i, g_i, vmax = res.argmax("Y+", kind="bw")
    # "Typical" = p99 across all (time, gemini) samples excluding the
    # peak hour.
    mask = np.ones(grid.shape[0], dtype=bool)
    lo = max(t_i - 30, 0)
    mask[lo : t_i + 31] = False
    typical = float(np.percentile(grid[mask], 99.0))
    return Fig10Result(result=res, max_bw_pct=vmax, max_time_index=t_i,
                       max_gemini=g_i, typical_p99_pct=typical)


def main(dims: tuple[int, int, int] = (24, 24, 24)) -> Fig10Result:
    res = run(dims=dims)
    print_header("Fig. 10: percent max bandwidth used, Y+ direction")
    print_table(
        ["quantity", "measured", "paper"],
        [
            ["max % bandwidth (Y+)", res.max_bw_pct, PAPER.fig10_max_bw_pct],
            ["typical p99 %", res.typical_p99_pct, "low"],
            ["max readily apparent", res.stands_out, True],
        ],
    )
    grid = res.result.bw_pct["Y+"]
    per_hour = grid.reshape(24, -1, grid.shape[1])
    rows = [[h, float(per_hour[h].max()), float(np.percentile(per_hour[h], 99.0))]
            for h in range(24)]
    print("\nhourly Y+ bandwidth summary (max / p99 across Geminis):")
    print_table(["hour", "max %", "p99 %"], rows)
    return res


if __name__ == "__main__":
    main()
