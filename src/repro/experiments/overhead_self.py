"""Self-instrumentation overhead: the monitor monitoring itself.

The paper's continuous-monitoring argument (§V–§VII) rests on LDMS's
own overhead being measured and bounded.  This harness turns that
argument on our own telemetry layer: it runs the same DES pipeline —
N sampler daemons (a BW-sized ``synthetic`` set plus their
``ldmsd_self`` set) pulled by one aggregator into a store — with
telemetry enabled and disabled, and reports

* the host-CPU (wall-clock) cost of simulating the pipeline in both
  modes, i.e. the instrumentation overhead on the PR-1 fast path
  (must stay < 5%; CI asserts the same bound on the micro unit in
  ``benchmarks/check_obs_overhead.py``), and
* the pipeline's view of itself from the instrumented run: per-stage
  latency quantiles and a rendered ``ldmsd_self`` health block —
  collected over the simulated transport like any other metric set.

    PYTHONPATH=src python -m repro.experiments.overhead_self
"""

from __future__ import annotations

from repro.util.timeutil import perf_counter
from dataclasses import dataclass

from repro import obs
from repro.core import Ldmsd, SimEnv
from repro.experiments.common import print_header, print_table
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport

__all__ = ["PipelineRun", "run_pipeline", "measure_overhead", "main"]


@dataclass(frozen=True)
class PipelineRun:
    obs_enabled: bool
    wall_seconds: float
    rows_stored: int
    self_rows: int


def _build(n_samplers: int, interval: float, metrics: int,
           obs_enabled: bool):
    eng = Engine()
    env = SimEnv(eng)
    fabric = SimFabric(eng)
    samplers = []
    for i in range(n_samplers):
        x = SimTransport(fabric, "rdma", node_id=f"n{i}")
        d = Ldmsd(f"n{i}", env=env, transports={"rdma": x}, mem="1MB",
                  workers=1, conn_threads=1, flush_threads=1,
                  obs_enabled=obs_enabled)
        d.load_sampler("synthetic", instance=f"n{i}/syn",
                       component_id=i + 1, num_metrics=metrics)
        d.start_sampler(f"n{i}/syn", interval=interval)
        d.load_sampler("ldmsd_self", instance=f"n{i}/self",
                       component_id=i + 1)
        d.start_sampler(f"n{i}/self", interval=interval)
        d.listen("rdma", f"n{i}:411")
        samplers.append(d)
    agg_x = SimTransport(fabric, "rdma", node_id="agg")
    agg = Ldmsd("agg", env=env, transports={"rdma": agg_x},
                mem=8 * 1024 * 1024, workers=4, conn_threads=2,
                flush_threads=2, obs_enabled=obs_enabled)
    store = agg.add_store("memory")
    for i in range(n_samplers):
        agg.add_producer(f"n{i}", "rdma", f"n{i}:411", interval=interval,
                         sets=(f"n{i}/syn", f"n{i}/self"))
    return eng, agg, store, samplers


def run_pipeline(obs_enabled: bool, n_samplers: int = 8,
                 interval: float = 1.0, metrics: int = 194,
                 duration: float = 120.0) -> tuple[PipelineRun, Ldmsd, list]:
    eng, agg, store, samplers = _build(n_samplers, interval, metrics,
                                       obs_enabled)
    t0 = perf_counter()
    eng.run(until=duration)
    wall = perf_counter() - t0
    self_rows = sum(1 for r in store.rows if r.schema == obs.SELF_SCHEMA)
    run = PipelineRun(obs_enabled=obs_enabled, wall_seconds=wall,
                      rows_stored=len(store.rows), self_rows=self_rows)
    return run, agg, samplers


def measure_overhead(repeats: int = 3, **kwargs) -> tuple[PipelineRun, PipelineRun, float]:
    """Alternating best-of-N runs; returns (best_off, best_on, overhead%)."""
    best = {False: None, True: None}
    for _ in range(repeats):
        for enabled in (False, True):
            run, _, _ = run_pipeline(enabled, **kwargs)
            prev = best[enabled]
            if prev is None or run.wall_seconds < prev.wall_seconds:
                best[enabled] = run
    off, on = best[False], best[True]
    pct = 100.0 * (on.wall_seconds - off.wall_seconds) / off.wall_seconds
    return off, on, pct


def main() -> dict:
    print_header("Telemetry overhead on the simulated pipeline "
                 "(8 samplers x 194 metrics + ldmsd_self, 120 s sim)")
    off, on, pct = measure_overhead()
    print_table(
        ["telemetry", "wall s", "rows stored", "ldmsd_self rows"],
        [["off", round(off.wall_seconds, 3), off.rows_stored, off.self_rows],
         ["on", round(on.wall_seconds, 3), on.rows_stored, on.self_rows]],
    )
    print(f"\ninstrumentation overhead: {pct:+.2f}% (target < 5%)")
    if on.rows_stored != off.rows_stored:
        print("WARNING: row counts differ between modes")

    # The pipeline's view of itself, from the instrumented run.
    run, agg, samplers = run_pipeline(True)
    print_header("Aggregator per-stage latencies (simulated seconds)")
    snap = agg.obs.snapshot()
    rows = []
    for name, h in sorted(snap["histograms"].items()):
        if not h["count"]:
            continue
        rows.append([name, h["count"], f"{h['p50']:.2e}", f"{h['p95']:.2e}",
                     f"{h['p99']:.2e}", f"{h['max']:.2e}"])
    print_table(["histogram", "n", "p50", "p95", "p99", "max"], rows)

    print_header("One sampler daemon's ldmsd_self set, as collected")
    sampler = samplers[0]
    self_set = sampler.get_set(f"{sampler.name}/self")
    print(obs.render(self_set.as_dict()))
    return {"off": off, "on": on, "overhead_pct": pct}


if __name__ == "__main__":
    main()
