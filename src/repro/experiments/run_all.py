"""Run every experiment and print a one-page paper-vs-measured summary.

    python -m repro.experiments.run_all [--quick]

``--quick`` shrinks node counts and the torus so everything finishes in
well under a minute; the default runs at the benchmark scales
(including the full 24x24x24 torus traces) in a few minutes.
"""

from __future__ import annotations

import argparse
from repro.util.timeutil import monotonic

from repro.experiments.common import PAPER, print_header, print_table

__all__ = ["main"]


def main(argv: list[str] | None = None) -> list[list[object]]:
    parser = argparse.ArgumentParser(prog="repro-experiments")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scales (~1 minute total)")
    args = parser.parse_args(argv)
    quick = args.quick
    dims = (8, 8, 8) if quick else PAPER.torus_dims
    rows: list[list[object]] = []
    t0 = monotonic()

    def add(exp: str, quantity: str, paper, measured, ok: bool) -> None:
        rows.append([exp, quantity, paper, measured, "OK" if ok else "DRIFT"])

    # --- §IV-E collection cost -----------------------------------------
    from repro.experiments import ganglia_compare

    g = ganglia_compare.run(sweeps=50 if quick else 200)
    add("§IV-E", "Ganglia/LDMS cost ratio", "~97x", f"{g.ratio:.1f}x",
        g.ratio > 3)

    # --- §IV-D footprint --------------------------------------------------
    from repro.experiments import footprint

    ch = footprint.run_chama()
    bw = footprint.run_blue_waters()
    add("§IV-D", "Chama set kB/node", 44, f"{ch.set_bytes / 1024:.1f}",
        abs(ch.set_bytes - PAPER.chama_set_bytes) < 0.5 * PAPER.chama_set_bytes)
    add("§IV-D", "BW metrics/node", 194, bw.n_metrics, bw.n_metrics == 194)
    add("§IV-D", "data fraction", "~0.10", f"{ch.data_fraction:.3f}",
        0.05 < ch.data_fraction < 0.2)
    add("§IV-D", "BW wire MB/interval", 44,
        f"{bw.wire_bytes_per_interval / 1e6:.1f}",
        30 < bw.wire_bytes_per_interval / 1e6 < 70)

    # --- §IV-A fan-in ---------------------------------------------------------
    from repro.experiments import fanin

    sock = fanin.max_fanin(fanin.sweep_transport(
        "sock", [128, 144, 160], duration=20.0, scale=64)) * 64
    ugni = fanin.max_fanin(fanin.sweep_transport(
        "ugni", [224, 256, 288], duration=20.0, scale=64)) * 64
    add("§IV-A", "sock fan-in", "~9000", sock, 8000 <= sock <= 10000)
    add("§IV-A", "ugni fan-in", ">15000", ugni, ugni > 15000)

    # --- Fig. 5 -----------------------------------------------------------
    from repro.experiments import fig5_psnap_bw

    f5 = fig5_psnap_bw.run(n_nodes=16 if quick else 64,
                           iterations=200_000 if quick else 600_000)
    add("Fig.5", "extra delay band us", "100-415",
        f"{f5.extra_delay_lo_us:.0f}-{f5.extra_delay_hi_us:.0f}",
        abs(f5.extra_delay_hi_us - 415) < 40)

    # --- Figs. 6/7 -------------------------------------------------------------
    from repro.experiments import fig6_bw_benchmarks, fig7_chama_apps

    f6 = fig6_bw_benchmarks.run(scale=0.02 if quick else 0.125)
    add("Fig.6", "significant impacts", "none",
        len(f6.any_significant()), not f6.any_significant())
    f7 = fig7_chama_apps.run(scale=0.125 if quick else 0.25)
    add("Fig.7", "significant impacts", "none",
        len(f7.any_significant()), not f7.any_significant())

    # --- Fig. 8 ---------------------------------------------------------------
    from repro.experiments import fig8_psnap_chama

    f8 = fig8_psnap_chama.run(n_nodes=60 if quick else 120,
                              iterations=100_000 if quick else 200_000)
    fr = f8.tail_fractions()
    add("Fig.8", "HM/HM_HALF tail ratio", ">>1",
        f"{fr['HM'] / max(fr['HM_HALF'], 1e-12):.1f}",
        fr["HM"] > 3 * fr["HM_HALF"])

    # --- Figs. 9/10 --------------------------------------------------------------
    from repro.experiments import fig9_credit_stalls, fig10_bandwidth

    f9 = fig9_credit_stalls.run(dims=dims)
    add("Fig.9", "max stall %", 85, f"{f9.max_stall_pct:.1f}",
        abs(f9.max_stall_pct - 85) < 6)
    add("Fig.9", "20-45% band h", 20, f"{f9.band_20_45_hours:.1f}",
        f9.band_20_45_hours >= 15)
    add("Fig.9", "region wraps in X", True, f9.wrap_region_found,
        f9.wrap_region_found)
    f10 = fig10_bandwidth.run(dims=dims)
    add("Fig.10", "max bandwidth %", 63, f"{f10.max_bw_pct:.1f}",
        abs(f10.max_bw_pct - 63) < 10)

    # --- Fig. 11 --------------------------------------------------------------
    from repro.experiments import fig11_lustre_opens

    f11 = fig11_lustre_opens.run(n_nodes=256 if quick else 1296)
    add("Fig.11", "bands+events recovered", True,
        f11.bands_match and f11.events_match,
        f11.bands_match and f11.events_match)

    # --- Fig. 12 ---------------------------------------------------------------
    from repro.experiments import fig12_oom_profile

    f12 = fig12_oom_profile.run(job_nodes=16 if quick else 64,
                                machine_nodes=20 if quick else 72,
                                interval=10.0 if quick else 20.0)
    add("Fig.12", "OOM kill + imbalance", True,
        f12.oom_killed and f12.imbalance_visible,
        f12.oom_killed and f12.imbalance_visible)

    print_header(f"LDMS reproduction summary "
                 f"({'quick' if quick else 'full'} scale, "
                 f"{monotonic() - t0:.0f}s)")
    print_table(["experiment", "quantity", "paper", "measured", "status"],
                rows)
    n_ok = sum(1 for r in rows if r[-1] == "OK")
    print(f"\n{n_ok}/{len(rows)} checks match the paper")
    return rows


if __name__ == "__main__":
    main()
