"""Fig. 9: time spent in X+ credit stalls over 24 h + torus snapshot.

Top panel: per-node percent-of-time-stalled in X+ at 1-minute samples
over 24 hours.  Reported features (§VI-A1):

* maximum ~85% stall;
* 20-45% bands persisting up to ~20 hours (label A);
* 60+% durations of ~1.5 hours (label B);
* the snapshot at the maximum shows a congestion region that wraps
  around the torus in X (label C);
* features naturally have extent in the X direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.heatmap import band_durations
from repro.analysis.torus_view import congestion_regions, extent, region_wraps
from repro.experiments.bw_day import run_day
from repro.experiments.common import PAPER, print_header, print_table
from repro.network.torus import GeminiTorus
from repro.sim.fleet import HsnTraceResult

__all__ = ["Fig9Result", "run", "main"]


@dataclass
class Fig9Result:
    result: HsnTraceResult
    torus: GeminiTorus
    max_stall_pct: float
    max_time_index: int
    band_20_45_hours: float
    band_60_hours: float
    wrap_region_found: bool
    wrap_region_size: int
    x_extent: int


def run(dims: tuple[int, int, int] = (24, 24, 24),
        sample_interval: float = 60.0, seed: int = 9) -> Fig9Result:
    res, torus = run_day(dims=dims, sample_interval=sample_interval,
                         seed=seed, directions=("X+", "Y+"))
    grid = res.stall_pct["X+"]  # (T, G)
    t_i, g_i, vmax = res.argmax("X+")

    d2045 = band_durations(grid, 20.0, 45.0, sample_interval)
    d60 = band_durations(grid, 60.0, np.inf, sample_interval)

    # Snapshot analysis at the max.
    coords, values = res.snapshot("X+", t_i)
    regions = congestion_regions(torus, values.astype(np.float64), threshold=40.0)
    wrap_found = False
    wrap_size = 0
    x_ext = 0
    for region in regions:
        if g_i in region.geminis:
            wrap_found = region_wraps(torus, region, dim=0)
            wrap_size = len(region)
            x_ext = extent(torus, region, dim=0)
            break
    return Fig9Result(
        result=res,
        torus=torus,
        max_stall_pct=vmax,
        max_time_index=t_i,
        band_20_45_hours=float(d2045.max() / 3600.0),
        band_60_hours=float(d60.max() / 3600.0),
        wrap_region_found=wrap_found,
        wrap_region_size=wrap_size,
        x_extent=x_ext,
    )


def main(dims: tuple[int, int, int] = (24, 24, 24)) -> Fig9Result:
    res = run(dims=dims)
    print_header("Fig. 9: percent time in X+ credit stalls (24 h)")
    print_table(
        ["feature", "measured", "paper"],
        [
            ["max stall %", res.max_stall_pct, PAPER.fig9_max_stall_pct],
            ["longest 20-45% band (h)", res.band_20_45_hours,
             PAPER.fig9_band_20_45_hours],
            ["longest 60+% band (h)", res.band_60_hours,
             PAPER.fig9_band_60_hours],
            ["max-region wraps in X", res.wrap_region_found, True],
            ["max-region size (Geminis)", res.wrap_region_size, "group"],
            ["max-region X extent", res.x_extent, "extended in X"],
        ],
    )
    # The top panel's content, decimated: hourly max/99th percentile.
    grid = res.result.stall_pct["X+"]
    per_hour = grid.reshape(24, -1, grid.shape[1])
    rows = [
        [h, float(per_hour[h].max()), float(np.percentile(per_hour[h], 99.9))]
        for h in range(24)
    ]
    print("\nhourly X+ stall summary (max / p99.9 across Geminis):")
    print_table(["hour", "max %", "p99.9 %"], rows)
    return res


if __name__ == "__main__":
    main()
