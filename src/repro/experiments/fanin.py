"""§IV-A fan-in limits and §IV-D aggregator utilization.

The paper: "The maximum fan-in varies by transport but is roughly
9,000:1 for the socket transport in general and for the RDMA transport
over Infiniband.  It is > 15,000:1 for RDMA over Cray's Gemini
transport.  ...  Fan-in at higher levels is limited by the aggregator
host capabilities."

The transport-level bound is endpoint capacity (file descriptors / QP
contexts / Gemini endpoints) — a per-transport constant in our
profiles, exercised here with a DES sweep: N sampler daemons against
one aggregator; collection completeness collapses once N exceeds the
transport's connection capacity.  To keep the sweep tractable the
profile capacities are scaled down by ``SCALE`` (the knee position in
daemons is ``profile.max_connections / SCALE``); the reported
*full-scale* limit is the unscaled profile constant.

Also measured: aggregator update-pipeline CPU (worker-pool busy
fraction), reproducing the §IV-D observation that a first-level Chama
aggregator uses ~0.1% of a core while the Blue Waters configuration
(6,912 sets/minute with CSV storage) runs far hotter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import Ldmsd, SimEnv
from repro.experiments.common import PAPER, print_header, print_table
from repro.sim.engine import Engine
from repro.transport.base import get_transport_profile
from repro.transport.simfabric import SimFabric, SimTransport

__all__ = ["FaninPoint", "sweep_transport", "aggregator_utilization", "main"]

SCALE = 64  # capacity scale-down for the DES sweep


@dataclass(frozen=True)
class FaninPoint:
    transport: str
    n_samplers: int
    connected: int
    completeness: float  # stored rows / expected rows
    refused: int


def _build(n_samplers: int, xprt: str, interval: float, metrics: int,
            duration: float, scale_capacity: bool = True):
    eng = Engine()
    env = SimEnv(eng)
    fabric = SimFabric(eng)
    profile = get_transport_profile(xprt)
    if scale_capacity:
        profile = replace(profile, max_connections=max(profile.max_connections // SCALE, 1))
    samplers = []
    for i in range(n_samplers):
        x = SimTransport(fabric, profile, node_id=i)
        d = Ldmsd(f"n{i}", env=env, transports={xprt: x}, mem="64kB",
                  workers=1, conn_threads=1, flush_threads=1)
        d.load_sampler("synthetic", instance=f"n{i}/syn", component_id=i + 1,
                       num_metrics=metrics)
        d.start_sampler(f"n{i}/syn", interval=interval)
        d.listen(xprt, f"n{i}:411")
        samplers.append(d)
    agg_x = SimTransport(fabric, profile, node_id="agg")
    agg = Ldmsd("agg", env=env, transports={xprt: agg_x},
                mem=max(4 * 1024 * 1024, n_samplers * 4096),
                workers=8, conn_threads=4, flush_threads=2)
    store = agg.add_store("memory")
    for i in range(n_samplers):
        agg.add_producer(f"n{i}", xprt, f"n{i}:411", interval=interval,
                         sets=(f"n{i}/syn",))
    return eng, env, agg, agg_x, store


def sweep_transport(xprt: str, sizes: list[int], interval: float = 5.0,
                    metrics: int = 10, duration: float = 30.0) -> list[FaninPoint]:
    points = []
    for n in sizes:
        eng, env, agg, agg_x, store = _build(n, xprt, interval, metrics, duration)
        eng.run(until=duration)
        expected = n * (duration / interval - 1)  # first interval ramps up
        connected = sum(1 for p in agg.producers.values() if p.connected)
        points.append(
            FaninPoint(
                transport=xprt,
                n_samplers=n,
                connected=connected,
                completeness=min(len(store.rows) / expected, 1.0),
                refused=agg_x.refused_connections,
            )
        )
    return points


def max_fanin(points: list[FaninPoint], floor: float = 0.99) -> int:
    """Largest sweep size with near-complete collection."""
    ok = [p.n_samplers for p in points if p.completeness >= floor]
    return max(ok) if ok else 0


@dataclass(frozen=True)
class AggUtilization:
    label: str
    sets_per_interval: int
    interval: float
    core_pct: float
    arena_bytes: int


def aggregator_utilization(n_samplers: int = 64, interval: float = 20.0,
                           metrics: int = 467 // 7,
                           duration: float = 200.0,
                           label: str = "chama-L1") -> AggUtilization:
    """Worker+flush busy fraction of one aggregator under load."""
    eng, env, agg, agg_x, store = _build(n_samplers, "rdma", interval,
                                         metrics, duration,
                                         scale_capacity=False)
    agg.add_store("memory")  # second store doubles flush load, like CSV+fwd
    eng.run(until=duration)
    busy = sum(p.busy_time for p in env.pools if p.name.startswith("agg/"))
    return AggUtilization(
        label=label,
        sets_per_interval=n_samplers,
        interval=interval,
        core_pct=100.0 * busy / duration,
        arena_bytes=agg.arena.used,
    )


def main() -> dict:
    sizes_by_xprt = {
        "sock": [32, 64, 96, 128, 144, 160, 192],
        "rdma": [32, 64, 96, 128, 144, 160, 192],
        "ugni": [64, 128, 192, 224, 256, 288, 320],
    }
    print_header("Fan-in by transport (paper §IV-A; capacities scaled 1/%d)" % SCALE)
    results = {}
    rows = []
    for xprt, sizes in sizes_by_xprt.items():
        points = sweep_transport(xprt, sizes)
        results[xprt] = points
        knee = max_fanin(points)
        full_scale = get_transport_profile(xprt).max_connections
        paper = {"sock": PAPER.fanin_sock, "rdma": PAPER.fanin_rdma,
                 "ugni": PAPER.fanin_ugni}[xprt]
        rows.append([xprt, knee, knee * SCALE, full_scale, f"~{paper}"])
    print_table(
        ["transport", "scaled knee", "knee x SCALE", "profile capacity",
         "paper fan-in"],
        rows,
    )
    print("\nsweep detail:")
    print_table(
        ["transport", "samplers", "connected", "completeness", "refused"],
        [[p.transport, p.n_samplers, p.connected, p.completeness, p.refused]
         for pts in results.values() for p in pts],
    )

    print_header("Aggregator utilization (paper §IV-D)")
    chama = aggregator_utilization(n_samplers=64, interval=20.0,
                                   label="Chama L1 (scaled 156->64)")
    bw = aggregator_utilization(n_samplers=128, interval=60.0, metrics=194,
                                label="BW (scaled 6912->128)", duration=300.0)
    # Scale busy fraction linearly in sampler count for the full-size
    # projection (update pipeline work is per set).
    rows = [
        [chama.label, chama.core_pct, chama.core_pct * 156 / 64, "~0.1%"],
        [bw.label, bw.core_pct, bw.core_pct * 6912 / 128, "~100% (incl. ISC fwd)"],
    ]
    print_table(["aggregator", "measured core %", "projected full-scale %",
                 "paper"], rows)
    results["utilization"] = (chama, bw)
    return results


if __name__ == "__main__":
    main()
