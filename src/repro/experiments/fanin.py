"""§IV-A fan-in limits and §IV-D aggregator utilization.

The paper: "The maximum fan-in varies by transport but is roughly
9,000:1 for the socket transport in general and for the RDMA transport
over Infiniband.  It is > 15,000:1 for RDMA over Cray's Gemini
transport.  ...  Fan-in at higher levels is limited by the aggregator
host capabilities."

The transport-level bound is endpoint capacity (file descriptors / QP
contexts / Gemini endpoints) — a per-transport constant in our
profiles, exercised here with a DES sweep: N sampler daemons against
one aggregator; collection completeness collapses once N exceeds the
transport's connection capacity.

The sweep runs at **full scale by default**: the engine's timer wheel
and the coalesced update/flush paths make a ≥9,000-sampler sock sweep
tractable in one process, so no capacity down-scaling is needed to find
the knee at the real profile constant.  Pass ``scale > 1`` (CLI:
``--scale``) to divide the profile capacities for a quick smoke sweep;
the reported *full-scale* knee is then ``knee × scale`` while the
*simulated* knee stays in sweep units.

Also measured: aggregator update-pipeline CPU (worker-pool busy
fraction), reproducing the §IV-D observation that a first-level Chama
aggregator uses ~0.1% of a core while the Blue Waters configuration
(6,912 sets/minute with CSV storage) runs far hotter.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
from dataclasses import dataclass, replace

from repro.core import Ldmsd, SimEnv
from repro.experiments.common import PAPER, print_header, print_table
from repro.sim.engine import Engine
from repro.transport.base import get_transport_profile
from repro.transport.simfabric import SimFabric, SimTransport
from repro.util import timeutil

__all__ = [
    "FaninPoint",
    "default_sizes",
    "run_point",
    "sweep_transport",
    "max_fanin",
    "aggregator_utilization",
    "main",
]

#: Sweep sizes as fractions of the transport's connection capacity:
#: well below, approaching, at, and past the knee.
_SIZE_FRACTIONS = (0.35, 0.70, 0.90, 1.00, 1.11)


@dataclass(frozen=True)
class FaninPoint:
    transport: str
    n_samplers: int
    connected: int
    completeness: float  # stored rows / expected rows (ground truth)
    refused: int
    #: The aggregator's live :class:`~repro.obs.freshness.FreshnessTracker`
    #: reading at sweep end — must equal ``completeness`` exactly: the
    #: tracker counts the same delivered updates against the same
    #: elapsed-time expectation the ground truth uses.
    tracker_completeness: float = 1.0


def default_sizes(xprt: str, scale: int = 1) -> list[int]:
    """Sweep sizes bracketing the knee at ``capacity // scale``."""
    cap = get_transport_profile(xprt).max_connections // scale
    return [max(int(cap * f), 1) for f in _SIZE_FRACTIONS]


def _build(n_samplers: int, xprt: str, interval: float, metrics: int,
           duration: float, scale: int = 1):
    eng = Engine()
    env = SimEnv(eng)
    fabric = SimFabric(eng)
    profile = get_transport_profile(xprt)
    if scale > 1:
        profile = replace(profile, max_connections=max(profile.max_connections // scale, 1))
    samplers = []
    for i in range(n_samplers):
        x = SimTransport(fabric, profile, node_id=i)
        # "A few kB" per sampler (§IV-D): size the arena to the actual
        # set (descriptors + data + headers, ~256 B/metric with slack)
        # instead of a fat default — keeps a ≥9,000-daemon sweep
        # cache-resident instead of spending ~600 MB on idle arena
        # pages, while still fitting the 194-metric utilization runs.
        d = Ldmsd(f"n{i}", env=env, transports={xprt: x},
                  mem=max(8 * 1024, 4096 + metrics * 256),
                  workers=1, conn_threads=1, flush_threads=1)
        d.load_sampler("synthetic", instance=f"n{i}/syn", component_id=i + 1,
                       num_metrics=metrics)
        d.start_sampler(f"n{i}/syn", interval=interval)
        d.listen(xprt, f"n{i}:411")
        samplers.append(d)
    agg_x = SimTransport(fabric, profile, node_id="agg")
    agg = Ldmsd("agg", env=env, transports={xprt: agg_x},
                mem=max(4 * 1024 * 1024, n_samplers * 4096),
                workers=8, conn_threads=4, flush_threads=2)
    store = agg.add_store("memory")
    for i in range(n_samplers):
        agg.add_producer(f"n{i}", xprt, f"n{i}:411", interval=interval,
                         sets=(f"n{i}/syn",))
    return eng, env, agg, agg_x, store


def _rows_digest(store) -> str:
    """SHA-256 over the stored rows — the byte-identity fingerprint the
    sharded A/B gate compares across ``REPRO_SHARDS`` settings."""
    h = hashlib.sha256()
    for r in store.rows:
        vals = (tuple(r.values.items()) if hasattr(r.values, "items")
                else tuple(r.values))
        h.update(repr((r.timestamp, r.producer, r.set_name, vals)).encode())
    return h.hexdigest()


def run_point(n: int, xprt: str, interval: float = 5.0, metrics: int = 10,
              duration: float = 30.0, scale: int = 1,
              digest: bool = False) -> tuple[FaninPoint, dict]:
    """One sweep point, self-contained in this process.

    Returns ``(point, info)`` where ``info`` carries the engine event
    count, the per-phase wall breakdown (``build_s`` topology
    construction, ``rampup_s`` first collection interval — connect storm
    plus set discovery, ``steady_s`` the remaining steady-state
    intervals) and, when ``digest=True``, the SHA-256 of the stored rows
    for cross-process byte-identity checks.  Being self-contained is
    what makes sweep points *disjoint shards*: the sharded sweep runs
    the very same function on the very same inputs in a worker process.
    """
    # Building ≥9,000 daemons allocates enough to trigger dozens of
    # full generational collections that free nothing; pause the
    # cyclic collector for the point (refcounting reclaims each
    # point's topology as soon as it goes out of scope).
    paused = gc.isenabled()
    if paused:
        gc.disable()
    try:
        t0 = timeutil.perf_counter()
        eng, env, agg, agg_x, store = _build(n, xprt, interval, metrics,
                                             duration, scale=scale)
        t1 = timeutil.perf_counter()
        eng.run(until=min(interval, duration))
        t2 = timeutil.perf_counter()
        eng.run(until=duration)
        t3 = timeutil.perf_counter()
    finally:
        if paused:
            gc.enable()
    expected = n * (duration / interval - 1)  # first interval ramps up
    connected = sum(1 for p in agg.producers.values() if p.connected)
    point = FaninPoint(
        transport=xprt,
        n_samplers=n,
        connected=connected,
        completeness=min(len(store.rows) / expected, 1.0),
        refused=agg_x.refused_connections,
        tracker_completeness=agg.freshness.fleet(
            env.now())["completeness"],
    )
    info = {
        "events": eng.events_processed + eng.vectorized_events,
        "build_s": t1 - t0,
        "rampup_s": t2 - t1,
        "steady_s": t3 - t2,
    }
    if digest:
        info["digest"] = _rows_digest(store)
    return point, info


def sweep_transport(xprt: str, sizes: list[int] | None = None,
                    interval: float = 5.0, metrics: int = 10,
                    duration: float = 30.0, scale: int = 1,
                    nshards: int | None = None) -> list[FaninPoint]:
    """Run the fan-in sweep; ``sizes=None`` derives them from the
    transport's (possibly scaled) capacity via :func:`default_sizes`.

    ``nshards`` (default: the ``REPRO_SHARDS`` toggle) >= 2 runs the
    points as disjoint shards across forked workers — each point is a
    self-contained world, so the per-point results are byte-identical
    to the inline sweep.
    """
    from repro.sim.shard import maybe_parallel

    if sizes is None:
        sizes = default_sizes(xprt, scale)

    def job(n: int) -> FaninPoint:
        return run_point(n, xprt, interval, metrics, duration, scale)[0]

    return maybe_parallel(job, sizes, nshards)


def max_fanin(points: list[FaninPoint], floor: float = 0.99) -> int:
    """Largest sweep size with near-complete collection."""
    ok = [p.n_samplers for p in points if p.completeness >= floor]
    return max(ok) if ok else 0


@dataclass(frozen=True)
class AggUtilization:
    label: str
    sets_per_interval: int
    interval: float
    core_pct: float
    arena_bytes: int


def aggregator_utilization(n_samplers: int = 64, interval: float = 20.0,
                           metrics: int = 467 // 7,
                           duration: float = 200.0,
                           label: str = "chama-L1") -> AggUtilization:
    """Worker+flush busy fraction of one aggregator under load."""
    eng, env, agg, agg_x, store = _build(n_samplers, "rdma", interval,
                                         metrics, duration)
    agg.add_store("memory")  # second store doubles flush load, like CSV+fwd
    eng.run(until=duration)
    busy = sum(p.busy_time for p in env.pools if p.name.startswith("agg/"))
    return AggUtilization(
        label=label,
        sets_per_interval=n_samplers,
        interval=interval,
        core_pct=100.0 * busy / duration,
        arena_bytes=agg.arena.used,
    )


def main(scale: int = 1, xprts: tuple[str, ...] = ("sock", "rdma", "ugni"),
         interval: float = 5.0, metrics: int = 10,
         duration: float = 30.0, nshards: int | None = None) -> dict:
    if scale > 1:
        print_header("Fan-in by transport (paper §IV-A; capacities scaled 1/%d)"
                     % scale)
    else:
        print_header("Fan-in by transport (paper §IV-A; full-scale capacities)")
    results = {}
    rows = []
    for xprt in xprts:
        points = sweep_transport(xprt, interval=interval, metrics=metrics,
                                 duration=duration, scale=scale,
                                 nshards=nshards)
        results[xprt] = points
        knee = max_fanin(points)
        full_scale = get_transport_profile(xprt).max_connections
        paper = {"sock": PAPER.fanin_sock, "rdma": PAPER.fanin_rdma,
                 "ugni": PAPER.fanin_ugni}[xprt]
        rows.append([xprt, knee, knee * scale, full_scale, f"~{paper}"])
    print_table(
        ["transport", "simulated knee", "full-scale knee", "profile capacity",
         "paper fan-in"],
        rows,
    )
    print("\nsweep detail:")
    print_table(
        ["transport", "samplers", "connected", "completeness",
         "tracker", "refused"],
        [[p.transport, p.n_samplers, p.connected, p.completeness,
          p.tracker_completeness, p.refused]
         for xprt in xprts for p in results[xprt]],
    )

    print_header("Aggregator utilization (paper §IV-D)")
    chama = aggregator_utilization(n_samplers=64, interval=20.0,
                                   label="Chama L1 (scaled 156->64)")
    bw = aggregator_utilization(n_samplers=128, interval=60.0, metrics=194,
                                label="BW (scaled 6912->128)", duration=300.0)
    # Scale busy fraction linearly in sampler count for the full-size
    # projection (update pipeline work is per set).
    rows = [
        [chama.label, chama.core_pct, chama.core_pct * 156 / 64, "~0.1%"],
        [bw.label, bw.core_pct, bw.core_pct * 6912 / 128, "~100% (incl. ISC fwd)"],
    ]
    print_table(["aggregator", "measured core %", "projected full-scale %",
                 "paper"], rows)
    results["utilization"] = (chama, bw)
    return results


def _cli() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=1,
                    help="divide transport capacities by this for a quick "
                         "smoke sweep (default 1: full scale)")
    ap.add_argument("--xprt", action="append", choices=["sock", "rdma", "ugni"],
                    help="transport(s) to sweep (default: all three)")
    ap.add_argument("--interval", type=float, default=5.0)
    ap.add_argument("--metrics", type=int, default=10)
    ap.add_argument("--duration", type=float, default=30.0)
    ap.add_argument("--shards", type=int, default=None,
                    help="run sweep points as disjoint shards across this "
                         "many worker processes (default: REPRO_SHARDS)")
    args = ap.parse_args()
    main(scale=args.scale, xprts=tuple(args.xprt or ("sock", "rdma", "ugni")),
         interval=args.interval, metrics=args.metrics, duration=args.duration,
         nshards=args.shards)


if __name__ == "__main__":
    _cli()
