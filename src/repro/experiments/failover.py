"""§IV-B failover: aggregator loss under the fast-failover config.

Blue Waters' configuration (Fig. 3): first-level aggregators store
directly, and each holds *standby* connections to the next aggregator's
collection targets — "in the case of an aggregator failure, another
aggregator can then take over servicing the failed aggregator's nodes",
with failover "driven by an external watchdog".

This experiment stands that loop up end to end in the DES and measures
the quantity the design bounds: **samples lost across an aggregator
kill**.  One first-level aggregator is crashed mid-run by a scheduled
:class:`~repro.faults.FaultPlan`; the watchdog notices its collection
heartbeat stall, declares it dead after ``k`` missed check intervals,
and promotes the neighbour's standby producers.  Collection for the
victim's node group resumes on the neighbour; the gap in each node
set's stored timeline is the cost of the failure.

Detection is bounded by ``(k + 1)`` check intervals (one to notice the
stall, ``k`` to confirm), so with the check interval equal to the
collection interval the promotion latency must come in at or under the
watchdog threshold (``k`` intervals) plus one collection interval —
the acceptance bar reported below.  Everything runs on the simulation
clock from seeded state: two runs with the same seed must produce the
identical timeline, which ``main()`` verifies.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.cluster.machine import blue_waters
from repro.experiments.common import print_header, print_table
from repro.faults import FaultPlan
from repro.obs import flight as flightmod
from repro.obs.spans import causal_chains, chrome_trace_events, validate_chrome_trace

__all__ = ["FailoverResult", "run_failover", "main"]


@dataclass(frozen=True)
class FailoverResult:
    """Measured outcome of one aggregator-kill run."""

    n_nodes: int
    interval: float
    k: int
    kill_time: float
    #: Watchdog declared the victim dead (standbys promoted) at this
    #: sim time; inf if it never fired.
    detect_time: float
    promote_latency: float
    #: The acceptance bound: watchdog threshold (k intervals) plus one
    #: collection interval.
    latency_bound: float
    within_bound: bool
    promotions: int
    #: Longest per-set gap between stored rows of the victim group.
    max_gap_s: float
    #: Collection intervals lost across the whole victim group
    #: (gap-implied missing rows, summed over its sets).
    samples_lost: int
    #: Victim-group rows actually stored (victim + neighbour stores).
    rows_victim_group: int
    #: Observability plane (PR 7): causal chains stitched from the
    #: fleet's span rings that cover >= 4 distinct hops
    #: (sample/serve/update/store), the exported Chrome trace_event
    #: count + validity, and whether the watchdog-triggered postmortem
    #: dump's window covers the injected crash.
    chains_4hop: int = 0
    trace_events: int = 0
    trace_valid: bool = False
    postmortem_ok: bool = False

    def key(self) -> tuple:
        """Determinism fingerprint: every measured number."""
        return (self.kill_time, self.detect_time, self.promotions,
                self.max_gap_s, self.samples_lost, self.rows_victim_group,
                self.chains_4hop, self.trace_events)


def run_failover(
    n_nodes: int = 16,
    fanin: int = 8,
    interval: float = 1.0,
    k: int = 2,
    kill_at: float = 20.0,
    duration: float = 60.0,
    seed: int = 0,
    export_dir: Optional[str] = None,
) -> FailoverResult:
    """Deploy the Fig. 3 standby topology, kill one L1 aggregator at
    ``kill_at``, and measure promotion latency and samples lost.

    With ``export_dir`` the run also writes ``failover_trace.json``
    (Chrome ``trace_event`` — load in Perfetto) and
    ``failover_postmortem.json`` (the watchdog-triggered flight-recorder
    dump) — the artifacts CI uploads."""
    m = blue_waters(n_nodes, seed=seed)
    dep = m.deploy_ldms(
        interval=interval,
        collect_interval=interval,
        fanin=fanin,
        second_level=False,  # Fig. 3: aggregators store directly
        standby=True,
        store="memory",
    )
    wd = m.attach_watchdog(dep, check_interval=interval, k=k)
    victim = dep.level1[-1]
    victim_idx = len(dep.level1) - 1
    inj = m.fault_injector(dep)
    inj.arm(FaultPlan().crash(victim.name, kill_at))
    m.run(until=duration)

    # --- promotion latency -------------------------------------------------
    detect_time = next(
        (e.time for e in wd.events
         if e.target == victim.name and e.kind == "dead"),
        float("inf"),
    )
    owner_name, _standbys = dep.standby_plan[victim.name]
    owner = dep.by_name(owner_name)
    promotions = owner.obs.counter("watchdog.promotions").value
    promote_latency = detect_time - kill_at
    latency_bound = k * interval + interval

    # --- samples lost over the victim's node group -------------------------
    lo, hi = victim_idx * fanin, min((victim_idx + 1) * fanin, n_nodes)
    group = {f"n{i}" for i in range(lo, hi)}
    # Rows for the group land in the victim's store before the kill and
    # in the neighbour's store after promotion (producer "standby-n<i>").
    times: dict[str, list[float]] = {}
    for store in dep.stores:
        for r in store.rows:
            if r.producer in group or r.producer.removeprefix("standby-") in group:
                times.setdefault(r.set_name, []).append(r.timestamp)
    max_gap = 0.0
    lost = 0
    rows_total = 0
    for ts in times.values():
        ts.sort()
        rows_total += len(ts)
        for a, b in zip(ts, ts[1:]):
            gap = b - a
            max_gap = max(max_gap, gap)
            if gap > 1.5 * interval:
                lost += int(round(gap / interval)) - 1

    # --- observability plane: causal chains + postmortem -------------------
    recorders = [d.spans for d in dep.all_daemons()]
    trace_doc = chrome_trace_events(recorders)
    trace_valid = validate_chrome_trace(trace_doc) is None
    chains = causal_chains(recorders, min_hops=4)
    pm = next((p for p in reversed(flightmod.postmortems)
               if p["reason"] == f"watchdog_promotion:{victim.name}"), None)
    postmortem_ok = False
    if pm is not None:
        for drec in pm["daemons"]:
            if drec["daemon"] != victim.name:
                continue
            lo_t, hi_t = drec["window"]
            crashed = any(
                ev["category"] == "fault" and ev["event"] == "crash"
                and abs(ev["t"] - kill_at) < 1e-6
                for ev in drec["events"])
            postmortem_ok = crashed and lo_t <= kill_at <= hi_t
    if export_dir is not None:
        os.makedirs(export_dir, exist_ok=True)
        with open(os.path.join(export_dir, "failover_trace.json"), "w") as fh:
            json.dump(trace_doc, fh, indent=1)
        if pm is not None:
            with open(os.path.join(export_dir,
                                   "failover_postmortem.json"), "w") as fh:
                json.dump(pm, fh, indent=1)
    return FailoverResult(
        n_nodes=n_nodes,
        interval=interval,
        k=k,
        kill_time=kill_at,
        detect_time=detect_time,
        promote_latency=promote_latency,
        latency_bound=latency_bound,
        within_bound=promote_latency <= latency_bound + 1e-9,
        promotions=promotions,
        max_gap_s=max_gap,
        samples_lost=lost,
        rows_victim_group=rows_total,
        chains_4hop=len(chains),
        trace_events=len(trace_doc["traceEvents"]),
        trace_valid=trace_valid,
        postmortem_ok=postmortem_ok,
    )


def main(argv=None) -> dict:
    import argparse

    parser = argparse.ArgumentParser(
        description="§IV-B aggregator failover experiment")
    parser.add_argument(
        "--export-dir", default=None,
        help="write failover_trace.json (Chrome trace_event) and "
             "failover_postmortem.json here")
    args = parser.parse_args(argv)

    print_header("Aggregator failover (paper §IV-B, Fig. 3 standby config)")
    r = run_failover(export_dir=args.export_dir)
    print_table(
        ["nodes", "interval", "k", "killed at", "promoted at",
         "latency", "bound", "ok"],
        [[r.n_nodes, r.interval, r.k, r.kill_time, r.detect_time,
          r.promote_latency, r.latency_bound, "yes" if r.within_bound else "NO"]],
    )
    print_table(
        ["victim-group rows", "max gap (s)", "samples lost", "promotions"],
        [[r.rows_victim_group, r.max_gap_s, r.samples_lost, r.promotions]],
    )
    print_table(
        ["4-hop chains", "trace events", "trace valid", "postmortem ok"],
        [[r.chains_4hop, r.trace_events,
          "yes" if r.trace_valid else "NO",
          "yes" if r.postmortem_ok else "NO"]],
    )

    # Same seed, same timeline: the whole fault schedule runs on the
    # simulation clock, so a replay must reproduce every number.
    r2 = run_failover()
    deterministic = r.key() == r2.key()
    print(f"\nsame-seed replay identical: {'yes' if deterministic else 'NO'}")
    return {"run": r, "replay": r2, "deterministic": deterministic}


if __name__ == "__main__":
    main()
