"""Fig. 6: Blue Waters benchmark variation under LDMS configurations.

Benchmarks: MiniGhost (wall time, comm, gridsum), LinkTest, MILC phases
(Llfat, Lllong, CG iteration, GF, FF, step), IMB Allreduce.
Configurations: unmonitored, 60 s (with and without aggregation), 1 s
(with and without aggregation) — the "no net" variants "disable
aggregation and storage to differentiate impact due to changed network
behavior".

The paper's conclusion, which is this experiment's acceptance
criterion: "No statistically significant impact was observed" — every
monitored mean falls within the unmonitored observation range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.impact import ImpactSummary, compare_runs  # noqa: F401
from repro.apps import ImbAllreduce, LinkTest, Milc, MiniGhost
from repro.apps.base import MonitoringSpec
from repro.experiments.common import print_header, print_table
from repro.util.rngtools import spawn_rng

__all__ = ["Fig6Result", "SPECS", "run", "main"]

SPECS: dict[str, MonitoringSpec] = {
    "60s, no net": MonitoringSpec.interval_60s().without_network(),
    "60s": MonitoringSpec.interval_60s(),
    "1s, no net": MonitoringSpec.interval_1s().without_network(),
    "1s": MonitoringSpec.interval_1s(),
}


@dataclass
class Fig6Result:
    #: series label (e.g. "MiniGhost wall") -> config summaries
    series: dict[str, list[ImpactSummary]]

    def any_significant(self) -> list[tuple[str, str]]:
        """Family-wise (Bonferroni-corrected) significant impacts."""
        from repro.analysis.impact import family_significant

        return family_significant(self.series)


def run(repeats: int = 3, seed: int = 6, scale: float = 1.0) -> Fig6Result:
    """``scale`` < 1 shrinks node counts for quick runs."""
    rng = spawn_rng(seed, "fig6")
    series: dict[str, list[ImpactSummary]] = {}

    def do(app, label_phase_pairs):
        base = app.ensemble(MonitoringSpec.unmonitored(), rng, repeats)
        monitored = {lbl: app.ensemble(spec, rng, repeats)
                     for lbl, spec in SPECS.items()}
        for series_label, phase in label_phase_pairs:
            series[series_label] = compare_runs(base, monitored, phase=phase)

    mg = MiniGhost(n_nodes=max(int(8192 * scale), 16))
    do(mg, [("Mini-ghost wall time", None),
            ("Minighost-comm", "comm_phase"),
            ("Minighost-gridsum", "gridsum")])

    lt = LinkTest()
    base = [lt.run(MonitoringSpec.unmonitored(), rng) for _ in range(repeats)]
    monitored = {lbl: [lt.run(spec, rng) for _ in range(repeats)]
                 for lbl, spec in SPECS.items()}
    series["Linktest"] = compare_runs(base, monitored, phase="per_message")

    milc = Milc(n_nodes=max(int(2744 * scale), 16))
    do(milc, [("MILC Llfat", "Llfat"), ("MILC Lllong", "Lllong"),
              ("MILC CG iteration", "CG"), ("MILC GF", "GF"),
              ("MILC FF", "FF"), ("MILC step", "step")])

    imb = ImbAllreduce(n_nodes=max(int(2744 * scale), 16))
    do(imb, [("IMB Allreduce", "allreduce")])

    return Fig6Result(series=series)


def main() -> Fig6Result:
    res = run(scale=0.125)
    print_header("Fig. 6: time normalized to unmonitored average (Blue Waters)")
    rows = []
    for name, summaries in res.series.items():
        for s in summaries:
            rows.append([name, s.label, s.normalized_mean,
                         s.normalized_lo, s.normalized_hi,
                         f"{s.p_value:.2f}"])
    print_table(["benchmark", "config", "norm mean", "norm lo", "norm hi",
                 "p-value"], rows)
    sig = res.any_significant()
    print(f"\nstatistically significant impacts: "
          f"{sig if sig else 'none (matches paper)'}")
    return res


if __name__ == "__main__":
    main()
