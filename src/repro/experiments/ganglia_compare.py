"""§IV-E: per-metric collection cost, Ganglia vs LDMS.

"On Chama we found the collection time per metric for Ganglia vs. LDMS
from /proc/stat and /proc/meminfo to be about two orders of magnitude
greater (i.e. 126 usec per metric for Ganglia vs. 1.3 usec per metric
for LDMS)."

Both systems here are Python, so the absolute microseconds differ from
the C implementations; the *shape* — Ganglia costing one to two orders
of magnitude more per metric — comes from the architectural difference
the paper identifies: Ganglia's gmond modules each re-read and re-parse
their source file and build a metadata-carrying message per metric,
while one LDMS sampler reads the file once for its whole metric set.
"""

from __future__ import annotations

from repro.util.timeutil import perf_counter
from dataclasses import dataclass

from repro.baselines.ganglia import GangliaMetric, Gmond
from repro.core import Ldmsd, SimEnv
from repro.experiments.common import PAPER, print_header, print_table
from repro.nodefs.host import HostModel
from repro.plugins.samplers.parsers import CPU_FIELDS
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport

__all__ = ["CollectionCostResult", "run", "main"]

MEMINFO_KEYS = (
    "MemTotal", "MemFree", "Buffers", "Cached", "Active", "Inactive",
    "Dirty", "AnonPages", "Mapped", "Slab",
)


@dataclass(frozen=True)
class CollectionCostResult:
    n_metrics: int
    ldms_us_per_metric: float
    ganglia_us_per_metric: float

    @property
    def ratio(self) -> float:
        return self.ganglia_us_per_metric / self.ldms_us_per_metric


def _pick_fs():
    """The real /proc when this host has one (the paper's experiment
    reads the live /proc/stat and /proc/meminfo); synthetic otherwise."""
    from repro.nodefs.fs import RealFS

    real = RealFS()
    if real.exists("/proc/stat") and real.exists("/proc/meminfo"):
        return real, "real /proc"
    eng = Engine()
    host = HostModel("node0", clock=lambda: eng.now)
    return host.fs, "synthetic /proc"


def run(sweeps: int = 200) -> CollectionCostResult:
    """Time one collection sweep of the same metrics through both paths."""
    eng = Engine()
    env = SimEnv(eng)
    fs, _source = _pick_fs()
    fabric = SimFabric(eng)

    # --- LDMS: meminfo + procstat sampler plugins ----------------------
    d = Ldmsd("node0", env=env, fs=fs,
              transports={"sock": SimTransport(fabric, "sock")})
    mem_plug = d.load_sampler("meminfo", instance="node0/meminfo",
                              component_id=1, metrics=",".join(MEMINFO_KEYS))
    cpu_plug = d.load_sampler("procstat", instance="node0/procstat",
                              component_id=1)
    n_metrics = mem_plug.total_metrics + cpu_plug.total_metrics

    # --- Ganglia: equivalent per-metric modules -------------------------
    modules = [GangliaMetric.meminfo(k.lower(), k) for k in MEMINFO_KEYS]
    modules += [GangliaMetric.procstat(f"cpu_{f}", f"cpu_{f}") for f in CPU_FIELDS]
    modules += [GangliaMetric.procstat(k, k)
                for k in ("ctxt", "processes", "procs_running", "procs_blocked")]
    assert len(modules) == n_metrics, (len(modules), n_metrics)
    gmond = Gmond(fs, modules, value_threshold=0.0)

    # Warm up both paths (allocation, caches).
    mem_plug.sample(0.0)
    cpu_plug.sample(0.0)
    gmond.collect_and_send(0.0)

    t0 = perf_counter()
    for i in range(sweeps):
        mem_plug.sample(float(i))
        cpu_plug.sample(float(i))
    ldms_s = perf_counter() - t0

    t0 = perf_counter()
    for i in range(sweeps):
        gmond.collect_and_send(float(i))
    ganglia_s = perf_counter() - t0

    per = sweeps * n_metrics
    return CollectionCostResult(
        n_metrics=n_metrics,
        ldms_us_per_metric=1e6 * ldms_s / per,
        ganglia_us_per_metric=1e6 * ganglia_s / per,
    )


def main() -> CollectionCostResult:
    res = run()
    print_header("Collection cost per metric: Ganglia vs LDMS (paper §IV-E)")
    print_table(
        ["system", "measured us/metric", "paper us/metric"],
        [
            ["LDMS", res.ldms_us_per_metric, PAPER.ldms_us_per_metric],
            ["Ganglia", res.ganglia_us_per_metric, PAPER.ganglia_us_per_metric],
        ],
    )
    print(f"\nmeasured ratio: {res.ratio:.1f}x  "
          f"(paper: {PAPER.ganglia_us_per_metric / PAPER.ldms_us_per_metric:.0f}x)")
    return res


if __name__ == "__main__":
    main()
