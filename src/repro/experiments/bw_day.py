"""The shared 24-hour Blue Waters HSN trace behind Figs. 9 and 10.

The paper's day of data shows (§VI-A):

* (label A) regions sustaining 20-45% X+ credit-stall time for up to
  ~20 hours;
* (label B) 60+% stall durations of ~1.5 hours;
* (label C) a maximum of ~85% stall in X+ whose congestion region wraps
  around the torus in X;
* (label D) another high region extending from an XY plane into Z;
* (Fig. 10) a maximum of ~63% of theoretical link bandwidth in Y+,
  "significantly higher than typically observed values".

The workload script below reproduces those features with scheduled
flows: a light random background plus four engineered jobs.  All node/
coordinate choices scale with the torus dimensions so tests can run a
small torus while the benchmark runs the full 24x24x24.
"""

from __future__ import annotations

import numpy as np

from repro.network.torus import GeminiTorus
from repro.sim.fleet import HsnFleetTrace, HsnTraceResult
from repro.util.rngtools import spawn_rng

__all__ = ["build_trace", "run_day", "run_day_sharded", "HOUR", "DAY"]

HOUR = 3600.0
DAY = 24 * HOUR

CABLE = 4.68e9  # X/Z link capacity in the default media map
MEZZ = 6.25e9  # Y


def _row_nodes(torus: GeminiTorus, y: int, z: int) -> np.ndarray:
    """Node ids of the first node on each Gemini along an X row."""
    gems = [torus.gemini_index((x, y, z)) for x in range(torus.dims[0])]
    return np.array([g * torus.nodes_per_gemini for g in gems])


def _x_corridor(trace: HsnFleetTrace, torus: GeminiTorus, t0: float,
                t1: float, y: int, z: int, x0: int, span: int,
                utilization: float, n_flows: int = 3) -> None:
    """Load the X+ links of geminis x0..x0+span-1 (mod X) at the given
    utilization with ``n_flows`` parallel flows."""
    X = torus.dims[0]
    src = torus.gemini_index((x0 % X, y, z)) * torus.nodes_per_gemini
    dst = torus.gemini_index(((x0 + span) % X, y, z)) * torus.nodes_per_gemini
    bps = utilization * CABLE / n_flows
    for k in range(n_flows):
        trace.add_flow_window(t0, t1, src + (k % torus.nodes_per_gemini), dst, bps)


def build_trace(dims: tuple[int, int, int] = (24, 24, 24),
                sample_interval: float = 60.0,
                seed: int = 9,
                background_jobs: int = 40) -> tuple[HsnFleetTrace, GeminiTorus]:
    torus = GeminiTorus(dims=dims)
    trace = HsnFleetTrace(torus, sample_interval=sample_interval)
    rng = spawn_rng(seed, "bw-day", dims)
    X, Y, Z = dims
    n_nodes = torus.n_nodes

    # --- light background: short jobs, modest ring traffic -------------
    for j in range(background_jobs):
        t0 = float(rng.uniform(0.0, DAY - HOUR))
        t1 = min(t0 + float(rng.uniform(0.5, 6.0)) * HOUR, DAY)
        size = int(rng.integers(8, max(n_nodes // 64, 9)))
        if j % 2 == 0:
            # Compact allocation: contiguous node ids, ring pattern.
            start = int(rng.integers(0, n_nodes - size))
            nodes = np.arange(start, start + size)
            trace.add_job(t0, t1, nodes, float(rng.uniform(0.1e9, 0.6e9)),
                          pattern="ring")
        else:
            # Fragmented allocation: scattered nodes exercise all
            # dimensions (the shared-network placement effect of §II).
            nodes = rng.choice(n_nodes, size=size, replace=False)
            trace.add_job(t0, t1, nodes, float(rng.uniform(0.05e9, 0.25e9)),
                          pattern="random", rng=rng)

    # --- label A: 20-45% X+ stalls for ~20 h ----------------------------
    # A communication-heavy job parked on a few X rows, utilization
    # drifting between 0.75 and 1.3 in 4-hour phases.
    for i, u in enumerate((0.8, 1.1, 0.75, 1.25, 0.9)):
        t0, t1 = i * 4 * HOUR, (i + 1) * 4 * HOUR
        for dy in range(2):
            for dz in range(2):
                _x_corridor(trace, torus, t0, t1, (Y // 3 + dy) % Y,
                            (Z // 3 + dz) % Z, x0=1, span=max(X // 3, 2),
                            utilization=u)

    # --- label B: 60+% stalls for ~1.5 h ---------------------------------
    for dz in range(2):
        _x_corridor(trace, torus, 10 * HOUR, 11.5 * HOUR, (2 * Y // 3) % Y,
                    (Z // 2 + dz) % Z, x0=max(X // 2, 1), span=max(X // 4, 2),
                    utilization=2.1)

    # --- label C: ~85% peak, region wrapping in X ------------------------
    # Flows crossing the X boundary load the wrap links hard for ~40 min.
    for dy in range(2):
        _x_corridor(trace, torus, 14 * HOUR, 14 * HOUR + 2400.0,
                    (Y // 2 + dy) % Y, Z // 4, x0=X - max(X // 8, 2),
                    span=2 * max(X // 8, 2), utilization=3.4, n_flows=4)

    # --- label D: a region in the XY plane extending into Z --------------
    for dz in range(max(Z // 4, 2)):
        _x_corridor(trace, torus, 6 * HOUR, 9 * HOUR, (3 * Y // 4) % Y,
                    dz, x0=2, span=max(X // 6, 2), utilization=1.5)

    # --- Fig. 10: Y+ bandwidth peak ~63% ---------------------------------
    # A single heavy Y-direction stream, below saturation (u = 0.66), so
    # percent-bandwidth peaks near 63 with negligible stalls elsewhere.
    src = torus.gemini_index((X // 5, 1, Z // 5)) * torus.nodes_per_gemini
    dst = torus.gemini_index((X // 5, (1 + max(Y // 3, 1)) % Y, Z // 5))
    trace.add_flow_window(17 * HOUR, 18 * HOUR, src,
                          dst * torus.nodes_per_gemini, 0.63 * MEZZ)

    return trace, torus


def run_day(dims: tuple[int, int, int] = (24, 24, 24),
            sample_interval: float = 60.0, seed: int = 9,
            background_jobs: int = 40,
            directions: tuple[str, ...] = ("X+", "Y+"),
            nshards: int | None = None) -> tuple[HsnTraceResult, GeminiTorus]:
    """Run the full day.  ``nshards`` (default: ``REPRO_SHARDS``) >= 2
    routes through :func:`run_day_sharded`."""
    from repro.sim.shard import shards_default

    if nshards is None:
        nshards = shards_default()
    if nshards >= 2:
        return run_day_sharded(dims, sample_interval, seed, background_jobs,
                               directions, nshards)
    trace, torus = build_trace(dims, sample_interval, seed, background_jobs)
    return trace.run(DAY, directions=directions), torus


def run_day_sharded(dims: tuple[int, int, int] = (24, 24, 24),
                    sample_interval: float = 60.0, seed: int = 9,
                    background_jobs: int = 40,
                    directions: tuple[str, ...] = ("X+", "Y+"),
                    nshards: int = 2) -> tuple[HsnTraceResult, GeminiTorus]:
    """The day partitioned by *time slice* across worker processes.

    Each worker rebuilds the same-seed trace (cheap: the workload script
    is a few hundred events) and evaluates a disjoint ``sample_range``;
    the parent concatenates.  Because :meth:`HsnFleetTrace.run` replays
    flow events before its slice, the concatenation is bit-identical to
    the single-process run — time slicing needs no lookahead because the
    trace evaluation carries no cross-sample state beyond the replayed
    flow set.
    """
    from repro.sim.shard import run_parallel

    n_samples = int(round(DAY / sample_interval))
    nshards = max(1, min(int(nshards), n_samples))
    if nshards < 2:
        trace, torus = build_trace(dims, sample_interval, seed, background_jobs)
        return trace.run(DAY, directions=directions), torus
    slices = [(s * n_samples // nshards, (s + 1) * n_samples // nshards)
              for s in range(nshards)]

    def job(sample_range: tuple[int, int]):
        trace, _ = build_trace(dims, sample_interval, seed, background_jobs)
        res = trace.run(DAY, directions=directions, sample_range=sample_range)
        return res.times, res.stall_pct, res.bw_pct

    parts = run_parallel(job, slices, nshards)
    torus = GeminiTorus(dims=dims)
    times = np.concatenate([p[0] for p in parts])
    stall = {d: np.concatenate([p[1][d] for p in parts]) for d in directions}
    bw = {d: np.concatenate([p[2][d] for p in parts]) for d in directions}
    return HsnTraceResult(times=times, stall_pct=stall, bw_pct=bw,
                          torus=torus), torus
