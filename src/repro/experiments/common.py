"""Shared experiment plumbing: table printing and paper target values."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["print_table", "print_header", "PAPER"]


def print_header(title: str) -> None:
    print()
    print(title)
    print("=" * len(title))


def print_table(headers: list[str], rows: Iterable[Iterable[object]],
                floatfmt: str = "{:.3f}") -> None:
    """Minimal fixed-width table printer (no external deps)."""

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    srows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for r in srows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


@dataclass(frozen=True)
class _PaperTargets:
    """Numbers quoted in the paper, used for measured-vs-paper reporting."""

    ganglia_us_per_metric: float = 126.0
    ldms_us_per_metric: float = 1.3
    chama_metrics: int = 467
    chama_sets: int = 7
    chama_set_bytes: int = 44 * 1024
    chama_data_bytes_per_node: int = 4 * 1024
    chama_nodes: int = 1296
    chama_interval: float = 20.0
    chama_daily_csv_gb: float = 27.0
    bw_metrics: int = 194
    bw_set_bytes: int = 24 * 1024
    bw_nodes: int = 27648
    bw_interval_production: float = 60.0
    bw_daily_csv_gb: float = 43.0
    bw_agg_wire_mb: float = 44.0
    fanin_sock: int = 9000
    fanin_rdma: int = 9000
    fanin_ugni: int = 15000
    sampler_mem_limit: int = 2 * 1024 * 1024
    overhead_limit_pct: float = 1.0
    sample_cost_us: float = 400.0
    psnap_extra_delay_lo_us: float = 100.0
    psnap_extra_delay_hi_us: float = 415.0
    fig9_max_stall_pct: float = 85.0
    fig9_band_20_45_hours: float = 20.0
    fig9_band_60_hours: float = 1.5
    fig10_max_bw_pct: float = 63.0
    torus_dims: tuple[int, int, int] = (24, 24, 24)


PAPER = _PaperTargets()
