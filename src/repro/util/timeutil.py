"""The sanctioned wall-clock boundary.

Everything under the DES takes time from the engine clock
(``env.now()``); the handful of places that legitimately need the host
clock — ``RealEnv``'s scheduler and the experiment drivers' elapsed-time
reporting — go through this module.  The ``des-purity`` lint rule bans
``time.*`` clock calls across the tree and whitelists exactly this
module (``allowed-modules = ["repro.util.timeutil"]`` in
``[tool.reprolint.rules.des-purity]``), so every wall-clock dependency
is findable from one import site.
"""

from __future__ import annotations

import time as _time

__all__ = ["monotonic", "perf_counter", "sleep", "wall_clock"]


def monotonic() -> float:
    """Host monotonic clock, for real-time scheduling (``RealEnv``)."""
    return _time.monotonic()


def perf_counter() -> float:
    """Highest-resolution host clock, for elapsed-time measurement."""
    return _time.perf_counter()


def sleep(seconds: float) -> None:
    """Host-clock sleep, for real-time pollers (``repro-top``).

    Nothing under the DES may block on host time; live CLIs pacing
    themselves against a real daemon are the only legitimate callers.
    """
    _time.sleep(seconds)


def wall_clock() -> float:
    """Host wall-clock epoch seconds, for human-facing timestamps only.

    Never feed this into DES state: it is not monotonic and differs
    across hosts.  Experiment drivers use it to stamp result files.
    """
    return _time.time()
