"""Small statistics helpers used by the impact analyses and experiments.

These are intentionally simple, NumPy-vectorised implementations: the
experiments generate millions of loop timings (PSNAP runs 16M samples in
the paper) and per-sample Python loops would dominate run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Histogram", "Summary", "normalized", "percentile"]


@dataclass
class Histogram:
    """A fixed-bin histogram over float samples.

    Mirrors the paper's PSNAP presentation (occurrences vs loop time in
    microseconds, log-scale counts).  Bins are half-open ``[lo, hi)``
    except the last, which is closed.
    """

    edges: np.ndarray
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.float64)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise ValueError("edges must be a 1-D array of at least 2 values")
        if np.any(np.diff(self.edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        if self.counts is None:
            self.counts = np.zeros(self.edges.size - 1, dtype=np.int64)
        else:
            self.counts = np.asarray(self.counts, dtype=np.int64)
            if self.counts.shape != (self.edges.size - 1,):
                raise ValueError("counts shape does not match edges")

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, lo: float, hi: float, nbins: int = 100
    ) -> "Histogram":
        """Build a histogram of ``samples`` over ``[lo, hi]``.

        Samples outside the range are clipped into the first/last bin so
        tail events remain visible (the paper's plots do the same — the
        interesting monitored-vs-unmonitored signal *is* the tail).
        """
        edges = np.linspace(lo, hi, nbins + 1)
        clipped = np.clip(np.asarray(samples, dtype=np.float64), lo, np.nextafter(hi, lo))
        counts, _ = np.histogram(clipped, bins=edges)
        return cls(edges=edges, counts=counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def add(self, samples: np.ndarray) -> None:
        """Accumulate more samples into the existing bins."""
        lo, hi = self.edges[0], self.edges[-1]
        clipped = np.clip(np.asarray(samples, dtype=np.float64), lo, np.nextafter(hi, lo))
        counts, _ = np.histogram(clipped, bins=self.edges)
        self.counts += counts

    def tail_count(self, threshold: float) -> int:
        """Number of samples in bins whose left edge is >= threshold."""
        mask = self.edges[:-1] >= threshold
        return int(self.counts[mask].sum())

    def tail_fraction(self, threshold: float) -> float:
        """Fraction of all samples at or beyond ``threshold``."""
        total = self.total
        return self.tail_count(threshold) / total if total else 0.0

    def rows(self) -> list[tuple[float, int]]:
        """(bin center, count) rows — what the figure plots."""
        return list(zip(self.centers.tolist(), self.counts.tolist()))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample set."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    p50: float
    p99: float

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "Summary":
        a = np.asarray(samples, dtype=np.float64)
        if a.size == 0:
            raise ValueError("cannot summarize an empty sample set")
        return cls(
            n=int(a.size),
            mean=float(a.mean()),
            std=float(a.std(ddof=1)) if a.size > 1 else 0.0,
            min=float(a.min()),
            max=float(a.max()),
            p50=float(np.percentile(a, 50)),
            p99=float(np.percentile(a, 99)),
        )

    @property
    def range(self) -> float:
        return self.max - self.min


def normalized(values, reference: float) -> np.ndarray:
    """Normalize values to a reference (the paper's Fig. 6/7 y-axes).

    >>> normalized([10.0, 11.0], 10.0).tolist()
    [1.0, 1.1]
    """
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return np.asarray(values, dtype=np.float64) / float(reference)


def percentile(values, q: float) -> float:
    """Convenience wrapper keeping analysis code NumPy-free at call sites."""
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def overlap_fraction(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of b's observed range that overlaps a's observed range.

    Used to state the paper's qualitative "the monitored distribution is
    within the unmonitored run-to-run variation" conclusion numerically.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    lo = max(a.min(), b.min())
    hi = min(a.max(), b.max())
    if hi <= lo:
        return 0.0
    width = b.max() - b.min()
    if width == 0:
        return 1.0 if a.min() <= b.min() <= a.max() else 0.0
    return float((hi - lo) / width)
