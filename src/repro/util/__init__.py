"""Shared utilities: unit parsing, statistics helpers, deterministic RNG."""

from repro.util.errors import (
    ReproError,
    ConfigError,
    TransportError,
    LookupError_,
    StoreError,
    SimulationError,
)
from repro.util.units import (
    parse_size,
    format_size,
    parse_interval,
    format_interval,
    KIB,
    MIB,
    GIB,
)
from repro.util.stats import (
    Histogram,
    Summary,
    normalized,
    percentile,
)
from repro.util.rngtools import spawn_rng, stable_seed
from repro.util.timeutil import monotonic, perf_counter, wall_clock

__all__ = [
    "ReproError",
    "ConfigError",
    "TransportError",
    "LookupError_",
    "StoreError",
    "SimulationError",
    "parse_size",
    "format_size",
    "parse_interval",
    "format_interval",
    "KIB",
    "MIB",
    "GIB",
    "Histogram",
    "Summary",
    "normalized",
    "percentile",
    "spawn_rng",
    "stable_seed",
    "monotonic",
    "perf_counter",
    "wall_clock",
]
