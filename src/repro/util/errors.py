"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration command or parameter was invalid.

    Raised by the control channel (bad command syntax, unknown plugin,
    duplicate instance names) and by plugin ``config()`` implementations.
    """


class TransportError(ReproError):
    """A transport operation failed (connect, send, fetch, listen)."""


class ConnectionLost(TransportError):
    """The peer endpoint went away mid-operation."""


class LookupError_(ReproError):
    """A metric-set lookup failed (set not found on the peer).

    Named with a trailing underscore to avoid shadowing the builtin.
    The aggregator treats this as retryable: the update thread keeps
    performing the lookup on the next update loop (paper Fig. 2, flow
    {a}/{b}).
    """


class StoreError(ReproError):
    """A storage plugin failed to open, write, or flush."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class OutOfMemory(ReproError):
    """The arena memory manager could not satisfy an allocation.

    Mirrors ldmsd behaviour: metric-set creation fails when the memory
    configured at daemon start (``-m`` option) is exhausted.
    """
