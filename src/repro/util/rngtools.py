"""Deterministic random-number plumbing.

Every stochastic component (synthetic counters, traffic models, app run
variation) takes an explicit :class:`numpy.random.Generator`.  These
helpers derive independent child generators from a parent seed plus a
stable string key, so experiments are reproducible end-to-end and
adding a new consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["stable_seed", "spawn_rng"]


def stable_seed(*keys: object) -> int:
    """Map arbitrary keys to a stable 32-bit seed.

    Uses CRC32 over the repr of the keys — stable across processes and
    Python versions (unlike ``hash()``, which is salted).

    >>> stable_seed("gpcdr", 42) == stable_seed("gpcdr", 42)
    True
    """
    text = "\x1f".join(repr(k) for k in keys)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def spawn_rng(seed: int | np.random.Generator, *keys: object) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and string keys.

    If ``seed`` is already a Generator, a child is derived from its
    bit-generator state combined with the keys, which keeps child
    streams decorrelated without consuming draws from the parent.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.bit_generator.seed_seq.entropy or 0)  # type: ignore[union-attr]
    else:
        base = int(seed)
    return np.random.default_rng(np.random.SeedSequence([base & 0xFFFFFFFF, stable_seed(*keys)]))
