"""Size and time-interval parsing/formatting.

LDMS configuration expresses memory as ``512kB``/``1MB`` style strings
(the ldmsd ``-m`` option) and intervals in microseconds.  This module
provides the equivalent conveniences with seconds as the canonical time
unit and bytes as the canonical size unit.
"""

from __future__ import annotations

import re

from repro.util.errors import ConfigError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
}

_TIME_SUFFIXES = {
    "": 1.0,
    "s": 1.0,
    "sec": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "u": 1e-6,
    "m": 60.0,
    "min": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "d": 86400.0,
}

_NUM_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human size string (``"512kB"``, ``"1.5MB"``) into bytes.

    Integers pass through unchanged.  Suffixes are case-insensitive and
    binary (k = 1024), matching ldmsd's memory option semantics.

    >>> parse_size("512kB")
    524288
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, int):
        if text < 0:
            raise ConfigError(f"negative size: {text}")
        return text
    m = _NUM_RE.match(text)
    if not m:
        raise ConfigError(f"unparseable size: {text!r}")
    value, suffix = m.groups()
    try:
        factor = _SIZE_SUFFIXES[suffix.lower()]
    except KeyError:
        raise ConfigError(f"unknown size suffix {suffix!r} in {text!r}") from None
    return int(float(value) * factor)


def format_size(nbytes: int | float) -> str:
    """Format a byte count with a binary suffix (``"44.0kB"``).

    >>> format_size(45056)
    '44.0kB'
    """
    n = float(nbytes)
    for suffix, factor in (("GB", GIB), ("MB", MIB), ("kB", KIB)):
        if abs(n) >= factor:
            return f"{n / factor:.1f}{suffix}"
    return f"{int(n)}B"


def parse_interval(text: str | float | int) -> float:
    """Parse a time interval into seconds.

    Accepts plain numbers (seconds) or suffixed strings: ``"20s"``,
    ``"100ms"``, ``"400us"``, ``"1min"``, ``"24h"``.

    >>> parse_interval("20s")
    20.0
    >>> parse_interval("400us")
    0.0004
    """
    if isinstance(text, (int, float)):
        value = float(text)
        if value < 0:
            raise ConfigError(f"negative interval: {text}")
        return value
    m = _NUM_RE.match(text)
    if not m:
        raise ConfigError(f"unparseable interval: {text!r}")
    value, suffix = m.groups()
    try:
        factor = _TIME_SUFFIXES[suffix.lower()]
    except KeyError:
        raise ConfigError(f"unknown time suffix {suffix!r} in {text!r}") from None
    seconds = float(value) * factor
    if seconds < 0:
        raise ConfigError(f"negative interval: {text!r}")
    return seconds


def format_interval(seconds: float) -> str:
    """Format seconds compactly (``"20s"``, ``"400us"``, ``"1.5h"``)."""
    if seconds >= 3600:
        return f"{seconds / 3600:g}h"
    if seconds >= 60:
        return f"{seconds / 60:g}min"
    if seconds >= 1:
        return f"{seconds:g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:g}ms"
    return f"{seconds * 1e6:g}us"
