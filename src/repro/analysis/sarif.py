"""Minimal SARIF 2.1.0 emission shared by ``repro-lint`` and ``repro-flow``.

Produces just enough of the schema for GitHub code-scanning to render
annotations: one run, one tool driver with rule metadata, and one
result per violation with a physical location.  No external deps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _relative_uri(path: str) -> str:
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def sarif_from_violations(
    tool_name: str,
    rules: list[dict[str, str]],
    results: list[dict[str, Any]],
    *,
    tool_version: str = "1.0.0",
) -> str:
    """Build a SARIF document string.

    ``rules``: ``[{"id": ..., "description": ...}, ...]``
    ``results``: ``[{"rule_id", "level", "message", "path", "line", "col"}, ...]``
    """
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    sarif_rules = [
        {
            "id": r["id"],
            "shortDescription": {"text": r["description"]},
            "helpUri": "",
        }
        for r in rules
    ]
    sarif_results = []
    for res in results:
        entry: dict[str, Any] = {
            "ruleId": res["rule_id"],
            "level": res.get("level", "error"),
            "message": {"text": res["message"]},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(res["path"]),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, int(res.get("line", 1))),
                            "startColumn": max(1, int(res.get("col", 0)) + 1),
                        },
                    }
                }
            ],
        }
        if res["rule_id"] in rule_index:
            entry["ruleIndex"] = rule_index[res["rule_id"]]
        sarif_results.append(entry)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": "",
                        "rules": sarif_rules,
                    }
                },
                "results": sarif_results,
            }
        ],
    }
    return json.dumps(doc, indent=2) + "\n"
