"""Monitoring-impact statistics for the §V experiments.

The paper's acceptance criterion throughout §V is qualitative but
checkable: the monitored runtime distribution falls within the
unmonitored run-to-run variation, and no configuration shows a
statistically significant shift.  :func:`compare_runs` produces the
Fig. 6/7 quantities (normalized means and observation ranges);
:func:`significance` runs Welch's t-test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from repro.apps.base import RunResult

__all__ = ["ImpactSummary", "compare_runs", "significance"]


@dataclass(frozen=True)
class ImpactSummary:
    """One bar (+error bar) of Fig. 6/7: a configuration vs baseline."""

    label: str
    mean: float
    lo: float
    hi: float
    normalized_mean: float
    normalized_lo: float
    normalized_hi: float
    p_value: float
    baseline_lo_norm: float = 0.0
    baseline_hi_norm: float = float("inf")

    @property
    def significant(self) -> bool:
        """The paper's criterion (§V-A2): an impact counts only when it
        is statistically detectable *and* the configuration's observed
        range lies outside the baseline's observed range ("even when
        variation of the average is measurable, the variation is within
        the wide range of observed values")."""
        disjoint = (self.normalized_lo > self.baseline_hi_norm
                    or self.normalized_hi < self.baseline_lo_norm)
        return self.p_value < 0.05 and disjoint


def _times(runs: list[RunResult], phase: str | None) -> np.ndarray:
    if phase is None:
        return np.array([r.wall_time for r in runs])
    return np.array([r.phases[phase] for r in runs])


def compare_runs(
    baseline: list[RunResult],
    monitored: dict[str, list[RunResult]],
    phase: str | None = None,
) -> list[ImpactSummary]:
    """Summaries of each monitored configuration against the baseline.

    Normalization is to the unmonitored average (the Fig. 6 y-axis:
    "time normalized to unmonitored average").
    """
    base = _times(baseline, phase)
    ref = float(base.mean())
    base_lo_n = float(base.min() / ref)
    base_hi_n = float(base.max() / ref)
    out = [
        ImpactSummary(
            label="unmonitored",
            mean=ref,
            lo=float(base.min()),
            hi=float(base.max()),
            normalized_mean=1.0,
            normalized_lo=base_lo_n,
            normalized_hi=base_hi_n,
            p_value=1.0,
            baseline_lo_norm=base_lo_n,
            baseline_hi_norm=base_hi_n,
        )
    ]
    for label, runs in monitored.items():
        t = _times(runs, phase)
        out.append(
            ImpactSummary(
                label=label,
                mean=float(t.mean()),
                lo=float(t.min()),
                hi=float(t.max()),
                normalized_mean=float(t.mean() / ref),
                normalized_lo=float(t.min() / ref),
                normalized_hi=float(t.max() / ref),
                p_value=significance(base, t),
                baseline_lo_norm=base_lo_n,
                baseline_hi_norm=base_hi_n,
            )
        )
    return out


def family_significant(
    series: dict[str, list[ImpactSummary]], alpha: float = 0.05
) -> list[tuple[str, str]]:
    """Family-wise significant impacts across a whole figure.

    The paper draws one conclusion over dozens of benchmark x config
    comparisons; judging each at alpha=0.05 in isolation would flag
    ~5% of them by chance even with no effect.  This applies a
    Bonferroni correction over the family and additionally requires the
    per-comparison range-disjointness criterion.
    """
    m = sum(max(len(summaries) - 1, 0) for summaries in series.values())
    if m == 0:
        return []
    threshold = alpha / m
    out = []
    for name, summaries in series.items():
        for s in summaries:
            if s.label == "unmonitored":
                continue
            disjoint = (s.normalized_lo > s.baseline_hi_norm
                        or s.normalized_hi < s.baseline_lo_norm)
            if s.p_value < threshold and disjoint:
                out.append((name, s.label))
    return out


def significance(a: np.ndarray, b: np.ndarray) -> float:
    """Welch's t-test p-value (1.0 when either side is degenerate)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2 or (a.std() == 0 and b.std() == 0):
        return 1.0
    stat = sstats.ttest_ind(a, b, equal_var=False)
    p = float(stat.pvalue)
    return 1.0 if np.isnan(p) else p
