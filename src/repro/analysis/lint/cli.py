"""``repro-lint`` console script.

Usage::

    repro-lint [paths...] [--format text|json|sarif] [--config pyproject.toml]
               [--select rule-a,rule-b] [--list-rules]
               [--changed-only] [--cache PATH] [--sarif-out FILE]

Paths default to ``src``.  Configuration is read from the
``[tool.reprolint]`` table of the given ``pyproject.toml`` (default:
``./pyproject.toml``; silently empty if the file does not exist so the
tool works from any checkout subdirectory with explicit paths).

``--changed-only`` enables the incremental mode: per-file verdicts are
cached (keyed by content hash + rule config) in the same summary store
``repro-flow`` uses, and unchanged files replay their cached result
instead of being re-parsed.

Exit codes: 0 clean or warnings only, 1 error-severity violations,
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.lint.engine import (
    Engine,
    LintConfig,
    LintConfigError,
    all_rules,
)

# Registration side effect: rule classes must exist before the engine
# or --list-rules consult the registry.
from repro.analysis.lint import rules as _rules  # noqa: F401

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint pass enforcing the paper's pipeline invariants",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                   help="report format (default: text)")
    p.add_argument("--config", default="pyproject.toml",
                   help="pyproject.toml holding [tool.reprolint] "
                        "(default: ./pyproject.toml)")
    p.add_argument("--select", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the registered rules and exit")
    p.add_argument("--changed-only", action="store_true",
                   help="replay cached verdicts for files whose content "
                        "hash is unchanged (incremental mode)")
    p.add_argument("--cache", default=None, metavar="PATH",
                   help="summary-store path for --changed-only "
                        "(default: .repro_flow_cache.json)")
    p.add_argument("--sarif-out", default=None, metavar="FILE",
                   help="additionally write a SARIF report to FILE")
    return p


def _list_rules() -> str:
    lines = []
    for rule_id, cls in sorted(all_rules().items()):
        lines.append(f"{rule_id:28s} {cls.description}")
        if cls.paper_ref:
            lines.append(f"{'':28s}   guards: {cls.paper_ref}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    try:
        config = LintConfig.from_pyproject(args.config)
        if args.select is not None:
            config.select = tuple(
                s.strip() for s in args.select.split(",") if s.strip()
            )
        engine = Engine(config)
        store = None
        if args.changed_only or args.cache is not None:
            from repro.analysis.flow.cache import DEFAULT_STORE_PATH, SummaryStore

            store = SummaryStore(args.cache or DEFAULT_STORE_PATH)
        report = engine.lint_paths(args.paths, store=store)
        if store is not None:
            store.save()
    except LintConfigError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if args.sarif_out:
        from pathlib import Path

        out = Path(args.sarif_out)
        if out.parent and not out.parent.exists():
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report.render_sarif(), encoding="utf-8")
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
