"""The reprolint rule engine: one AST pass per file, many rules.

Design (mirrors how ruff/flake8 organize checks, scaled down):

* Rules subclass :class:`Rule`, declare which AST node types they want
  (:attr:`Rule.interests`), and are registered once in a module-level
  registry.  The engine walks each file's AST exactly once and
  dispatches every node to the rules interested in its type, so adding
  a rule never adds a traversal.
* Scope is module-based, not path-based: each rule carries a tuple of
  package prefixes it applies to plus an ``allowed-modules`` whitelist,
  both overridable from ``[tool.reprolint]`` in ``pyproject.toml``.
  That keeps exemptions explicit (``repro.util.timeutil`` may touch the
  wall clock because it *is* the sanctioned clock boundary) rather than
  hidden in path carve-outs.
* Suppression is per line: ``# reprolint: ignore[rule-a,rule-b] -- why``
  on the offending line.  The justification text after ``--`` is
  mandatory; an ignore without one is itself a violation (rule id
  ``suppression``), so the tree can never accumulate bare mutes.

Exit codes are stable API: 0 = clean or warnings only, 1 = at least one
error-severity violation, 2 = usage/config error (raised as
:class:`LintConfigError` and mapped by the CLI).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "Engine",
    "LintConfig",
    "LintConfigError",
    "ModuleContext",
    "Report",
    "Rule",
    "Violation",
    "all_rules",
    "path_to_module",
    "register_rule",
    "scan_suppression_comments",
]

SEVERITIES = ("error", "warning", "off")

#: JSON reporter schema version (bump on breaking change).
JSON_SCHEMA_VERSION = 1

#: Cache-entry version for ``--changed-only`` replays (bump when the
#: violation payload shape changes).
LINT_CACHE_VERSION = 1

#: Rule-id prefixes owned by sibling tools that share the suppression
#: syntax.  ``# reprolint: ignore[flow-...]`` comments belong to
#: ``repro-flow``; the lint engine must treat them as known (not
#: malformed) while never matching them to its own rules.
_EXTERNAL_ID_PREFIXES = ("flow-",)

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ignore\[([A-Za-z0-9_\-,\s]+)\]\s*(?:--\s*(\S.*))?"
)


class LintConfigError(Exception):
    """Bad configuration or usage; the CLI maps this to exit code 2."""


@dataclass(frozen=True)
class Violation:
    """One finding, pinned to a physical source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    suppressed: bool = False
    justification: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` / :attr:`description` /
    :attr:`paper_ref`, declare :attr:`interests` (the AST node types
    they want dispatched), and implement :meth:`visit`.  Per-rule
    options arrive through :meth:`configure`; the common ones
    (``severity``, ``packages``, ``allowed-modules``) are consumed by
    the constructor.
    """

    rule_id: str = "abstract"
    description: str = ""
    #: The paper invariant this rule guards (shown by ``--list-rules``).
    paper_ref: str = ""
    default_severity: str = "error"
    #: Module prefixes the rule applies to; None = every linted module.
    default_packages: Optional[tuple[str, ...]] = None
    #: Modules exempt by default (merged unless overridden in config).
    default_allowed_modules: tuple[str, ...] = ()
    #: AST node types dispatched to :meth:`visit`.
    interests: tuple[type, ...] = ()

    def __init__(self, options: Optional[dict] = None):
        opts = dict(options or {})
        self.severity = str(opts.pop("severity", self.default_severity))
        if self.severity not in SEVERITIES:
            raise LintConfigError(
                f"{self.rule_id}: bad severity {self.severity!r} "
                f"(expected one of {SEVERITIES})"
            )
        pkgs = opts.pop("packages", None)
        self.packages = tuple(pkgs) if pkgs is not None else self.default_packages
        allowed = opts.pop("allowed-modules", None)
        self.allowed_modules = (
            tuple(allowed) if allowed is not None else self.default_allowed_modules
        )
        self.configure(opts)

    def configure(self, options: dict) -> None:
        """Consume rule-specific options; reject leftovers."""
        if options:
            raise LintConfigError(
                f"{self.rule_id}: unknown options {sorted(options)}"
            )

    def applies_to(self, module: str) -> bool:
        if module in self.allowed_modules:
            return False
        if self.packages is None:
            return True
        return any(
            module == p or module.startswith(p + ".") for p in self.packages
        )

    # -- per-file hooks ------------------------------------------------------
    def begin_module(self, ctx: "ModuleContext") -> None:
        """Called before dispatch starts for a file this rule applies to."""

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> None:
        """Called once per node whose type is in :attr:`interests`."""

    def end_module(self, ctx: "ModuleContext") -> None:
        """Called after the walk finishes (emit whole-module findings)."""


#: rule id -> rule class, in registration order.
_RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.rule_id in _RULE_REGISTRY:
        raise LintConfigError(f"duplicate rule id {cls.rule_id!r}")
    _RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    return dict(_RULE_REGISTRY)


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass
class LintConfig:
    """Engine configuration, normally read from ``[tool.reprolint]``.

    ``select`` limits the run to specific rule ids; ``rules`` maps rule
    id -> option table (``severity``, ``packages``, ``allowed-modules``,
    plus rule-specific keys).  ``src_roots`` tells the path->module
    mapper which directory components begin a package tree.
    """

    select: Optional[tuple[str, ...]] = None
    rules: dict[str, dict] = field(default_factory=dict)
    src_roots: tuple[str, ...] = ("src",)

    @classmethod
    def from_pyproject(cls, path: str | Path) -> "LintConfig":
        path = Path(path)
        if not path.exists():
            return cls()
        with open(path, "rb") as f:
            data = tomllib.load(f)
        table = data.get("tool", {}).get("reprolint", {})
        return cls.from_table(table)

    @classmethod
    def from_table(cls, table: dict) -> "LintConfig":
        table = dict(table)
        select = table.pop("select", None)
        src_roots = tuple(table.pop("src-roots", ("src",)))
        rules = {str(k): dict(v) for k, v in table.pop("rules", {}).items()}
        # [tool.reprolint.flow] belongs to repro-flow; not ours to validate.
        table.pop("flow", None)
        if table:
            raise LintConfigError(
                f"[tool.reprolint]: unknown keys {sorted(table)}"
            )
        unknown = set(rules) - set(_RULE_REGISTRY)
        if unknown:
            raise LintConfigError(
                f"[tool.reprolint.rules]: unknown rule ids {sorted(unknown)}"
            )
        return cls(
            select=tuple(select) if select is not None else None,
            rules=rules,
            src_roots=src_roots,
        )

    def digest(self) -> str:
        """Stable fingerprint for ``--changed-only`` cache keys: a cached
        verdict is only replayable under the exact same rule config."""
        import hashlib

        blob = json.dumps(
            {
                "select": self.select,
                "rules": self.rules,
                "src_roots": self.src_roots,
                "cache_version": LINT_CACHE_VERSION,
            },
            sort_keys=True,
            default=list,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# per-file context
# ---------------------------------------------------------------------------


class ModuleContext:
    """What rules see while one file is being linted."""

    def __init__(self, engine: "Engine", path: str, module: str,
                 tree: ast.Module, lines: list[str]):
        self.engine = engine
        self.path = path
        self.module = module
        self.tree = tree
        self.lines = lines
        self._import_map: Optional[dict[str, str]] = None

    @property
    def import_map(self) -> dict[str, str]:
        """Local alias -> dotted import target, computed once per file.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        monotonic as mono`` maps ``mono -> time.monotonic``.  Rules use
        it to resolve call targets to canonical dotted names.
        """
        if self._import_map is None:
            m: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for a in node.names:
                        m[a.asname or a.name.split(".")[0]] = (
                            a.name if a.asname else a.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for a in node.names:
                        if a.name != "*":
                            m[a.asname or a.name] = f"{node.module}.{a.name}"
            self._import_map = m
        return self._import_map

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Dotted name of a call target with import aliases expanded."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.import_map.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    def report(self, rule: Rule, node: ast.AST | int, message: str,
               col: Optional[int] = None) -> None:
        if isinstance(node, int):
            line, col = node, col or 0
        else:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
        self.engine._record(self, rule, line, col, message)


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


@dataclass
class Report:
    """Outcome of one lint run."""

    files: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    #: files whose results were replayed from the summary cache
    replayed: int = 0

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == "warning"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def render_text(self) -> str:
        lines = [v.format() for v in sorted(
            self.violations, key=lambda v: (v.path, v.line, v.col, v.rule))]
        cached = f", {self.replayed} cached" if self.replayed else ""
        lines.append(
            f"reprolint: {len(self.files)} files{cached}, "
            f"{len(self.errors)} errors, "
            f"{len(self.warnings)} warnings, {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "tool": "reprolint",
                "version": JSON_SCHEMA_VERSION,
                "files_scanned": len(self.files),
                "violations": [v.as_dict() for v in self.violations],
                "suppressed": [
                    dict(v.as_dict(), justification=v.justification)
                    for v in self.suppressed
                ],
                "summary": {
                    "errors": len(self.errors),
                    "warnings": len(self.warnings),
                    "suppressed": len(self.suppressed),
                    "files_replayed_from_cache": self.replayed,
                },
                "exit_code": self.exit_code,
            },
            indent=2,
        )

    def render_sarif(self) -> str:
        from repro.analysis.sarif import sarif_from_violations

        rules = [
            {"id": rule_id, "description": cls.description}
            for rule_id, cls in _RULE_REGISTRY.items()
        ]
        rules.append({"id": "parse-error", "description": "file failed to parse"})
        rules.append({
            "id": "suppression",
            "description": _SuppressionRule.description,
        })
        results = [
            {
                "rule_id": v.rule,
                "level": "error" if v.severity == "error" else "warning",
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "col": v.col,
            }
            for v in self.violations
        ]
        return sarif_from_violations("repro-lint", rules, results)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class _SuppressionRule(Rule):
    """Synthetic rule id for malformed suppression comments."""

    rule_id = "suppression"
    description = "reprolint ignore comments must name known rules and justify"


class Engine:
    """Instantiates configured rules and lints files in one AST pass each."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.rules: list[Rule] = []
        selected = self.config.select
        for rule_id, cls in _RULE_REGISTRY.items():
            if selected is not None and rule_id not in selected:
                continue
            rule = cls(self.config.rules.get(rule_id))
            if rule.severity != "off":
                self.rules.append(rule)
        if selected is not None:
            missing = set(selected) - set(_RULE_REGISTRY)
            if missing:
                raise LintConfigError(f"--select: unknown rules {sorted(missing)}")
        self._suppression_rule = _SuppressionRule()
        self._report: Optional[Report] = None
        self._suppressions: dict[int, tuple[set[str], str]] = {}

    # -- path handling -------------------------------------------------------
    def module_name(self, path: Path) -> str:
        """Map a file path to a dotted module under a configured src root."""
        return path_to_module(path, self.config.src_roots)

    @staticmethod
    def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for p in paths:
            p = Path(p)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
            else:
                raise LintConfigError(f"not a python file or directory: {p}")
        return files

    # -- linting -------------------------------------------------------------
    def lint_paths(self, paths: Iterable[str | Path], store=None) -> Report:
        """Lint files, optionally replaying unchanged ones from ``store``.

        ``store`` is a :class:`repro.analysis.flow.cache.SummaryStore`
        (duck-typed: ``get``/``put``).  A file whose content digest
        matches the cached entry has its violations replayed verbatim
        instead of being re-parsed — the ``--changed-only`` mode.
        """
        report = Report()
        config_digest = self.config.digest() if store is not None else ""
        for f in self.iter_python_files(paths):
            source = f.read_text(encoding="utf-8")
            if store is not None:
                from repro.analysis.flow.cache import digest_source

                digest = digest_source(source, config_digest)
                cached = store.get("lint", str(f), digest)
                if cached is not None:
                    report.files.append(str(f))
                    report.replayed += 1
                    for obj in cached["violations"]:
                        report.violations.append(_violation_from_cache(obj))
                    for obj in cached["suppressed"]:
                        report.suppressed.append(_violation_from_cache(obj))
                    continue
            before_v, before_s = len(report.violations), len(report.suppressed)
            self._lint_one(source, str(f), self.module_name(f), report)
            if store is not None:
                store.put(
                    "lint",
                    str(f),
                    digest,
                    {
                        "violations": [
                            _violation_to_cache(v)
                            for v in report.violations[before_v:]
                        ],
                        "suppressed": [
                            _violation_to_cache(v)
                            for v in report.suppressed[before_s:]
                        ],
                    },
                )
        return report

    def lint_source(self, source: str, module: str,
                    path: str = "<string>",
                    report: Optional[Report] = None) -> Report:
        """Lint a source string as if it were module ``module`` (tests)."""
        report = report if report is not None else Report()
        self._lint_one(source, path, module, report)
        return report

    def _lint_one(self, source: str, path: str, module: str,
                  report: Report) -> None:
        report.files.append(path)
        self._report = report
        lines = source.splitlines()
        self._suppressions = self._scan_suppressions(path, source, report)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.violations.append(Violation(
                path, exc.lineno or 0, exc.offset or 0,
                "parse-error", "error", f"syntax error: {exc.msg}",
            ))
            return
        ctx = ModuleContext(self, path, module, tree, lines)
        active = [r for r in self.rules if r.applies_to(module)]
        if not active:
            return
        dispatch: dict[type, list[Rule]] = {}
        for rule in active:
            rule.begin_module(ctx)
            for t in rule.interests:
                dispatch.setdefault(t, []).append(rule)
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                rule.visit(node, ctx)
        for rule in active:
            rule.end_module(ctx)

    @staticmethod
    def _iter_comments(source: str) -> list[tuple[int, int, str]]:
        """(line, col, text) for every real comment token.

        Tokenizing (rather than regexing raw lines) keeps suppression
        syntax mentioned inside strings/docstrings from being parsed as
        live suppressions.  Returns nothing on tokenize failure; the
        parse-error path reports the syntax problem.
        """
        out: list[tuple[int, int, str]] = []
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    out.append((tok.start[0], tok.start[1], tok.string))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return []
        return out

    def _scan_suppressions(self, path: str, source: str,
                           report: Report) -> dict[int, tuple[set[str], str]]:
        known = set(_RULE_REGISTRY) | {"parse-error"}
        out, problems = scan_suppression_comments(source, known)
        for line, col, message in problems:
            report.violations.append(Violation(
                path, line, col,
                self._suppression_rule.rule_id, "error", message,
            ))
        return out

    def _record(self, ctx: ModuleContext, rule: Rule, line: int, col: int,
                message: str) -> None:
        assert self._report is not None
        ids_just = self._suppressions.get(line)
        if ids_just is not None and rule.rule_id in ids_just[0]:
            self._report.suppressed.append(Violation(
                ctx.path, line, col, rule.rule_id, rule.severity, message,
                suppressed=True, justification=ids_just[1],
            ))
            return
        self._report.violations.append(Violation(
            ctx.path, line, col, rule.rule_id, rule.severity, message,
        ))


# ---------------------------------------------------------------------------
# shared helpers (also used by repro-flow)
# ---------------------------------------------------------------------------


def path_to_module(path: Path, src_roots: tuple[str, ...] = ("src",)) -> str:
    """Map a file path to a dotted module under a configured src root."""
    parts = list(Path(path).resolve().parts)
    for root in src_roots:
        if root in parts:
            rel = parts[parts.index(root) + 1:]
            if rel:
                if rel[-1] == "__init__.py":
                    rel = rel[:-1]
                elif rel[-1].endswith(".py"):
                    rel[-1] = rel[-1][:-3]
                return ".".join(rel)
    return Path(path).stem


def scan_suppression_comments(
    source: str, known_ids: set[str]
) -> tuple[dict[int, tuple[set[str], str]], list[tuple[int, int, str]]]:
    """Parse ``# reprolint: ignore[...] -- why`` comments from ``source``.

    Returns ``(suppressions, problems)``: a line -> (rule ids,
    justification) map, and a list of (line, col, message) problems for
    malformed comments (unknown rule ids, missing justification).  Rule
    ids starting with an external prefix (``flow-``) are always treated
    as known — the owning tool validates them against its own registry.
    """
    out: dict[int, tuple[set[str], str]] = {}
    problems: list[tuple[int, int, str]] = []
    for i, col, comment in Engine._iter_comments(source):
        m = _SUPPRESS_RE.search(comment)
        if not m:
            continue
        ids = {s.strip() for s in m.group(1).split(",") if s.strip()}
        justification = (m.group(2) or "").strip()
        unknown = {
            rid
            for rid in ids - known_ids
            if not rid.startswith(_EXTERNAL_ID_PREFIXES)
        }
        if unknown:
            problems.append((
                i, col,
                f"suppression names unknown rule(s) {sorted(unknown)}",
            ))
        if not justification:
            problems.append((
                i, col,
                "suppression lacks a justification "
                "(write `# reprolint: ignore[rule] -- why`)",
            ))
        out[i] = (ids, justification)
    return out, problems


def _violation_to_cache(v: Violation) -> list:
    return [v.path, v.line, v.col, v.rule, v.severity, v.message,
            int(v.suppressed), v.justification]


def _violation_from_cache(obj: list) -> Violation:
    return Violation(obj[0], obj[1], obj[2], obj[3], obj[4], obj[5],
                     suppressed=bool(obj[6]), justification=obj[7])
