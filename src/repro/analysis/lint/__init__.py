"""reprolint: AST lint rules enforcing the paper's pipeline invariants.

The reproduction's correctness rests on contracts the paper states but
Python cannot express in types: data-chunk writes go through the
MetricSet API and bump the DGN (§IV-B), samplers pay layout cost once
at ``config()`` and never resolve metric names in ``sample()`` (§IV-E),
and everything under the discrete-event simulator is deterministic.
This package is the static half of the enforcement layer (the runtime
half is :mod:`repro.core.sanitize`):

* :mod:`repro.analysis.lint.engine` — a single-pass AST rule engine:
  rule registry, per-rule severity/config read from ``pyproject.toml``
  (``[tool.reprolint]``), ``# reprolint: ignore[rule-id] -- why``
  line suppressions, text and JSON reporters, stable exit codes;
* :mod:`repro.analysis.lint.rules` — the project-specific rules;
* :mod:`repro.analysis.lint.cli` — the ``repro-lint`` console script.

Exit codes: 0 clean (or warnings only), 1 error-severity violations,
2 usage/configuration error.
"""

from repro.analysis.lint.engine import (
    Engine,
    LintConfig,
    LintConfigError,
    Report,
    Rule,
    Violation,
    all_rules,
)
from repro.analysis.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.lint.cli import main

__all__ = [
    "Engine",
    "LintConfig",
    "LintConfigError",
    "Report",
    "Rule",
    "Violation",
    "all_rules",
    "main",
]
