"""The project-specific reprolint rules.

Each rule guards one invariant the paper states in prose (DESIGN.md
"Static analysis" maps every rule to its section reference).  Rules are
deliberately narrow: they encode *this* codebase's contracts, not
general Python style — ruff handles style in CI alongside this linter.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.lint.engine import Rule, register_rule

__all__ = ["DES_PACKAGES"]

#: The deterministic world: everything that runs under the DES clock.
DES_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.plugins",
    "repro.transport",
    "repro.experiments",
    "repro.faults",
    "repro.util",
)


def _is_self_attr_call(node: ast.Call, attr: str) -> bool:
    f = node.func
    return isinstance(f, ast.Attribute) and f.attr == attr


@register_rule
class DesPurityRule(Rule):
    """No wall clock or global RNG inside the deterministic world.

    The DES replays cluster-scale schedules deterministically (same
    seed, same trace); one ``time.time()`` or ``random.random()`` in a
    sampler breaks replay silently.  Time comes from the engine clock
    (``env.now()``), randomness from an injected
    ``numpy.random.Generator`` (:mod:`repro.util.rngtools`).  The
    sanctioned wall-clock boundary is :mod:`repro.util.timeutil`
    (whitelisted below); ``RealEnv`` reads its clock through it.
    """

    rule_id = "des-purity"
    description = "no wall-clock/global-RNG calls under the DES"
    paper_ref = "§IV-C synchronous sampling; DESIGN 'Scale realism'"
    default_packages = DES_PACKAGES
    default_allowed_modules = ("repro.util.timeutil",)
    interests = (ast.Call,)

    #: Wall-clock entry points (time.monotonic included: only the
    #: timeutil boundary module may read any host clock).
    BANNED_TIME = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })
    #: numpy.random module-level (global-state or convenience) entry
    #: points.  Generator construction (default_rng / SeedSequence) is
    #: legal — that is how generators get injected.
    BANNED_NP_RANDOM = frozenset({
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "uniform", "normal", "standard_normal", "choice", "shuffle",
        "permutation", "exponential", "poisson", "binomial",
    })

    def visit(self, node: ast.Call, ctx) -> None:
        name = ctx.resolve_call(node.func)
        if name is None:
            return
        if name in self.BANNED_TIME:
            ctx.report(self, node,
                       f"wall-clock call {name}() under the DES — use the "
                       f"engine clock (env.now()) or repro.util.timeutil")
        elif name.startswith("random."):
            ctx.report(self, node,
                       f"global-RNG call {name}() — inject a "
                       f"numpy.random.Generator (repro.util.spawn_rng)")
        elif (name.startswith("numpy.random.")
              and name.rsplit(".", 1)[1] in self.BANNED_NP_RANDOM):
            ctx.report(self, node,
                       f"global numpy RNG call {name}() — inject a "
                       f"Generator (repro.util.spawn_rng)")


def _class_has_decorator(node: ast.ClassDef, name: str, ctx) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = ctx.resolve_call(target)
        if resolved is not None and resolved.split(".")[-1] == name:
            return True
    return False


def _class_bases(node: ast.ClassDef) -> set[str]:
    out = set()
    for b in node.bases:
        if isinstance(b, ast.Name):
            out.add(b.id)
        elif isinstance(b, ast.Attribute):
            out.add(b.attr)
    return out


def _methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        s.name: s for s in node.body
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register_rule
class SamplerContractRule(Rule):
    """Sampler plugins pay layout cost at config(), never in sample().

    The paper's ~1.3 µs/metric collect cost (§IV-E) depends on the
    sample path being "read counters, one compiled whole-row write":
    metric names resolve to indices once at ``config()`` (the PR-1 fast
    path).  Flags, inside ``do_sample``/``sample`` bodies: string-named
    ``set_value`` calls, ``index_of``/``indices_of`` calls,
    ``getattr(x, "literal")`` lookups, literal name->value dicts, and
    ``create_set`` calls.  Also requires every sampler class to define
    both ``config`` and ``do_sample``.
    """

    rule_id = "sampler-contract"
    description = "samplers: layout at config(), no name resolution in sample()"
    paper_ref = "§IV-E collection cost; DESIGN 'Hot-path performance discipline'"
    default_packages = ("repro.plugins.samplers",)
    interests = (ast.ClassDef,)

    def visit(self, node: ast.ClassDef, ctx) -> None:
        is_sampler = (
            _class_has_decorator(node, "register_sampler", ctx)
            or "SamplerPlugin" in _class_bases(node)
        )
        if not is_sampler or node.name == "SamplerPlugin":
            return
        methods = _methods(node)
        for required in ("config", "do_sample"):
            if required not in methods:
                ctx.report(self, node,
                           f"sampler {node.name} does not define {required}()")
        for mname in ("do_sample", "sample"):
            fn = methods.get(mname)
            if fn is not None:
                self._check_sample_body(fn, ctx)

    def _check_sample_body(self, fn: ast.FunctionDef, ctx) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict):
                if any(isinstance(k, ast.Constant) and isinstance(k.value, str)
                       for k in node.keys):
                    ctx.report(self, node,
                               f"literal name->value dict in {fn.name}() — "
                               f"build positional rows (set_values) instead")
            elif isinstance(node, ast.Call):
                self._check_call(node, fn, ctx)

    def _check_call(self, node: ast.Call, fn: ast.FunctionDef, ctx) -> None:
        if _is_self_attr_call(node, "set_value") and node.args:
            arg0 = node.args[0]
            if isinstance(arg0, ast.JoinedStr) or (
                isinstance(arg0, ast.Constant) and isinstance(arg0.value, str)
            ):
                ctx.report(self, node,
                           f"per-sample metric-name resolution in {fn.name}() "
                           f"— resolve indices at config() and use "
                           f"set_values()/integer indices")
        elif (_is_self_attr_call(node, "index_of")
              or _is_self_attr_call(node, "indices_of")):
            ctx.report(self, node,
                       f"name->index resolution in {fn.name}() — "
                       f"resolve once at config()")
        elif (_is_self_attr_call(node, "create_set")
              or (isinstance(node.func, ast.Name)
                  and node.func.id == "create_set")):
            ctx.report(self, node,
                       f"create_set() in {fn.name}() — layout cost must be "
                       f"paid once at config()")
        elif (isinstance(node.func, ast.Name) and node.func.id == "getattr"
              and len(node.args) >= 2
              and isinstance(node.args[1], ast.Constant)
              and isinstance(node.args[1].value, str)):
            ctx.report(self, node,
                       f"attribute-string lookup in {fn.name}() — bind the "
                       f"attribute at config()")


@register_rule
class StoreContractRule(Rule):
    """Stores define store(); buffering requires a flush path.

    §IV-A: stores are the pipeline's durability boundary.  A store that
    appends to in-memory state inside ``store()`` without overriding
    ``flush()`` buffers unboundedly and loses everything on a crash —
    the failure mode the paper's CSV/MySQL stores avoid by flushing on
    a cadence.
    """

    rule_id = "store-contract"
    description = "stores: store() required; buffering needs a flush() override"
    paper_ref = "§IV-A/C storage; DESIGN 'System inventory'"
    default_packages = ("repro.plugins.stores",)
    interests = (ast.ClassDef,)

    def visit(self, node: ast.ClassDef, ctx) -> None:
        is_store = (
            _class_has_decorator(node, "register_store", ctx)
            or "StorePlugin" in _class_bases(node)
        )
        if not is_store or node.name == "StorePlugin":
            return
        methods = _methods(node)
        if "store" not in methods:
            ctx.report(self, node,
                       f"store {node.name} does not define store()")
            return
        if "flush" in methods:
            return
        for sub in ast.walk(methods["store"]):
            if (isinstance(sub, ast.Call)
                    and _is_self_attr_call(sub, "append")
                    and isinstance(sub.func.value, ast.Attribute)
                    and isinstance(sub.func.value.value, ast.Name)
                    and sub.func.value.value.id == "self"):
                ctx.report(self, sub,
                           f"{node.name}.store() buffers in memory but the "
                           f"class defines no flush() path")
                return


@register_rule
class ChunkDisciplineRule(Rule):
    """Data-chunk bytes are written only through the MetricSet API.

    §IV-B: every data-chunk write bumps the DGN and runs inside a
    transaction that manages the consistent flag.  A raw
    ``pack_into``/``memoryview`` write anywhere else produces torn data
    that consumers cannot detect.  Only the set/arena/wire layer that
    *implements* the API may touch raw buffers (whitelisted below);
    the runtime half of this rule is ``REPRO_SANITIZE=1``
    (:mod:`repro.core.sanitize`).
    """

    rule_id = "chunk-discipline"
    description = "no raw pack_into/memoryview writes outside the set layer"
    paper_ref = "§IV-B metric set format"
    default_packages = ("repro",)
    default_allowed_modules = (
        "repro.core.metric_set",
        "repro.core.memory",
        "repro.core.wire",
        "repro.core.metric",
        "repro.core.sanitize",
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx) -> None:
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr == "pack_into":
            ctx.report(self, node,
                       "raw pack_into write outside the MetricSet layer — "
                       "go through set_value/set_values so the DGN advances")
        elif isinstance(f, ast.Name) and f.id == "memoryview":
            ctx.report(self, node,
                       "raw memoryview over set storage outside the "
                       "MetricSet layer — use data_view()/set accessors")


@register_rule
class ArenaSweepDisciplineRule(Rule):
    """Arena sweep modules stay columnar: no per-row loops or struct.

    The columnar data plane's whole point is that a sweep touches every
    member row of a block with one numpy fancy-indexed operation
    (``blk.flags[rows] = 0``) and serializes with one ``tobytes()`` per
    block.  A Python ``for`` loop that indexes a header/value column
    one row at a time, or a ``struct.pack`` call, silently reintroduces
    the per-set scalar cost the arena exists to amortize — correctness
    is unaffected, so only the benchmark would catch it.
    """

    rule_id = "arena-sweep-discipline"
    description = "arena sweeps: no per-row column writes or struct.pack"
    paper_ref = "§IV-A collection scaling, §IV-D update coalescing"
    default_packages = ("repro.core.set_arena",)
    interests = (ast.For, ast.Call)

    #: ArenaBlock column views a sweep may only touch via fancy indexing.
    COLUMN_ATTRS = frozenset({"block", "mgn", "dgn", "flags", "ts",
                              "values_mat"})

    def visit(self, node, ctx) -> None:
        if isinstance(node, ast.Call):
            name = ctx.resolve_call(node.func)
            if name in ("struct.pack", "struct.pack_into"):
                ctx.report(self, node,
                           f"{name}() in an arena sweep module — serialize "
                           f"whole blocks with tobytes()/frombuffer")
            return
        # A `for` over a single scalar name that indexes block columns
        # row-by-row.  Group sweeps unpack (block, rows) tuples and
        # fancy-index with the whole rows array, so tuple targets pass.
        target = node.target
        if not isinstance(target, ast.Name):
            return
        if (isinstance(node.iter, ast.Attribute)
                and node.iter.attr in self.COLUMN_ATTRS):
            ctx.report(self, node,
                       f"iterating .{node.iter.attr} rows one at a time — "
                       f"sweep the whole block with a vectorized op")
            return
        for sub in ast.walk(node):
            tgt = None
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                tgts = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for t in tgts:
                    if (isinstance(t, ast.Subscript)
                            and isinstance(t.value, ast.Attribute)
                            and t.value.attr in self.COLUMN_ATTRS
                            and any(isinstance(n, ast.Name)
                                    and n.id == target.id
                                    for n in ast.walk(t.slice))):
                        tgt = t
                        break
            if tgt is not None:
                ctx.report(self, tgt,
                           f"per-row write to .{tgt.value.attr} inside a "
                           f"for loop — batch the rows and fancy-index the "
                           f"column once")


@register_rule
class SwallowedExceptRule(Rule):
    """No silent ``except Exception: pass`` in the pipeline layers.

    §IV-E: failures must surface as counters (non-reporting hosts are
    *counted* and bypassed, never silently dropped).  A broad handler
    whose body is only ``pass``/``continue`` erases the failure — at
    minimum it must narrow the type and bump an ``obs`` counter or log.
    """

    rule_id = "swallowed-except"
    description = "broad except with a pass/continue-only body"
    paper_ref = "§IV-E robustness; DESIGN 'Self-instrumentation'"
    default_packages = ("repro.core", "repro.transport")
    interests = (ast.ExceptHandler,)

    _BROAD = ("Exception", "BaseException")

    def _is_broad(self, t: Optional[ast.expr]) -> bool:
        if t is None:
            return True
        if isinstance(t, ast.Name):
            return t.id in self._BROAD
        if isinstance(t, ast.Tuple):
            return any(self._is_broad(e) for e in t.elts)
        return False

    def visit(self, node: ast.ExceptHandler, ctx) -> None:
        if not self._is_broad(node.type):
            return
        if all(isinstance(s, (ast.Pass, ast.Continue)) for s in node.body):
            what = "bare except" if node.type is None else "except Exception"
            ctx.report(self, node,
                       f"{what} silently swallowed — narrow the type and "
                       f"count the failure into the obs registry")


@register_rule
class ControlVerbRegistryRule(Rule):
    """Every control verb has a handler docstring and reference entry.

    §IV-B: ldmsd is configured at runtime over the control channel; the
    verb set *is* the daemon's public API.  Every ``_cmd_<verb>``
    handler must carry a docstring, and the verb must appear in the
    module docstring's command reference so ``ldmsctl`` users can
    discover it.
    """

    rule_id = "control-verb-registry"
    description = "control verbs need handler docstrings + doc reference"
    paper_ref = "§IV-B runtime configuration"
    default_packages = ("repro.core.control",)
    interests = (ast.ClassDef,)

    def visit(self, node: ast.ClassDef, ctx) -> None:
        handlers = {
            name[len("_cmd_"):]: fn
            for name, fn in _methods(node).items()
            if name.startswith("_cmd_")
        }
        if not handlers:
            return
        module_doc = ast.get_docstring(ctx.tree) or ""
        words = set(module_doc.replace("=", " ").replace("(", " ").split())
        for verb, fn in sorted(handlers.items()):
            if not ast.get_docstring(fn):
                ctx.report(self, fn,
                           f"control verb {verb!r}: handler _cmd_{verb} has "
                           f"no docstring")
            if verb not in words:
                ctx.report(self, fn,
                           f"control verb {verb!r} is not documented in the "
                           f"module's command reference")


@register_rule
class NoBlockingIoInHotPathRule(Rule):
    """No blocking I/O or console calls on the per-sample hot path.

    §IV-E: sampler execution sits inside the application's noise
    budget (~0.4 ms for a ~200-metric set).  ``open()``/``print()``/
    ``time.sleep()``/subprocess calls in ``do_sample`` or ``store``
    bodies blow that budget by orders of magnitude; node files are read
    through the daemon's ``fs`` abstraction and stores buffer, opening
    files at config/flush time.
    """

    rule_id = "no-blocking-io-in-hot-path"
    description = "no open/print/sleep/subprocess in per-sample code"
    paper_ref = "§IV-E, §V-A sampler perturbation"
    default_packages = ("repro.core", "repro.plugins")
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    #: ``store_many`` is the vectorized flush path — one call covers a
    #: whole flush batch, so a blocking call there stalls every store
    #: record of the wakeup, not just one.
    DEFAULT_HOT = ("do_sample", "store", "store_many")
    BANNED_BARE = frozenset({"open", "print", "input", "breakpoint"})
    BANNED_DOTTED = frozenset({
        "time.sleep",
        "os.system", "os.popen",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.Popen",
        "socket.socket", "socket.create_connection",
    })

    def configure(self, options: dict) -> None:
        self.hot_functions = tuple(
            options.pop("hot-functions", self.DEFAULT_HOT)
        )
        super().configure(options)

    def visit(self, node: ast.FunctionDef, ctx) -> None:
        if node.name not in self.hot_functions:
            return
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = ctx.resolve_call(sub.func)
            if name is None:
                continue
            if name in self.BANNED_BARE or name in self.BANNED_DOTTED:
                ctx.report(self, sub,
                           f"blocking call {name}() in hot path "
                           f"{node.name}() — hoist to config()/flush() or "
                           f"go through the fs abstraction")


@register_rule
class ObsHotpathDisciplineRule(Rule):
    """Observability instruments stay free on the data-plane hot path.

    The obs plane's CI contract is a <5% overhead bound with every
    instrument enabled, and *zero* measurable cost when disabled.  That
    only holds if a trace/record/observe call site on the sample/
    update/flush path never allocates (dict/list/set displays,
    comprehensions) or formats strings (f-strings, ``%``, ``.format``)
    while building its arguments — those costs are paid even when the
    instrument drops the event.  Expensive arguments are legal only
    under the enabled-check idiom: an enclosing ``if`` testing
    ``x.enabled`` or an ``is not None`` handle (``Tracer.start`` /
    ``FreshnessTracker.arm`` return ``None`` when off, so the whole
    block vanishes on the disabled path).
    """

    rule_id = "obs-hotpath-discipline"
    description = ("no allocation/formatting in obs-instrument args on "
                   "hot paths unless enabled-guarded")
    paper_ref = "§IV-E overhead bound; DESIGN 'Observability plane'"
    default_packages = ("repro.core", "repro.plugins", "repro.transport")
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    #: Data-plane functions where every instrument call is per-event.
    DEFAULT_HOT = (
        "do_sample", "store", "store_many",
        "_finish_sample", "_complete_update", "_multi_data",
        "_issue_update", "_issue_update_multi",
        "_flush_record", "_flush_rows", "_deliver", "_deliver_staged",
        "_on_traced_read",
    )
    #: Instrument entry points: ``<recv>.record/observe/start/finish``
    #: where the receiver chain names an obs object.
    INSTRUMENT_METHODS = frozenset({"record", "observe", "start", "finish"})
    INSTRUMENT_RECEIVERS = frozenset({
        "spans", "flight", "freshness", "tracer", "recorder",
    })

    def configure(self, options: dict) -> None:
        self.hot_functions = tuple(
            options.pop("hot-functions", self.DEFAULT_HOT))
        super().configure(options)

    # -- classification ----------------------------------------------------
    def _is_instrument_call(self, call: ast.Call) -> bool:
        f = call.func
        if not (isinstance(f, ast.Attribute)
                and f.attr in self.INSTRUMENT_METHODS):
            return False
        recv = f.value
        # Accept self.flight.record(...), d.spans.record(...),
        # tracer.finish(...), fresh.observe(...) — any name/attr in the
        # receiver chain that reads as an obs object.
        while True:
            if isinstance(recv, ast.Attribute):
                if recv.attr in self.INSTRUMENT_RECEIVERS:
                    return True
                recv = recv.value
            elif isinstance(recv, ast.Name):
                return (recv.id in self.INSTRUMENT_RECEIVERS
                        or recv.id in ("fresh", "trace", "span", "fl"))
            else:
                return False

    @staticmethod
    def _expensive_arg(call: ast.Call):
        """First allocating/formatting expression among the arguments."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, (ast.Dict, ast.List, ast.Set,
                                    ast.DictComp, ast.ListComp, ast.SetComp,
                                    ast.GeneratorExp, ast.JoinedStr)):
                    return sub
                if (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mod)
                        and isinstance(sub.left, ast.Constant)
                        and isinstance(sub.left.value, str)):
                    return sub
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "format"):
                    return sub
        return None

    @staticmethod
    def _is_enabled_guard(test: ast.expr) -> bool:
        """``x.enabled``-style or ``x is not None`` test (possibly inside
        a BoolOp)."""
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Compare) and any(
                isinstance(op, (ast.IsNot, ast.Is))
                and isinstance(cmp, ast.Constant) and cmp.value is None
                for op, cmp in zip(sub.ops, sub.comparators)
            ):
                return True
        return False

    # -- traversal ---------------------------------------------------------
    def _check_stmts(self, stmts, guarded: bool, ctx) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                inner = guarded or self._is_enabled_guard(stmt.test)
                self._check_stmts(stmt.body, inner, ctx)
                self._check_stmts(stmt.orelse, guarded, ctx)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs are visited in their own right
            for wrap in (ast.For, ast.While, ast.With, ast.Try):
                if isinstance(stmt, wrap):
                    for field_name in ("body", "orelse", "finalbody"):
                        self._check_stmts(getattr(stmt, field_name, []),
                                          guarded, ctx)
                    break
            else:
                if guarded:
                    continue
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Call)
                            and self._is_instrument_call(sub)):
                        bad = self._expensive_arg(sub)
                        if bad is not None:
                            ctx.report(self, sub,
                                       "allocation/formatting in an obs "
                                       "instrument call on the hot path — "
                                       "guard with the enabled-check idiom "
                                       "(if x.enabled / handle is not None) "
                                       "or pass scalars")

    def visit(self, node: ast.FunctionDef, ctx) -> None:
        if node.name not in self.hot_functions:
            return
        self._check_stmts(node.body, False, ctx)


@register_rule
class MutableDefaultArgRule(Rule):
    """No mutable default arguments anywhere in the tree.

    Plugin ``config()`` signatures are long-lived daemon state; a
    shared ``[]``/``{}`` default aliases state across plugin instances
    — across *daemons* in the simulator, breaking run isolation.
    """

    rule_id = "mutable-default-arg"
    description = "mutable default argument ([]/{}/set()/list()/dict())"
    paper_ref = "DESIGN 'Scale realism' (per-daemon isolation)"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def visit(self, node, ctx) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            )
            if bad:
                fname = getattr(node, "name", "<lambda>")
                ctx.report(self, default,
                           f"mutable default argument in {fname}() — "
                           f"default to None and build per call")
