"""3-D torus snapshot analysis (Fig. 9 bottom).

The paper shows a system snapshot "in terms of the X, Y, Z network mesh
coordinates ... Because of the toroidal connectivity, this group wraps
in X and connects with the group on the left at the same value of Z"
(label C).  :func:`congestion_regions` finds connected components of
high-value Geminis under torus (wraparound) adjacency so experiments
can assert the wrap behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.network.torus import GeminiTorus

__all__ = ["TorusRegion", "congestion_regions", "region_wraps"]


@dataclass(frozen=True)
class TorusRegion:
    """A connected set of Geminis above a value threshold."""

    geminis: frozenset[int]
    max_value: float
    max_gemini: int

    def __len__(self) -> int:
        return len(self.geminis)


def congestion_regions(
    torus: GeminiTorus, values: np.ndarray, threshold: float
) -> list[TorusRegion]:
    """Connected components (6-neighbour torus adjacency) of Geminis
    whose value >= threshold, largest first."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (torus.n_geminis,):
        raise ValueError(
            f"expected ({torus.n_geminis},) values, got {values.shape}"
        )
    hot = values >= threshold
    seen = np.zeros(torus.n_geminis, dtype=bool)
    regions: list[TorusRegion] = []
    for start in np.flatnonzero(hot):
        if seen[start]:
            continue
        comp = []
        queue = deque([int(start)])
        seen[start] = True
        while queue:
            g = queue.popleft()
            comp.append(g)
            for direction in range(6):
                n = torus.neighbor(g, direction)
                if hot[n] and not seen[n]:
                    seen[n] = True
                    queue.append(n)
        local_max = max(comp, key=lambda g: values[g])
        regions.append(
            TorusRegion(
                geminis=frozenset(comp),
                max_value=float(values[local_max]),
                max_gemini=int(local_max),
            )
        )
    regions.sort(key=len, reverse=True)
    return regions


def region_wraps(torus: GeminiTorus, region: TorusRegion, dim: int) -> bool:
    """True if the region uses the torus wrap link in dimension ``dim``
    (i.e. contains adjacent members at coordinates 0 and size-1)."""
    size = torus.dims[dim]
    coords = {torus.coord(g) for g in region.geminis}
    for c in coords:
        if c[dim] == size - 1:
            wrapped = list(c)
            wrapped[dim] = 0
            if tuple(wrapped) in coords:
                return True
    return False


def extent(torus: GeminiTorus, region: TorusRegion, dim: int) -> int:
    """Number of distinct coordinates the region spans in ``dim``
    (features "naturally have extent in the X direction", §VI-A1)."""
    return len({torus.coord(g)[dim] for g in region.geminis})
