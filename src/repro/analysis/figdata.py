"""Plot-ready data exports for the paper's figures.

The experiment harnesses return result objects; these helpers write the
exact series a plotting tool needs (gnuplot/matplotlib/pandas-ready
CSV), so regenerating the paper's images is a `plot` invocation away:

* Fig. 5/8 — histogram rows (bin center, count per configuration);
* Fig. 9/10 (top) — node x time grids, long format;
* Fig. 9 (bottom) — the 3-D torus snapshot (x, y, z, value);
* Fig. 12 — per-node memory series with job-window markers.
"""

from __future__ import annotations

import os

import numpy as np

from repro.util.stats import Histogram

__all__ = [
    "write_histograms",
    "write_node_time_grid",
    "write_torus_snapshot",
    "write_job_profile",
]


def _open(path: str):
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    return open(path, "w", encoding="utf-8")


def write_histograms(path: str, histograms: dict[str, Histogram]) -> int:
    """``bin_center_us,<label1>,<label2>,...`` rows; returns row count."""
    labels = list(histograms)
    base = histograms[labels[0]]
    for h in histograms.values():
        if h.counts.shape != base.counts.shape:
            raise ValueError("histograms must share binning")
    n = 0
    with _open(path) as f:
        f.write("bin_center_us," + ",".join(labels) + "\n")
        for i, c in enumerate(base.centers):
            counts = [int(histograms[k].counts[i]) for k in labels]
            if any(counts):
                f.write(f"{c:.3f}," + ",".join(map(str, counts)) + "\n")
                n += 1
    return n


def write_node_time_grid(
    path: str,
    times: np.ndarray,
    grid: np.ndarray,
    threshold: float = 1.0,
    value_name: str = "value",
) -> int:
    """Long-format ``time,node,value`` rows for (time, node) grids.

    Values under ``threshold`` are omitted — the paper's display rule,
    which also keeps full-machine exports to the interesting cells.
    """
    grid = np.asarray(grid)
    n = 0
    with _open(path) as f:
        f.write(f"time_s,node,{value_name}\n")
        ti, ni = np.nonzero(np.nan_to_num(grid, nan=0.0) >= threshold)
        for t_idx, n_idx in zip(ti, ni):
            f.write(f"{times[t_idx]:.1f},{n_idx},{grid[t_idx, n_idx]:.3f}\n")
            n += 1
    return n


def write_torus_snapshot(
    path: str,
    coords: np.ndarray,
    values: np.ndarray,
    threshold: float = 1.0,
) -> int:
    """``x,y,z,value`` rows for the Fig. 9-bottom 3-D mesh view."""
    n = 0
    with _open(path) as f:
        f.write("x,y,z,value\n")
        for (x, y, z), v in zip(coords, values):
            if v >= threshold:
                f.write(f"{x},{y},{z},{v:.3f}\n")
                n += 1
    return n


def write_job_profile(path: str, profile) -> int:
    """Fig. 12 data: per-node series plus job-window marker columns."""
    n = 0
    with _open(path) as f:
        f.write("time_s,node,value,in_job\n")
        for row, node in zip(profile.values, profile.node_indices):
            for t, v in zip(profile.times, row):
                if np.isnan(v):
                    continue
                in_job = int(profile.start_time <= t < profile.end_time)
                f.write(f"{t:.1f},{node},{v:.1f},{in_job}\n")
                n += 1
    return n
