"""End-to-end flow analysis: files -> summaries (cached) -> program ->
contracts + wire conformance -> suppression-filtered report.

This is the piece the CLI, CI, and tests call.  ``analyze`` works on
paths (with cache support); ``analyze_sources`` works on an in-memory
``{module: source}`` dict for fixtures and unit tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.flow.cache import SummaryStore, digest_source
from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.graph import Program
from repro.analysis.flow.report import FLOW_RULE_IDS, FlowReport, FlowViolation
from repro.analysis.flow.summary import SUMMARY_VERSION, ModuleSummary, extract_module
from repro.analysis.flow.wirecheck import check_wire
from repro.analysis.lint.engine import (
    Engine,
    path_to_module,
    scan_suppression_comments,
)
from repro.util.timeutil import perf_counter

_KNOWN_IDS = set(FLOW_RULE_IDS) | {"parse-error"}


def analyze(
    paths: Iterable[str | Path],
    config: FlowConfig | None = None,
    store: SummaryStore | None = None,
) -> FlowReport:
    """Run the whole-program pass over ``paths`` (files or directories)."""
    config = config or FlowConfig()
    t0 = perf_counter()
    files = Engine.iter_python_files(paths)
    summaries: dict[str, ModuleSummary] = {}
    sources: dict[str, tuple[str, str]] = {}
    parse_errors: list[FlowViolation] = []
    cache_hits = 0
    for f in files:
        source = f.read_text(encoding="utf-8")
        module = path_to_module(f, config.src_roots)
        sources[module] = (str(f), source)
        digest = digest_source(source, f"summary-v{SUMMARY_VERSION}")
        cached = store.get("flow-summary", str(f), digest) if store is not None else None
        if cached is not None:
            summaries[module] = ModuleSummary.from_obj(cached)
            cache_hits += 1
            continue
        try:
            summary = extract_module(source, module, str(f))
        except SyntaxError as exc:
            parse_errors.append(
                FlowViolation(
                    rule_id="parse-error",
                    path=str(f),
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        summaries[module] = summary
        if store is not None:
            store.put("flow-summary", str(f), digest, summary.to_obj())

    program = Program(summaries, config)
    program.build()
    program.propagate()
    violations = parse_errors + program.contract_violations()
    violations += check_wire(sources, config)

    report = FlowReport()
    _apply_suppressions(report, violations, sources)
    report.sort()
    elapsed = perf_counter() - t0
    report.stats = {
        "flow_modules_analyzed": len(summaries),
        "flow_cache_hits": cache_hits,
        "flow_cache_misses": len(summaries) - cache_hits,
        "elapsed_s": round(elapsed, 3),
        **program.stats,
        "rules": {
            rid: sum(1 for v in report.violations if v.rule_id == rid)
            for rid in sorted(FLOW_RULE_IDS)
        },
    }
    if store is not None:
        store.save()
    return report


def analyze_sources(
    sources: dict[str, str],
    config: FlowConfig | None = None,
) -> FlowReport:
    """Analyze in-memory modules (tests/fixtures); paths are synthetic."""
    config = config or FlowConfig()
    summaries: dict[str, ModuleSummary] = {}
    path_map: dict[str, tuple[str, str]] = {}
    parse_errors: list[FlowViolation] = []
    for module, source in sources.items():
        path = f"<{module}>"
        path_map[module] = (path, source)
        try:
            summaries[module] = extract_module(source, module, path)
        except SyntaxError as exc:
            parse_errors.append(
                FlowViolation(
                    rule_id="parse-error",
                    path=path,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
    program = Program(summaries, config)
    program.build()
    program.propagate()
    violations = parse_errors + program.contract_violations()
    violations += check_wire(path_map, config)
    report = FlowReport()
    _apply_suppressions(report, violations, path_map)
    report.sort()
    report.stats = {
        "flow_modules_analyzed": len(summaries),
        "flow_cache_hits": 0,
        "flow_cache_misses": len(summaries),
        **program.stats,
    }
    return report


def _apply_suppressions(
    report: FlowReport,
    violations: list[FlowViolation],
    sources: dict[str, tuple[str, str]],
) -> None:
    """Honor ``# reprolint: ignore[flow-...] -- why`` comments.

    Malformed comments are the lint engine's job to flag (it owns the
    ``suppression`` rule); here we only consume well-formed ones.
    """
    by_path: dict[str, dict[int, tuple[set[str], str]]] = {}
    for path, source in sources.values():
        suppressions, _problems = scan_suppression_comments(source, _KNOWN_IDS)
        if suppressions:
            by_path[path] = suppressions
    for v in violations:
        entry = by_path.get(v.path, {}).get(v.line)
        if entry is not None and v.rule_id in entry[0] and entry[1]:
            v.suppressed = True
            v.justification = entry[1]
        report.add(v)
