"""``repro-flow`` console script: the whole-program determinism gate.

Usage::

    repro-flow [paths...] [--format text|json|sarif]
               [--config pyproject.toml] [--no-cache] [--cache PATH]
               [--sarif-out FILE] [--json-out FILE]
               [--show-suppressed] [--list-rules]

Paths default to ``src``.  Configuration comes from
``[tool.reprolint.flow]``; suppressions reuse the reprolint comment
syntax (``# reprolint: ignore[flow-des-purity] -- why``).

Exit codes match ``repro-lint``: 0 clean, 1 violations, 2 usage/config
error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.flow.api import analyze
from repro.analysis.flow.cache import DEFAULT_STORE_PATH, SummaryStore
from repro.analysis.flow.config import FlowConfig, FlowConfigError
from repro.analysis.flow.report import EXIT_USAGE, FLOW_RULE_IDS
from repro.analysis.lint.engine import LintConfigError

__all__ = ["main"]


def _write_out(path: str, payload: str) -> None:
    from pathlib import Path

    p = Path(path)
    if p.parent and not p.parent.exists():
        p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(payload, encoding="utf-8")


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-flow",
        description=(
            "interprocedural effect/determinism analysis and wire-protocol "
            "conformance for the repro tree"
        ),
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to analyze (default: src)")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                   help="report format (default: text)")
    p.add_argument("--config", default="pyproject.toml",
                   help="pyproject.toml holding [tool.reprolint.flow] "
                        "(default: ./pyproject.toml)")
    p.add_argument("--cache", default=DEFAULT_STORE_PATH, metavar="PATH",
                   help=f"summary-store path (default: {DEFAULT_STORE_PATH})")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the per-module summary cache")
    p.add_argument("--sarif-out", default=None, metavar="FILE",
                   help="additionally write a SARIF report to FILE")
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="additionally write the JSON report to FILE")
    p.add_argument("--show-suppressed", action="store_true",
                   help="include suppressed violations in the text report")
    p.add_argument("--list-rules", action="store_true",
                   help="print the flow rule ids and exit")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, desc in FLOW_RULE_IDS.items():
            print(f"{rule_id:28s} {desc}")
        return 0
    try:
        config = FlowConfig.from_pyproject(args.config)
        store = None if args.no_cache else SummaryStore(args.cache)
        report = analyze(args.paths, config, store=store)
    except (FlowConfigError, LintConfigError) as exc:
        print(f"repro-flow: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.sarif_out:
        _write_out(args.sarif_out, report.render_sarif())
    if args.json_out:
        _write_out(args.json_out, report.render_json())
    if args.format == "json":
        sys.stdout.write(report.render_json())
    elif args.format == "sarif":
        sys.stdout.write(report.render_sarif())
    else:
        sys.stdout.write(
            report.render_text(show_suppressed=args.show_suppressed)
        )
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
