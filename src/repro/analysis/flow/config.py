"""Configuration for the flow analyzer (``[tool.reprolint.flow]``).

Lives under the ``reprolint`` table because the two tools share the
suppression syntax, exit codes, and src-roots mapping; ``repro-flow``
reads the ``flow`` sub-table, ``repro-lint`` ignores it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:  # py311+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]


DEFAULT_DES_PURE_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.cluster",
    "repro.faults",
)

DEFAULT_FORBIDDEN_EFFECTS = (
    "wall_clock",
    "ambient_rng",
    "unordered_iteration",
)

DEFAULT_BOUNDARY_MODULES = ("repro.util.timeutil",)

DEFAULT_ORDERED_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.cluster",
    "repro.faults",
    "repro.plugins",
    "repro.transport",
    "repro.experiments",
)

DEFAULT_WIRE_MODULES = ("repro.core.wire",)

DEFAULT_TRANSPORT_MODULES = (
    "repro.core.wire",
    "repro.transport.base",
    "repro.transport.sock",
    "repro.transport.simfabric",
    "repro.transport.local",
    "repro.core.ldmsd",
    "repro.core.aggregator",
)

DEFAULT_DISPATCH_ROOTS = (
    "repro.core.store.StorePlugin",
    "repro.core.sampler.SamplerPlugin",
    "repro.transport.base.Endpoint",
    "repro.transport.base.Transport",
)

# Shard-isolation contract: entry points of shard worker processes and
# the modules whose module-level mutable state is part of the shard
# plane itself.  Empty tuples leave the rule off.
DEFAULT_SHARD_ENTRY_POINTS: tuple[str, ...] = ()
DEFAULT_SHARD_ALLOWED_MODULES: tuple[str, ...] = ()


class FlowConfigError(ValueError):
    pass


def _str_list(table: dict[str, Any], key: str, default: tuple[str, ...]) -> tuple[str, ...]:
    value = table.pop(key, None)
    if value is None:
        return default
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise FlowConfigError(f"[tool.reprolint.flow] {key} must be a list of strings")
    return tuple(value)


@dataclass
class FlowConfig:
    src_roots: tuple[str, ...] = ("src",)
    des_pure_packages: tuple[str, ...] = DEFAULT_DES_PURE_PACKAGES
    forbidden_effects: tuple[str, ...] = DEFAULT_FORBIDDEN_EFFECTS
    boundary_modules: tuple[str, ...] = DEFAULT_BOUNDARY_MODULES
    ordered_packages: tuple[str, ...] = DEFAULT_ORDERED_PACKAGES
    wire_modules: tuple[str, ...] = DEFAULT_WIRE_MODULES
    transport_modules: tuple[str, ...] = DEFAULT_TRANSPORT_MODULES
    dispatch_roots: tuple[str, ...] = DEFAULT_DISPATCH_ROOTS
    shard_entry_points: tuple[str, ...] = DEFAULT_SHARD_ENTRY_POINTS
    shard_allowed_modules: tuple[str, ...] = DEFAULT_SHARD_ALLOWED_MODULES
    features_const: str = "BASE_FEATURES"
    msg_type_class: str = "MsgType"
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, path: str | Path) -> "FlowConfig":
        path = Path(path)
        if tomllib is None or not path.exists():
            return cls()
        with path.open("rb") as fh:
            data = tomllib.load(fh)
        lint_table = data.get("tool", {}).get("reprolint", {})
        src_roots = tuple(lint_table.get("src-roots", ("src",)))
        table = dict(lint_table.get("flow", {}))
        return cls.from_table(table, src_roots=src_roots)

    @classmethod
    def from_table(
        cls, table: dict[str, Any], src_roots: tuple[str, ...] = ("src",)
    ) -> "FlowConfig":
        table = dict(table)
        cfg = cls(
            src_roots=src_roots,
            des_pure_packages=_str_list(
                table, "des-pure-packages", DEFAULT_DES_PURE_PACKAGES
            ),
            forbidden_effects=_str_list(
                table, "forbidden-effects", DEFAULT_FORBIDDEN_EFFECTS
            ),
            boundary_modules=_str_list(
                table, "boundary-modules", DEFAULT_BOUNDARY_MODULES
            ),
            ordered_packages=_str_list(
                table, "ordered-packages", DEFAULT_ORDERED_PACKAGES
            ),
            wire_modules=_str_list(table, "wire-modules", DEFAULT_WIRE_MODULES),
            transport_modules=_str_list(
                table, "transport-modules", DEFAULT_TRANSPORT_MODULES
            ),
            dispatch_roots=_str_list(table, "dispatch-roots", DEFAULT_DISPATCH_ROOTS),
            shard_entry_points=_str_list(
                table, "shard-entry-points", DEFAULT_SHARD_ENTRY_POINTS
            ),
            shard_allowed_modules=_str_list(
                table, "shard-allowed-modules", DEFAULT_SHARD_ALLOWED_MODULES
            ),
        )
        features = table.pop("features-const", None)
        if features is not None:
            if not isinstance(features, str):
                raise FlowConfigError("[tool.reprolint.flow] features-const must be a string")
            cfg.features_const = features
        msg_cls = table.pop("msg-type-class", None)
        if msg_cls is not None:
            if not isinstance(msg_cls, str):
                raise FlowConfigError("[tool.reprolint.flow] msg-type-class must be a string")
            cfg.msg_type_class = msg_cls
        if table:
            unknown = ", ".join(sorted(table))
            raise FlowConfigError(f"unknown [tool.reprolint.flow] key(s): {unknown}")
        return cfg

    def digest(self) -> str:
        blob = json.dumps(
            {
                "des_pure": self.des_pure_packages,
                "forbidden": self.forbidden_effects,
                "boundary": self.boundary_modules,
                "ordered": self.ordered_packages,
                "wire": self.wire_modules,
                "transport": self.transport_modules,
                "roots": self.dispatch_roots,
                "shard_entry": self.shard_entry_points,
                "shard_allowed": self.shard_allowed_modules,
                "features": self.features_const,
                "msgcls": self.msg_type_class,
            },
            sort_keys=True,
            default=list,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def in_des_pure(self, module: str) -> bool:
        return any(module == p or module.startswith(p + ".") for p in self.des_pure_packages)

    def in_ordered(self, module: str) -> bool:
        return any(module == p or module.startswith(p + ".") for p in self.ordered_packages)

    def is_boundary(self, module: str) -> bool:
        return module in self.boundary_modules

    def in_shard_allowed(self, module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".")
            for p in self.shard_allowed_modules
        )
