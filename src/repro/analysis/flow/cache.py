"""Hash-keyed summary store shared by ``repro-flow`` and
``repro-lint --changed-only``.

One JSON file holds namespaced entries (``flow-summary`` for module
summaries, ``lint`` for replayable per-file lint results), each keyed
by file path and guarded by a content digest.  A warm run re-reads
sources only to hash them; every digest match replays the cached
payload instead of re-analyzing, which is what keeps the CI warm pass
in the single-digit-seconds budget the acceptance criteria demand.

Entries not touched during a run are pruned at save time (within the
namespaces that were actually consulted), so deleted/renamed files
don't accrete.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

STORE_VERSION = 1

DEFAULT_STORE_PATH = ".repro_flow_cache.json"


def digest_source(source: str, *extra: str) -> str:
    h = hashlib.sha256(source.encode("utf-8"))
    for part in extra:
        h.update(b"\x00")
        h.update(part.encode("utf-8"))
    return h.hexdigest()


class SummaryStore:
    """Single-file, namespace-partitioned, digest-guarded cache."""

    def __init__(self, path: str | Path = DEFAULT_STORE_PATH) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self._touched: set[str] = set()
        self._used_namespaces: set[str] = set()
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    @staticmethod
    def _key(namespace: str, key: str) -> str:
        return f"{namespace}\x00{key}"

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("store_version") != STORE_VERSION:
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            for key, entry in entries.items():
                if isinstance(entry, dict) and "digest" in entry and "payload" in entry:
                    self._entries[key] = entry

    def get(self, namespace: str, key: str, digest: str) -> Any | None:
        self._used_namespaces.add(namespace)
        full = self._key(namespace, key)
        entry = self._entries.get(full)
        if entry is not None and entry["digest"] == digest:
            self.hits += 1
            self._touched.add(full)
            return entry["payload"]
        self.misses += 1
        return None

    def put(self, namespace: str, key: str, digest: str, payload: Any) -> None:
        self._used_namespaces.add(namespace)
        full = self._key(namespace, key)
        entry = self._entries.get(full)
        if entry is not None and entry["digest"] == digest and entry["payload"] == payload:
            self._touched.add(full)
            return
        self._entries[full] = {"digest": digest, "payload": payload}
        self._touched.add(full)
        self._dirty = True

    def save(self) -> None:
        """Write the store, pruning untouched keys in used namespaces."""
        kept: dict[str, dict[str, Any]] = {}
        pruned = False
        for key, entry in self._entries.items():
            namespace = key.split("\x00", 1)[0]
            if namespace in self._used_namespaces and key not in self._touched:
                pruned = True
                continue
            kept[key] = entry
        if not self._dirty and not pruned and self.path.exists():
            return
        payload = {"store_version": STORE_VERSION, "entries": kept}
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, separators=(",", ":"), sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, self.path)
        except OSError:
            # cache is advisory: a read-only checkout must not fail the run
            try:
                tmp.unlink()
            except OSError:
                pass

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}
