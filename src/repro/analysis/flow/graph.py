"""Call-graph construction, effect propagation, and determinism contracts.

Takes the per-module :class:`ModuleSummary` set (possibly replayed from
the hash-keyed cache) and builds the whole-program view:

* **symbol resolution** — dotted names resolved against the module
  table, following package ``__init__`` re-export chains;
* **virtual dispatch** — ``self.m()`` resolved through the MRO plus all
  subclass overrides (class-hierarchy analysis), ``self.attr.m()`` and
  annotated locals/params through inferred attribute/parameter types;
* **registry dispatch** — ``getattr(self, f"_cmd_{verb}")``-style
  f-string dispatch fans out to every matching method, and calls on
  unresolvable receivers whose method name belongs to a configured
  *dispatch root* (``StorePlugin``, ``SamplerPlugin``, ``Endpoint``,
  ``Transport``) fan out to the root and its overrides — this is what
  carries a store plugin's effects up into ``repro.core``;
* **effect propagation** — a worklist fixed-point over reverse edges,
  with per-(function, effect) provenance so violations carry the full
  call chain down to the intrinsic source;
* **contracts** — DES-purity (transitive, frontier-reported), clock
  boundary, and unordered-iteration checks.

Boundary modules (``repro.util.timeutil``) are effect-stripped: they
*are* the sanctioned crossing between simulated and host time, so
nothing propagates out of them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.flow.catalog import PROPAGATED_EFFECTS, effect_of
from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.report import ChainFrame, FlowViolation
from repro.analysis.flow.summary import (
    MODULE_BODY,
    EffectSite,
    FunctionInfo,
    ModuleSummary,
)

_MAX_RESOLVE_DEPTH = 8

# provenance: ("site", line, detail) | ("call", line, callee_fq)
Provenance = tuple[str, int, str]


@dataclass
class _Node:
    fq: str
    module: str
    info: FunctionInfo
    intrinsics: list[EffectSite] = field(default_factory=list)


class Program:
    """The resolved whole-program view over a set of module summaries."""

    def __init__(self, summaries: dict[str, ModuleSummary], config: FlowConfig) -> None:
        self.summaries = summaries
        self.config = config
        self.nodes: dict[str, _Node] = {}
        self.classes: dict[str, ModuleSummary] = {}
        self._class_info: dict[str, tuple[str, str]] = {}  # cls_fq -> (module, local name)
        self._children: dict[str, set[str]] = {}
        self._method_defs: dict[tuple[str, str], str] = {}  # (cls_fq, method) -> fn_fq
        self.edges: dict[str, dict[str, int]] = {}  # caller -> callee -> first line
        self.effects: dict[str, dict[str, Provenance]] = {}
        self._root_methods: dict[str, list[str]] = {}  # method name -> [cls_fq]
        self.stats: dict[str, int] = {}

    # ------------------------------------------------------------------
    # indexing

    def build(self) -> None:
        for module, summary in self.summaries.items():
            for local_name, info in summary.functions.items():
                fq = f"{module}.{local_name}"
                self.nodes[fq] = _Node(fq=fq, module=module, info=info)
            for cname, cinfo in summary.classes.items():
                cls_fq = f"{module}.{cname}"
                self._class_info[cls_fq] = (module, cname)
                for m in cinfo.methods:
                    self._method_defs[(cls_fq, m)] = f"{module}.{cname}.{m}"
        for cls_fq in self._class_info:
            for base_fq in self._resolved_bases(cls_fq):
                self._children.setdefault(base_fq, set()).add(cls_fq)
        for root in self.config.dispatch_roots:
            cinfo = self._cinfo(root)
            if cinfo is None:
                continue
            for m in cinfo.methods:
                self._root_methods.setdefault(m, []).append(root)
        for fq, node in self.nodes.items():
            self._build_edges(node)
        self.stats["flow_functions"] = len(self.nodes)
        self.stats["flow_edges"] = sum(len(v) for v in self.edges.values())
        self.stats["flow_classes"] = len(self._class_info)

    def _cinfo(self, cls_fq: str):
        entry = self._class_info.get(cls_fq)
        if entry is None:
            return None
        module, cname = entry
        return self.summaries[module].classes[cname]

    def _resolved_bases(self, cls_fq: str) -> list[str]:
        cinfo = self._cinfo(cls_fq)
        if cinfo is None:
            return []
        module = self._class_info[cls_fq][0]
        out: list[str] = []
        for base in cinfo.bases:
            resolved = self._resolve_type(module, base)
            if resolved is not None:
                out.append(resolved)
        return out

    def _mro(self, cls_fq: str) -> list[str]:
        """Linearized-enough base walk (BFS, cycle-guarded)."""
        seen: list[str] = []
        queue = deque([cls_fq])
        visited = {cls_fq}
        while queue:
            cur = queue.popleft()
            seen.append(cur)
            for base in self._resolved_bases(cur):
                if base not in visited:
                    visited.add(base)
                    queue.append(base)
        return seen

    def _descendants(self, cls_fq: str) -> set[str]:
        out: set[str] = set()
        queue = deque([cls_fq])
        while queue:
            cur = queue.popleft()
            for child in self._children.get(cur, ()):
                if child not in out:
                    out.add(child)
                    queue.append(child)
        return out

    def _find_method(self, cls_fq: str, method: str) -> str | None:
        for cls in self._mro(cls_fq):
            fn = self._method_defs.get((cls, method))
            if fn is not None:
                return fn
        return None

    def _attr_type(self, cls_fq: str, attr: str) -> str | None:
        for cls in self._mro(cls_fq):
            cinfo = self._cinfo(cls)
            if cinfo is not None and attr in cinfo.attr_types:
                t = cinfo.attr_types[attr]
                module = self._class_info[cls][0]
                return self._resolve_type(module, t)
        return None

    def _resolve_type(self, module: str, type_name: str) -> str | None:
        """Resolve a summary type string to a known class fq (or None)."""
        if type_name.startswith("builtins."):
            return None
        if type_name.startswith("self."):
            return None  # resolved by callers that know the class
        hit = self._resolve_symbol(type_name)
        if hit is not None and hit[0] == "class":
            return hit[1]
        if "." not in type_name:
            local = f"{module}.{type_name}"
            if local in self._class_info:
                return local
        return None

    def _resolve_symbol(self, dotted: str, depth: int = 0) -> tuple[str, str] | None:
        """Resolve a dotted name to ("function"|"class"|"method", fq)."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            module = ".".join(parts[:i])
            summary = self.summaries.get(module)
            if summary is None:
                continue
            rest = parts[i:]
            if not rest:
                return None
            name = rest[0]
            if len(rest) == 1:
                if name in summary.functions:
                    return ("function", f"{module}.{name}")
                if name in summary.classes:
                    return ("class", f"{module}.{name}")
            elif len(rest) == 2 and rest[0] in summary.classes:
                hit = self._find_method(f"{module}.{rest[0]}", rest[1])
                if hit is not None:
                    return ("method", hit)
            if name in summary.imports:
                target = summary.imports[name]
                if len(rest) > 1:
                    target = f"{target}.{'.'.join(rest[1:])}"
                return self._resolve_symbol(target, depth + 1)
            return None
        return None

    # ------------------------------------------------------------------
    # edges

    def _add_edge(self, caller: str, callee: str, line: int) -> None:
        if callee == caller:
            return
        self.edges.setdefault(caller, {}).setdefault(callee, line)

    def _virtual_targets(self, cls_fq: str, method: str) -> list[str]:
        targets: list[str] = []
        base_hit = self._find_method(cls_fq, method)
        if base_hit is not None:
            targets.append(base_hit)
        for sub in sorted(self._descendants(cls_fq)):
            own = self._method_defs.get((sub, method))
            if own is not None:
                targets.append(own)
        return targets

    def _build_edges(self, node: _Node) -> None:
        info = node.info
        module = node.module
        cls_fq = f"{module}.{info.cls}" if info.cls else None
        cinfo = self._cinfo(cls_fq) if cls_fq else None
        if cinfo is not None:
            bare = info.name.split(".")[-1]
            for method, prefix in cinfo.prefix_dispatch:
                if method != bare:
                    continue
                for (owner, m), fn_fq in self._method_defs.items():
                    if m.startswith(prefix) and (
                        owner == cls_fq or owner in self._descendants(cls_fq or "")
                    ):
                        self._add_edge(node.fq, fn_fq, info.line)

        for site in info.calls:
            targets = self._resolve_call_site(node, cls_fq, site.name)
            if targets:
                for t in targets:
                    self._add_edge(node.fq, t, site.line)
            elif not site.is_ref:
                eff = effect_of(site.name)
                if eff is not None:
                    if eff == "unordered_iteration" and site.sanctioned:
                        continue
                    node.intrinsics.append(
                        EffectSite(eff, site.line, f"calls {site.name}()")
                    )
            else:
                eff = effect_of(site.name)
                if eff is not None and eff != "unordered_iteration":
                    node.intrinsics.append(
                        EffectSite(eff, site.line, f"passes {site.name} as a callback")
                    )

    def _resolve_call_site(
        self, node: _Node, cls_fq: str | None, name: str
    ) -> list[str]:
        parts = name.split(".")
        head = parts[0]
        if head in ("self", "cls") and cls_fq is not None:
            if len(parts) == 2:
                return self._virtual_targets(cls_fq, parts[1])
            if len(parts) >= 3:
                attr_t = self._attr_type(cls_fq, parts[1])
                if attr_t is not None and len(parts) == 3:
                    return self._virtual_targets(attr_t, parts[2])
                return []
            return []
        if head == "super" and cls_fq is not None and len(parts) == 2:
            for base in self._resolved_bases(cls_fq):
                hit = self._find_method(base, parts[1])
                if hit is not None:
                    return [hit]
            return []
        local_t = node.info.local_types.get(head)
        if local_t is not None:
            resolved_t: str | None
            if local_t.startswith("self.") and cls_fq is not None:
                resolved_t = self._attr_type(cls_fq, local_t.split(".")[1])
            else:
                resolved_t = self._resolve_type(node.module, local_t)
            if resolved_t is not None and len(parts) == 2:
                return self._virtual_targets(resolved_t, parts[1])
            if resolved_t is not None and len(parts) == 1:
                # calling a typed local — it's a value, not a function
                return []
            if local_t.startswith("builtins."):
                return []
        hit = self._resolve_symbol(name)
        if hit is not None:
            kind, fq = hit
            if kind == "function" or kind == "method":
                return [fq]
            if kind == "class":
                init = self._find_method(fq, "__init__")
                return [init] if init is not None else []
        # unresolved receiver: interface dispatch through configured roots
        if len(parts) == 2 and parts[1] in self._root_methods:
            out: list[str] = []
            for root in self._root_methods[parts[1]]:
                out.extend(self._virtual_targets(root, parts[1]))
            return out
        return []

    # ------------------------------------------------------------------
    # propagation

    def propagate(self) -> None:
        reverse: dict[str, list[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse.setdefault(callee, []).append(caller)

        worklist: deque[str] = deque()
        for fq, node in self.nodes.items():
            if self.config.is_boundary(node.module):
                self.effects[fq] = {}
                continue
            table: dict[str, Provenance] = {}
            for site in list(node.info.effects) + node.intrinsics:
                if site.effect not in table:
                    table[site.effect] = ("site", site.line, site.detail)
            self.effects[fq] = table
            if table:
                worklist.append(fq)

        while worklist:
            callee = worklist.popleft()
            callee_effects = self.effects.get(callee, {})
            for caller in reverse.get(callee, ()):
                caller_node = self.nodes.get(caller)
                if caller_node is None or self.config.is_boundary(caller_node.module):
                    continue
                table = self.effects.setdefault(caller, {})
                changed = False
                line = self.edges[caller][callee]
                for eff in callee_effects:
                    if eff in PROPAGATED_EFFECTS and eff not in table:
                        table[eff] = ("call", line, callee)
                        changed = True
                if changed:
                    worklist.append(caller)

    def chain(self, fq: str, effect: str) -> list[ChainFrame]:
        """Reconstruct the provenance chain from ``fq`` to the source."""
        frames: list[ChainFrame] = []
        cur = fq
        seen: set[str] = set()
        while cur not in seen:
            seen.add(cur)
            node = self.nodes.get(cur)
            prov = self.effects.get(cur, {}).get(effect)
            if node is None or prov is None:
                break
            kind, line, detail = prov
            func = _display_name(node)
            if kind == "site":
                frames.append(
                    ChainFrame(self.summaries[node.module].path, line, func, detail)
                )
                break
            callee_node = self.nodes.get(detail)
            callee_name = _display_name(callee_node) if callee_node else detail
            frames.append(
                ChainFrame(
                    self.summaries[node.module].path, line, func, f"calls {callee_name}"
                )
            )
            cur = detail
        return frames

    # ------------------------------------------------------------------
    # contracts

    def _in_scope(self, module: str) -> bool:
        return self.config.in_des_pure(module) and not self.config.is_boundary(module)

    def contract_violations(self) -> list[FlowViolation]:
        out: list[FlowViolation] = []
        forbidden = set(self.config.forbidden_effects)
        for fq in sorted(self.nodes):
            node = self.nodes[fq]
            path = self.summaries[node.module].path
            in_des = self._in_scope(node.module)
            intrinsics = list(node.info.effects) + node.intrinsics

            if in_des:
                out.extend(self._des_purity_for(fq, node, path, forbidden, intrinsics))
            else:
                if not self.config.is_boundary(node.module):
                    for site in intrinsics:
                        if site.effect == "wall_clock" and site.detail.startswith(
                            ("calls ", "passes ")
                        ):
                            out.append(
                                FlowViolation(
                                    rule_id="flow-clock-boundary",
                                    path=path,
                                    line=site.line,
                                    col=0,
                                    message=(
                                        f"{_display_name(node)} {site.detail}; wall-clock "
                                        f"reads must route through "
                                        + (
                                            ", ".join(self.config.boundary_modules)
                                            or "a configured boundary module"
                                        )
                                    ),
                                )
                            )
                if self.config.in_ordered(node.module):
                    for site in intrinsics:
                        if site.effect == "unordered_iteration":
                            out.append(
                                FlowViolation(
                                    rule_id="flow-unordered-iteration",
                                    path=path,
                                    line=site.line,
                                    col=0,
                                    message=f"{_display_name(node)} {site.detail}",
                                )
                            )
        out.extend(self.shard_isolation_violations())
        return out

    def shard_isolation_violations(self) -> list[FlowViolation]:
        """The shard-isolation contract: nothing reachable from a shard
        worker entry point may mutate module-level state outside the
        shard-allowed modules.

        Shard workers are forked; every module-level object they inherit
        is a private copy, so a mutation of one that is *not* part of
        the shard plane itself is a latent divergence — single-process
        runs see the accumulated state, sharded runs see per-process
        copies, and the byte-identity gate breaks in ways that only
        reproduce under ``REPRO_SHARDS``.  Reported with the call chain
        from the entry point down to the mutation site.
        """
        out: list[FlowViolation] = []
        flagged: set[tuple[str, int]] = set()
        for entry in self.config.shard_entry_points:
            fq = entry if entry in self.nodes else None
            if fq is None:
                hit = self._resolve_symbol(entry)
                if hit is not None and hit[0] in ("function", "method"):
                    fq = hit[1]
            if fq is None:
                continue
            parents: dict[str, tuple[str, int] | None] = {fq: None}
            queue = deque([fq])
            while queue:
                cur = queue.popleft()
                node = self.nodes[cur]
                if not self.config.in_shard_allowed(node.module):
                    for site in list(node.info.effects) + node.intrinsics:
                        if site.effect != "global_mutation":
                            continue
                        if (cur, site.line) in flagged:
                            continue
                        flagged.add((cur, site.line))
                        path = self.summaries[node.module].path
                        out.append(
                            FlowViolation(
                                rule_id="flow-shard-isolation",
                                path=path,
                                line=site.line,
                                col=0,
                                message=(
                                    f"{_display_name(node)} is reachable from "
                                    f"shard entry point {entry} and mutates "
                                    f"module-level state outside the "
                                    f"shard-allowed modules"
                                ),
                                chain=self._shard_chain(parents, cur, site),
                            )
                        )
                for callee in sorted(self.edges.get(cur, {})):
                    if callee in parents or callee not in self.nodes:
                        continue
                    parents[callee] = (cur, self.edges[cur][callee])
                    queue.append(callee)
        return out

    def _shard_chain(
        self,
        parents: dict[str, tuple[str, int] | None],
        fq: str,
        site: EffectSite,
    ) -> list[ChainFrame]:
        """Entry-point-to-mutation-site frames from the BFS parent map."""
        order = [fq]
        cur = fq
        while parents.get(cur) is not None:
            cur = parents[cur][0]  # type: ignore[index]
            order.append(cur)
        order.reverse()  # entry point first
        frames: list[ChainFrame] = []
        for a, b in zip(order, order[1:]):
            a_node = self.nodes[a]
            frames.append(
                ChainFrame(
                    self.summaries[a_node.module].path,
                    parents[b][1],  # type: ignore[index]
                    _display_name(a_node),
                    f"calls {_display_name(self.nodes[b])}",
                )
            )
        node = self.nodes[fq]
        frames.append(
            ChainFrame(
                self.summaries[node.module].path,
                site.line,
                _display_name(node),
                site.detail,
            )
        )
        return frames

    def _des_purity_for(
        self,
        fq: str,
        node: _Node,
        path: str,
        forbidden: set[str],
        intrinsics: list[EffectSite],
    ) -> list[FlowViolation]:
        """Frontier-only reporting: flag ``fq`` only for effect
        contributions that *enter* DES-pure scope here — either an
        intrinsic site in this body, or a call edge whose callee is
        outside the scope.  Purely-inherited effects from in-scope
        callees are reported at the deeper frontier instead, so a dirty
        leaf produces one traced violation, not one per caller."""
        out: list[FlowViolation] = []
        my_effects = self.effects.get(fq, {})
        for eff in sorted(forbidden & set(my_effects)):
            contributions: list[tuple[int, list[ChainFrame]]] = []
            for site in intrinsics:
                if site.effect == eff:
                    contributions.append(
                        (site.line, [ChainFrame(path, site.line, _display_name(node), site.detail)])
                    )
            for callee, line in self.edges.get(fq, {}).items():
                callee_node = self.nodes.get(callee)
                if callee_node is None:
                    continue
                if eff not in self.effects.get(callee, {}):
                    continue
                if self._in_scope(callee_node.module):
                    continue  # the in-scope callee is its own frontier
                chain = [
                    ChainFrame(
                        path, line, _display_name(node), f"calls {_display_name(callee_node)}"
                    )
                ] + self.chain(callee, eff)
                contributions.append((line, chain))
            if not contributions:
                continue  # inherited via in-scope callees; reported deeper
            line, chain = min(contributions, key=lambda c: c[0])
            pkg = next(
                p
                for p in self.config.des_pure_packages
                if node.module == p or node.module.startswith(p + ".")
            )
            out.append(
                FlowViolation(
                    rule_id="flow-des-purity",
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        f"{_display_name(node)} (in DES-pure package {pkg}) "
                        f"transitively reaches forbidden effect '{eff}'"
                    ),
                    chain=chain,
                )
            )
        return out


def _display_name(node: _Node | None) -> str:
    if node is None:
        return "?"
    if node.info.name == MODULE_BODY:
        return f"{node.module} (module body)"
    return f"{node.module}.{node.info.name}"


def build_program(
    summaries: Iterable[ModuleSummary], config: FlowConfig
) -> Program:
    table = {s.module: s for s in summaries}
    program = Program(table, config)
    program.build()
    program.propagate()
    return program
