"""Seed catalog: which stdlib/numpy callables introduce which effects.

The effect lattice is a flat powerset over six atoms.  Catalog entries
are the *sources*; everything else is inferred transitively through the
call graph by :mod:`repro.analysis.flow.graph`.

Effect atoms
------------
``wall_clock``
    Reads the host clock (``time.time``, ``datetime.now``, ...).  Any
    transitive reach from DES-pure code breaks same-seed replay because
    the value differs between runs.
``ambient_rng``
    Draws entropy from process-global or OS state (``random.*``,
    ``numpy.random`` module-level singleton, ``os.urandom``,
    ``uuid.uuid4``).  Explicit ``Generator`` objects threaded through
    :mod:`repro.util.rngtools` are *not* ambient and never match here.
``unordered_iteration``
    Iterates a hash-ordered container (``set``/``frozenset``) or an
    OS-ordered listing (``os.listdir`` et al.) in a way that feeds
    ordering downstream.  Hash order varies with ``PYTHONHASHSEED``;
    directory order varies with the filesystem.
``blocking_io``
    Touches the outside world (files, sockets, subprocesses, sleeping).
    Informational for DES-purity (stores legitimately write files) but
    propagated so reports can show the reach.
``global_mutation``
    Mutates module-level state (``global`` rebinding, writes through a
    module-level name such as a plugin registry).
``allocates``
    Builds containers/strings; intrinsic-only (never propagated) — it
    exists for hot-path auditing, not contracts.
"""

from __future__ import annotations

EFFECTS: tuple[str, ...] = (
    "wall_clock",
    "ambient_rng",
    "unordered_iteration",
    "global_mutation",
    "blocking_io",
    "allocates",
)

# Effects that flow caller-ward through call edges.  ``allocates`` is
# deliberately intrinsic-only: transitively almost everything allocates,
# so propagating it would say nothing.
PROPAGATED_EFFECTS: frozenset[str] = frozenset(EFFECTS) - {"allocates"}

# Wrapping one of these around an unordered source makes the use
# order-independent: ``sorted(s)`` canonicalizes, the others reduce
# without observing order.
ORDER_INDEPENDENT_CONSUMERS: frozenset[str] = frozenset(
    {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "time.localtime",
        "time.gmtime",
        "time.asctime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_AMBIENT_RNG = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

# numpy.random module-level singleton draws (ambient); explicit
# Generator construction (default_rng/SeedSequence/Generator) is the
# sanctioned seeded path and is NOT listed.
_NP_RANDOM_AMBIENT = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "exponential",
        "binomial",
        "bytes",
        "get_state",
        "set_state",
    }
)

_BLOCKING_IO = frozenset(
    {
        "open",
        "input",
        "breakpoint",
        "time.sleep",
        "os.system",
        "os.popen",
        "os.fork",
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "select.select",
        "selectors.DefaultSelector",
    }
)

# Hash/OS-ordered sources: iterating their result without sorting is an
# unordered-iteration hazard at the call site itself.
_UNORDERED_SOURCES = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "os.walk",
        "glob.glob",
        "glob.iglob",
    }
)

# (prefix, effect) — matched when no exact entry applies.
_PREFIXES: tuple[tuple[str, str], ...] = (
    ("random.", "ambient_rng"),
    ("secrets.", "ambient_rng"),
    ("subprocess.", "blocking_io"),
    ("urllib.request.", "blocking_io"),
    ("requests.", "blocking_io"),
    ("http.client.", "blocking_io"),
)


def effect_of(dotted: str) -> str | None:
    """Return the effect a fully-expanded dotted callable introduces.

    ``dotted`` must already have import aliases expanded (``np.random.x``
    arriving as ``numpy.random.x``).  Returns ``None`` for unknown
    names — unknown is clean, the transitive pass covers project code.
    """
    if dotted in _WALL_CLOCK:
        return "wall_clock"
    if dotted in _AMBIENT_RNG:
        return "ambient_rng"
    if dotted in _UNORDERED_SOURCES:
        return "unordered_iteration"
    if dotted in _BLOCKING_IO:
        return "blocking_io"
    if dotted.startswith("numpy.random."):
        tail = dotted[len("numpy.random.") :]
        if tail in _NP_RANDOM_AMBIENT:
            return "ambient_rng"
        return None
    for prefix, effect in _PREFIXES:
        if dotted.startswith(prefix):
            return effect
    return None
