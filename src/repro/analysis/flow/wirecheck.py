"""Wire-protocol conformance: encoder/decoder symmetry as a lint error.

PR 7 made the wire format version-dependent (HELLO feature negotiation,
TRACE_FLAG piggybacked on the msg-type byte), which is exactly when
protocol drift stops being caught by construction.  This pass
cross-checks, purely statically:

* **pack/unpack pairs** — for every ``pack_X``/``unpack_X`` pair in the
  wire module(s), the flattened struct format streams must agree
  (byte order, field codes, widths, loop-repeated groups, and
  variable-count ``f"<{n}Q"`` segments);
* **slice offsets** — a decoder that reads a fixed header format and
  then slices the payload at a literal offset must slice at exactly
  ``calcsize(header)``;
* **flag/mask hygiene** — ``*_FLAG`` constants must live outside the
  ``*_MASK`` bits, and every ``MsgType`` value must survive the mask
  round-trip (and be unique);
* **MsgType coverage** — every message type must be producible (a
  ``pack_*`` helper or an ``encode_frame(MsgType.X, ...)`` site) and
  consumable (an ``unpack_*`` helper or a dispatch comparison) across
  the participant modules, with ``_REQ``/``_REPLY`` pairing intact;
* **HELLO symmetry** — every feature string gated on at consumption
  (``"trace-ctx" in peer_features``) must be advertised in the
  ``BASE_FEATURES`` constant, and vice versa (warning).

Violations carry a frame-layout trace (both sides' formats and where
they were read) in the chain, mirroring the call-chain traces of the
effect pass.
"""

from __future__ import annotations

import ast
import struct
from dataclasses import dataclass, field

from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.report import ChainFrame, FlowViolation

_VAR_MARKER = "\x01"

# A stream element is either ("code", count_str) for a scalar field or
# ("loop", inner_tuple) for a group packed/unpacked once per entry.
StreamItem = tuple[str, object]


@dataclass
class _FmtEvent:
    fmt: str  # skeleton with _VAR_MARKER for f-string holes
    order: str
    line: int
    repeated: bool
    fixed_size: int | None  # calcsize when fully static, else None


@dataclass
class _WireFacts:
    module: str
    path: str
    msg_types: dict[str, int] = field(default_factory=dict)
    msg_type_lines: dict[str, int] = field(default_factory=dict)
    flags: dict[str, int] = field(default_factory=dict)
    masks: dict[str, int] = field(default_factory=dict)
    pack_fns: dict[str, tuple[int, list[_FmtEvent]]] = field(default_factory=dict)
    unpack_fns: dict[str, tuple[int, list[_FmtEvent]]] = field(default_factory=dict)
    unpack_slices: dict[str, list[tuple[int, int]]] = field(default_factory=dict)


@dataclass
class _ParticipantFacts:
    module: str
    path: str
    encode_sites: dict[str, int] = field(default_factory=dict)  # msgtype -> line
    compare_sites: dict[str, int] = field(default_factory=dict)
    advertised: dict[str, int] = field(default_factory=dict)  # feature -> line
    consumed: dict[str, int] = field(default_factory=dict)


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return None
    return ".".join(reversed(parts))


def _fmt_skeleton(node: ast.expr, str_consts: dict[str, str]) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(_VAR_MARKER)
        return "".join(parts)
    if isinstance(node, ast.Name):
        return str_consts.get(node.id)
    return None


def _parse_stream(skeleton: str) -> tuple[str, tuple[StreamItem, ...]] | None:
    """Parse a (possibly marker-holed) struct format into a token stream."""
    order = "@"
    body = skeleton
    if body and body[0] in "@=<>!":
        order = body[0]
        body = body[1:]
    items: list[StreamItem] = []
    count: int | None = None
    pending_var = False
    for ch in body:
        if ch == _VAR_MARKER:
            pending_var = True
            count = None
            continue
        if ch.isdigit():
            count = (count or 0) * 10 + int(ch)
            continue
        if ch in " \t":
            continue
        if ch not in "xcbB?hHiIlLqQnNefdspP":
            return None
        if pending_var:
            items.append(("var", ch))
            pending_var = False
        elif ch in "sp":
            items.append((f"{count or 1}{ch}", "bytes"))
        else:
            items.extend([(ch, "1")] * min(count or 1, 256))
        count = None
    return order, tuple(items)


def _flatten(events: list[_FmtEvent]) -> tuple[set[str], tuple[StreamItem, ...]] | None:
    orders: set[str] = set()
    stream: list[StreamItem] = []
    for event in events:
        parsed = _parse_stream(event.fmt)
        if parsed is None:
            return None
        order, items = parsed
        orders.add(order)
        if event.repeated:
            group: StreamItem = ("loop", items)
            if stream and stream[-1] == group:
                continue  # if/else branches packing the same entry layout
            stream.append(group)
        else:
            stream.extend(items)
    return orders, tuple(stream)


def _stream_text(stream: tuple[StreamItem, ...]) -> str:
    parts: list[str] = []
    for kind, payload in stream:
        if kind == "loop":
            inner = _stream_text(payload)  # type: ignore[arg-type]
            parts.append(f"loop[{inner}]")
        elif kind == "var":
            parts.append(f"{{n}}{payload}")
        else:
            parts.append(kind)
    return " ".join(parts)


class _WireVisitor(ast.NodeVisitor):
    def __init__(self, facts: _WireFacts, config: FlowConfig) -> None:
        self.facts = facts
        self.config = config
        self.str_consts: dict[str, str] = {}
        self.struct_consts: set[str] = set()

    def collect(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                name = stmt.targets[0].id
                value = stmt.value
                if isinstance(value, ast.Constant):
                    if isinstance(value.value, str):
                        self.str_consts[name] = value.value
                    elif isinstance(value.value, int):
                        if name.endswith("_FLAG"):
                            self.facts.flags[name] = value.value
                        elif name.endswith("_MASK"):
                            self.facts.masks[name] = value.value
                elif isinstance(value, ast.Call):
                    callee = _dotted(value.func)
                    if callee in ("struct.Struct", "Struct") and value.args:
                        fmt = _fmt_skeleton(value.args[0], self.str_consts)
                        if fmt is not None:
                            self.str_consts[name] = fmt
                            self.struct_consts.add(name)
            elif isinstance(stmt, ast.ClassDef) and stmt.name == self.config.msg_type_class:
                for cstmt in stmt.body:
                    if isinstance(cstmt, ast.Assign) and len(cstmt.targets) == 1 and isinstance(
                        cstmt.targets[0], ast.Name
                    ) and isinstance(cstmt.value, ast.Constant) and isinstance(
                        cstmt.value.value, int
                    ):
                        self.facts.msg_types[cstmt.targets[0].id] = cstmt.value.value
                        self.facts.msg_type_lines[cstmt.targets[0].id] = cstmt.lineno
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(stmt)

    def _collect_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        events: list[_FmtEvent] = []
        first_param = fn.args.args[0].arg if fn.args.args else None
        slices: list[tuple[int, int]] = []

        def walk(node: ast.AST, loop_depth: int) -> None:
            bump = int(
                isinstance(
                    node,
                    (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                )
            )
            if isinstance(node, ast.Call):
                self._note_event(node, events, loop_depth > 0)
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Slice)
                and isinstance(node.slice.lower, ast.Constant)
                and isinstance(node.slice.lower.value, int)
                and node.slice.lower.value > 0
                and isinstance(node.value, ast.Name)
                and node.value.id == first_param
            ):
                slices.append((node.lineno, node.slice.lower.value))
            for child in ast.iter_child_nodes(node):
                walk(child, loop_depth + bump)

        walk(fn, 0)
        if fn.name.startswith("pack_"):
            self.facts.pack_fns[fn.name[5:]] = (fn.lineno, events)
        elif fn.name.startswith("unpack_"):
            self.facts.unpack_fns[fn.name[7:]] = (fn.lineno, events)
            if slices:
                self.facts.unpack_slices[fn.name[7:]] = slices

    def _note_event(self, node: ast.Call, events: list[_FmtEvent], repeated: bool) -> None:
        callee = _dotted(node.func)
        if callee is None:
            return
        fmt_node: ast.expr | None = None
        if callee in ("struct.pack", "struct.pack_into", "struct.unpack", "struct.unpack_from"):
            if node.args:
                fmt_node = node.args[0]
        else:
            head, _, method = callee.rpartition(".")
            if method in ("pack", "pack_into", "unpack", "unpack_from") and head in self.struct_consts:
                fmt = self.str_consts[head]
                events.append(self._event(fmt, node.lineno, repeated))
                return
        if fmt_node is None:
            return
        fmt = _fmt_skeleton(fmt_node, self.str_consts)
        if fmt is None:
            return
        events.append(self._event(fmt, node.lineno, repeated))

    @staticmethod
    def _event(fmt: str, line: int, repeated: bool) -> _FmtEvent:
        order = fmt[0] if fmt and fmt[0] in "@=<>!" else "@"
        fixed_size: int | None = None
        if _VAR_MARKER not in fmt:
            try:
                fixed_size = struct.calcsize(fmt)
            except struct.error:
                fixed_size = None
        return _FmtEvent(fmt=fmt, order=order, line=line, repeated=repeated, fixed_size=fixed_size)


class _ParticipantVisitor(ast.NodeVisitor):
    def __init__(self, facts: _ParticipantFacts, config: FlowConfig) -> None:
        self.facts = facts
        self.config = config

    def collect(self, tree: ast.Module) -> None:
        marker = f"{self.config.msg_type_class}."
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ) and stmt.targets[0].id == self.config.features_const:
                for node in ast.walk(stmt.value):
                    if isinstance(node, ast.Constant) and isinstance(node.value, str):
                        self.facts.advertised.setdefault(node.value, stmt.lineno)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = _dotted(node.func)
                if callee is not None and callee.split(".")[-1] == "encode_frame" and node.args:
                    target = _dotted(node.args[0])
                    if target is not None and marker in target:
                        name = target.rsplit(".", 1)[-1]
                        self.facts.encode_sites.setdefault(name, node.lineno)
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                for side in sides:
                    target = _dotted(side)
                    if target is not None and marker in target:
                        name = target.rsplit(".", 1)[-1]
                        self.facts.compare_sites.setdefault(name, node.lineno)
                if (
                    len(node.ops) == 1
                    and isinstance(node.ops[0], (ast.In, ast.NotIn))
                    and isinstance(node.left, ast.Constant)
                    and isinstance(node.left.value, str)
                ):
                    container = _dotted(node.comparators[0])
                    if container is not None and "feature" in container.lower():
                        self.facts.consumed.setdefault(node.left.value, node.lineno)


def check_wire(
    sources: dict[str, tuple[str, str]], config: FlowConfig
) -> list[FlowViolation]:
    """Run the conformance pass.

    ``sources`` maps module name -> (path, source) and should contain
    at least the configured wire module(s); participant modules that
    are absent (e.g. a partial-tree run) are skipped silently.
    """
    out: list[FlowViolation] = []
    wire_facts: list[_WireFacts] = []
    participants: list[_ParticipantFacts] = []

    for module in config.wire_modules:
        entry = sources.get(module)
        if entry is None:
            continue
        path, source = entry
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # surfaced as parse-error by the effect pass
        facts = _WireFacts(module=module, path=path)
        _WireVisitor(facts, config).collect(tree)
        wire_facts.append(facts)

    for module in config.transport_modules:
        entry = sources.get(module)
        if entry is None:
            continue
        path, source = entry
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        facts = _ParticipantFacts(module=module, path=path)
        _ParticipantVisitor(facts, config).collect(tree)
        participants.append(facts)

    for facts in wire_facts:
        out.extend(_check_pairs(facts))
        out.extend(_check_offsets(facts))
        out.extend(_check_flags(facts))
        out.extend(_check_coverage(facts, participants))
    out.extend(_check_hello(participants))
    return out


def _check_pairs(facts: _WireFacts) -> list[FlowViolation]:
    out: list[FlowViolation] = []
    for stem, (pline, pevents) in sorted(facts.pack_fns.items()):
        if stem not in facts.unpack_fns:
            if pevents:
                out.append(
                    FlowViolation(
                        rule_id="flow-wire-conformance",
                        path=facts.path,
                        line=pline,
                        col=0,
                        severity="warning",
                        message=(
                            f"pack_{stem} has struct formats but no unpack_{stem} "
                            f"counterpart in {facts.module}"
                        ),
                    )
                )
            continue
        uline, uevents = facts.unpack_fns[stem]
        pflat = _flatten(pevents)
        uflat = _flatten(uevents)
        if pflat is None or uflat is None:
            continue  # unresolvable dynamic format: nothing provable
        porders, pstream = pflat
        uorders, ustream = uflat
        if not pevents and not uevents:
            continue
        chain = [
            ChainFrame(facts.path, pline, f"pack_{stem}", f"packs: {_stream_text(pstream) or '(empty)'}"),
            ChainFrame(facts.path, uline, f"unpack_{stem}", f"reads: {_stream_text(ustream) or '(empty)'}"),
        ]
        if len(porders | uorders) > 1:
            out.append(
                FlowViolation(
                    rule_id="flow-wire-conformance",
                    path=facts.path,
                    line=uline,
                    col=0,
                    message=(
                        f"unpack_{stem} byte order {sorted(uorders)} disagrees with "
                        f"pack_{stem} {sorted(porders)}"
                    ),
                    chain=chain,
                )
            )
            continue
        if pstream != ustream:
            out.append(
                FlowViolation(
                    rule_id="flow-wire-conformance",
                    path=facts.path,
                    line=uline,
                    col=0,
                    message=(
                        f"unpack_{stem} struct format disagrees with pack_{stem}: "
                        f"decoder reads [{_stream_text(ustream)}] but encoder writes "
                        f"[{_stream_text(pstream)}]"
                    ),
                    chain=chain,
                )
            )
    return out


def _check_offsets(facts: _WireFacts) -> list[FlowViolation]:
    out: list[FlowViolation] = []
    for stem, slices in sorted(facts.unpack_slices.items()):
        uline, uevents = facts.unpack_fns[stem]
        static = [e for e in uevents if not e.repeated and e.fixed_size is not None]
        if len(static) != 1 or len(uevents) != 1:
            continue
        header = static[0]
        for line, offset in slices:
            if offset != header.fixed_size:
                out.append(
                    FlowViolation(
                        rule_id="flow-wire-conformance",
                        path=facts.path,
                        line=line,
                        col=0,
                        message=(
                            f"unpack_{stem} slices the payload at byte {offset} but its "
                            f"header format {header.fmt!r} is {header.fixed_size} bytes"
                        ),
                        chain=[
                            ChainFrame(
                                facts.path,
                                header.line,
                                f"unpack_{stem}",
                                f"reads header {header.fmt!r} = {header.fixed_size} bytes",
                            ),
                            ChainFrame(
                                facts.path,
                                line,
                                f"unpack_{stem}",
                                f"then slices payload[{offset}:...]",
                            ),
                        ],
                    )
                )
    return out


def _check_flags(facts: _WireFacts) -> list[FlowViolation]:
    out: list[FlowViolation] = []
    if len(facts.masks) != 1:
        return out
    (mask_name, mask_value), = facts.masks.items()
    for flag_name, flag_value in sorted(facts.flags.items()):
        if flag_value & mask_value:
            out.append(
                FlowViolation(
                    rule_id="flow-wire-conformance",
                    path=facts.path,
                    line=1,
                    col=0,
                    message=(
                        f"{flag_name}=0x{flag_value:02x} overlaps {mask_name}="
                        f"0x{mask_value:02x}; flag bits must live outside the mask"
                    ),
                )
            )
    seen_values: dict[int, str] = {}
    for name, value in sorted(facts.msg_types.items()):
        line = facts.msg_type_lines.get(name, 1)
        if value & mask_value != value:
            out.append(
                FlowViolation(
                    rule_id="flow-wire-conformance",
                    path=facts.path,
                    line=line,
                    col=0,
                    message=(
                        f"MsgType.{name}={value} does not survive {mask_name} "
                        f"(0x{mask_value:02x}): the value collides with flag bits"
                    ),
                )
            )
        if value in seen_values:
            out.append(
                FlowViolation(
                    rule_id="flow-wire-conformance",
                    path=facts.path,
                    line=line,
                    col=0,
                    message=(
                        f"MsgType.{name} duplicates the value {value} of "
                        f"MsgType.{seen_values[value]}"
                    ),
                )
            )
        else:
            seen_values[value] = name
    return out


def _tokens(name: str) -> tuple[str, ...]:
    return tuple(t for t in name.lower().split("_") if t)


def _helper_matches(stem: str, msg_type: str) -> bool:
    """``pack_read_multi_req`` serves ``RDMA_READ_MULTI_REQ``: the helper
    suffix tokens must be an ordered subsequence of the MsgType tokens
    ending on the same REQ/REPLY token."""
    st, mt = _tokens(stem), _tokens(msg_type)
    if not st or not mt or st[-1] != mt[-1]:
        return False
    it = iter(mt)
    return all(tok in it for tok in st)


def _check_coverage(
    facts: _WireFacts, participants: list[_ParticipantFacts]
) -> list[FlowViolation]:
    out: list[FlowViolation] = []
    for name, value in sorted(facts.msg_types.items()):
        line = facts.msg_type_lines.get(name, 1)
        producible = any(_helper_matches(stem, name) for stem in facts.pack_fns)
        consumable = any(_helper_matches(stem, name) for stem in facts.unpack_fns)
        for p in participants:
            if name in p.encode_sites:
                producible = True
            if name in p.compare_sites:
                consumable = True
        if not producible:
            out.append(
                FlowViolation(
                    rule_id="flow-msgtype-coverage",
                    path=facts.path,
                    line=line,
                    col=0,
                    severity="warning",
                    message=(
                        f"MsgType.{name} ({value}) has no pack_* helper and no "
                        f"encode_frame send site in any participant module"
                    ),
                )
            )
        if not consumable:
            out.append(
                FlowViolation(
                    rule_id="flow-msgtype-coverage",
                    path=facts.path,
                    line=line,
                    col=0,
                    severity="warning",
                    message=(
                        f"MsgType.{name} ({value}) is never decoded: no unpack_* "
                        f"helper and no dispatch comparison in any participant module"
                    ),
                )
            )
        if name.endswith("_REQ"):
            sibling = name[: -len("_REQ")] + "_REPLY"
            if sibling not in facts.msg_types:
                out.append(
                    FlowViolation(
                        rule_id="flow-msgtype-coverage",
                        path=facts.path,
                        line=line,
                        col=0,
                        severity="warning",
                        message=f"MsgType.{name} has no {sibling} counterpart",
                    )
                )
    return out


def _check_hello(participants: list[_ParticipantFacts]) -> list[FlowViolation]:
    out: list[FlowViolation] = []
    advertised: dict[str, tuple[str, int]] = {}
    consumed: dict[str, tuple[str, int]] = {}
    for p in participants:
        for feat, line in p.advertised.items():
            advertised.setdefault(feat, (p.path, line))
        for feat, line in p.consumed.items():
            consumed.setdefault(feat, (p.path, line))
    if not advertised and not consumed:
        return out
    for feat in sorted(set(consumed) - set(advertised)):
        path, line = consumed[feat]
        out.append(
            FlowViolation(
                rule_id="flow-hello-symmetry",
                path=path,
                line=line,
                col=0,
                message=(
                    f"feature {feat!r} is gated on at this negotiation site but "
                    f"never advertised in any transport's feature constant — the "
                    f"gate can never open"
                ),
                chain=[
                    ChainFrame(path, line, "negotiate", f"checks {feat!r} in peer features"),
                ],
            )
        )
    for feat in sorted(set(advertised) - set(consumed)):
        path, line = advertised[feat]
        out.append(
            FlowViolation(
                rule_id="flow-hello-symmetry",
                path=path,
                line=line,
                col=0,
                severity="warning",
                message=(
                    f"feature {feat!r} is advertised but no negotiation site ever "
                    f"checks it"
                ),
            )
        )
    return out
