"""Whole-program effect & determinism analysis (``repro-flow``).

Where :mod:`repro.analysis.lint` checks each file in isolation, this
package builds an *interprocedural* view of the tree: a call graph over
every module under ``src/repro`` (import resolution, class-hierarchy
method dispatch, annotation-typed attribute dispatch, plugin-registry
edges), an effect-inference lattice seeded from a stdlib/numpy catalog
and propagated transitively, determinism contracts for the packages
declared DES-pure in ``[tool.reprolint.flow]``, and a wire-protocol
conformance pass over the encoder/decoder pairs in
:mod:`repro.core.wire`.

The paper's evaluation (§IV) rests on same-seed byte-identical DES
replay; ROADMAP item 3b (sharded-parallel DES) makes a single
transitive call into wall-clock, unseeded RNG, or set-iteration code a
silent per-shard replay breaker.  This analyzer upgrades the per-file
``des-purity`` lint rule into a whole-program guarantee, with full
call-chain traces in the report.
"""

from repro.analysis.flow.catalog import EFFECTS, effect_of
from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.cache import SummaryStore
from repro.analysis.flow.summary import ModuleSummary, extract_module
from repro.analysis.flow.graph import Program
from repro.analysis.flow.report import FlowReport, FlowViolation
from repro.analysis.flow.api import analyze, analyze_sources

__all__ = [
    "EFFECTS",
    "FlowConfig",
    "FlowReport",
    "FlowViolation",
    "ModuleSummary",
    "Program",
    "SummaryStore",
    "analyze",
    "analyze_sources",
    "effect_of",
    "extract_module",
]
