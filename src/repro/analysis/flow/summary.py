"""Per-module summary extraction for the whole-program flow pass.

One parse per module produces a :class:`ModuleSummary`: the import
alias map, every function/method with its outgoing call sites, local
variable types we can prove (constructor calls, annotations, ``x =
self.attr`` aliases), intrinsic effect sites (set iteration, ``global``
mutation, container allocation), and every class with its bases,
attribute types, and methods.  Summaries are pure syntax — no
cross-module knowledge — which is what makes them safe to cache by
file hash and replay on warm runs; all resolution happens later in
:mod:`repro.analysis.flow.graph`.

Naming conventions used throughout:

* call-site names are dotted chains with the *head* expanded through
  the module import map (``np.float64`` → ``numpy.float64``) except for
  ``self``/``cls``/``super`` heads, which stay symbolic for the graph
  to dispatch;
* local types are either dotted class names, ``builtins.set`` /
  ``builtins.dict`` / ``builtins.list``, or the marker ``self.<attr>``
  meaning "same type as that instance attribute".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.analysis.flow.catalog import ORDER_INDEPENDENT_CONSUMERS

SUMMARY_VERSION = 4

MODULE_BODY = "<module>"

_BUILTIN_SET = "builtins.set"
_BUILTIN_DICT = "builtins.dict"
_BUILTIN_LIST = "builtins.list"


@dataclass
class CallSite:
    """One outgoing call (or function reference) from a function body."""

    name: str
    line: int
    col: int
    sanctioned: bool = False  # wrapped directly in an order-independent consumer
    is_ref: bool = False  # passed as an argument, not called here

    def to_obj(self) -> list[Any]:
        return [self.name, self.line, self.col, int(self.sanctioned), int(self.is_ref)]

    @classmethod
    def from_obj(cls, obj: list[Any]) -> "CallSite":
        return cls(obj[0], obj[1], obj[2], bool(obj[3]), bool(obj[4]))


@dataclass
class EffectSite:
    """An intrinsic (syntactic) effect observed directly in a body."""

    effect: str
    line: int
    detail: str

    def to_obj(self) -> list[Any]:
        return [self.effect, self.line, self.detail]

    @classmethod
    def from_obj(cls, obj: list[Any]) -> "EffectSite":
        return cls(obj[0], obj[1], obj[2])


@dataclass
class FunctionInfo:
    name: str  # "f" for module functions, "C.m" for methods
    line: int
    cls: str | None = None
    calls: list[CallSite] = field(default_factory=list)
    effects: list[EffectSite] = field(default_factory=list)
    local_types: dict[str, str] = field(default_factory=dict)

    def to_obj(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "cls": self.cls,
            "calls": [c.to_obj() for c in self.calls],
            "effects": [e.to_obj() for e in self.effects],
            "local_types": self.local_types,
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "FunctionInfo":
        return cls(
            name=obj["name"],
            line=obj["line"],
            cls=obj["cls"],
            calls=[CallSite.from_obj(c) for c in obj["calls"]],
            effects=[EffectSite.from_obj(e) for e in obj["effects"]],
            local_types=dict(obj["local_types"]),
        )


@dataclass
class ClassInfo:
    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)
    # f-string getattr dispatch: (method, prefix) pairs, e.g. the
    # control plane's getattr(self, f"_cmd_{verb}") -> ("handle", "_cmd_")
    prefix_dispatch: list[list[str]] = field(default_factory=list)

    def to_obj(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "attr_types": self.attr_types,
            "prefix_dispatch": self.prefix_dispatch,
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "ClassInfo":
        return cls(
            name=obj["name"],
            line=obj["line"],
            bases=list(obj["bases"]),
            methods=list(obj["methods"]),
            attr_types=dict(obj["attr_types"]),
            prefix_dispatch=[list(p) for p in obj["prefix_dispatch"]],
        )


@dataclass
class ModuleSummary:
    module: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def to_obj(self) -> dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "imports": self.imports,
            "functions": {k: v.to_obj() for k, v in self.functions.items()},
            "classes": {k: v.to_obj() for k, v in self.classes.items()},
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=obj["module"],
            path=obj["path"],
            imports=dict(obj["imports"]),
            functions={k: FunctionInfo.from_obj(v) for k, v in obj["functions"].items()},
            classes={k: ClassInfo.from_obj(v) for k, v in obj["classes"].items()},
        )


# ---------------------------------------------------------------------------
# helpers


def _build_import_map(tree: ast.Module, module: str) -> dict[str, str]:
    imports: dict[str, str] = {}
    pkg_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # relative import: resolve against this module's package
                base = pkg_parts[: len(pkg_parts) - node.level]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{prefix}.{alias.name}" if prefix else alias.name
                imports[alias.asname or alias.name] = target
    return imports


def _dotted(node: ast.expr) -> str | None:
    """Flatten Name/Attribute chains; ``super().m`` becomes ``super.m``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "super":
        parts.append("super")
    else:
        return None
    return ".".join(reversed(parts))


def _expand_head(dotted: str, imports: dict[str, str]) -> str:
    head, _, rest = dotted.partition(".")
    if head in ("self", "cls", "super"):
        return dotted
    expanded = imports.get(head)
    if expanded is None:
        return dotted
    return f"{expanded}.{rest}" if rest else expanded


def _ann_type(node: ast.expr | None) -> str | None:
    """Best-effort type name from an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return _ann_type(node)
    if isinstance(node, ast.Name):
        return _builtin_container(node.id) or node.id
    if isinstance(node, ast.Attribute):
        return _dotted(node)
    if isinstance(node, ast.Subscript):
        base = _dotted(node.value)
        if base is None:
            return None
        tail = base.split(".")[-1]
        if tail in ("Optional",):
            return _ann_type(node.slice)
        if tail in ("Union",):
            if isinstance(node.slice, ast.Tuple):
                for elt in node.slice.elts:
                    if isinstance(elt, ast.Constant) and elt.value is None:
                        continue
                    got = _ann_type(elt)
                    if got is not None:
                        return got
            return None
        return _builtin_container(tail)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _ann_type(node.left)
        if left is not None:
            return left
        return _ann_type(node.right)
    return None


def _builtin_container(name: str) -> str | None:
    lowered = name.lower()
    if lowered in ("set", "frozenset"):
        return _BUILTIN_SET
    if lowered == "dict":
        return _BUILTIN_DICT
    if lowered == "list":
        return _BUILTIN_LIST
    return None


def _fstring_prefix(node: ast.expr) -> str | None:
    """Leading literal of an f-string (``f"_cmd_{v}"`` -> ``"_cmd_"``)."""
    if not isinstance(node, ast.JoinedStr) or not node.values:
        return None
    first = node.values[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str) and len(node.values) > 1:
        return first.value
    return None


_ALLOC_NODES = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


class _BodyScanner:
    """Scans one function body (including nested defs/lambdas, whose
    execution we conservatively attribute to the enclosing function)."""

    def __init__(
        self,
        imports: dict[str, str],
        parents: dict[ast.AST, ast.AST],
        cls: ClassInfo | None,
        method_name: str | None,
    ) -> None:
        self.imports = imports
        self.parents = parents
        self.cls = cls
        self.method_name = method_name
        self.calls: list[CallSite] = []
        self.effects: list[EffectSite] = []
        self.local_types: dict[str, str] = {}
        self._alloc_seen = False
        self._globals: set[str] = set()

    # -- typing ------------------------------------------------------------

    def note_param(self, arg: ast.arg) -> None:
        t = _ann_type(arg.annotation)
        if t is not None:
            self.local_types.setdefault(arg.arg, t)

    def _value_type(self, value: ast.expr) -> str | None:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return _BUILTIN_SET
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return _BUILTIN_DICT
        if isinstance(value, (ast.List, ast.ListComp)):
            return _BUILTIN_LIST
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None:
                builtin = _builtin_container(name) if "." not in name else None
                if builtin == _BUILTIN_SET:
                    return _BUILTIN_SET
                if name in ("set", "frozenset"):
                    return _BUILTIN_SET
                if name == "dict":
                    return _BUILTIN_DICT
                if name == "list":
                    return _BUILTIN_LIST
                expanded = _expand_head(name, self.imports)
                head = expanded.split(".")[0]
                if head not in ("self", "cls", "super"):
                    # constructor call: leave class-ness for the graph
                    return expanded
            return None
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            lt = self._expr_type(value.left)
            rt = self._expr_type(value.right)
            if _BUILTIN_SET in (lt, rt):
                return _BUILTIN_SET
            return None
        name = _dotted(value)
        if name is not None and name.startswith("self.") and name.count(".") == 1:
            return name  # "self.attr" marker, resolved by the graph
        return None

    def _expr_type(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.local_types.get(node.id)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return _BUILTIN_SET
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in ("set", "frozenset"):
                return _BUILTIN_SET
            return None
        name = _dotted(node)
        if name is not None and name.startswith("self.") and name.count(".") == 1:
            if self.cls is not None:
                return self.cls.attr_types.get(name.split(".")[1])
        return None

    def note_assign(self, node: ast.Assign | ast.AnnAssign) -> None:
        if isinstance(node, ast.AnnAssign):
            targets: list[ast.expr] = [node.target]
            t = _ann_type(node.annotation)
            if t is None and node.value is not None:
                t = self._value_type(node.value)
        else:
            targets = node.targets
            t = self._value_type(node.value)
        for target in targets:
            if isinstance(target, ast.Name) and t is not None:
                self.local_types[target.id] = t
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.cls is not None
                and t is not None
            ):
                resolved = t
                if resolved.startswith("self."):
                    resolved = self.cls.attr_types.get(resolved.split(".")[1], "")
                if resolved:
                    self.cls.attr_types.setdefault(target.attr, resolved)

    # -- effect sites ------------------------------------------------------

    def _is_set_typed(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            return name in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return self.local_types.get(node.id) == _BUILTIN_SET
        if isinstance(node, ast.Attribute):
            name = _dotted(node)
            if name is not None and name.startswith("self.") and name.count(".") == 1:
                if self.cls is not None:
                    return self.cls.attr_types.get(name.split(".")[1]) == _BUILTIN_SET
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._is_set_typed(node.left) or self._is_set_typed(node.right)
        return False

    def _iteration_sanctioned(self, iter_owner: ast.AST) -> bool:
        """True when the iteration's result is consumed order-independently.

        Covers ``sorted(x for x in s)``-style direct wrapping and set
        comprehensions (building a set from a set is order-free).
        """
        if isinstance(iter_owner, ast.SetComp):
            return True
        if isinstance(iter_owner, ast.GeneratorExp):
            parent = self.parents.get(iter_owner)
            if isinstance(parent, ast.Call):
                fname = _dotted(parent.func)
                if fname in ORDER_INDEPENDENT_CONSUMERS:
                    return True
        return False

    def _describe_iter(self, node: ast.expr) -> str:
        name = _dotted(node)
        if name is not None:
            return name
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            fname = _dotted(node.func)
            return f"{fname}(...)" if fname else "a set expression"
        return "a set expression"

    def _note_unordered_iter(self, iter_node: ast.expr, owner: ast.AST, line: int) -> None:
        if not self._is_set_typed(iter_node):
            return
        if self._iteration_sanctioned(owner):
            return
        self.effects.append(
            EffectSite(
                "unordered_iteration",
                line,
                f"iterates {self._describe_iter(iter_node)} (hash order varies "
                f"with PYTHONHASHSEED); wrap in sorted()",
            )
        )

    # -- traversal ---------------------------------------------------------

    def scan(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Global):
            self._globals.update(node.names)
            self.effects.append(
                EffectSite(
                    "global_mutation",
                    node.lineno,
                    f"rebinds module global(s) {', '.join(node.names)}",
                )
            )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            self.note_assign(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested def: attribute its body to the enclosing function
            for arg in _all_args(node.args):
                self.note_param(arg)
        elif isinstance(node, ast.For):
            self._note_unordered_iter(node.iter, node, node.lineno)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                self._note_unordered_iter(gen.iter, node, node.lineno)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        if isinstance(node, _ALLOC_NODES) and not self._alloc_seen:
            self._alloc_seen = True
            self.effects.append(
                EffectSite("allocates", getattr(node, "lineno", 0), "builds a container")
            )
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is not None:
            expanded = _expand_head(name, self.imports)
            sanctioned = self._call_sanctioned(node)
            self.calls.append(
                CallSite(expanded, node.lineno, node.col_offset, sanctioned=sanctioned)
            )
            tail = name.split(".")[-1]
            if tail == "getattr" or name == "getattr":
                self._note_getattr_dispatch(node)
            if name in ("list", "tuple") and node.args and self._is_set_typed(node.args[0]):
                self.effects.append(
                    EffectSite(
                        "unordered_iteration",
                        node.lineno,
                        f"materializes {self._describe_iter(node.args[0])} in hash "
                        f"order; wrap in sorted()",
                    )
                )
        # function references passed as arguments (callbacks given to
        # schedulers etc.) — recorded; the graph keeps only those that
        # resolve to project functions.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref = _dotted(arg)
                if ref is not None:
                    self.calls.append(
                        CallSite(
                            _expand_head(ref, self.imports),
                            node.lineno,
                            node.col_offset,
                            is_ref=True,
                        )
                    )

    def _call_sanctioned(self, node: ast.Call) -> bool:
        parent = self.parents.get(node)
        if isinstance(parent, ast.Call):
            fname = _dotted(parent.func)
            if fname in ORDER_INDEPENDENT_CONSUMERS:
                return True
        return False

    def _note_getattr_dispatch(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        recv = _dotted(node.args[0])
        prefix = _fstring_prefix(node.args[1])
        if recv == "self" and prefix and self.cls is not None and self.method_name:
            self.cls.prefix_dispatch.append([self.method_name, prefix])

    def note_global_writes(self, module_globals: set[str]) -> None:
        """Mutating calls/stores through module-level names."""
        for call in self.calls:
            head, _, rest = call.name.partition(".")
            if head in module_globals and rest.split(".")[-1] in (
                "append",
                "add",
                "update",
                "setdefault",
                "pop",
                "clear",
                "extend",
                "remove",
                "discard",
            ):
                self.effects.append(
                    EffectSite(
                        "global_mutation",
                        call.line,
                        f"mutates module global {head!r} via .{rest}()",
                    )
                )


def _all_args(args: ast.arguments) -> Iterator[ast.arg]:
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        yield a
    if args.vararg:
        yield args.vararg
    if args.kwarg:
        yield args.kwarg


def _subscript_stores(body: list[ast.stmt], module_globals: set[str]) -> list[EffectSite]:
    out: list[EffectSite] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
                name = _dotted(node.value)
                if name is not None and name.split(".")[0] in module_globals:
                    out.append(
                        EffectSite(
                            "global_mutation",
                            node.lineno,
                            f"writes into module global {name.split('.')[0]!r}",
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# extraction driver


def extract_module(source: str, module: str, path: str) -> ModuleSummary:
    """Parse ``source`` and produce its flow summary.

    Raises :class:`SyntaxError` on unparsable input (callers surface it
    as a ``parse-error`` violation, mirroring the lint engine).
    """
    tree = ast.parse(source, filename=path)
    imports = _build_import_map(tree, module)
    summary = ModuleSummary(module=module, path=path, imports=imports)

    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    module_globals: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    module_globals.add(t.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            module_globals.add(stmt.target.id)

    def scan_function(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_info: ClassInfo | None,
    ) -> FunctionInfo:
        qual = f"{cls_info.name}.{fn.name}" if cls_info else fn.name
        scanner = _BodyScanner(imports, parents, cls_info, fn.name)
        for arg in _all_args(fn.args):
            scanner.note_param(arg)
        scanner.scan(fn.body)
        scanner.note_global_writes(module_globals)
        scanner.effects.extend(_subscript_stores(fn.body, module_globals))
        # decorators execute at import time; attribute them to the
        # module body instead (handled by the module scanner) — but a
        # decorator that *wraps* the function (e.g. lru_cache) doesn't
        # change its effects for our lattice.
        info = FunctionInfo(
            name=qual,
            line=fn.lineno,
            cls=cls_info.name if cls_info else None,
            calls=scanner.calls,
            effects=scanner.effects,
            local_types=scanner.local_types,
        )
        return info

    def scan_class(node: ast.ClassDef, outer: str = "") -> None:
        cname = f"{outer}.{node.name}" if outer else node.name
        cls_info = ClassInfo(name=cname, line=node.lineno)
        for base in node.bases:
            b = _dotted(base)
            if b is not None:
                cls_info.bases.append(_expand_head(b, imports))
        # class-level annotations become attribute types
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                t = _ann_type(stmt.annotation)
                if t is None and stmt.value is not None:
                    t = _BodyScanner(imports, parents, None, None)._value_type(stmt.value)
                if t is not None:
                    cls_info.attr_types.setdefault(stmt.target.id, t)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                t = _BodyScanner(imports, parents, None, None)._value_type(stmt.value)
                if t is not None:
                    cls_info.attr_types.setdefault(stmt.targets[0].id, t)
        summary.classes[cname] = cls_info
        # pre-pass: collect self.<attr> types from every method body first,
        # so a method defined above __init__ still sees the attribute types
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                pre = _BodyScanner(imports, parents, cls_info, stmt.name)
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        pre.note_assign(sub)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls_info.methods.append(stmt.name)
                info = scan_function(stmt, cls_info)
                summary.functions[info.name] = info
            elif isinstance(stmt, ast.ClassDef):
                scan_class(stmt, cname)

    module_scanner = _BodyScanner(imports, parents, None, None)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = scan_function(stmt, None)
            summary.functions[info.name] = info
            for deco in stmt.decorator_list:
                _note_decorator(module_scanner, deco, imports)
        elif isinstance(stmt, ast.ClassDef):
            scan_class(stmt)
            for deco in stmt.decorator_list:
                _note_decorator(module_scanner, deco, imports)
        else:
            module_scanner._visit(stmt)
    module_scanner.note_global_writes(module_globals)
    summary.functions[MODULE_BODY] = FunctionInfo(
        name=MODULE_BODY,
        line=1,
        calls=module_scanner.calls,
        effects=module_scanner.effects,
        local_types=module_scanner.local_types,
    )
    return summary


def _note_decorator(
    scanner: _BodyScanner, deco: ast.expr, imports: dict[str, str]
) -> None:
    target = deco.func if isinstance(deco, ast.Call) else deco
    name = _dotted(target)
    if name is not None:
        scanner.calls.append(
            CallSite(_expand_head(name, imports), deco.lineno, deco.col_offset)
        )
