"""Violation model and text/JSON reporters for ``repro-flow``.

Mirrors the shape of :mod:`repro.analysis.lint.engine`'s ``Report`` —
same exit-code contract (0 clean, 1 violations, 2 usage/config error)
and the same ``path:line:col: [rule-id] message`` text lines — but each
violation can carry a *chain*: the interprocedural call path (or wire
frame-layout walk) that justifies it, rendered indented beneath the
headline line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

JSON_SCHEMA_VERSION = 1

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

FLOW_RULE_IDS: dict[str, str] = {
    "flow-des-purity": (
        "DES-pure packages must not transitively reach wall-clock, ambient "
        "RNG, or unordered iteration (whole-program, call-chain traced)"
    ),
    "flow-clock-boundary": (
        "wall-clock reads outside the sanctioned repro.util.timeutil "
        "boundary module"
    ),
    "flow-unordered-iteration": (
        "hash-ordered (set) or OS-ordered (listdir) iteration feeding "
        "ordering in replay-sensitive packages"
    ),
    "flow-wire-conformance": (
        "encoder/decoder struct formats, field widths, and flag masks must "
        "agree for every wire message"
    ),
    "flow-msgtype-coverage": (
        "every MsgType must be producible and consumable, with REQ/REPLY "
        "pairing intact"
    ),
    "flow-hello-symmetry": (
        "HELLO feature gates must be advertised and consumed symmetrically "
        "across transports"
    ),
    "flow-shard-isolation": (
        "code reachable from a shard worker entry point must not mutate "
        "module-level state outside the shard-allowed modules (a worker "
        "scribbling on shared globals diverges from fork-inherited state)"
    ),
}


@dataclass
class ChainFrame:
    """One hop of a call-chain (or frame-layout) trace."""

    path: str
    line: int
    func: str
    note: str

    def as_dict(self) -> dict[str, Any]:
        return {"path": self.path, "line": self.line, "func": self.func, "note": self.note}


@dataclass
class FlowViolation:
    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"  # "error" | "warning"
    chain: list[ChainFrame] = field(default_factory=list)
    suppressed: bool = False
    justification: str | None = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }
        if self.chain:
            out["chain"] = [f.as_dict() for f in self.chain]
        if self.suppressed:
            out["suppressed"] = True
            out["justification"] = self.justification
        return out


@dataclass
class FlowReport:
    violations: list[FlowViolation] = field(default_factory=list)
    suppressed: list[FlowViolation] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)

    def add(self, violation: FlowViolation) -> None:
        if violation.suppressed:
            self.suppressed.append(violation)
        else:
            self.violations.append(violation)

    def extend(self, violations: list[FlowViolation]) -> None:
        for v in violations:
            self.add(v)

    def sort(self) -> None:
        key = lambda v: (v.path, v.line, v.col, v.rule_id)  # noqa: E731
        self.violations.sort(key=key)
        self.suppressed.sort(key=key)

    @property
    def errors(self) -> list[FlowViolation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> list[FlowViolation]:
        return [v for v in self.violations if v.severity == "warning"]

    def exit_code(self) -> int:
        return EXIT_VIOLATIONS if self.violations else EXIT_CLEAN

    def render_text(self, *, show_suppressed: bool = False, show_stats: bool = True) -> str:
        lines: list[str] = []
        for v in self.violations:
            sev = "" if v.severity == "error" else " (warning)"
            lines.append(f"{v.path}:{v.line}:{v.col}: [{v.rule_id}]{sev} {v.message}")
            for frame in v.chain:
                lines.append(f"    {frame.path}:{frame.line}: in {frame.func}: {frame.note}")
        if show_suppressed and self.suppressed:
            lines.append("")
            lines.append("suppressed:")
            for v in self.suppressed:
                why = v.justification or "(no justification)"
                lines.append(
                    f"{v.path}:{v.line}:{v.col}: [{v.rule_id}] {v.message} -- {why}"
                )
        n_err, n_warn = len(self.errors), len(self.warnings)
        summary = (
            f"repro-flow: {n_err} error(s), {n_warn} warning(s), "
            f"{len(self.suppressed)} suppressed"
        )
        if show_stats and self.stats:
            mods = self.stats.get("flow_modules_analyzed", 0)
            hits = self.stats.get("flow_cache_hits", 0)
            elapsed = self.stats.get("elapsed_s", 0.0)
            summary += f" · {mods} modules ({hits} cached) in {elapsed:.2f}s"
        lines.append(summary)
        return "\n".join(lines) + "\n"

    def render_json(self) -> str:
        by_rule: dict[str, int] = {}
        for v in self.violations:
            by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
        payload = {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "repro-flow",
            "violations": [v.as_dict() for v in self.violations],
            "suppressed": [v.as_dict() for v in self.suppressed],
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": len(self.suppressed),
                "by_rule": dict(sorted(by_rule.items())),
            },
            "stats": self.stats,
        }
        return json.dumps(payload, indent=2, sort_keys=False) + "\n"

    def render_sarif(self) -> str:
        from repro.analysis.sarif import sarif_from_violations

        results = [
            {
                "rule_id": v.rule_id,
                "level": "error" if v.severity == "error" else "warning",
                "message": _sarif_message(v),
                "path": v.path,
                "line": v.line,
                "col": v.col,
            }
            for v in self.violations
        ]
        rules = [
            {"id": rule_id, "description": desc} for rule_id, desc in FLOW_RULE_IDS.items()
        ]
        return sarif_from_violations("repro-flow", rules, results)


def _sarif_message(v: FlowViolation) -> str:
    if not v.chain:
        return v.message
    trail = " -> ".join(f"{f.func} ({f.path}:{f.line})" for f in v.chain)
    return f"{v.message} | chain: {trail}"
