"""Application profiles: joining stored metrics with scheduler data.

Paper §VI-B: "On Chama, in addition to creating system views we combine
the system information with scheduler data to build application
profiles.  A profile for a 64 node job terminated by the OOM killer is
shown in Figure 12 ... Grey shaded areas are limited pre and post job
times in order to verify the state of the nodes upon entering and
exiting the job.  Imbalance and change in resource demands with time
are apparent."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.scheduler import Job, Scheduler
from repro.plugins.stores.memstore import MemoryStore

__all__ = ["JobProfile", "build_job_profile"]


@dataclass
class JobProfile:
    """Per-node time series of one metric over a job's lifetime."""

    job_id: int
    job_name: str
    exit_reason: str
    metric: str
    times: np.ndarray  # (T,) absolute timestamps
    values: np.ndarray  # (n_job_nodes, T)
    node_indices: list[int]
    start_time: float
    end_time: float
    margin: float

    @property
    def imbalance_ratio(self) -> float:
        """max/min of per-node means during the job window — the Fig. 12
        "memory imbalance" quantity."""
        inside = (self.times >= self.start_time) & (self.times < self.end_time)
        if not inside.any():
            return 1.0
        means = np.nanmean(self.values[:, inside], axis=1)
        lo = float(np.nanmin(means))
        return float(np.nanmax(means)) / lo if lo > 0 else float("inf")

    def growth(self) -> np.ndarray:
        """Per-node (last - first) in-window value: demand change over
        time."""
        inside = np.flatnonzero(
            (self.times >= self.start_time) & (self.times < self.end_time)
        )
        if inside.size == 0:
            return np.zeros(len(self.node_indices))
        first, last = inside[0], inside[-1]
        return self.values[:, last] - self.values[:, first]

    def pre_post_quiet(self, idle_ceiling: float) -> bool:
        """True if every node sat below ``idle_ceiling`` in the pre- and
        post-job margins (the grey shaded verification windows)."""
        pre = self.times < self.start_time
        post = self.times >= self.end_time
        outside = pre | post
        if not outside.any():
            return True
        vals = self.values[:, outside]
        return bool(np.nanmax(np.nan_to_num(vals, nan=0.0)) <= idle_ceiling)


def build_job_profile(
    store: MemoryStore,
    scheduler: Scheduler,
    job: Job,
    metric: str = "Active",
    schema: str = "meminfo",
    margin: float = 60.0,
    set_suffix: str = "meminfo",
) -> JobProfile:
    """Extract a job's per-node metric series from the store.

    ``set_suffix`` names the per-node metric set (set names are
    ``n<idx>/<suffix>``, as produced by ``Machine.deploy_ldms``).
    """
    if job.start_time is None or job.end_time is None:
        raise ValueError(f"job {job.job_id} has not run")
    t0 = job.start_time - margin
    t1 = job.end_time + margin
    set_names = [f"n{idx}/{set_suffix}" for idx in job.nodes]
    times, grid = store.matrix(metric, set_names=set_names, schema=schema)
    keep = (times >= t0) & (times < t1)
    return JobProfile(
        job_id=job.job_id,
        job_name=job.spec.name,
        exit_reason=job.exit_reason,
        metric=metric,
        times=times[keep],
        values=grid[:, keep],
        node_indices=list(job.nodes),
        start_time=job.start_time,
        end_time=job.end_time,
        margin=margin,
    )
