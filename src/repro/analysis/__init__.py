"""Characterization and impact-analysis tools (paper §V-§VI).

* :mod:`repro.analysis.heatmap` — node x time grids with the paper's
  presentation rules (threshold < 1 dropped, Fig. 9-11 style) and
  band/event feature extraction.
* :mod:`repro.analysis.torus_view` — 3-D torus snapshots and congestion
  region detection with wraparound connectivity (Fig. 9 bottom).
* :mod:`repro.analysis.profiles` — application profiles: joining stored
  metric data with scheduler job logs (Fig. 12).
* :mod:`repro.analysis.impact` — monitored-vs-unmonitored statistics
  for the §V experiments (normalized runtimes, significance tests).
"""

from repro.analysis.heatmap import (
    threshold_grid,
    sustained_bands,
    systemwide_events,
    occupancy,
)
from repro.analysis.torus_view import congestion_regions, region_wraps, TorusRegion
from repro.analysis.profiles import JobProfile, build_job_profile
from repro.analysis.impact import (ImpactSummary, compare_runs,
                                   family_significant, significance)
from repro.analysis.rates import deltas, rates, resample

__all__ = [
    "threshold_grid",
    "sustained_bands",
    "systemwide_events",
    "occupancy",
    "congestion_regions",
    "region_wraps",
    "TorusRegion",
    "JobProfile",
    "build_job_profile",
    "ImpactSummary",
    "compare_runs",
    "family_significant",
    "significance",
    "deltas",
    "rates",
    "resample",
]
