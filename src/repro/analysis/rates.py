"""Counter-to-rate conversion for stored time series.

Most LDMS metrics are monotone kernel counters; analyses (Figs. 9-11)
work on per-interval deltas or rates.  These helpers convert stored
(timestamps, values) series, handling the artifacts real deployments
hit:

* **counter wrap** — u64 (or narrower) counters roll over;
* **counter reset** — a node reboot restarts counters from zero (the
  delta across a reset is unknowable and must be dropped, not emitted
  as a huge negative/positive spike);
* **irregular sampling** — aggregation skips (busy/stale bypasses,
  §IV-E) leave gaps; rates must use the actual timestamp deltas.
"""

from __future__ import annotations

import numpy as np

__all__ = ["deltas", "rates", "resample"]


def deltas(
    timestamps: np.ndarray,
    values: np.ndarray,
    counter_bits: int | None = 64,
    reset_fraction: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-interval counter increases.

    Returns (interval-end timestamps, increments), one element shorter
    than the inputs.  A negative raw delta is interpreted as a wrap
    when the wrapped value is small relative to the counter range
    (``(prev -> max) + new < reset_fraction * 2**bits``), else as a
    reset, which yields NaN for that interval.

    With ``counter_bits=None`` values are treated as gauges and raw
    differences are returned.
    """
    t = np.asarray(timestamps, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape:
        raise ValueError("timestamps and values must have equal shape")
    if t.size < 2:
        return np.empty(0), np.empty(0)
    d = np.diff(v)
    if counter_bits is not None:
        span = float(2**counter_bits)
        wrapped = d + span
        is_neg = d < 0
        take_wrap = is_neg & (wrapped < reset_fraction * span)
        is_reset = is_neg & ~take_wrap
        d = np.where(take_wrap, wrapped, d)
        d = np.where(is_reset, np.nan, d)
    return t[1:], d


def rates(
    timestamps: np.ndarray,
    values: np.ndarray,
    counter_bits: int | None = 64,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-interval rates (increase / actual elapsed seconds)."""
    t, d = deltas(timestamps, values, counter_bits)
    if t.size == 0:
        return t, d
    dt = np.diff(np.asarray(timestamps, dtype=np.float64))
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(dt > 0, d / dt, np.nan)
    return t, r


def resample(
    timestamps: np.ndarray,
    values: np.ndarray,
    grid: np.ndarray,
) -> np.ndarray:
    """Last-observation-carried-forward resampling onto a time grid.

    Grid points before the first observation are NaN.  Used to align
    asynchronous per-node series into the node x time matrices the
    figures plot.
    """
    t = np.asarray(timestamps, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    grid = np.asarray(grid, dtype=np.float64)
    if t.size == 0:
        return np.full(grid.shape, np.nan)
    idx = np.searchsorted(t, grid, side="right") - 1
    out = np.where(idx >= 0, v[np.clip(idx, 0, None)], np.nan)
    return out
