"""Node x time grid analysis.

The paper's Figs. 9-11 plot per-node values over a 24-hour window and
read features off the image: *horizontal lines* (a few nodes sustaining
high values — e.g. a job hammering Lustre opens) and *vertical lines*
(system-wide events).  "Quantities under a threshold value of 1 have
been eliminated from the plots" (§VI-A) — :func:`threshold_grid`
applies the same rule.  These functions extract those features
numerically so tests and experiment harnesses can assert on them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["threshold_grid", "sustained_bands", "systemwide_events", "occupancy"]


def threshold_grid(grid: np.ndarray, threshold: float = 1.0) -> np.ndarray:
    """NaN-out values under the display threshold (paper §VI-A)."""
    out = np.asarray(grid, dtype=np.float64).copy()
    out[out < threshold] = np.nan
    return out


def occupancy(grid: np.ndarray, threshold: float = 1.0) -> float:
    """Fraction of (node, time) cells at or above the threshold."""
    g = np.asarray(grid)
    return float((g >= threshold).mean())


def sustained_bands(
    grid: np.ndarray,
    value_threshold: float,
    min_duration_fraction: float = 0.5,
) -> list[tuple[int, float]]:
    """Rows (nodes) holding >= ``value_threshold`` for a sustained span.

    ``grid`` is (time, node).  Returns ``[(node, active_fraction)]``
    for nodes whose above-threshold fraction of samples is at least
    ``min_duration_fraction`` — the horizontal lines of Fig. 11.
    """
    g = np.asarray(grid, dtype=np.float64)
    active = np.nan_to_num(g, nan=0.0) >= value_threshold
    frac = active.mean(axis=0)
    return [(int(i), float(f)) for i, f in enumerate(frac)
            if f >= min_duration_fraction]


def systemwide_events(
    grid: np.ndarray,
    value_threshold: float,
    min_node_fraction: float = 0.5,
) -> list[tuple[int, float]]:
    """Columns (times) where most nodes exceed the threshold at once.

    Returns ``[(time_index, node_fraction)]`` — the vertical lines of
    Fig. 11 ("times when Lustre opens occur across most nodes of the
    system").
    """
    g = np.asarray(grid, dtype=np.float64)
    active = np.nan_to_num(g, nan=0.0) >= value_threshold
    frac = active.mean(axis=1)
    return [(int(i), float(f)) for i, f in enumerate(frac)
            if f >= min_node_fraction]


def band_durations(
    grid: np.ndarray,
    lo: float,
    hi: float = np.inf,
    sample_interval: float = 60.0,
) -> np.ndarray:
    """Longest contiguous run (seconds) per node with values in [lo, hi).

    Used to verify Fig. 9's statements like "data values in the
    20-45% range for up to 20 hours".
    """
    g = np.nan_to_num(np.asarray(grid, dtype=np.float64), nan=0.0)
    mask = (g >= lo) & (g < hi)  # (time, node)
    T, N = mask.shape
    longest = np.zeros(N)
    current = np.zeros(N)
    for t in range(T):
        current = np.where(mask[t], current + 1, 0.0)
        longest = np.maximum(longest, current)
    return longest * sample_interval
