"""Comparison baselines (paper §IV-E related work).

* :mod:`repro.baselines.ganglia` — a faithful model of Ganglia's
  architecture: per-metric collection (each metric re-reads and
  re-parses its source file), push-model transmission carrying
  metadata with every send, value/time thresholding, and RRDTool
  storage that ages data out.
* :mod:`repro.baselines.rrd` — the round-robin database: fixed-size
  archives with consolidation, so long-term storage loses fidelity
  (the paper's motivation for LDMS's append stores).
* :mod:`repro.baselines.collectl` — a collectl-like single-host
  recorder: subsecond capable, file/socket output, but no transport or
  aggregation infrastructure.
"""

from repro.baselines.ganglia import Gmond, Gmetad, GangliaMetric
from repro.baselines.rrd import RoundRobinDatabase, RRArchive
from repro.baselines.collectl import Collectl

__all__ = [
    "Gmond",
    "Gmetad",
    "GangliaMetric",
    "RoundRobinDatabase",
    "RRArchive",
    "Collectl",
]
