"""RRDTool-style round-robin storage.

Ganglia stores to RRDTool, "which ages out data and thus requires a
separate data move if long term storage is desired" (paper §IV-E).  An
RRD holds a fixed number of *consolidated* rows per archive (RRA): a
high-resolution archive covering the recent past and coarser archives
covering longer windows, each consolidating N primary points into one
(average/max).  Once the ring wraps, old rows are overwritten — data is
lost, unlike LDMS's append-only stores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RRArchive", "RoundRobinDatabase"]


@dataclass
class RRArchive:
    """One RRA: ``rows`` consolidated points, ``steps`` primary points
    per consolidated point, consolidated with ``cf`` (AVERAGE/MAX)."""

    steps: int
    rows: int
    cf: str = "AVERAGE"

    def __post_init__(self) -> None:
        if self.cf not in ("AVERAGE", "MAX", "MIN", "LAST"):
            raise ValueError(f"unknown consolidation function {self.cf!r}")
        self._data = np.full(self.rows, np.nan)
        self._times = np.full(self.rows, np.nan)
        self._head = 0
        self._pending: list[float] = []
        self.overwritten = 0

    def update(self, t: float, value: float) -> None:
        self._pending.append(value)
        if len(self._pending) < self.steps:
            return
        block = np.asarray(self._pending)
        self._pending.clear()
        cons = {
            "AVERAGE": np.mean,
            "MAX": np.max,
            "MIN": np.min,
            "LAST": lambda a: a[-1],
        }[self.cf](block)
        if not np.isnan(self._times[self._head]):
            self.overwritten += 1
        self._data[self._head] = cons
        self._times[self._head] = t
        self._head = (self._head + 1) % self.rows

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) oldest-first, NaN rows dropped."""
        order = np.argsort(self._times)
        t, v = self._times[order], self._data[order]
        keep = ~np.isnan(t)
        return t[keep], v[keep]

    @property
    def span(self) -> int:
        """Primary points this archive can represent before aging out."""
        return self.steps * self.rows


class RoundRobinDatabase:
    """A set of archives fed by one metric's primary data points.

    Default layout mirrors Ganglia's stock RRAs (scaled): fine recent
    data plus coarse long-term consolidations.
    """

    def __init__(self, archives: list[RRArchive] | None = None):
        self.archives = archives or [
            RRArchive(steps=1, rows=240),  # recent, full resolution
            RRArchive(steps=24, rows=240),  # consolidated 24:1
            RRArchive(steps=168, rows=240),  # consolidated 168:1
        ]
        self.updates = 0

    def update(self, t: float, value: float) -> None:
        self.updates += 1
        for rra in self.archives:
            rra.update(t, value)

    def fetch(self, max_age_points: int) -> tuple[np.ndarray, np.ndarray]:
        """Best-resolution series whose span covers ``max_age_points``
        primary points; falls back to the coarsest archive."""
        for rra in sorted(self.archives, key=lambda r: r.steps):
            if rra.span >= max_age_points:
                return rra.series()
        return self.archives[-1].series()

    @property
    def total_overwritten(self) -> int:
        return sum(r.overwritten for r in self.archives)
