"""A collectl-like single-host recorder (paper §IV-E2).

"Collectl and sar are single host tools for collecting and reporting
monitoring values.  Neither include transport and aggregation
infrastructure.  Both can continuously write to a file or display;
collectl can also write to a socket ... Only collectl supports
subsecond collection intervals."

This model reads the same /proc sources as the LDMS plugins but has no
metric sets, no pull protocol, and no aggregation — output is formatted
text to a file or socket-like sink, which is what makes programmatic
use awkward (an application would have to exec it and parse the text).
"""

from __future__ import annotations

from typing import Callable, TextIO

from repro.nodefs.fs import FileSystem
from repro.plugins.samplers import parsers

__all__ = ["Collectl"]


class Collectl:
    """Single-host recorder: cpu + memory subsystems, text output."""

    def __init__(self, fs: FileSystem, sink: TextIO | Callable[[str], None]):
        self.fs = fs
        self._write = sink if callable(sink) else sink.write
        self.samples = 0
        self._prev_cpu: dict[str, int] | None = None

    def sample(self, now: float) -> str:
        """Take one sample; returns (and emits) the formatted line."""
        stat = parsers.parse_proc_stat(self.fs.read("/proc/stat"))
        mem = parsers.parse_meminfo(self.fs.read("/proc/meminfo"))
        if self._prev_cpu is not None:
            d = {k: stat.get(k, 0) - self._prev_cpu.get(k, 0)
                 for k in ("cpu_user", "cpu_sys", "cpu_idle", "cpu_iowait")}
            total = max(sum(d.values()), 1)
            cpu_part = (f"cpu user={100*d['cpu_user']//total}% "
                        f"sys={100*d['cpu_sys']//total}% "
                        f"wait={100*d['cpu_iowait']//total}%")
        else:
            cpu_part = "cpu user=0% sys=0% wait=0%"
        self._prev_cpu = stat
        line = (f"{now:.3f} {cpu_part} "
                f"mem free={mem.get('MemFree', 0)}kB active={mem.get('Active', 0)}kB\n")
        self._write(line)
        self.samples += 1
        return line

    def record(self, clock: Callable[[], float], advance: Callable[[float], None],
               duration: float, interval: float) -> int:
        """Drive sampling over a (simulated) window; returns sample count.

        ``advance(dt)`` moves the clock (in tests, the simulation
        engine).  Subsecond intervals are supported, unlike sar.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        steps = int(round(duration / interval))
        for _ in range(steps):
            self.sample(clock())
            advance(interval)
        return self.samples
