"""A Ganglia-architecture monitoring baseline.

Ganglia differs from LDMS in exactly the ways the paper's comparison
(§IV-E) measures:

* **Per-metric collection.**  Each gmond metric module opens and parses
  its source independently — sampling N metrics from /proc/meminfo
  reads and parses the file N times, where the LDMS meminfo plugin
  reads it once per set.  This is the mechanism behind the measured
  "126 usec per metric for Ganglia vs. 1.3 usec per metric for LDMS".
* **Push with metadata.**  Every transmission carries the metric's
  metadata (name, type, units, slope, tmax/dmax) alongside the value —
  an XML/XDR-style message built per metric per send.  LDMS sends
  metadata once at lookup.
* **Thresholding.**  A metric is sent only when it changed by more than
  ``value_threshold`` or ``time_threshold`` expired — "this
  thresholding can reduce behavioral understanding if set too high".
* **RRD storage** via :class:`~repro.baselines.rrd.RoundRobinDatabase`,
  which ages data out.

The documented scalability ceiling (~2,000 nodes, §IV-E) is carried on
:data:`Gmetad.SCALABILITY_CEILING` and enforced softly (a warning
counter) rather than as a hard error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.rrd import RoundRobinDatabase
from repro.nodefs.fs import FileSystem
from repro.plugins.samplers import parsers

__all__ = ["GangliaMetric", "Gmond", "Gmetad"]


@dataclass(frozen=True)
class GangliaMetric:
    """One gmond metric module: where to read and how to extract."""

    name: str
    path: str
    extract: Callable[[str], float]
    units: str = ""
    slope: str = "both"
    fmt: str = "%.1f"

    @staticmethod
    def meminfo(name: str, key: str, path: str = "/proc/meminfo") -> "GangliaMetric":
        return GangliaMetric(
            name=name, path=path,
            extract=lambda text, k=key: float(parsers.parse_meminfo(text).get(k, 0)),
            units="kB",
        )

    @staticmethod
    def procstat(name: str, key: str, path: str = "/proc/stat") -> "GangliaMetric":
        return GangliaMetric(
            name=name, path=path,
            extract=lambda text, k=key: float(parsers.parse_proc_stat(text).get(k, 0)),
            units="jiffies",
        )


_XML_TEMPLATE = (
    '<METRIC NAME="{name}" VAL="{val}" TYPE="double" UNITS="{units}" '
    'TN="0" TMAX="{tmax}" DMAX="0" SLOPE="{slope}" SOURCE="gmond"/>'
)


class Gmond:
    """A node monitoring daemon in the Ganglia style.

    ``collect_and_send`` is the measured unit for the collection-cost
    comparison: per metric it (1) re-reads and re-parses the source
    file, (2) applies thresholding, (3) builds the metadata-carrying
    message, and (4) pushes it to the aggregator.
    """

    def __init__(
        self,
        fs: FileSystem,
        metrics: list[GangliaMetric],
        value_threshold: float = 0.0,
        time_threshold: float = 60.0,
        sink: "Gmetad | None" = None,
        host: str = "node0",
    ):
        self.fs = fs
        self.metrics = list(metrics)
        self.value_threshold = value_threshold
        self.time_threshold = time_threshold
        self.sink = sink
        self.host = host
        self._last_sent: dict[str, tuple[float, float]] = {}  # name -> (t, value)
        self.messages_sent = 0
        self.bytes_sent = 0
        self.collections = 0
        self.suppressed = 0

    def collect_metric(self, metric: GangliaMetric, now: float) -> float:
        """Collect one metric: independent read+parse of its source."""
        text = self.fs.read(metric.path)  # re-read per metric (!)
        value = metric.extract(text)
        self.collections += 1
        last = self._last_sent.get(metric.name)
        send = (
            last is None
            or abs(value - last[1]) > self.value_threshold
            or (now - last[0]) >= self.time_threshold
        )
        if send:
            message = _XML_TEMPLATE.format(
                name=metric.name, val=metric.fmt % value, units=metric.units,
                tmax=int(self.time_threshold), slope=metric.slope,
            )
            self.messages_sent += 1
            self.bytes_sent += len(message)
            self._last_sent[metric.name] = (now, value)
            if self.sink is not None:
                self.sink.receive(self.host, metric.name, now, value, message)
        else:
            self.suppressed += 1
        return value

    def collect_and_send(self, now: float) -> None:
        """One collection sweep over all metric modules."""
        for metric in self.metrics:
            self.collect_metric(metric, now)


class Gmetad:
    """The Ganglia aggregator: receives pushes, stores to RRDs."""

    #: project-page scalability claim cited in §IV-E
    SCALABILITY_CEILING = 2000

    def __init__(self) -> None:
        self.rrds: dict[tuple[str, str], RoundRobinDatabase] = {}
        self.hosts: set[str] = set()
        self.bytes_received = 0
        self.over_ceiling_events = 0

    def receive(self, host: str, metric: str, t: float, value: float,
                message: str) -> None:
        self.hosts.add(host)
        if len(self.hosts) > self.SCALABILITY_CEILING:
            self.over_ceiling_events += 1
        self.bytes_received += len(message)
        key = (host, metric)
        if key not in self.rrds:
            self.rrds[key] = RoundRobinDatabase()
        self.rrds[key].update(t, value)

    def series(self, host: str, metric: str, max_age_points: int = 240):
        return self.rrds[(host, metric)].fetch(max_age_points)
