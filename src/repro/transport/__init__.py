"""Transport plugins.

LDMS supports multiple interconnect types behind one plugin interface
(paper §IV-B): TCP sockets (``sock``), Infiniband/iWARP RDMA (``rdma``),
and Gemini RDMA (``ugni``).  This package provides:

* ``local`` — in-process loopback (zero copy, for tests and single-node
  compositions).
* ``sock`` — a real TCP implementation usable across processes/hosts.
* ``sim.*`` — simulated transports for the DES: ``simsock``, ``rdma``
  and ``ugni`` profiles differing in latency, per-byte cost, target-CPU
  cost (RDMA reads consume no target CPU — Fig. 2 note {f}), and
  connection capacity (fan-in limits, §IV-A).
"""

from repro.transport.base import (
    Endpoint,
    Listener,
    Transport,
    TransportProfile,
    transport_registry,
    register_transport,
    get_transport_profile,
    PROFILES,
)
from repro.transport.local import LocalTransport
from repro.transport.sock import SockTransport
from repro.transport.simfabric import SimFabric, SimTransport

__all__ = [
    "Endpoint",
    "Listener",
    "Transport",
    "TransportProfile",
    "transport_registry",
    "register_transport",
    "get_transport_profile",
    "PROFILES",
    "LocalTransport",
    "SockTransport",
    "SimFabric",
    "SimTransport",
]
