"""In-process loopback transport.

Connects daemons living in the same process with direct calls and
zero-copy region reads.  Used by unit tests and by single-host
compositions (e.g. a user-level ldmsd feeding a local store).

Addresses are arbitrary hashable keys in a process-wide address table.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.transport.base import Endpoint, Listener, Transport, register_transport
from repro.util.errors import TransportError

__all__ = ["LocalTransport"]


class _LocalEndpoint(Endpoint):
    def __init__(self) -> None:
        super().__init__()
        self.peer: Optional["_LocalEndpoint"] = None

    def send(self, frame: bytes) -> None:
        if self.closed or self.peer is None:
            raise TransportError("send on closed local endpoint")
        self.bytes_sent += len(frame)
        self.peer._deliver(frame)

    def rdma_read(self, region_id: int, on_complete, trace=None) -> None:
        if self.closed or self.peer is None:
            on_complete(None)
            return
        peer = self.peer
        if trace is not None and peer.on_traced_read is not None:
            for _idx, tid, sid, hop in trace:
                peer.on_traced_read(tid, sid, hop, region_id)
        reader = peer._regions.get(region_id)
        if reader is None:
            on_complete(None)
            return
        data = bytes(reader())
        self._account_read(len(data))
        on_complete(data)

    def close(self) -> None:
        if self.closed:
            return
        peer = self.peer
        self._closed()
        if peer is not None and not peer.closed:
            peer._closed()


class _LocalListener(Listener):
    def __init__(self, transport: "LocalTransport", addr, on_connect):
        super().__init__(on_connect)
        self.transport = transport
        self.addr = addr

    def close(self) -> None:
        self.transport._listeners.pop(self.addr, None)


@register_transport("local")
class LocalTransport(Transport):
    """Loopback transport with a per-instance address table.

    A single instance is normally shared by all daemons in a process::

        xprt = LocalTransport()
        xprt.listen("sampler0", on_connect=...)
        xprt.connect("sampler0", on_connected=...)
    """

    def __init__(self) -> None:
        self._listeners: dict[object, _LocalListener] = {}
        #: Fault hook: refuse this many upcoming connect() calls (the
        #: loopback analogue of a connect timeout) — lets tests drive
        #: the reconnect/backoff path without a simulated fabric.
        self.fail_next_connects = 0
        self.refused_connections = 0

    def listen(self, addr, on_connect) -> Listener:
        if addr in self._listeners:
            raise TransportError(f"address {addr!r} already listening")
        lst = _LocalListener(self, addr, on_connect)
        self._listeners[addr] = lst
        return lst

    def connect(self, addr, on_connected: Callable[[Optional[Endpoint]], None]) -> None:
        if self.fail_next_connects > 0:
            self.fail_next_connects -= 1
            self.refused_connections += 1
            on_connected(None)
            return
        lst = self._listeners.get(addr)
        if lst is None:
            on_connected(None)
            return
        a, b = _LocalEndpoint(), _LocalEndpoint()
        a.peer, b.peer = b, a
        # Both ends live in this build: negotiate directly.
        a._negotiate(b.features)
        b._negotiate(a.features)
        a._peer_clock = b._peer_clock = (0.0, 0.0)
        # Accept side first (mirrors accept-before-connect-returns of TCP).
        lst.on_connect(b)
        on_connected(a)
