"""Real TCP socket transport.

One reader thread per connection decodes frames and dispatches.  The
RDMA-read verb is emulated with transport-internal request/reply frames
(``RDMA_READ_REQ``/``RDMA_READ_REPLY``), which — exactly like the real
LDMS sock transport — consumes CPU on the target to service each fetch.

This transport is used by the runnable examples and the integration
tests; the simulator uses :mod:`repro.transport.simfabric` instead.
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
from typing import Callable, Optional

from repro.core import wire
from repro.transport.base import Endpoint, Listener, Transport, register_transport
from repro.util.errors import TransportError
from repro.util.timeutil import monotonic as _monotonic

__all__ = ["SockTransport"]


class _MultiRead:
    """Pending coalesced read.

    Lives in ``_pending_reads`` alongside plain single-read callbacks;
    calling it (the connection-failure path in ``_fail_pending``) fails
    every region in the batch, while a ``RDMA_READ_MULTI_REPLY`` frame
    dispatches straight to ``on_complete`` with the unpacked parts.
    """

    __slots__ = ("n", "on_complete")

    def __init__(self, n: int, on_complete):
        self.n = n
        self.on_complete = on_complete

    def __call__(self, _data) -> None:
        self.on_complete([None] * self.n)


class _SockEndpoint(Endpoint):
    def __init__(self, sock: socket.socket):
        super().__init__()
        self.sock = sock
        self._wlock = threading.Lock()
        self._decoder = wire.FrameDecoder()
        self._pending_reads: dict[int, Callable[[Optional[bytes]], None]] = {}
        self._read_id = itertools.count(1)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)

    def start_reader(self) -> None:
        """Begin dispatching inbound frames.

        Called by the transport only after the creator's connect callback
        has returned (and so had its chance to wire ``on_message``);
        starting the reader inside ``__init__`` lets a peer's first frame
        race the handler assignment and be silently dropped.

        Also the point where this side's HELLO goes out: the owner has
        had its chance to install ``clock``/``features`` in the connect
        callback, and the greeting must precede any traced frame.
        """
        try:
            now = self.clock() if self.clock is not None else _monotonic()
            self.send(wire.encode_frame(
                wire.MsgType.HELLO, 0, wire.pack_hello(now, self.features)))
        except TransportError:
            pass
        self._reader.start()

    # -- verbs ---------------------------------------------------------------
    def send(self, frame: bytes) -> None:
        if self.closed:
            raise TransportError("send on closed endpoint")
        with self._wlock:
            try:
                self.sock.sendall(frame)
            except OSError as exc:
                raise TransportError(f"send failed: {exc}") from exc
        self.bytes_sent += len(frame)

    def rdma_read(self, region_id: int, on_complete, trace=None) -> None:
        if self.closed:
            on_complete(None)
            return
        rid = next(self._read_id)
        self._pending_reads[rid] = on_complete
        try:
            self.send(
                wire.encode_frame(
                    wire.MsgType.RDMA_READ_REQ, rid,
                    struct.pack("<Q", region_id), trace,
                )
            )
        except TransportError:
            self._pending_reads.pop(rid, None)
            on_complete(None)

    def rdma_read_multi(self, region_ids, on_complete, trace=None) -> None:
        """Native coalesced read: one request frame, one reply frame,
        one reader-thread dispatch for the whole batch."""
        n = len(region_ids)
        if n == 0:
            on_complete([])
            return
        if self.closed:
            on_complete([None] * n)
            return
        rid = next(self._read_id)
        self._pending_reads[rid] = _MultiRead(n, on_complete)
        try:
            self.send(
                wire.encode_frame(
                    wire.MsgType.RDMA_READ_MULTI_REQ,
                    rid,
                    wire.pack_read_multi_req(list(region_ids)),
                    trace,
                )
            )
        except TransportError:
            self._pending_reads.pop(rid, None)
            on_complete([None] * n)

    def close(self) -> None:
        if self.closed:
            return
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
        self._fail_pending()
        self._closed()

    # -- internals -------------------------------------------------------------
    def _fail_pending(self) -> None:
        pending, self._pending_reads = self._pending_reads, {}
        for cb in pending.values():
            cb(None)

    def _read_loop(self) -> None:
        try:
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    break
                for frame in self._decoder.feed(chunk):
                    self._dispatch(frame)
        except OSError:
            pass
        finally:
            self._fail_pending()
            self._closed()

    def _dispatch(self, frame: wire.Frame) -> None:
        if frame.msg_type == wire.MsgType.HELLO:
            # Transport-internal greeting: version negotiation + clock
            # anchor.  Consumed here — the application handler never
            # sees it (CLI clients overwrite on_message wholesale).
            peer_now, feats = wire.unpack_hello(frame.payload)
            self._negotiate(feats)
            self._anchor_peer_clock(peer_now)
            return
        if frame.msg_type == wire.MsgType.RDMA_READ_REQ:
            (region_id,) = struct.unpack("<Q", frame.payload)
            if frame.trace is not None and self.on_traced_read is not None:
                for _idx, tid, sid, hop in frame.trace:
                    self.on_traced_read(tid, sid, hop, region_id)
            reader = self._regions.get(region_id)
            data = bytes(reader()) if reader is not None else b""
            status = wire.E_OK if reader is not None else wire.E_NOENT
            try:
                self.send(
                    wire.encode_frame(
                        wire.MsgType.RDMA_READ_REPLY,
                        frame.request_id,
                        struct.pack("<i", status) + data,
                    )
                )
            except TransportError:
                pass
            return
        if frame.msg_type == wire.MsgType.RDMA_READ_REPLY:
            cb = self._pending_reads.pop(frame.request_id, None)
            if cb is not None:
                (status,) = struct.unpack_from("<i", frame.payload, 0)
                data = frame.payload[4:]
                self._account_read(len(data))
                cb(data if status == wire.E_OK else None)
            return
        if frame.msg_type == wire.MsgType.RDMA_READ_MULTI_REQ:
            region_ids = wire.unpack_read_multi_req(frame.payload)
            if frame.trace is not None and self.on_traced_read is not None:
                for idx, tid, sid, hop in frame.trace:
                    if idx < len(region_ids):
                        self.on_traced_read(tid, sid, hop, region_ids[idx])
            parts = self.read_regions(region_ids)
            try:
                self.send(
                    wire.encode_frame(
                        wire.MsgType.RDMA_READ_MULTI_REPLY,
                        frame.request_id,
                        wire.pack_read_multi_reply(parts),
                    )
                )
            except TransportError:
                pass
            return
        if frame.msg_type == wire.MsgType.RDMA_READ_MULTI_REPLY:
            mr = self._pending_reads.pop(frame.request_id, None)
            if mr is not None:
                parts = wire.unpack_read_multi_reply(frame.payload)
                self._account_read(sum(len(p) for p in parts if p is not None))
                mr.on_complete(parts)
            return
        # Application frame: re-encode not needed; hand up the raw frame
        # (trace context, if any, survives the round trip).
        self._deliver(
            wire.encode_frame(frame.msg_type, frame.request_id, frame.payload,
                              frame.trace)
        )


class _SockListener(Listener):
    def __init__(self, addr: tuple[str, int], on_connect):
        super().__init__(on_connect)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(addr)
        self.sock.listen(128)
        self.addr = self.sock.getsockname()
        self._stop = False
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self.addr[1]

    def _accept_loop(self) -> None:
        while not self._stop:
            try:
                conn, _peer = self.sock.accept()
            except OSError:
                return
            if self._stop:
                conn.close()
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            endpoint = _SockEndpoint(conn)
            self.on_connect(endpoint)
            endpoint.start_reader()

    def close(self) -> None:
        self._stop = True
        # A thread blocked in accept() is not reliably woken by close()
        # on every network stack (containers/gVisor); nudge it with a
        # throwaway connection so the loop observes _stop and exits.
        try:
            with socket.create_connection(self.addr, timeout=0.5):
                pass
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)


@register_transport("sock")
class SockTransport(Transport):
    """TCP transport.  Addresses are ``(host, port)`` tuples; listening
    on port 0 picks an ephemeral port (see ``Listener.port``)."""

    def listen(self, addr, on_connect) -> _SockListener:
        return _SockListener(tuple(addr), on_connect)

    def connect(self, addr, on_connected) -> None:
        def _do() -> None:
            try:
                s = socket.create_connection(tuple(addr), timeout=10.0)
                s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                on_connected(None)
                return
            endpoint = _SockEndpoint(s)
            on_connected(endpoint)
            endpoint.start_reader()

        threading.Thread(target=_do, daemon=True).start()
