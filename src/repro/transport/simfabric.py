"""Simulated transports for the discrete-event simulator.

A :class:`SimFabric` is the process-wide wiring: an address table plus
optional hooks into a network model (latency per message, traffic
accounting).  A :class:`SimTransport` is one daemon's attachment to the
fabric with a named cost profile (``sock``/``rdma``/``ugni``).

Cost semantics (see :data:`repro.transport.base.PROFILES`):

* every message/read experiences ``base_latency + nbytes * per_byte``
  plus whatever the injected network-model latency function adds;
* an RDMA read consumes **zero CPU on the target** for the ``rdma`` and
  ``ugni`` profiles; the ``sock`` profile charges the target's core,
  which is how monitoring traffic perturbs applications on sampler
  nodes (§V impact testing: "no net" variants isolate exactly this);
* a transport refuses connections beyond ``max_connections``, the
  transport-level fan-in bound (§IV-A).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.sim.engine import Engine
from repro.sim.resources import CpuCore
from repro.sim.shard import RUNTIME as _SHARD_RUNTIME
from repro.transport.base import (
    Endpoint,
    Listener,
    Transport,
    TransportProfile,
    get_transport_profile,
)
from repro.util.errors import ConfigError, TransportError

__all__ = ["SimFabric", "SimTransport", "FabricFaults", "ShardGateway",
           "lookahead_of"]

#: latency_fn(src_node_id, dst_node_id, nbytes) -> extra seconds
LatencyFn = Callable[[object, object, int], float]
#: traffic_cb(src_node_id, dst_node_id, nbytes, time)
TrafficCb = Callable[[object, object, int, float], None]


class FabricFaults:
    """Link-level fault state consulted by simulated endpoints.

    Injected by :class:`repro.faults.FaultInjector` (or directly by
    tests): blocked links black-hole frames and fail one-sided reads,
    ``extra_latency`` slows a link, and frame filters drop individual
    frames (e.g. one LOOKUP_REPLY).  Links are undirected for
    block/slow state; filters see the direction of each frame.  All
    state changes take effect at the simulation instant they are made —
    the injector schedules them on the engine clock.
    """

    def __init__(self) -> None:
        self._down: set[frozenset] = set()
        self._slow: dict[frozenset, float] = {}
        #: fn(src, dst, frame) -> True to drop.  Filters run in
        #: registration order; the first hit wins.
        self._filters: list = []
        self.frames_dropped = 0
        self.reads_failed = 0

    @property
    def active(self) -> bool:
        return bool(self._down or self._slow or self._filters)

    @staticmethod
    def _key(a, b) -> frozenset:
        return frozenset((a, b))

    def block(self, a, b) -> None:
        self._down.add(self._key(a, b))

    def unblock(self, a, b) -> None:
        self._down.discard(self._key(a, b))

    def blocked(self, a, b) -> bool:
        return self._key(a, b) in self._down

    def set_latency(self, a, b, extra: float) -> None:
        self._slow[self._key(a, b)] = max(extra, 0.0)

    def clear_latency(self, a, b) -> None:
        self._slow.pop(self._key(a, b), None)

    def extra_latency(self, a, b) -> float:
        return self._slow.get(self._key(a, b), 0.0)

    def add_filter(self, fn) -> None:
        self._filters.append(fn)

    def remove_filter(self, fn) -> None:
        if fn in self._filters:
            self._filters.remove(fn)

    def drops_frame(self, src, dst, frame: bytes) -> bool:
        """Whether the fault state eats this frame on the wire."""
        if self._key(src, dst) in self._down:
            return True
        for fn in self._filters:
            if fn(src, dst, frame):
                return True
        return False


class SimFabric:
    """Address table + network-model hooks shared by simulated daemons."""

    def __init__(
        self,
        engine: Engine,
        latency_fn: Optional[LatencyFn] = None,
        traffic_cb: Optional[TrafficCb] = None,
    ):
        self.engine = engine
        self.latency_fn = latency_fn
        self.traffic_cb = traffic_cb
        self._listeners: dict[object, "_SimListener"] = {}
        self.total_bytes = 0
        self.total_messages = 0
        #: Fault-injection state; endpoints consult it only while a
        #: fault is live (one attribute check on the no-fault path).
        self.faults = FabricFaults()
        #: Cross-shard routing, installed by :class:`ShardGateway` when
        #: this fabric is one shard of a partitioned cluster.
        self.gateway: Optional["ShardGateway"] = None

    def _account(self, src, dst, nbytes: int) -> float:
        """Record traffic and return the model's extra latency."""
        self.total_bytes += nbytes
        self.total_messages += 1
        if self.traffic_cb is not None:
            self.traffic_cb(src, dst, nbytes, self.engine.now)
        if self.latency_fn is not None:
            return max(self.latency_fn(src, dst, nbytes), 0.0)
        return 0.0


class _SimEndpoint(Endpoint):
    def __init__(self, transport: "SimTransport", node_id):
        super().__init__()
        self.transport = transport
        self.node_id = node_id
        self.peer: Optional["_SimEndpoint"] = None

    @property
    def fabric(self) -> SimFabric:
        return self.transport.fabric

    @property
    def engine(self) -> Engine:
        return self.transport.fabric.engine

    def _wire_delay(self, nbytes: int, dst) -> float:
        p = self.transport.profile
        fabric = self.fabric
        if fabric.traffic_cb is None and fabric.latency_fn is None:
            # No network-model hooks (the common sweep configuration):
            # account inline rather than through _account.
            fabric.total_bytes += nbytes
            fabric.total_messages += 1
            extra = 0.0
        else:
            extra = fabric._account(self.node_id, dst, nbytes)
        faults = fabric.faults
        if faults.active:
            extra += faults.extra_latency(self.node_id, dst)
        return p.base_latency + nbytes * p.per_byte + extra

    def send(self, frame: bytes) -> None:
        if self.closed or self.peer is None:
            raise TransportError("send on closed sim endpoint")
        self.bytes_sent += len(frame)
        peer = self.peer
        faults = self.fabric.faults
        if faults.active and faults.drops_frame(self.node_id, peer.node_id, frame):
            # Lost on the faulted link: the sender paid for the send,
            # the receiver never hears it (no error, no close — exactly
            # the silence a lost reply produces).
            faults.frames_dropped += 1
            return
        delay = self._wire_delay(len(frame), peer.node_id)
        # Bound method + timer args instead of a per-frame closure: the
        # fan-in hot path sends tens of thousands of frames per simulated
        # second, and each closure cell is an allocation the timer wheel
        # otherwise avoids.
        self.engine.call_later(delay, peer._deliver_if_open, frame)

    def _deliver_if_open(self, frame: bytes) -> None:
        if not self.closed:
            self._deliver(frame)

    def rdma_read(self, region_id: int, on_complete, trace=None) -> None:
        if self.closed or self.peer is None:
            on_complete(None)
            return
        peer = self.peer
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            # Link down at issue time: the read completes in error after
            # the transport's detection latency, never silently hangs —
            # the in-flight flag must always be released.
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, None)
            return
        # Request travels to the target... (a trace-context blob rides
        # in the request frame: 15 bytes per entry, see wire.py)
        nreq = 64 if trace is None else 64 + 1 + 15 * len(trace)
        req_delay = self._wire_delay(nreq, peer.node_id)
        self.engine.call_later(
            req_delay, self._read_at_target, region_id, on_complete, trace)

    def _read_at_target(self, region_id: int, on_complete, trace=None) -> None:
        peer = self.peer
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            # Link went down mid-flight: completion error on the
            # initiator after the detection latency.
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, None)
            return
        if peer is None or peer.closed:
            self.engine.call_later(p.base_latency, on_complete, None)
            return
        if trace is not None and peer.on_traced_read is not None:
            for _idx, tid, sid, hop in trace:
                peer.on_traced_read(tid, sid, hop, region_id)
        reader = peer._regions.get(region_id)
        data = bytes(reader()) if reader is not None else None
        nbytes = len(data) if data is not None else 0
        # Target CPU cost (zero for true RDMA).
        cost = p.target_cpu_per_read + nbytes * p.target_cpu_per_byte
        if cost > 0.0 and peer.transport.core is not None:
            peer.transport.core.add_noise(self.engine.now, cost, tag="netmon")
        reply_delay = cost + peer._wire_delay(nbytes, self.node_id)
        if data is not None:
            self._account_read(nbytes)
        self.engine.call_later(reply_delay, self._read_complete, on_complete, data)

    def _read_complete(self, on_complete, data) -> None:
        # Initiator CPU to reap the completion.
        p = self.transport.profile
        if self.transport.core is not None and p.initiator_cpu_per_read > 0:
            self.transport.core.add_noise(
                self.engine.now, p.initiator_cpu_per_read, tag="agg"
            )
        on_complete(data)

    def rdma_read_multi(self, region_ids, on_complete, trace=None) -> None:
        """Coalesced batch read: one request hop, one reply hop.

        Cost semantics match N single reads exactly for CPU (per-read
        target and initiator charges are summed), so §IV-D utilization
        numbers are unchanged; only the per-message wire latency and the
        simulator's event count are amortised over the batch — which is
        the point of update coalescing.
        """
        n = len(region_ids)
        if self.closed or self.peer is None:
            on_complete([None] * n)
            return
        peer = self.peer
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, [None] * n)
            return
        # One request frame naming all N regions (8 bytes per id), plus
        # any trace-context blob (15 bytes per traced region).
        nreq = 64 + 8 * n
        if trace is not None:
            nreq += 1 + 15 * len(trace)
        req_delay = self._wire_delay(nreq, peer.node_id)
        self.engine.call_later(
            req_delay, self._multi_at_target, region_ids, on_complete, trace)

    def _multi_at_target(self, region_ids, on_complete, trace=None) -> None:
        peer = self.peer
        p = self.transport.profile
        n = len(region_ids)
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, [None] * n)
            return
        if peer is None or peer.closed:
            self.engine.call_later(p.base_latency, on_complete, [None] * n)
            return
        if trace is not None and peer.on_traced_read is not None:
            for idx, tid, sid, hop in trace:
                if idx < n:
                    peer.on_traced_read(tid, sid, hop, region_ids[idx])
        results = peer.read_regions(region_ids)
        nbytes = sum(len(d) for d in results if d is not None)
        cost = n * p.target_cpu_per_read + nbytes * p.target_cpu_per_byte
        if cost > 0.0 and peer.transport.core is not None:
            peer.transport.core.add_noise(self.engine.now, cost, tag="netmon")
        # One reply frame: per-region 8-byte status/len headers + data.
        reply_delay = cost + peer._wire_delay(nbytes + 8 * n, self.node_id)
        if nbytes:
            self._account_read(nbytes)
        self.engine.call_later(reply_delay, self._multi_complete, results, on_complete)

    def _multi_complete(self, results, on_complete) -> None:
        p = self.transport.profile
        if self.transport.core is not None and p.initiator_cpu_per_read > 0:
            self.transport.core.add_noise(
                self.engine.now, len(results) * p.initiator_cpu_per_read, tag="agg"
            )
        on_complete(results)

    def close(self) -> None:
        if self.closed:
            return
        peer = self.peer
        self._closed()
        self.transport._conn_count -= 1
        if peer is not None and not peer.closed:
            # Peer learns of the close after a propagation delay.
            def tell_peer() -> None:
                if not peer.closed:
                    peer.transport._conn_count -= 1
                    peer._closed()

            self.engine.call_later(self.transport.profile.base_latency, tell_peer)


class _SimListener(Listener):
    def __init__(self, transport: "SimTransport", addr, on_connect):
        super().__init__(on_connect)
        self.transport = transport
        self.addr = addr

    def close(self) -> None:
        self.transport.fabric._listeners.pop(self.addr, None)


class SimTransport(Transport):
    """One daemon's attachment to the fabric.

    Parameters
    ----------
    fabric:
        The shared :class:`SimFabric`.
    profile:
        Transport type name (``sock``/``rdma``/``ugni``) or a custom
        :class:`TransportProfile`.
    node_id:
        Identifier passed to the fabric's network-model hooks (e.g. a
        torus coordinate or node index).
    core:
        The :class:`CpuCore` this daemon's transport work is charged to.
    """

    def __init__(
        self,
        fabric: SimFabric,
        profile: str | TransportProfile = "sock",
        node_id=None,
        core: Optional[CpuCore] = None,
    ):
        self.fabric = fabric
        self.profile = (
            profile if isinstance(profile, TransportProfile) else get_transport_profile(profile)
        )
        self.node_id = node_id
        self.core = core
        self._conn_count = 0
        self.refused_connections = 0

    @property
    def connections(self) -> int:
        return self._conn_count

    @property
    def registered_memory(self) -> int:
        """Registered-memory footprint implied by open connections."""
        return self._conn_count * self.profile.registered_mem_per_region

    def listen(self, addr, on_connect) -> _SimListener:
        if addr in self.fabric._listeners:
            raise TransportError(f"sim address {addr!r} already listening")
        lst = _SimListener(self, addr, on_connect)
        self.fabric._listeners[addr] = lst
        return lst

    def connect(self, addr, on_connected) -> None:
        eng = self.fabric.engine
        lst = self.fabric._listeners.get(addr)
        if lst is None:
            gateway = self.fabric.gateway
            if gateway is not None and gateway.route(addr) is not None:
                gateway.connect(self, addr, on_connected)
                return
            eng.call_later(self.profile.connect_latency, lambda: on_connected(None))
            return
        target = lst.transport
        if (
            self._conn_count >= self.profile.max_connections
            or target._conn_count >= target.profile.max_connections
        ):
            # Transport endpoint capacity exhausted: the fan-in wall.
            (target if target._conn_count >= target.profile.max_connections else self).refused_connections += 1
            eng.call_later(self.profile.connect_latency, lambda: on_connected(None))
            return

        a = _SimEndpoint(self, self.node_id)
        b = _SimEndpoint(target, target.node_id)
        a.peer, b.peer = b, a
        self._conn_count += 1
        target._conn_count += 1

        def establish() -> None:
            # In-sim version negotiation: feature sets are exchanged at
            # establish time (the HELLO a stream transport would send),
            # and both clocks are the shared DES clock so the peer-age
            # anchor is exact.
            a._negotiate(b.features)
            b._negotiate(a.features)
            a._peer_clock = b._peer_clock = (0.0, 0.0)
            lst.on_connect(b)
            on_connected(a)

        eng.call_later(self.profile.connect_latency, establish)


# ---------------------------------------------------------------------------
# Sharded-parallel support: cross-shard frame queues + lookahead
# ---------------------------------------------------------------------------

def lookahead_of(profile: TransportProfile) -> float:
    """Conservative lookahead one cross-shard link type contributes.

    Frames, reads, and read replies each take at least one
    ``base_latency`` leg; connection establishment is modelled as two
    half-``connect_latency`` legs (request over, verdict back) so both
    sides still finalize exactly ``connect_latency`` after the
    ``connect()`` call.  The window width must clear the shortest leg.
    """
    return min(profile.base_latency, profile.connect_latency / 2.0)


class _RemoteEndpoint(Endpoint):
    """One side of a shard-crossing connection.

    Mirrors :class:`_SimEndpoint` delay-for-delay — every message or
    read leg is stamped with the absolute ``deliver_at`` the unsharded
    endpoint pair would have used, and the gateway replays it on the
    remote engine at exactly that time.  Two deliberate divergences,
    both invisible to stored output: the initiator's read-byte counters
    are bumped when the reply lands (not at target-execution time), and
    equal-timestamp interleaving between cross-shard and local events
    follows each shard's own FIFO order rather than the global one a
    single engine would have produced.
    """

    def __init__(self, transport: "SimTransport", node_id, gateway:
                 "ShardGateway", conn_id, peer_shard: int, peer_node):
        super().__init__()
        self.transport = transport
        self.node_id = node_id
        self.gateway = gateway
        self.conn_id = conn_id
        self.peer_shard = peer_shard
        self.peer_node = peer_node

    fabric = _SimEndpoint.fabric
    engine = _SimEndpoint.engine
    _wire_delay = _SimEndpoint._wire_delay
    _deliver_if_open = _SimEndpoint._deliver_if_open

    def send(self, frame: bytes) -> None:
        if self.closed:
            raise TransportError("send on closed sim endpoint")
        self.bytes_sent += len(frame)
        faults = self.fabric.faults
        if faults.active and faults.drops_frame(self.node_id, self.peer_node,
                                                frame):
            faults.frames_dropped += 1
            return
        delay = self._wire_delay(len(frame), self.peer_node)
        self.gateway.emit(self.peer_shard, "frame",
                          self.engine.now + delay, (self.conn_id, frame))

    def rdma_read(self, region_id: int, on_complete, trace=None) -> None:
        if self.closed:
            on_complete(None)
            return
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, self.peer_node):
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, None)
            return
        nreq = 64 if trace is None else 64 + 1 + 15 * len(trace)
        self._issue_read(nreq, region_id, on_complete, trace, multi=False)

    def rdma_read_multi(self, region_ids, on_complete, trace=None) -> None:
        n = len(region_ids)
        if self.closed:
            on_complete([None] * n)
            return
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, self.peer_node):
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, [None] * n)
            return
        nreq = 64 + 8 * n
        if trace is not None:
            nreq += 1 + 15 * len(trace)
        self._issue_read(nreq, tuple(region_ids), on_complete, trace,
                         multi=True)

    def _issue_read(self, nreq: int, spec, on_complete, trace,
                    multi: bool) -> None:
        req_delay = self._wire_delay(nreq, self.peer_node)
        read_id = self.gateway.register_read(on_complete, multi,
                                             len(spec) if multi else 1)
        self.gateway.emit(self.peer_shard, "read",
                          self.engine.now + req_delay,
                          (self.conn_id, read_id, spec, trace, multi))

    def close(self) -> None:
        if self.closed:
            return
        self._closed()
        self.transport._conn_count -= 1
        self.gateway.emit(self.peer_shard, "close",
                          self.engine.now + self.transport.profile.base_latency,
                          (self.conn_id,))


class ShardGateway:
    """One shard's half of the cross-shard fabric boundary.

    Owns the remote-listener routing table, the per-peer outgoing
    message queues flushed at each window barrier, and the connection /
    in-flight-read state for every link that crosses this shard's
    boundary.  Messages are ``(deliver_at, src_shard, seq, kind,
    payload)`` tuples: the absolute delivery timestamp is computed on
    the sending side from the same profile arithmetic the unsharded
    endpoints use, and :meth:`ingest` replays the batch in
    ``(deliver_at, src_shard, seq)`` order via ``call_at`` — a total,
    deterministic order regardless of arrival interleaving.

    The constructor validates the window lookahead (rejecting
    zero-lookahead partitions loudly), and :meth:`emit` enforces the
    conservative invariant at runtime: no message may be emitted with
    ``deliver_at`` closer than one lookahead from now.
    """

    def __init__(self, fabric: SimFabric, shard_id: int, nshards: int,
                 lookahead: float):
        if lookahead <= 0.0:
            raise ConfigError(
                "shard partition has zero lookahead: a cross-shard link "
                "with no minimum latency (e.g. the 'local' profile, or a "
                "shared flow-engine latency model) cannot be windowed")
        if fabric.gateway is not None:
            raise ConfigError("fabric already has a shard gateway")
        self.fabric = fabric
        self.shard_id = shard_id
        self.nshards = nshards
        self.lookahead = float(lookahead)
        self._routes: dict[object, int] = {}
        self._outgoing: dict[int, list] = {}
        self._conns: dict[object, _RemoteEndpoint] = {}
        self._pending_connects: dict[object, Callable] = {}
        self._pending_reads: dict[int, tuple] = {}
        self._mseq = itertools.count()
        self._cseq = itertools.count()
        self._rseq = itertools.count()
        self.frames_sent = 0
        fabric.gateway = self
        _SHARD_RUNTIME.shards = max(_SHARD_RUNTIME.shards, nshards)
        _SHARD_RUNTIME.lookahead_ns = int(self.lookahead * 1e9)

    # -- routing ---------------------------------------------------------
    def add_route(self, addr, shard: int) -> None:
        """Declare that ``addr`` listens in ``shard`` (a remote one)."""
        if shard == self.shard_id:
            raise ConfigError(f"route for {addr!r} points at this shard")
        self._routes[addr] = shard

    def route(self, addr) -> Optional[int]:
        return self._routes.get(addr)

    # -- window barrier interface ---------------------------------------
    def emit(self, dst_shard: int, kind: str, deliver_at: float,
             payload: tuple) -> None:
        now = self.fabric.engine.now
        if deliver_at < now + self.lookahead - 1e-15:
            raise TransportError(
                f"cross-shard {kind} violates lookahead: deliver_at="
                f"{deliver_at} < now={now} + L={self.lookahead}")
        self._outgoing.setdefault(dst_shard, []).append(
            (deliver_at, self.shard_id, next(self._mseq), kind, payload))
        self.frames_sent += 1
        _SHARD_RUNTIME.cross_frames += 1

    def take_outgoing(self) -> list[tuple[int, list]]:
        """Drain the per-peer queues: sorted ``(dst_shard, messages)``."""
        out = [(dst, self._outgoing[dst]) for dst in sorted(self._outgoing)]
        self._outgoing = {}
        return out

    def ingest(self, messages: list) -> None:
        """Schedule a barrier batch onto this shard's engine."""
        eng = self.fabric.engine
        for msg in sorted(messages):
            deliver_at, _src, _seq, kind, payload = msg
            eng.call_at(deliver_at, self._dispatch, kind, payload)

    # -- initiator side --------------------------------------------------
    def connect(self, transport: "SimTransport", addr, on_connected) -> None:
        eng = self.fabric.engine
        p = transport.profile
        dst_shard = self._routes[addr]
        if transport._conn_count >= p.max_connections:
            transport.refused_connections += 1
            eng.call_later(p.connect_latency, lambda: on_connected(None))
            return
        conn_id = (self.shard_id, next(self._cseq))
        ep = _RemoteEndpoint(transport, transport.node_id, self, conn_id,
                             dst_shard, peer_node=addr)
        transport._conn_count += 1
        self._conns[conn_id] = ep
        self._pending_connects[conn_id] = on_connected
        half = p.connect_latency / 2.0
        self.emit(dst_shard, "connreq", eng.now + half,
                  (conn_id, addr, p.name, transport.node_id,
                   tuple(sorted(ep.features)), half))

    def register_read(self, on_complete, multi: bool, n: int) -> int:
        read_id = next(self._rseq)
        self._pending_reads[read_id] = (on_complete, multi, n)
        return read_id

    # -- message dispatch (runs at deliver_at on this shard's engine) ----
    def _dispatch(self, kind: str, payload: tuple) -> None:
        if kind == "frame":
            conn_id, frame = payload
            ep = self._conns.get(conn_id)
            if ep is not None:
                ep._deliver_if_open(frame)
        elif kind == "read":
            self._on_read(payload)
        elif kind == "readreply":
            self._on_readreply(payload)
        elif kind == "connreq":
            self._on_connreq(payload)
        elif kind == "connok":
            self._on_connok(payload)
        elif kind == "connrefused":
            self._on_connrefused(payload)
        elif kind == "close":
            (conn_id,) = payload
            ep = self._conns.get(conn_id)
            if ep is not None and not ep.closed:
                ep.transport._conn_count -= 1
                ep._closed()
        else:  # pragma: no cover - protocol versioning guard
            raise TransportError(f"unknown cross-shard message {kind!r}")

    def _on_connreq(self, payload: tuple) -> None:
        conn_id, addr, profile_name, src_node, feats, half = payload
        eng = self.fabric.engine
        src_shard = conn_id[0]
        lst = self.fabric._listeners.get(addr)
        if lst is None:
            self.emit(src_shard, "connrefused", eng.now + half,
                      (conn_id, False))
            return
        target = lst.transport
        if target.profile.name != profile_name:
            raise ConfigError(
                f"cross-shard link {addr!r} mixes transport profiles "
                f"({profile_name!r} -> {target.profile.name!r}); shards "
                f"must agree on the link's cost model")
        if target._conn_count >= target.profile.max_connections:
            target.refused_connections += 1
            self.emit(src_shard, "connrefused", eng.now + half,
                      (conn_id, True))
            return
        b = _RemoteEndpoint(target, target.node_id, self, conn_id,
                            src_shard, peer_node=src_node)
        b._negotiate(frozenset(feats))
        b._peer_clock = (0.0, 0.0)
        target._conn_count += 1
        self._conns[conn_id] = b
        # The accept fires one half-latency later — exactly
        # connect_latency after the remote connect() call, matching the
        # unsharded establish instant.
        eng.call_at(eng.now + half, self._accept, lst, b)
        self.emit(src_shard, "connok", eng.now + half,
                  (conn_id, target.node_id, tuple(sorted(b.features))))

    @staticmethod
    def _accept(lst: "_SimListener", b: "_RemoteEndpoint") -> None:
        lst.on_connect(b)

    def _on_connok(self, payload: tuple) -> None:
        conn_id, target_node, feats = payload
        a = self._conns[conn_id]
        on_connected = self._pending_connects.pop(conn_id)
        a.peer_node = target_node
        a._negotiate(frozenset(feats))
        a._peer_clock = (0.0, 0.0)
        on_connected(a)

    def _on_connrefused(self, payload: tuple) -> None:
        conn_id, _at_capacity = payload
        a = self._conns.pop(conn_id)
        on_connected = self._pending_connects.pop(conn_id)
        a.transport._conn_count -= 1
        on_connected(None)

    def _on_read(self, payload: tuple) -> None:
        conn_id, read_id, spec, trace, multi = payload
        eng = self.fabric.engine
        b = self._conns.get(conn_id)
        if b is None:
            raise TransportError(f"cross-shard read on unknown conn {conn_id}")
        p = b.transport.profile
        n = len(spec) if multi else 1
        faults = self.fabric.faults
        failed = faults.active and faults.blocked(b.node_id, b.peer_node)
        if failed:
            faults.reads_failed += 1
        if failed or b.closed:
            # Mirror of the unsharded mid-flight failure branches: the
            # initiator's completion errors out one detection latency
            # later, with no CPU charges on either side.
            self.emit(b.peer_shard, "readreply",
                      eng.now + p.base_latency,
                      (conn_id, read_id, None, 0, False))
            return
        if trace is not None and b.on_traced_read is not None:
            if multi:
                for idx, tid, sid, hop in trace:
                    if idx < n:
                        b.on_traced_read(tid, sid, hop, spec[idx])
            else:
                for _idx, tid, sid, hop in trace:
                    b.on_traced_read(tid, sid, hop, spec)
        if multi:
            result = b.read_regions(spec)
            nbytes = sum(len(d) for d in result if d is not None)
            cost = n * p.target_cpu_per_read + nbytes * p.target_cpu_per_byte
            reply_bytes = nbytes + 8 * n
        else:
            reader = b._regions.get(spec)
            result = bytes(reader()) if reader is not None else None
            nbytes = len(result) if result is not None else 0
            cost = p.target_cpu_per_read + nbytes * p.target_cpu_per_byte
            reply_bytes = nbytes
        if cost > 0.0 and b.transport.core is not None:
            b.transport.core.add_noise(eng.now, cost, tag="netmon")
        reply_delay = cost + b._wire_delay(reply_bytes, b.peer_node)
        self.emit(b.peer_shard, "readreply", eng.now + reply_delay,
                  (conn_id, read_id, result, nbytes, True))

    def _on_readreply(self, payload: tuple) -> None:
        conn_id, read_id, result, nbytes, charge = payload
        on_complete, multi, n = self._pending_reads.pop(read_id)
        if result is None and multi:
            result = [None] * n
        a = self._conns.get(conn_id)
        if charge and a is not None:
            p = a.transport.profile
            if multi:
                if nbytes:
                    a._account_read(nbytes)
            elif result is not None:
                a._account_read(nbytes)
            if a.transport.core is not None and p.initiator_cpu_per_read > 0:
                a.transport.core.add_noise(
                    self.fabric.engine.now,
                    (n if multi else 1) * p.initiator_cpu_per_read, tag="agg")
        on_complete(result)
