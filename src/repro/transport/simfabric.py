"""Simulated transports for the discrete-event simulator.

A :class:`SimFabric` is the process-wide wiring: an address table plus
optional hooks into a network model (latency per message, traffic
accounting).  A :class:`SimTransport` is one daemon's attachment to the
fabric with a named cost profile (``sock``/``rdma``/``ugni``).

Cost semantics (see :data:`repro.transport.base.PROFILES`):

* every message/read experiences ``base_latency + nbytes * per_byte``
  plus whatever the injected network-model latency function adds;
* an RDMA read consumes **zero CPU on the target** for the ``rdma`` and
  ``ugni`` profiles; the ``sock`` profile charges the target's core,
  which is how monitoring traffic perturbs applications on sampler
  nodes (§V impact testing: "no net" variants isolate exactly this);
* a transport refuses connections beyond ``max_connections``, the
  transport-level fan-in bound (§IV-A).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Engine
from repro.sim.resources import CpuCore
from repro.transport.base import (
    Endpoint,
    Listener,
    Transport,
    TransportProfile,
    get_transport_profile,
)
from repro.util.errors import TransportError

__all__ = ["SimFabric", "SimTransport", "FabricFaults"]

#: latency_fn(src_node_id, dst_node_id, nbytes) -> extra seconds
LatencyFn = Callable[[object, object, int], float]
#: traffic_cb(src_node_id, dst_node_id, nbytes, time)
TrafficCb = Callable[[object, object, int, float], None]


class FabricFaults:
    """Link-level fault state consulted by simulated endpoints.

    Injected by :class:`repro.faults.FaultInjector` (or directly by
    tests): blocked links black-hole frames and fail one-sided reads,
    ``extra_latency`` slows a link, and frame filters drop individual
    frames (e.g. one LOOKUP_REPLY).  Links are undirected for
    block/slow state; filters see the direction of each frame.  All
    state changes take effect at the simulation instant they are made —
    the injector schedules them on the engine clock.
    """

    def __init__(self) -> None:
        self._down: set[frozenset] = set()
        self._slow: dict[frozenset, float] = {}
        #: fn(src, dst, frame) -> True to drop.  Filters run in
        #: registration order; the first hit wins.
        self._filters: list = []
        self.frames_dropped = 0
        self.reads_failed = 0

    @property
    def active(self) -> bool:
        return bool(self._down or self._slow or self._filters)

    @staticmethod
    def _key(a, b) -> frozenset:
        return frozenset((a, b))

    def block(self, a, b) -> None:
        self._down.add(self._key(a, b))

    def unblock(self, a, b) -> None:
        self._down.discard(self._key(a, b))

    def blocked(self, a, b) -> bool:
        return self._key(a, b) in self._down

    def set_latency(self, a, b, extra: float) -> None:
        self._slow[self._key(a, b)] = max(extra, 0.0)

    def clear_latency(self, a, b) -> None:
        self._slow.pop(self._key(a, b), None)

    def extra_latency(self, a, b) -> float:
        return self._slow.get(self._key(a, b), 0.0)

    def add_filter(self, fn) -> None:
        self._filters.append(fn)

    def remove_filter(self, fn) -> None:
        if fn in self._filters:
            self._filters.remove(fn)

    def drops_frame(self, src, dst, frame: bytes) -> bool:
        """Whether the fault state eats this frame on the wire."""
        if self._key(src, dst) in self._down:
            return True
        for fn in self._filters:
            if fn(src, dst, frame):
                return True
        return False


class SimFabric:
    """Address table + network-model hooks shared by simulated daemons."""

    def __init__(
        self,
        engine: Engine,
        latency_fn: Optional[LatencyFn] = None,
        traffic_cb: Optional[TrafficCb] = None,
    ):
        self.engine = engine
        self.latency_fn = latency_fn
        self.traffic_cb = traffic_cb
        self._listeners: dict[object, "_SimListener"] = {}
        self.total_bytes = 0
        self.total_messages = 0
        #: Fault-injection state; endpoints consult it only while a
        #: fault is live (one attribute check on the no-fault path).
        self.faults = FabricFaults()

    def _account(self, src, dst, nbytes: int) -> float:
        """Record traffic and return the model's extra latency."""
        self.total_bytes += nbytes
        self.total_messages += 1
        if self.traffic_cb is not None:
            self.traffic_cb(src, dst, nbytes, self.engine.now)
        if self.latency_fn is not None:
            return max(self.latency_fn(src, dst, nbytes), 0.0)
        return 0.0


class _SimEndpoint(Endpoint):
    def __init__(self, transport: "SimTransport", node_id):
        super().__init__()
        self.transport = transport
        self.node_id = node_id
        self.peer: Optional["_SimEndpoint"] = None

    @property
    def fabric(self) -> SimFabric:
        return self.transport.fabric

    @property
    def engine(self) -> Engine:
        return self.transport.fabric.engine

    def _wire_delay(self, nbytes: int, dst) -> float:
        p = self.transport.profile
        fabric = self.fabric
        if fabric.traffic_cb is None and fabric.latency_fn is None:
            # No network-model hooks (the common sweep configuration):
            # account inline rather than through _account.
            fabric.total_bytes += nbytes
            fabric.total_messages += 1
            extra = 0.0
        else:
            extra = fabric._account(self.node_id, dst, nbytes)
        faults = fabric.faults
        if faults.active:
            extra += faults.extra_latency(self.node_id, dst)
        return p.base_latency + nbytes * p.per_byte + extra

    def send(self, frame: bytes) -> None:
        if self.closed or self.peer is None:
            raise TransportError("send on closed sim endpoint")
        self.bytes_sent += len(frame)
        peer = self.peer
        faults = self.fabric.faults
        if faults.active and faults.drops_frame(self.node_id, peer.node_id, frame):
            # Lost on the faulted link: the sender paid for the send,
            # the receiver never hears it (no error, no close — exactly
            # the silence a lost reply produces).
            faults.frames_dropped += 1
            return
        delay = self._wire_delay(len(frame), peer.node_id)
        # Bound method + timer args instead of a per-frame closure: the
        # fan-in hot path sends tens of thousands of frames per simulated
        # second, and each closure cell is an allocation the timer wheel
        # otherwise avoids.
        self.engine.call_later(delay, peer._deliver_if_open, frame)

    def _deliver_if_open(self, frame: bytes) -> None:
        if not self.closed:
            self._deliver(frame)

    def rdma_read(self, region_id: int, on_complete, trace=None) -> None:
        if self.closed or self.peer is None:
            on_complete(None)
            return
        peer = self.peer
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            # Link down at issue time: the read completes in error after
            # the transport's detection latency, never silently hangs —
            # the in-flight flag must always be released.
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, None)
            return
        # Request travels to the target... (a trace-context blob rides
        # in the request frame: 15 bytes per entry, see wire.py)
        nreq = 64 if trace is None else 64 + 1 + 15 * len(trace)
        req_delay = self._wire_delay(nreq, peer.node_id)
        self.engine.call_later(
            req_delay, self._read_at_target, region_id, on_complete, trace)

    def _read_at_target(self, region_id: int, on_complete, trace=None) -> None:
        peer = self.peer
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            # Link went down mid-flight: completion error on the
            # initiator after the detection latency.
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, None)
            return
        if peer is None or peer.closed:
            self.engine.call_later(p.base_latency, on_complete, None)
            return
        if trace is not None and peer.on_traced_read is not None:
            for _idx, tid, sid, hop in trace:
                peer.on_traced_read(tid, sid, hop, region_id)
        reader = peer._regions.get(region_id)
        data = bytes(reader()) if reader is not None else None
        nbytes = len(data) if data is not None else 0
        # Target CPU cost (zero for true RDMA).
        cost = p.target_cpu_per_read + nbytes * p.target_cpu_per_byte
        if cost > 0.0 and peer.transport.core is not None:
            peer.transport.core.add_noise(self.engine.now, cost, tag="netmon")
        reply_delay = cost + peer._wire_delay(nbytes, self.node_id)
        if data is not None:
            self._account_read(nbytes)
        self.engine.call_later(reply_delay, self._read_complete, on_complete, data)

    def _read_complete(self, on_complete, data) -> None:
        # Initiator CPU to reap the completion.
        p = self.transport.profile
        if self.transport.core is not None and p.initiator_cpu_per_read > 0:
            self.transport.core.add_noise(
                self.engine.now, p.initiator_cpu_per_read, tag="agg"
            )
        on_complete(data)

    def rdma_read_multi(self, region_ids, on_complete, trace=None) -> None:
        """Coalesced batch read: one request hop, one reply hop.

        Cost semantics match N single reads exactly for CPU (per-read
        target and initiator charges are summed), so §IV-D utilization
        numbers are unchanged; only the per-message wire latency and the
        simulator's event count are amortised over the batch — which is
        the point of update coalescing.
        """
        n = len(region_ids)
        if self.closed or self.peer is None:
            on_complete([None] * n)
            return
        peer = self.peer
        p = self.transport.profile
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, [None] * n)
            return
        # One request frame naming all N regions (8 bytes per id), plus
        # any trace-context blob (15 bytes per traced region).
        nreq = 64 + 8 * n
        if trace is not None:
            nreq += 1 + 15 * len(trace)
        req_delay = self._wire_delay(nreq, peer.node_id)
        self.engine.call_later(
            req_delay, self._multi_at_target, region_ids, on_complete, trace)

    def _multi_at_target(self, region_ids, on_complete, trace=None) -> None:
        peer = self.peer
        p = self.transport.profile
        n = len(region_ids)
        faults = self.fabric.faults
        if faults.active and faults.blocked(self.node_id, peer.node_id):
            faults.reads_failed += 1
            self.engine.call_later(p.base_latency, on_complete, [None] * n)
            return
        if peer is None or peer.closed:
            self.engine.call_later(p.base_latency, on_complete, [None] * n)
            return
        if trace is not None and peer.on_traced_read is not None:
            for idx, tid, sid, hop in trace:
                if idx < n:
                    peer.on_traced_read(tid, sid, hop, region_ids[idx])
        results = peer.read_regions(region_ids)
        nbytes = sum(len(d) for d in results if d is not None)
        cost = n * p.target_cpu_per_read + nbytes * p.target_cpu_per_byte
        if cost > 0.0 and peer.transport.core is not None:
            peer.transport.core.add_noise(self.engine.now, cost, tag="netmon")
        # One reply frame: per-region 8-byte status/len headers + data.
        reply_delay = cost + peer._wire_delay(nbytes + 8 * n, self.node_id)
        if nbytes:
            self._account_read(nbytes)
        self.engine.call_later(reply_delay, self._multi_complete, results, on_complete)

    def _multi_complete(self, results, on_complete) -> None:
        p = self.transport.profile
        if self.transport.core is not None and p.initiator_cpu_per_read > 0:
            self.transport.core.add_noise(
                self.engine.now, len(results) * p.initiator_cpu_per_read, tag="agg"
            )
        on_complete(results)

    def close(self) -> None:
        if self.closed:
            return
        peer = self.peer
        self._closed()
        self.transport._conn_count -= 1
        if peer is not None and not peer.closed:
            # Peer learns of the close after a propagation delay.
            def tell_peer() -> None:
                if not peer.closed:
                    peer.transport._conn_count -= 1
                    peer._closed()

            self.engine.call_later(self.transport.profile.base_latency, tell_peer)


class _SimListener(Listener):
    def __init__(self, transport: "SimTransport", addr, on_connect):
        super().__init__(on_connect)
        self.transport = transport
        self.addr = addr

    def close(self) -> None:
        self.transport.fabric._listeners.pop(self.addr, None)


class SimTransport(Transport):
    """One daemon's attachment to the fabric.

    Parameters
    ----------
    fabric:
        The shared :class:`SimFabric`.
    profile:
        Transport type name (``sock``/``rdma``/``ugni``) or a custom
        :class:`TransportProfile`.
    node_id:
        Identifier passed to the fabric's network-model hooks (e.g. a
        torus coordinate or node index).
    core:
        The :class:`CpuCore` this daemon's transport work is charged to.
    """

    def __init__(
        self,
        fabric: SimFabric,
        profile: str | TransportProfile = "sock",
        node_id=None,
        core: Optional[CpuCore] = None,
    ):
        self.fabric = fabric
        self.profile = (
            profile if isinstance(profile, TransportProfile) else get_transport_profile(profile)
        )
        self.node_id = node_id
        self.core = core
        self._conn_count = 0
        self.refused_connections = 0

    @property
    def connections(self) -> int:
        return self._conn_count

    @property
    def registered_memory(self) -> int:
        """Registered-memory footprint implied by open connections."""
        return self._conn_count * self.profile.registered_mem_per_region

    def listen(self, addr, on_connect) -> _SimListener:
        if addr in self.fabric._listeners:
            raise TransportError(f"sim address {addr!r} already listening")
        lst = _SimListener(self, addr, on_connect)
        self.fabric._listeners[addr] = lst
        return lst

    def connect(self, addr, on_connected) -> None:
        eng = self.fabric.engine
        lst = self.fabric._listeners.get(addr)
        if lst is None:
            eng.call_later(self.profile.connect_latency, lambda: on_connected(None))
            return
        target = lst.transport
        if (
            self._conn_count >= self.profile.max_connections
            or target._conn_count >= target.profile.max_connections
        ):
            # Transport endpoint capacity exhausted: the fan-in wall.
            (target if target._conn_count >= target.profile.max_connections else self).refused_connections += 1
            eng.call_later(self.profile.connect_latency, lambda: on_connected(None))
            return

        a = _SimEndpoint(self, self.node_id)
        b = _SimEndpoint(target, target.node_id)
        a.peer, b.peer = b, a
        self._conn_count += 1
        target._conn_count += 1

        def establish() -> None:
            # In-sim version negotiation: feature sets are exchanged at
            # establish time (the HELLO a stream transport would send),
            # and both clocks are the shared DES clock so the peer-age
            # anchor is exact.
            a._negotiate(b.features)
            b._negotiate(a.features)
            a._peer_clock = b._peer_clock = (0.0, 0.0)
            lst.on_connect(b)
            on_connected(a)

        eng.call_later(self.profile.connect_latency, establish)
