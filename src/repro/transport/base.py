"""Transport plugin interface and per-transport cost profiles.

An :class:`Endpoint` is one side of an established connection.  It moves
opaque *frames* (encoded by :mod:`repro.core.wire`) and supports
one-sided reads of *registered regions* — the RDMA abstraction through
which aggregators pull data chunks.  Over true-RDMA transports a region
read consumes no CPU on the target; the socket transport emulates the
read with an internal request/reply that does.

All endpoint callbacks (``on_message``, ``on_close``, read completions)
are invoked from transport machinery; owners must provide their own
serialization (ldmsd uses one daemon lock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.util.errors import ConfigError, TransportError
from repro.util.timeutil import monotonic as _monotonic

__all__ = [
    "BASE_FEATURES",
    "Endpoint",
    "Listener",
    "Transport",
    "TransportProfile",
    "transport_registry",
    "register_transport",
    "get_transport_profile",
    "PROFILES",
]


@dataclass(frozen=True)
class TransportProfile:
    """Cost/capacity model of a transport type.

    The numbers matter only for the simulated fabric; the real ``sock``
    and ``local`` transports have whatever cost the machine gives them.
    Values are calibrated in DESIGN.md §"Numbers we calibrate".

    Attributes
    ----------
    connect_latency:
        Seconds to establish a connection.
    base_latency:
        One-way message/RDMA-read initiation latency, seconds.
    per_byte:
        Serialization time per byte (1/bandwidth), seconds.
    target_cpu_per_read:
        CPU seconds consumed *on the target node* to service one data
        fetch.  Zero for RDMA transports ("the data fetching {f} will
        not consume CPU cycles", paper Fig. 2).
    target_cpu_per_byte:
        Additional target CPU per fetched byte (socket copies).
    initiator_cpu_per_read:
        CPU seconds on the aggregator to initiate+complete one fetch.
    max_connections:
        Endpoint capacity of one daemon — the transport-level fan-in
        bound (paper §IV-A: ~9,000:1 sock and IB RDMA, >15,000:1 ugni).
    registered_mem_per_region:
        Bytes of registered memory per exposed region ("a few kB",
        §IV-D).
    """

    name: str
    connect_latency: float
    base_latency: float
    per_byte: float
    target_cpu_per_read: float
    target_cpu_per_byte: float
    initiator_cpu_per_read: float
    max_connections: int
    registered_mem_per_region: int = 4096


#: Built-in profiles.  sock ~ commodity GigE/IPoIB; rdma ~ IB verbs;
#: ugni ~ Cray Gemini.  Fan-in capacities follow §IV-A.
PROFILES: dict[str, TransportProfile] = {
    "sock": TransportProfile(
        name="sock",
        connect_latency=200e-6,
        base_latency=40e-6,
        per_byte=1.0 / 1.0e9,  # ~1 GB/s effective stream bandwidth
        target_cpu_per_read=12e-6,  # syscall + copy at the sampler
        target_cpu_per_byte=0.3e-9,
        initiator_cpu_per_read=20e-6,
        max_connections=9_216,  # fd-limit bound: ~9,000:1 fan-in
    ),
    "rdma": TransportProfile(
        name="rdma",
        connect_latency=500e-6,  # QP bring-up is slower than TCP accept
        base_latency=4e-6,
        per_byte=1.0 / 3.2e9,  # QDR IB
        target_cpu_per_read=0.0,  # one-sided read: zero target CPU
        target_cpu_per_byte=0.0,
        initiator_cpu_per_read=15e-6,
        max_connections=9_216,  # QP context limit: ~9,000:1
    ),
    "ugni": TransportProfile(
        name="ugni",
        connect_latency=400e-6,
        base_latency=2.5e-6,
        per_byte=1.0 / 4.7e9,  # Gemini link
        target_cpu_per_read=0.0,
        target_cpu_per_byte=0.0,
        initiator_cpu_per_read=10e-6,
        max_connections=16_384,  # >15,000:1 (paper §IV-A)
    ),
    "local": TransportProfile(
        name="local",
        connect_latency=0.0,
        base_latency=0.0,
        per_byte=0.0,
        target_cpu_per_read=0.0,
        target_cpu_per_byte=0.0,
        initiator_cpu_per_read=0.0,
        max_connections=1 << 20,
    ),
}


def get_transport_profile(name: str) -> TransportProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(f"unknown transport {name!r}; know {sorted(PROFILES)}") from None


def _noop_inc(n: int = 1) -> None:
    """Stand-in for a counter ``inc`` on endpoints with no registry."""


#: Features this build's endpoints advertise during connection setup.
#: "trace-ctx": the peer may set :data:`repro.core.wire.TRACE_FLAG` and
#: attach trace-context blobs to frames it sends us.
#: "query": the peer may send ``MsgType.QUERY_REQ`` frames (serving
#: tier, PR 9) — old builds would reject the unknown message type.
BASE_FEATURES = frozenset({"trace-ctx", "query"})


class Endpoint:
    """One side of a connection.  Subclasses implement the four verbs."""

    def __init__(self) -> None:
        self.on_message: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        #: Receiver-side fault hook: when set, each inbound frame is
        #: offered to the filter before delivery and silently discarded
        #: if it returns True — a transport-agnostic injection point
        #: (the simulated fabric additionally models link-level faults).
        self.drop_filter: Optional[Callable[[bytes], bool]] = None
        self.frames_dropped = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.rdma_bytes_read = 0
        self.closed = False
        self._obs = None
        self._inc_frames_rx = _noop_inc
        self._inc_bytes_rx = _noop_inc
        self._inc_reads = _noop_inc
        self._inc_read_bytes = _noop_inc
        #: Version negotiation (PR 7): what we speak, and what the peer
        #: told us it speaks.  ``trace_ok`` is the pre-computed "may I
        #: attach trace context to frames for this peer" bit, so the
        #: exemplar path tests one attribute.  Until the peer's feature
        #: set arrives (simfabric: at establish; sock: HELLO frame;
        #: never, for old builds) we assume nothing.
        self.features: frozenset[str] = BASE_FEATURES
        self.peer_features: frozenset[str] = frozenset()
        self.trace_ok = False
        self.query_ok = False
        #: Serve-side hook invoked once per trace-context entry on an
        #: inbound traced read: ``fn(trace_id, parent_span, hop,
        #: region_id)``.  Installed by the serving daemon.
        self.on_traced_read: Optional[Callable[[int, int, int, int], None]] = None
        #: Daemon clock of the owning daemon (``env.now``), installed by
        #: the owner; stream transports stamp it into their HELLO.
        self.clock: Optional[Callable[[], float]] = None
        #: (peer_now, local_now) pair captured when the peer's HELLO
        #: arrived — the clock anchor behind :meth:`peer_age`.
        self._peer_clock: Optional[tuple[float, float]] = None
        #: region_id -> zero-argument callable returning the region bytes
        self._regions: dict[int, Callable[[], bytes]] = {}
        #: Optional batch reader installed by the serving daemon
        #: (``fn(region_ids, registered) -> list[bytes | None]``).  When
        #: present, coalesced reads serialize every requested region in
        #: one call — the columnar plane gathers same-layout rows with a
        #: single ``tobytes()`` — instead of one reader() per region.
        self._multi_reader = None

    @property
    def obs(self):
        """Telemetry registry of the owning daemon, attached when the
        endpoint is bound (``Ldmsd``/``Producer``).  Assigning binds the
        frame/read counter ``inc`` methods once, so per-event accounting
        is a single call with no registry lookup on the hot path."""
        return self._obs

    @obs.setter
    def obs(self, registry) -> None:
        self._obs = registry
        if registry is None:
            self._inc_frames_rx = _noop_inc
            self._inc_bytes_rx = _noop_inc
            self._inc_reads = _noop_inc
            self._inc_read_bytes = _noop_inc
        else:
            (self._inc_frames_rx, self._inc_bytes_rx,
             self._inc_reads, self._inc_read_bytes) = registry.endpoint_incs()

    # -- negotiation -------------------------------------------------------
    def _negotiate(self, peer_features: frozenset[str]) -> None:
        """Record the peer's advertised feature set."""
        self.peer_features = peer_features
        self.trace_ok = "trace-ctx" in peer_features
        self.query_ok = "query" in peer_features

    def peer_age(self, ts: float) -> Optional[float]:
        """Age of a peer-clock timestamp ``ts`` in seconds, or ``None``.

        Daemon clocks are monotonic-since-start (not wall time), so a
        transaction timestamp from a remote set is meaningless locally
        until the peer's HELLO anchors its clock against ours.  In-sim
        endpoints share the DES clock, so the anchor is exact there.
        """
        anchor = self._peer_clock
        if anchor is None:
            return None
        peer_then, local_then = anchor
        clock = self.clock
        # Ownerless endpoints (CLI clients) fall back to the host
        # monotonic clock; the HELLO capture used the same fallback, so
        # the anchor arithmetic stays consistent either way.
        local_now = clock() if clock is not None else _monotonic()
        peer_now = peer_then + (local_now - local_then)
        age = peer_now - ts
        return age if age > 0.0 else 0.0

    def _anchor_peer_clock(self, peer_now: float) -> None:
        """Record the peer-clock anchor for :meth:`peer_age`."""
        clock = self.clock
        local_now = clock() if clock is not None else _monotonic()
        self._peer_clock = (peer_now, local_now)

    # -- messaging ---------------------------------------------------------
    def send(self, frame: bytes) -> None:
        raise NotImplementedError

    # -- one-sided reads -----------------------------------------------------
    def register_region(self, region_id: int, reader: Callable[[], bytes]) -> None:
        """Expose memory for one-sided reads by the peer.

        ``reader`` must return the *current* raw bytes of the region —
        an RDMA read sees whatever is in memory at fetch time, including
        torn mid-transaction data (the consistent flag exists for this).
        """
        if region_id in self._regions:
            raise TransportError(f"region {region_id} already registered")
        self._regions[region_id] = reader

    def unregister_region(self, region_id: int) -> None:
        self._regions.pop(region_id, None)

    def set_multi_reader(self, fn) -> None:
        """Install a serve-side batch reader for coalesced reads.

        ``fn(region_ids, registered)`` must return one ``bytes | None``
        per requested region, in request order, byte-identical to
        calling each registered reader — it exists purely so the daemon
        can serialize many same-layout regions in one vectorized sweep.
        Regions absent from ``registered`` must come back ``None``,
        preserving per-endpoint region visibility.
        """
        self._multi_reader = fn

    def read_regions(self, region_ids) -> list:
        """Serve-side materialization of a coalesced read request."""
        multi = self._multi_reader
        if multi is not None:
            return multi(region_ids, self._regions)
        regions = self._regions
        out = []
        for rid in region_ids:
            reader = regions.get(rid)
            out.append(bytes(reader()) if reader is not None else None)
        return out

    @property
    def registered_regions(self) -> int:
        return len(self._regions)

    def rdma_read(
        self, region_id: int, on_complete: Callable[[Optional[bytes]], None],
        trace: tuple | None = None,
    ) -> None:
        """Fetch the peer's registered region; completion gets the bytes
        or ``None`` if the region is gone / connection failed.

        ``trace`` optionally carries trace-context entries (see
        :func:`repro.core.wire.pack_trace_ctx`) to the serving side;
        callers must only pass it when :attr:`trace_ok` is set.
        """
        raise NotImplementedError

    def rdma_read_multi(
        self,
        region_ids: list[int],
        on_complete: Callable[[list[Optional[bytes]]], None],
        trace: tuple | None = None,
    ) -> None:
        """Fetch several registered regions in one logical operation.

        ``on_complete`` receives one entry per requested region, in
        request order (``None`` per region that is gone / failed).  The
        base implementation gathers N independent :meth:`rdma_read`
        completions; transports with a native batch override this to
        amortise framing and wire hops over the whole batch (§IV-D
        update coalescing).  ``trace`` entries are routed to the single
        read matching their region index.
        """
        n = len(region_ids)
        if n == 0:
            on_complete([])
            return
        by_idx = None
        if trace is not None:
            by_idx = {}
            for entry in trace:
                by_idx.setdefault(entry[0], []).append(entry)
        results: list[Optional[bytes]] = [None] * n
        remaining = [n]

        def _gather(i: int):
            def cb(data: Optional[bytes]) -> None:
                results[i] = data
                remaining[0] -= 1
                if remaining[0] == 0:
                    on_complete(results)

            return cb

        for i, rid in enumerate(region_ids):
            ctx = tuple(by_idx[i]) if by_idx is not None and i in by_idx else None
            self.rdma_read(rid, _gather(i), trace=ctx)

    def close(self) -> None:
        raise NotImplementedError

    # -- plumbing ----------------------------------------------------------
    def _deliver(self, frame: bytes) -> None:
        if self.drop_filter is not None and self.drop_filter(frame):
            # Dropped before delivery: the frame vanished on the wire,
            # so receive-side accounting never sees it.
            self.frames_dropped += 1
            return
        self.bytes_received += len(frame)
        self._inc_frames_rx()
        self._inc_bytes_rx(len(frame))
        if self.on_message is not None:
            self.on_message(frame)

    def _account_read(self, nbytes: int) -> None:
        """Initiator-side accounting of one completed one-sided read."""
        self.rdma_bytes_read += nbytes
        self._inc_reads()
        self._inc_read_bytes(nbytes)

    def _closed(self) -> None:
        if not self.closed:
            self.closed = True
            if self.on_close is not None:
                self.on_close()


class Listener:
    """A listening endpoint; calls ``on_connect(endpoint)`` per accept."""

    def __init__(self, on_connect: Callable[[Endpoint], None]):
        self.on_connect = on_connect

    def close(self) -> None:
        raise NotImplementedError


class Transport:
    """Factory for listeners and outgoing connections."""

    name: str = "abstract"

    def listen(self, addr, on_connect: Callable[[Endpoint], None]) -> Listener:
        raise NotImplementedError

    def connect(
        self,
        addr,
        on_connected: Callable[[Optional[Endpoint]], None],
    ) -> None:
        """Open a connection; ``on_connected`` receives the endpoint or
        ``None`` on failure.  Asynchronous in all implementations —
        connection setup runs on the connection thread pool (§IV-B)."""
        raise NotImplementedError


#: name -> callable(**kwargs) -> Transport
transport_registry: dict[str, Callable[..., Transport]] = {}


def register_transport(name: str):
    """Class decorator registering a transport factory by name."""

    def deco(cls):
        transport_registry[name] = cls
        cls.name = name
        return cls

    return deco
