"""Generator-coroutine processes on top of the event engine.

A process is a generator that yields :class:`~repro.sim.engine.Event`
instances; the process resumes when the yielded event fires, receiving
the event's value (or the exception, for failed events).  A process is
itself an event that fires when the generator returns, so processes can
wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Engine, Event

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Drives a generator coroutine; is an Event that fires on return."""

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, engine: Engine, gen: Generator[Event, Any, Any], name: str = ""):
        super().__init__(engine)
        self._gen = gen
        self._waiting_on: Event | None = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off on the next engine step at the current time.
        boot = engine.event()
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A no-op if the process already finished.  The event the process
        was waiting on is detached: when it later fires, the process
        ignores it.
        """
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and self._resume in waiting.callbacks:
            waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        wake = self.engine.event()
        wake.callbacks.append(lambda _ev: self._step(throw=Interrupt(cause)))
        wake.succeed()

    # -- driving -----------------------------------------------------------
    def _resume(self, ev: Event) -> None:
        self._waiting_on = None
        if ev.ok:
            self._step(send=ev.value)
        else:
            self._step(throw=ev.value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if self.triggered:
            return
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Propagate: if nobody waits on this process the simulation
            # should crash loudly rather than swallow the error.
            if self.callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        if target.processed:
            # Already fired: resume immediately (same-time semantics).
            wake = self.engine.event()
            wake.callbacks.append(self._resume_from_processed(target))
            wake.succeed()
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def _resume_from_processed(self, target: Event):
        def _cb(_ev: Event) -> None:
            if target.ok:
                self._step(send=target.value)
            else:
                self._step(throw=target.value)

        return _cb


def spawn(engine: Engine, gen: Generator[Event, Any, Any], name: str = "") -> Process:
    """Convenience constructor mirroring ``simpy.Environment.process``."""
    return Process(engine, gen, name=name)
