"""Discrete-event simulation kernel.

The same ``ldmsd`` code that runs on real threads and sockets also runs
inside this kernel at cluster scale in simulated time.  The kernel is a
small simpy-style engine:

* :class:`~repro.sim.engine.Engine` — event heap + simulated clock.
* :class:`~repro.sim.engine.Event` / ``Timeout`` — waitable occurrences.
* :class:`~repro.sim.process.Process` — generator-based coroutines that
  ``yield`` events.
* :class:`~repro.sim.resources.Resource` — FIFO server pools (CPU cores,
  worker threads).
* :class:`~repro.sim.resources.CpuCore` — a core that tracks busy
  intervals so application models can account for OS-noise-style
  perturbation from monitoring daemons.
"""

from repro.sim.engine import Engine, Event, Timeout, AllOf, AnyOf
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Resource, CpuCore, NoiseRecord

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "Resource",
    "CpuCore",
    "NoiseRecord",
]
