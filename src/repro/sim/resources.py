"""Server-pool resources and CPU-core noise accounting.

Two resource flavours are needed by the monitoring model:

* :class:`Resource` — a counted FIFO server pool, used for ldmsd worker
  thread pools and connection thread pools in simulation.
* :class:`CpuCore` — a core that records *busy intervals* attributed to
  background daemons.  Application models ask the core how much extra
  delay a nominal compute burst of length ``L`` starting at time ``t``
  experiences; this is the OS-noise coupling that the paper's PSNAP and
  application impact experiments measure.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.sim.engine import Engine, Event
from repro.util.errors import SimulationError

__all__ = ["Resource", "CpuCore", "NoiseRecord"]


class Resource:
    """A counted FIFO resource (like ``simpy.Resource``).

    ``request()`` returns an event that fires when a slot is granted;
    release with ``release()``.  Typical use inside a process::

        req = pool.request()
        yield req
        try:
            yield engine.timeout(work)
        finally:
            pool.release(req)
    """

    def __init__(self, engine: Engine, capacity: int):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._queue: list[Event] = []
        self.max_in_use = 0  # high-water mark, for footprint reporting
        self.total_grants = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        ev = self.engine.event()
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._queue.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Claim a slot immediately if one is free, allocating no Event.

        The counted-FIFO invariant keeps the wait queue empty whenever a
        slot is free, so this never jumps queued requesters.  Pair with
        :meth:`release`.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_grants += 1
            if self._in_use > self.max_in_use:
                self.max_in_use = self._in_use
            return True
        return False

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.total_grants += 1
        self.max_in_use = max(self.max_in_use, self._in_use)
        ev.succeed(self)

    def release(self, ev: Event | None = None) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        self._in_use -= 1
        while self._queue and self._in_use < self.capacity:
            self._grant(self._queue.pop(0))

    def cancel(self, ev: Event) -> None:
        """Withdraw a queued (not yet granted) request."""
        try:
            self._queue.remove(ev)
        except ValueError:
            pass


@dataclass(frozen=True)
class NoiseRecord:
    """One busy interval on a core: [start, start+duration), with a tag."""

    start: float
    duration: float
    tag: str

    @property
    def end(self) -> float:
        return self.start + self.duration


class CpuCore:
    """A core that accumulates daemon busy-time for noise accounting.

    The monitoring daemon calls :meth:`add_noise` each time its sampler
    executes on this core.  An application model running a nominal
    compute burst calls :meth:`perturbed_finish` to learn when the burst
    actually completes: any noise interval that begins before the
    (extended) completion point preempts the application and pushes
    completion out by the noise duration.  This is the standard
    noise-absorption model used in the OS-noise literature the paper
    cites (Ferreira et al.).
    """

    __slots__ = ("index", "_starts", "_records", "busy_total")

    def __init__(self, index: int = 0):
        self.index = index
        self._starts: list[float] = []  # sorted noise start times
        self._records: list[NoiseRecord] = []
        self.busy_total = 0.0

    def add_noise(self, start: float, duration: float, tag: str = "ldmsd") -> None:
        if duration < 0:
            raise SimulationError("noise duration must be >= 0")
        pos = bisect.bisect_right(self._starts, start)
        self._starts.insert(pos, start)
        self._records.insert(pos, NoiseRecord(start, duration, tag))
        self.busy_total += duration

    def noise_in(self, t0: float, t1: float) -> float:
        """Total noise duration whose start lies in [t0, t1)."""
        lo = bisect.bisect_left(self._starts, t0)
        hi = bisect.bisect_left(self._starts, t1)
        return sum(r.duration for r in self._records[lo:hi])

    def perturbed_finish(self, start: float, work: float) -> float:
        """Completion time of a burst of ``work`` seconds starting at ``start``.

        Iteratively absorbs noise intervals that begin before the current
        completion estimate (each absorbed interval can expose further
        intervals to absorption).  Noise that began strictly before
        ``start`` is ignored — it already delayed the *previous* burst.
        """
        finish = start + work
        lo = bisect.bisect_left(self._starts, start)
        i = lo
        while i < len(self._starts) and self._starts[i] < finish:
            finish += self._records[i].duration
            i += 1
        return finish

    def records(self) -> list[NoiseRecord]:
        return list(self._records)

    def clear_before(self, t: float) -> None:
        """Drop records ending before ``t`` (bounds memory in long runs)."""
        keep = [(s, r) for s, r in zip(self._starts, self._records) if r.end >= t]
        self._starts = [s for s, _ in keep]
        self._records = [r for _, r in keep]
