"""Vectorised full-machine trace generation.

Running 27,648 ldmsd daemon objects through the DES for a simulated day
is not tractable in Python; the paper's Figs. 9-11 need exactly that
scale.  This module provides the *fleet fast path*: the same producer
mathematics (flow-engine link loads -> stall/bandwidth counters; host
rate integration -> counter deltas) evaluated directly with NumPy at
one sample per collection interval — which is precisely what the
stored LDMS data contains.  Fidelity of the fast path against the real
daemon pipeline is cross-checked in ``tests/test_fleet.py``.

Two generators:

* :class:`HsnFleetTrace` — torus link metrics.  Jobs register flows at
  scheduled times; each sample records per-Gemini percent-time-stalled
  and percent-bandwidth for requested directions (what the gpcdr
  sampler derives, §IV-F).
* :class:`RateFleet` — generic per-node counter deltas (Lustre opens,
  etc.): scheduled rate changes, jittered integration per interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.torus import DIR_INDEX, GeminiTorus
from repro.network.traffic import FlowEngine
from repro.util.errors import SimulationError
from repro.util.rngtools import spawn_rng

__all__ = ["HsnFleetTrace", "RateFleet", "HsnTraceResult"]


@dataclass
class HsnTraceResult:
    """Per-sample, per-Gemini link metrics for selected directions."""

    times: np.ndarray  # (T,)
    stall_pct: dict[str, np.ndarray]  # dir -> (T, G) percent of time stalled
    bw_pct: dict[str, np.ndarray]  # dir -> (T, G) percent of max bandwidth
    torus: GeminiTorus

    def node_view(self, direction: str, kind: str = "stall") -> np.ndarray:
        """(T, n_nodes) array: each node shows its Gemini's value
        (2 nodes share a Gemini, §VI-A1)."""
        grid = (self.stall_pct if kind == "stall" else self.bw_pct)[direction]
        return np.repeat(grid, self.torus.nodes_per_gemini, axis=1)

    def snapshot(self, direction: str, t_index: int, kind: str = "stall"):
        """(coords (G,3), values (G,)) at one sample — the Fig. 9-bottom
        3-D mesh view."""
        grid = (self.stall_pct if kind == "stall" else self.bw_pct)[direction]
        values = grid[t_index]
        coords = np.array([self.torus.coord(g) for g in range(self.torus.n_geminis)])
        return coords, values

    def argmax(self, direction: str, kind: str = "stall") -> tuple[int, int, float]:
        grid = (self.stall_pct if kind == "stall" else self.bw_pct)[direction]
        flat = int(np.nanargmax(grid))
        t_i, g_i = np.unravel_index(flat, grid.shape)
        return int(t_i), int(g_i), float(grid[t_i, g_i])


@dataclass(frozen=True)
class _FlowEvent:
    t: float
    kind: str  # "add" | "remove"
    key: object
    src: int = 0
    dst: int = 0
    bps: float = 0.0


class HsnFleetTrace:
    """Scheduled-flow trace over a Gemini torus."""

    def __init__(self, torus: GeminiTorus, sample_interval: float = 60.0):
        self.torus = torus
        self.sample_interval = sample_interval
        self._events: list[_FlowEvent] = []
        self._key_seq = 0

    # ------------------------------------------------------------------
    def add_flow_window(self, t0: float, t1: float, src_node: int,
                        dst_node: int, bps: float) -> None:
        """One steady flow active during [t0, t1)."""
        if t1 <= t0:
            raise SimulationError("flow window must have positive duration")
        key = self._key_seq
        self._key_seq += 1
        self._events.append(_FlowEvent(t0, "add", key, src_node, dst_node, bps))
        self._events.append(_FlowEvent(t1, "remove", key))

    def add_job(self, t0: float, t1: float, nodes: np.ndarray,
                bps_per_node: float, pattern: str = "ring",
                rng: np.random.Generator | None = None) -> None:
        """A job's communication: one flow per node to a peer.

        Patterns: ``ring`` (rank i -> i+1) or ``random`` pairs.
        """
        nodes = np.asarray(nodes)
        if pattern == "ring":
            peers = np.roll(nodes, -1)
        elif pattern == "random":
            if rng is None:
                raise SimulationError("random pattern needs an rng")
            peers = rng.permutation(nodes)
        else:
            raise SimulationError(f"unknown pattern {pattern!r}")
        for src, dst in zip(nodes, peers):
            if src != dst:
                self.add_flow_window(t0, t1, int(src), int(dst), bps_per_node)

    # ------------------------------------------------------------------
    def run(self, duration: float,
            directions: tuple[str, ...] = ("X+", "Y+"),
            sample_range: tuple[int, int] | None = None) -> HsnTraceResult:
        """Evaluate the trace.

        ``sample_range=(s0, s1)`` restricts output to samples ``s0..s1-1``
        (half-open).  Flow add/remove events before the slice are replayed
        without accumulation, so the per-sample values are identical to the
        corresponding rows of a full run — the slice boundaries carry no
        state beyond the (deterministically replayed) flow set.  This is
        what lets shard workers each own a disjoint time slice of the day.
        """
        engine = FlowEngine(self.torus)
        events = sorted(self._events, key=lambda e: (e.t, e.kind == "add"))
        fids: dict[object, int] = {}
        n_samples = int(round(duration / self.sample_interval))
        s0, s1 = (0, n_samples) if sample_range is None else sample_range
        if not 0 <= s0 <= s1 <= n_samples:
            raise SimulationError(
                f"sample_range {sample_range!r} outside 0..{n_samples}")
        G = self.torus.n_geminis
        times = (np.arange(s0, s1) + 1) * self.sample_interval
        dir_idx = {d: DIR_INDEX[d] for d in directions}
        shape = (s1 - s0, G)
        stall = {d: np.empty(shape, dtype=np.float32) for d in directions}
        bw = {d: np.empty(shape, dtype=np.float32) for d in directions}

        ei = 0
        # Fast-forward: apply every event due before the slice start so
        # the flow set matches the full run's state at t = s0 * interval.
        t_start = s0 * self.sample_interval
        while ei < len(events) and events[ei].t < t_start:
            ev = events[ei]
            if ev.kind == "add":
                fids[ev.key] = engine.add_flow(ev.src, ev.dst, ev.bps)
            else:
                fid = fids.pop(ev.key, None)
                if fid is not None:
                    engine.remove_flow(fid)
            ei += 1
        t = t_start
        for s in range(s0, s1):
            t_next = (s + 1) * self.sample_interval
            # Apply events due before this sample boundary.  Loads are
            # piecewise constant; the recorded value is the average over
            # the interval, weighted by sub-interval durations.
            acc_stall = {d: np.zeros(G) for d in directions}
            acc_bw = {d: np.zeros(G) for d in directions}
            t_cursor = t
            while ei < len(events) and events[ei].t < t_next:
                ev = events[ei]
                dt = max(ev.t - t_cursor, 0.0)
                if dt > 0:
                    self._accumulate(engine, dir_idx, acc_stall, acc_bw, dt)
                    t_cursor = ev.t
                if ev.kind == "add":
                    fids[ev.key] = engine.add_flow(ev.src, ev.dst, ev.bps)
                else:
                    fid = fids.pop(ev.key, None)
                    if fid is not None:
                        engine.remove_flow(fid)
                ei += 1
            dt = t_next - t_cursor
            if dt > 0:
                self._accumulate(engine, dir_idx, acc_stall, acc_bw, dt)
            span = t_next - t
            for d in directions:
                stall[d][s - s0] = 100.0 * acc_stall[d] / span
                bw[d][s - s0] = 100.0 * acc_bw[d] / span
            t = t_next
        return HsnTraceResult(times=times, stall_pct=stall, bw_pct=bw,
                              torus=self.torus)

    def _accumulate(self, engine: FlowEngine, dir_idx, acc_stall, acc_bw,
                    dt: float) -> None:
        stall_now = engine.stall_now()
        bw_now = engine.percent_bw_now() / 100.0
        for d, j in dir_idx.items():
            acc_stall[d] += stall_now[:, j] * dt
            acc_bw[d] += bw_now[:, j] * dt


class RateFleet:
    """Per-node counter-delta traces from scheduled rates.

    The host-model integration (rate x dt x jitter) applied across all
    nodes at once; output is what an aggregator stores per interval:
    counter deltas.
    """

    def __init__(self, n_nodes: int, sample_interval: float = 60.0,
                 seed: int = 0, jitter: float = 0.05):
        self.n_nodes = n_nodes
        self.sample_interval = sample_interval
        self.jitter = jitter
        self.rng = spawn_rng(seed, "rate-fleet", n_nodes)
        self._windows: list[tuple[float, float, np.ndarray, float]] = []
        self.base_rate = 0.0

    def add_rate_window(self, t0: float, t1: float, nodes, rate: float) -> None:
        """Additive rate on ``nodes`` during [t0, t1)."""
        if t1 <= t0:
            raise SimulationError("rate window must have positive duration")
        self._windows.append((t0, t1, np.asarray(nodes, dtype=np.int64), rate))

    def run(self, duration: float,
            sample_range: tuple[int, int] | None = None
            ) -> tuple[np.ndarray, np.ndarray]:
        """Returns (times (T,), deltas (T, n_nodes)) of per-interval counts.

        ``sample_range=(s0, s1)`` returns only that half-open slice.  The
        jitter stream is burned through the skipped prefix so sliced rows
        are bit-identical to the corresponding rows of a full run.
        """
        n_samples = int(round(duration / self.sample_interval))
        s0, s1 = (0, n_samples) if sample_range is None else sample_range
        if not 0 <= s0 <= s1 <= n_samples:
            raise SimulationError(
                f"sample_range {sample_range!r} outside 0..{n_samples}")
        times = (np.arange(s0, s1) + 1) * self.sample_interval
        deltas = np.empty((s1 - s0, self.n_nodes), dtype=np.float32)
        iv = self.sample_interval
        for _ in range(s0):
            self.rng.standard_normal(self.n_nodes)
        for s in range(s0, s1):
            t1 = (s + 1) * iv
            t0 = t1 - iv
            rates = np.full(self.n_nodes, self.base_rate)
            for w0, w1, nodes, rate in self._windows:
                overlap = max(min(w1, t1) - max(w0, t0), 0.0)
                if overlap > 0:
                    rates[nodes] += rate * (overlap / iv)
            noise = 1.0 + self.jitter * self.rng.standard_normal(self.n_nodes)
            deltas[s - s0] = np.clip(rates * iv * noise, 0.0, None)
        return times, deltas
