"""Sharded-parallel DES: conservative time-window synchronization.

ROADMAP item 3(b).  A single calendar-queue :class:`~repro.sim.engine.
Engine` tops out around 10^5 logical events/s in CPython, Amdahl-bound
by per-producer update machinery whose phase-stagger byte-identity
forbids cross-producer batching *within one process* (PR 6).  The way
out is the classic conservative PDES construction: partition the
cluster by producer subtree across worker processes, give each shard
its own engine over its own :class:`~repro.transport.simfabric.
SimFabric`, and synchronize shards only at the fabric boundary — the
one place shards interact, and the one boundary that is already
latency-modelled.

Correctness argument (the conservative window invariant)
--------------------------------------------------------
Let ``L`` be the *lookahead*: the minimum latency any cross-shard
interaction can experience (``min`` over cross links of
``min(base_latency, connect_latency / 2)`` — see
:func:`repro.transport.simfabric.lookahead_of`).  Shards advance in
lock-step windows ``(W_{k-1}, W_k]`` with ``W_k = W_{k-1} + L``.  A
cross-shard message emitted at local time ``t`` in window ``k``
(``W_{k-1} < t <= W_k``) carries an absolute ``deliver_at >= t + L >
W_{k-1} + L = W_k`` — strictly after the window being run.  Exchanging
all buffered messages at each barrier and scheduling them with
``call_at(deliver_at)`` before running the next window therefore never
delivers into the past, with no null messages and no rollback.  A
message landing *exactly* on a window edge ``W_k`` is ingested at the
barrier before window ``k`` and processed by ``run_window(W_k)``
(deadlines are inclusive), so edge arrivals are not lost or late.  A
zero-lookahead link (the ``local`` profile, or any globally-coupled
latency model such as a shared torus flow engine) makes the window
width zero and must be rejected loudly at partition time
(:class:`~repro.util.errors.ConfigError`).

Two drivers share the window loop:

* :func:`run_windowed` — in-process, N engines stepped round-robin.
  Deterministic and debuggable; what the unit tests use.
* :func:`run_windowed_mp` — ``fork``-based worker processes meshed
  with pipes, one barrier (send-to-all, then receive-from-all) per
  window.  Barrier wait is host time and goes through the sanctioned
  ``repro.util.timeutil`` boundary.

Disjoint shards (no cross links — the fan-in sweep's independent
points, the fleet trace's time slices) skip windows entirely and
free-run through :func:`run_parallel`.

Toggle: ``REPRO_SHARDS=N`` (default off).  Self-metrics (exported via
``ldmsd_self`` and the ``stats``/``prof`` verbs, zeros when off):
``shard_windows``, ``shard_barrier_wait_ns``, ``cross_shard_frames``,
``shard_lookahead_ns``.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Callable, Sequence

from repro.util import timeutil
from repro.util.errors import ConfigError, SimulationError

__all__ = [
    "RUNTIME",
    "ShardRuntime",
    "shards_default",
    "runtime_snapshot",
    "run_windowed",
    "run_windowed_mp",
    "run_parallel",
    "maybe_parallel",
]


def shards_default() -> int:
    """The ``REPRO_SHARDS`` toggle: worker count, ``0``/``1`` = off."""
    raw = os.environ.get("REPRO_SHARDS", "0")
    try:
        n = int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_SHARDS={raw!r} is not an integer")
    if n < 0:
        raise ConfigError(f"REPRO_SHARDS={n} must be >= 0")
    return 0 if n < 2 else n


class ShardRuntime:
    """Per-process shard-plane counters (the ``shard_*`` self-metrics).

    One instance per OS process: the parent keeps barrier/fan-out
    accounting for the runners it drives, each forked worker resets its
    inherited copy to its own shard identity at startup.  Every daemon
    in a process reports the same row — these are plane metrics, not
    per-daemon ones — and all four counters are schema-stable zeros
    when ``REPRO_SHARDS`` is off (PR-7/PR-9 convention).
    """

    __slots__ = ("shards", "shard_id", "windows", "barrier_wait_ns",
                 "cross_frames", "lookahead_ns")

    def __init__(self) -> None:
        self.reset()

    def reset(self, shards: int = 0, shard_id: int = 0,
              lookahead_ns: int = 0) -> None:
        self.shards = shards
        self.shard_id = shard_id
        self.windows = 0
        self.barrier_wait_ns = 0
        self.cross_frames = 0
        self.lookahead_ns = lookahead_ns

    def snapshot(self) -> dict:
        return {
            "shards": self.shards,
            "shard_id": self.shard_id,
            "shard_windows": self.windows,
            "shard_barrier_wait_ns": self.barrier_wait_ns,
            "cross_shard_frames": self.cross_frames,
            "shard_lookahead_ns": self.lookahead_ns,
        }


RUNTIME = ShardRuntime()


def runtime_snapshot() -> dict:
    """The process's shard-plane counters (zeros when sharding is off)."""
    return RUNTIME.snapshot()


# ---------------------------------------------------------------------------
# Windowed drivers (coupled shards)
# ---------------------------------------------------------------------------

def _window_lookahead(worlds, lookahead: float | None) -> float:
    if lookahead is None:
        las = [w.gateway.lookahead for w in worlds]
        lookahead = min(las) if las else 0.0
    if lookahead <= 0.0:
        raise ConfigError(
            "sharded run has zero lookahead: every cross-shard link must "
            "have positive base_latency and connect_latency (the 'local' "
            "profile and globally-coupled latency models cannot cross "
            "shard boundaries)")
    return float(lookahead)


def run_windowed(worlds: Sequence, until: float,
                 lookahead: float | None = None) -> int:
    """Drive coupled shard worlds through conservative windows, in
    process.

    ``worlds`` are duck-typed bundles with ``.engine`` (an
    :class:`~repro.sim.engine.Engine`) and ``.gateway`` (a
    :class:`~repro.transport.simfabric.ShardGateway`); all engines must
    sit at the same simulated time.  Returns the number of windows run.
    """
    if not worlds:
        raise ConfigError("run_windowed needs at least one shard world")
    la = _window_lookahead(worlds, lookahead)
    engines = [w.engine for w in worlds]
    w_prev = engines[0].now
    for e in engines:
        if e.now != w_prev:
            raise SimulationError("shard engines out of sync at window start")
    if until < w_prev:
        raise SimulationError(f"run_windowed(until={until}) is in the past")
    RUNTIME.shards = max(RUNTIME.shards, len(worlds))
    RUNTIME.lookahead_ns = int(la * 1e9)
    nwin = 0
    while True:
        w_end = min(w_prev + la, until)
        by_shard: dict[int, list] = {}
        for w in worlds:
            for dst, msgs in w.gateway.take_outgoing():
                by_shard.setdefault(dst, []).extend(msgs)
        for w in worlds:
            w.gateway.ingest(by_shard.pop(w.gateway.shard_id, []))
        if by_shard:
            raise SimulationError(
                f"cross-shard messages addressed to unknown shards "
                f"{sorted(by_shard)}")
        for e in engines:
            e.run_window(w_end)
        nwin += 1
        RUNTIME.windows += 1
        if w_end >= until:
            return nwin
        w_prev = w_end


def _mp_windowed_worker(shard_id: int, nshards: int, until: float,
                        lookahead: float | None, build, finish,
                        conns: dict, out) -> None:
    """One forked shard worker: build the world, run the window loop
    against the pipe mesh, ship ``finish(world)`` back to the parent."""
    try:
        RUNTIME.reset(shards=nshards, shard_id=shard_id)
        world = build(shard_id)
        la = _window_lookahead((world,), lookahead)
        RUNTIME.lookahead_ns = int(la * 1e9)
        eng = world.engine
        gateway = world.gateway
        peers = sorted(conns)
        w_prev = eng.now
        while True:
            w_end = min(w_prev + la, until)
            outgoing = dict(gateway.take_outgoing())
            t0 = timeutil.perf_counter()
            for peer in peers:
                conns[peer].send(outgoing.pop(peer, []))
            if outgoing:
                raise SimulationError(
                    f"shard {shard_id} addressed unknown shards "
                    f"{sorted(outgoing)}")
            incoming: list = []
            for peer in peers:
                incoming.extend(conns[peer].recv())
            RUNTIME.barrier_wait_ns += int(
                (timeutil.perf_counter() - t0) * 1e9)
            gateway.ingest(incoming)
            eng.run_window(w_end)
            RUNTIME.windows += 1
            if w_end >= until:
                break
            w_prev = w_end
        out.send(("ok", finish(world)))
    except BaseException:
        out.send(("err", traceback.format_exc()))
    finally:
        out.close()


def run_windowed_mp(build: Callable[[int], Any], finish: Callable[[Any], Any],
                    nshards: int, until: float,
                    lookahead: float | None = None) -> list:
    """Fork ``nshards`` workers; worker ``s`` builds its world with
    ``build(s)``, runs the conservative window loop against a full pipe
    mesh, and returns ``finish(world)`` (which must be picklable).

    Every worker computes the identical window schedule
    ``W_k = min(W_{k-1} + L, until)`` from the shared lookahead, so the
    per-window barrier is just send-to-all followed by
    receive-from-all — no coordinator, no null messages.
    """
    if nshards < 1:
        raise ConfigError("run_windowed_mp needs nshards >= 1")
    ctx = multiprocessing.get_context("fork")
    # Full mesh: conns[i][j] is shard i's duplex pipe end toward shard j.
    conns: dict[int, dict] = {i: {} for i in range(nshards)}
    for i in range(nshards):
        for j in range(i + 1, nshards):
            a, b = ctx.Pipe(True)
            conns[i][j] = a
            conns[j][i] = b
    outs = []
    procs = []
    for s in range(nshards):
        rx, tx = ctx.Pipe(False)
        outs.append(rx)
        procs.append(ctx.Process(
            target=_mp_windowed_worker,
            args=(s, nshards, until, lookahead, build, finish, conns[s], tx),
            daemon=True))
    for p in procs:
        p.start()
    # The children own the mesh now; drop the parent's copies so EOF
    # propagates if a worker dies.
    for s in range(nshards):
        for c in conns[s].values():
            c.close()
    return _collect(procs, outs)


# ---------------------------------------------------------------------------
# Disjoint-shard fan-out (no cross links, no windows)
# ---------------------------------------------------------------------------

def _parallel_worker(fn, shard_id: int, nshards: int, jobs: list, tx) -> None:
    try:
        RUNTIME.reset(shards=nshards, shard_id=shard_id)
        tx.send(("ok", [fn(job) for job in jobs]))
    except BaseException:
        tx.send(("err", traceback.format_exc()))
    finally:
        tx.close()


def _collect(procs, outs) -> list:
    t0 = timeutil.perf_counter()
    results = []
    try:
        for rx in outs:
            status, payload = rx.recv()
            if status != "ok":
                raise SimulationError(f"shard worker failed:\n{payload}")
            results.append(payload)
    finally:
        for p in procs:
            p.join()
        RUNTIME.barrier_wait_ns += int((timeutil.perf_counter() - t0) * 1e9)
    return results


def run_parallel(fn: Callable[[Any], Any], payloads: Sequence,
                 nshards: int) -> list:
    """Run ``fn(payload)`` for every payload across ``nshards`` forked
    workers (round-robin assignment); results come back in payload
    order.

    For *disjoint* shards only: each call must be a self-contained
    world (its own engine, fabric, daemons, seeds), which is exactly
    what makes the per-shard output byte-identical to the unsharded run
    restricted to that shard — the worker executes the very same code
    on the very same inputs, just in its own address space.  ``fn`` and
    payloads ride the fork; results must be picklable.
    """
    if not payloads:
        return []
    nshards = max(1, min(nshards, len(payloads)))
    ctx = multiprocessing.get_context("fork")
    RUNTIME.shards = max(RUNTIME.shards, nshards)
    procs = []
    outs = []
    for s in range(nshards):
        rx, tx = ctx.Pipe(False)
        outs.append(rx)
        procs.append(ctx.Process(
            target=_parallel_worker,
            args=(fn, s, nshards, [payloads[i] for i in
                                   range(s, len(payloads), nshards)], tx),
            daemon=True))
    for p in procs:
        p.start()
    per_shard = _collect(procs, outs)
    results: list = [None] * len(payloads)
    for s, chunk in enumerate(per_shard):
        for k, i in enumerate(range(s, len(payloads), nshards)):
            results[i] = chunk[k]
    return results


def maybe_parallel(fn: Callable[[Any], Any], payloads: Sequence,
                   nshards: int | None = None) -> list:
    """``run_parallel`` under ``REPRO_SHARDS`` (or an explicit count);
    inline, in-order execution when sharding is off."""
    if nshards is None:
        nshards = shards_default()
    if nshards < 2 or len(payloads) < 2:
        return [fn(job) for job in payloads]
    return run_parallel(fn, payloads, nshards)
