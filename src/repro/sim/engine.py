"""Event-heap simulation engine.

Design notes
------------
* Time is a ``float`` in seconds.  Events scheduled at equal times fire
  in FIFO scheduling order (a monotone sequence number breaks ties), so
  runs are fully deterministic.
* An :class:`Event` carries a list of callbacks; triggering an event
  schedules it onto the heap, and processing it invokes the callbacks.
  This two-phase structure (trigger now, fire at heap-pop) is what makes
  "two processes wake at the same instant" well-defined.
* The engine itself knows nothing about processes; ``repro.sim.process``
  layers generator coroutines on top of callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.util.errors import SimulationError

__all__ = ["Engine", "Event", "Timeout", "AllOf", "AnyOf"]

# Event lifecycle states.
PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class Event:
    """A waitable occurrence inside an :class:`Engine`.

    Callbacks are invoked exactly once, in registration order, when the
    engine pops the event off the heap.  ``succeed``/``fail`` trigger the
    event immediately (it fires at the current simulation time).
    """

    __slots__ = ("engine", "callbacks", "_state", "_value", "_ok")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = PENDING
        self._value: Any = None
        self._ok = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with an optional payload."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._state = TRIGGERED
        self._ok = ok
        self._value = value
        self.engine._push(self, delay)

    def _fire(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires automatically after ``delay`` seconds."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        super().__init__(engine)
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        engine._push(self, delay)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: "Engine", events: list[Event]):
        super().__init__(engine)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for ev in self._events:
            if ev.processed:
                self._child_fired(ev)
            else:
                ev.callbacks.append(self._child_fired)

    def _child_fired(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the value list."""

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is that child."""

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed(ev)


class Engine:
    """The simulation event loop.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.call_later(2.5, lambda: hits.append(eng.now))
    >>> eng.run()
    >>> hits
    [2.5]
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._nprocessed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._nprocessed

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a plain callback; returns the underlying event.

        Cancel by calling :meth:`cancel` on the returned event before it
        fires.
        """
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _ev: fn(*args))
        return ev

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Event:
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        return self.call_later(when - self._now, fn, *args)

    @staticmethod
    def cancel(ev: Event) -> None:
        """Neutralize a scheduled callback event (it fires but does nothing)."""
        ev.callbacks.clear()

    # -- heap management ---------------------------------------------------
    def _push(self, ev: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), ev))

    # -- running -----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on empty event heap")
        when, _seq, ev = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap time went backwards")
        self._now = when
        self._nprocessed += 1
        ev._fire()

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        * ``until=None`` — run to exhaustion.
        * ``until=<float>`` — run until simulated time reaches the value;
          the clock is advanced to exactly that time.
        * ``until=<Event>`` — run until that event has been processed and
          return its value (raising if it failed).
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._heap:
                    raise SimulationError("simulation ended before awaited event fired")
                self.step()
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None
