"""Event-heap simulation engine.

Design notes
------------
* Time is a ``float`` in seconds.  Events scheduled at equal times fire
  in FIFO scheduling order, so runs are fully deterministic.
* An :class:`Event` carries a list of callbacks; triggering an event
  schedules it onto the heap, and processing it invokes the callbacks.
  This two-phase structure (trigger now, fire at heap-pop) is what makes
  "two processes wake at the same instant" well-defined.
* The engine itself knows nothing about processes; ``repro.sim.process``
  layers generator coroutines on top of callbacks.

Fast path
---------
Large fan-in sweeps schedule hundreds of thousands of timers, most of
them at a handful of distinct timestamps (every sampler ticking on the
same interval, every zero-delay completion landing at "now").  Two
mechanisms exploit that shape without changing observable order:

* **Bucketed calendar queue.**  The heap holds one entry per *distinct*
  timestamp; each entry carries a list (bucket) of items scheduled for
  that instant, appended in scheduling order.  Scheduling onto an
  already-pending timestamp is a dict lookup + list append instead of an
  O(log n) heap push, and the run loop drains a whole equal-time batch
  per heap pop.  A bucket stays registered while it drains, so an item
  scheduled at ``now`` from inside a callback joins the live batch —
  exactly where a plain heap would have popped it.  FIFO tie-break
  order is therefore identical with the wheel on or off (toggle with
  ``timer_wheel=`` or ``REPRO_TIMER_WHEEL=0``; off = one singleton
  bucket per push, same drain path).
* **Bare timers.**  :meth:`Engine.call_later` returns a slotted
  :class:`_Timer` (a callback + args, no Event state machine, no
  per-tick lambda), and :meth:`Engine.schedule_periodic` reschedules a
  single :class:`_PeriodicTimer` object forever — the zero-allocation
  periodic path that dominates sampler/updater scheduling.  Both expose
  ``_fire()`` so the drain loop dispatches them and real Events
  uniformly.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import os
from typing import Any, Callable

from repro.util.errors import SimulationError

__all__ = ["Engine", "Event", "Timeout", "AllOf", "AnyOf"]

# Event lifecycle states.
PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class Event:
    """A waitable occurrence inside an :class:`Engine`.

    Callbacks are invoked exactly once, in registration order, when the
    engine pops the event off the heap.  ``succeed``/``fail`` trigger the
    event immediately (it fires at the current simulation time).
    """

    __slots__ = ("engine", "callbacks", "_state", "_value", "_ok")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = PENDING
        self._value: Any = None
        self._ok = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with an optional payload."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._state = TRIGGERED
        self._ok = ok
        self._value = value
        self.engine._push(self, delay)

    def _fire(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires automatically after ``delay`` seconds."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        super().__init__(engine)
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        engine._push(self, delay)


class _Timer:
    """A bare scheduled callback: the zero-allocation ``call_later`` path.

    No Event state machine, no callback list — just a function and its
    arguments, dispatched through the same ``_fire()`` protocol the
    drain loop uses for Events.  Cancel via :meth:`cancel` or
    :meth:`Engine.cancel` (sets ``fn`` to None; the heap slot fires as
    a no-op).  Duck-types ``repro.core.env.TaskHandle`` so ``SimEnv``
    can hand it out directly.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., Any], args: tuple):
        self.fn = fn
        self.args = args

    def cancel(self) -> None:
        self.fn = None

    @property
    def cancelled(self) -> bool:
        return self.fn is None

    def _fire(self) -> None:
        fn = self.fn
        if fn is not None:
            fn(*self.args)


class _PeriodicTimer:
    """A self-rescheduling timer: one object serves every tick.

    Reschedules *before* invoking ``fn`` (matching ``Env.call_every``:
    a callback that cancels its own handle stops future fires, and a
    raising callback does not kill the period).  The delay arithmetic
    and ``jitter_rng`` consumption replicate ``Env.call_every`` exactly
    so same-seed runs are byte-identical whichever path scheduled them.
    """

    __slots__ = ("engine", "fn", "interval", "synchronous", "offset", "jitter_rng")

    def __init__(self, engine: "Engine", interval: float, fn: Callable[[], Any],
                 synchronous: bool = False, offset: float = 0.0, jitter_rng=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.fn = fn
        self.interval = interval
        self.synchronous = synchronous
        self.offset = offset
        self.jitter_rng = jitter_rng
        engine._push(self, self._next_delay())

    def _next_delay(self) -> float:
        interval = self.interval
        if self.synchronous:
            now = self.engine._now
            offset = self.offset
            target = (now - offset) // interval * interval + interval + offset
            return max(target - now, 0.0)
        rng = self.jitter_rng
        if rng is not None:
            return interval + float(rng.uniform(0.0, 1e-3))
        return interval

    def cancel(self) -> None:
        self.fn = None

    @property
    def cancelled(self) -> bool:
        return self.fn is None

    def _fire(self) -> None:
        fn = self.fn
        if fn is None:
            return
        engine = self.engine
        engine.timer_fastpath_ticks += 1
        engine._push(self, self._next_delay())
        fn()


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: "Engine", events: list[Event]):
        super().__init__(engine)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for ev in self._events:
            if ev.processed:
                self._child_fired(ev)
            else:
                ev.callbacks.append(self._child_fired)

    def _child_fired(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the value list."""

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is that child."""

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed(ev)


def _wheel_default() -> bool:
    return os.environ.get("REPRO_TIMER_WHEEL", "1") not in ("0", "false", "off")


def _gc_pause_default() -> bool:
    return os.environ.get("REPRO_GC_PAUSE", "1") not in ("0", "false", "off")


class Engine:
    """The simulation event loop.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.call_later(2.5, lambda: hits.append(eng.now))
    >>> eng.run()
    >>> hits
    [2.5]
    """

    def __init__(self, start: float = 0.0, timer_wheel: bool | None = None):
        self._now = float(start)
        # One heap entry per distinct pending timestamp; the payload is
        # the bucket (list of items) for that instant.
        self._heap: list[tuple[float, int, list]] = []
        self._buckets: dict[float, list] = {}
        self._seq = itertools.count()
        self._nprocessed = 0
        self._wheel = _wheel_default() if timer_wheel is None else bool(timer_wheel)
        # Pause the cyclic collector while draining (REPRO_GC_PAUSE=0
        # disables).  The drain loop allocates millions of short-lived
        # acyclic objects (frames, timers, tuples); generational GC
        # rescans them repeatedly without ever freeing a cycle, costing
        # ~40% of wall time at 9,000-sampler fan-in.  Refcounting still
        # frees everything promptly; collection resumes on return.
        self._gc_pause = _gc_pause_default()
        # Partially drained batch left behind by step(); run() resumes it.
        self._cur_batch: list | None = None
        self._cur_idx = 0
        #: ticks delivered through the zero-allocation periodic path
        self.timer_fastpath_ticks = 0
        #: logical events materialized inside vectorized batch sweeps
        #: (columnar sampler cohorts) instead of being individually
        #: heap-scheduled; ``events_processed`` deliberately excludes
        #: them so heap throughput stays directly comparable, while
        #: benchmarks may report processed + vectorized as the logical
        #: event total.
        self.vectorized_events = 0
        #: conservative time-windows stepped through :meth:`run_window`
        #: (the sharded-parallel driver, ``repro.sim.shard``)
        self.windows_run = 0
        #: committed event horizon: every event with ``when`` at or
        #: below this time has been processed (the end of the last
        #: completed window; plain ``run(until=...)`` advances it too)
        self.horizon = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._nprocessed

    @property
    def timer_wheel(self) -> bool:
        """Whether the bucketed calendar queue is active."""
        return self._wheel

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> _Timer:
        """Schedule a plain callback; returns a cancellable timer.

        Cancel by calling :meth:`cancel` on the returned timer before it
        fires.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        t = _Timer(fn, args)
        self._push(t, delay)
        return t

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> _Timer:
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        return self.call_later(when - self._now, fn, *args)

    def schedule_periodic(self, interval: float, fn: Callable[[], Any],
                          synchronous: bool = False, offset: float = 0.0,
                          jitter_rng=None) -> _PeriodicTimer:
        """Fire ``fn`` every ``interval`` seconds through one reusable
        timer object (the zero-allocation periodic fast path).

        Semantics match ``Env.call_every``: the first fire is one period
        (or the next synchronous boundary) from now, the timer
        reschedules before invoking ``fn``, and ``.cancel()`` stops it.
        """
        return _PeriodicTimer(self, interval, fn, synchronous, offset, jitter_rng)

    @staticmethod
    def cancel(ev) -> None:
        """Neutralize a scheduled callback (it fires but does nothing)."""
        if isinstance(ev, Event):
            ev.callbacks.clear()
        else:
            ev.fn = None

    # -- heap management ---------------------------------------------------
    def _push(self, item, delay: float) -> None:
        """Schedule ``item`` (anything with ``_fire()``) after ``delay``."""
        when = self._now + delay
        if self._wheel:
            bucket = self._buckets.get(when)
            if bucket is not None:
                bucket.append(item)
                return
            self._buckets[when] = bucket = [item]
        else:
            bucket = [item]
        heapq.heappush(self._heap, (when, next(self._seq), bucket))

    # -- running -----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        batch = self._cur_batch
        if batch is None:
            if not self._heap:
                raise SimulationError("step() on empty event heap")
            when, _seq, batch = heapq.heappop(self._heap)
            if when < self._now:
                raise SimulationError("event heap time went backwards")
            self._now = when
            self._cur_batch = batch
            self._cur_idx = 0
        i = self._cur_idx
        item = batch[i]
        self._cur_idx = i + 1
        self._nprocessed += 1
        try:
            item._fire()
        finally:
            # The fired item may have appended same-time work to the
            # live batch; only retire it once fully drained.
            if self._cur_batch is batch and self._cur_idx >= len(batch):
                self._cur_batch = None
                if self._buckets.get(self._now) is batch:
                    del self._buckets[self._now]

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        if self._cur_batch is not None:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        * ``until=None`` — run to exhaustion.
        * ``until=<float>`` — run until simulated time reaches the value;
          the clock is advanced to exactly that time.
        * ``until=<Event>`` — run until that event has been processed and
          return its value (raising if it failed).
        """
        paused = self._gc_pause and gc.isenabled()
        if paused:
            gc.disable()
        try:
            return self._run(until)
        finally:
            if paused:
                gc.enable()

    def run_window(self, until: float) -> int:
        """Run one conservative time-window ending at ``until``.

        Exactly ``run(until=until)`` — events *at* the window edge are
        processed, the clock lands on ``until`` — plus event-horizon
        accounting: after the call every event at or below ``until`` is
        committed, so a sharded driver may safely inject cross-shard
        frames with ``call_at`` strictly above the horizon before the
        next window.  Returns the number of heap events processed in
        the window.
        """
        before = self._nprocessed
        self.run(until=until)
        self.windows_run += 1
        return self._nprocessed - before

    def _run(self, until: float | Event | None) -> Any:
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if self._cur_batch is None and not self._heap:
                    raise SimulationError("simulation ended before awaited event fired")
                self.step()
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        while self._cur_batch is not None:  # resume a step()-interrupted batch
            self.step()

        # Hot drain loop: everything in locals, one heap pop per
        # distinct timestamp, whole equal-time batch per iteration.
        heap = self._heap
        buckets = self._buckets
        pop = heapq.heappop
        nproc = self._nprocessed
        while heap:
            top = heap[0]
            when = top[0]
            if when > deadline:
                break
            pop(heap)
            self._now = when
            batch = top[2]
            i = 0
            try:
                while i < len(batch):
                    item = batch[i]
                    i += 1
                    item._fire()
            except BaseException:
                # Leave the un-fired remainder scheduled so the caller
                # can resume after handling the error.
                self._nprocessed = nproc + i
                del batch[:i]
                if batch:
                    heapq.heappush(heap, (when, next(self._seq), batch))
                elif buckets.get(when) is batch:
                    del buckets[when]
                raise
            nproc += i
            if buckets.get(when) is batch:
                del buckets[when]
        self._nprocessed = nproc
        if deadline != float("inf"):
            self._now = deadline
            self.horizon = deadline
        return None
