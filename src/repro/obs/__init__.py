"""repro.obs: self-instrumentation of the monitoring pipeline.

The paper's scalability argument rests on LDMS's own overhead being
visible and bounded (CPU %, memory footprint, fan-in latency — §IV-E,
§V–§VII).  This package gives every daemon that visibility at runtime:

* :mod:`repro.obs.registry` — per-daemon counters, gauges, and
  fixed-bucket latency histograms (near-zero cost when disabled);
* :mod:`repro.obs.trace` — per-update-transaction pipeline traces
  (fetch → validate → store flush, linked to the sampler fire time via
  the transaction timestamp);
* :mod:`repro.obs.selfmetrics` — the ``ldmsd_self`` metric-set schema
  that exports all of it as a first-class set an aggregator collects
  over the normal transport.

Surfaces: ``Ldmsd.stats()`` (registry snapshot), the ``stats``/``prof``
control verbs, ``ldms_ls -v``, and the ``ldmsd_self`` sampler plugin.
"""

from repro.obs.flight import FlightRecorder, postmortem, postmortems
from repro.obs.freshness import FreshnessTracker, ProducerFreshness
from repro.obs.registry import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from repro.obs.selfmetrics import SELF_METRIC_NAMES, SELF_SCHEMA, collect, render
from repro.obs.spans import (
    Span,
    SpanRecorder,
    causal_chains,
    chrome_trace_events,
    validate_chrome_trace,
)
from repro.obs.trace import PipelineTrace, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "DEFAULT_LATENCY_EDGES",
    "PipelineTrace",
    "Tracer",
    "SELF_SCHEMA",
    "SELF_METRIC_NAMES",
    "collect",
    "render",
    "Span",
    "SpanRecorder",
    "causal_chains",
    "chrome_trace_events",
    "validate_chrome_trace",
    "FreshnessTracker",
    "ProducerFreshness",
    "FlightRecorder",
    "postmortem",
    "postmortems",
]
