"""Always-on flight recorder + postmortem dumps.

When a daemon dies at 02:00 the question is never "what is it doing
now" but "what was it doing just before".  Every daemon owns a
:class:`FlightRecorder` — a fixed-size ring of recent events (connection
state changes, updater FSM transitions, store submits, watchdog checks,
fault injections) recorded as flat scalar tuples, so the steady-state
cost is one deque append per *event of interest* (never per update) and
memory is strictly bounded.

A *postmortem* (:func:`postmortem`) freezes the rings of the involved
daemons into one JSON-serializable document.  Triggers are wired where
failures surface: watchdog promotion (:mod:`repro.faults.watchdog`),
fault injection (:mod:`repro.faults.inject`), and sanitizer violations
(:mod:`repro.core.sanitize` raise path).  Dumps are retained in-process
(``postmortems`` ring, for tests and the ``prof`` verb) and optionally
written to disk — pass ``path=`` or set ``REPRO_POSTMORTEM_DIR``.

The module-level trigger registry deliberately holds *weak* references:
a recorder must never keep a dead daemon's object graph alive.
"""

from __future__ import annotations

import json
import os
import weakref
from collections import deque
from typing import Iterable, Optional

__all__ = [
    "FlightRecorder",
    "register_daemon",
    "registered_daemons",
    "postmortem",
    "postmortems",
    "reset_postmortems",
]


class FlightRecorder:
    """Bounded ring buffer of recent daemon events.

    Events are ``(t, category, event, a, b)`` tuples of scalars
    (floats/ints/short strings) — no dicts, no formatting — so a
    ``record`` call is one tuple build and one deque append.  When
    disabled it is a single attribute test.
    """

    __slots__ = ("daemon", "enabled", "events", "total")

    #: Event categories in use (documentation, not enforcement).
    CATEGORIES = ("daemon", "conn", "updater", "store",
                  "watchdog", "fault", "sanitize")

    def __init__(self, daemon: str, enabled: bool = True, ring: int = 512):
        self.daemon = daemon
        self.enabled = enabled
        self.events: deque[tuple] = deque(maxlen=ring)
        self.total = 0  # events ever recorded (ring overwrites don't hide rate)

    def record(self, t: float, category: str, event: str,
               a=0, b=0) -> None:
        if not self.enabled:
            return
        self.events.append((t, category, event, a, b))
        self.total += 1

    def snapshot(self) -> list[dict]:
        return [
            {"t": t, "category": cat, "event": ev, "a": a, "b": b}
            for (t, cat, ev, a, b) in self.events
        ]

    def window(self) -> tuple[float, float]:
        """(oldest, newest) event times; (0, 0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0][0], self.events[-1][0])


# ---------------------------------------------------------------------------
# postmortem coordination
# ---------------------------------------------------------------------------

#: Weakly-referenced daemons considered "the fleet" for triggers that
#: have no better scoping information (sanitizer violations).
_registry: list = []

#: Retained postmortem documents, newest last.
postmortems: deque[dict] = deque(maxlen=8)

_dump_seq = 0

#: Registry size that triggers the next dead-ref compaction.  Doubles
#: after each sweep so registering N daemons costs amortized O(N) —
#: compacting on *every* insert past a fixed cap is O(N²) at full-scale
#: fan-in (9k+ daemons in one process).
_compact_at = 128


def register_daemon(daemon) -> None:
    """Track a daemon for fleet-scoped postmortems (weakly referenced)."""
    global _compact_at
    _registry.append(weakref.ref(daemon))
    if len(_registry) >= _compact_at:
        _registry[:] = [r for r in _registry if r() is not None]
        _compact_at = max(128, 2 * len(_registry))


def registered_daemons() -> list:
    return [d for d in (r() for r in _registry) if d is not None]


def postmortem(reason: str, now: float, daemons: Optional[Iterable] = None,
               path: Optional[str] = None) -> dict:
    """Freeze flight-recorder rings into a postmortem document.

    ``daemons`` scopes the dump (watchdog/injector pass the daemons
    involved); when omitted, every registered daemon with a recorder is
    included.  Returns the document; also retains it in
    :data:`postmortems` and writes JSON to ``path`` (or a sequenced file
    under ``$REPRO_POSTMORTEM_DIR``) when requested.
    """
    global _dump_seq
    if daemons is None:
        daemons = registered_daemons()
    recorders = []
    for d in daemons:
        rec = getattr(d, "flight", None)
        if rec is None or not isinstance(rec, FlightRecorder):
            continue
        lo, hi = rec.window()
        recorders.append({
            "daemon": rec.daemon,
            "total_events": rec.total,
            "window": [lo, hi],
            "events": rec.snapshot(),
        })
    doc = {
        "reason": reason,
        "t": now,
        "daemons": recorders,
    }
    postmortems.append(doc)
    _dump_seq += 1
    if path is None:
        outdir = os.environ.get("REPRO_POSTMORTEM_DIR")
        if outdir:
            slug = "".join(c if c.isalnum() else "-" for c in reason)[:48]
            path = os.path.join(outdir, f"postmortem-{_dump_seq:03d}-{slug}.json")
    if path is not None:
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        doc["path"] = path
    return doc


def reset_postmortems() -> None:
    """Clear retained dumps and the fleet registry (test isolation)."""
    global _compact_at
    postmortems.clear()
    _registry.clear()
    _compact_at = 128
