"""Distributed spans: per-hop latency attribution for exemplar traces.

PR-2's :class:`~repro.obs.trace.PipelineTrace` clocks one update
transaction *inside the aggregator*; it cannot attribute latency to the
hops the transaction actually crossed (sampler transaction → serve-side
RDMA read → aggregator fetch/validate → store flush).  This module adds
the cluster-wide half: each daemon owns a :class:`SpanRecorder`, and an
exemplar-sampled transaction carries a compact trace context
(``trace_id``, parent span id, hop number — see
:func:`repro.core.wire.pack_trace_ctx`) on its LOOKUP/RDMA frames so
every daemon it touches records a :class:`Span` against the same
``trace_id``.  Stitched together (:func:`causal_chains`) the spans form
one causal trace per exemplar; :func:`chrome_trace_events` renders them
as Chrome ``trace_event`` JSON (load in ``chrome://tracing`` or
Perfetto), timestamped off the daemon clock — simulated seconds under
the DES, so a trace replay is byte-identical for a given seed.

Cost discipline mirrors the rest of ``repro.obs``: ``record`` is only
reached behind a ``trace is not None`` / ``enabled`` guard on the
1-in-16 exemplar path, and a disabled recorder's ``record`` returns
immediately, so the per-update hot path stays allocation-free.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

__all__ = [
    "HOP_SAMPLE",
    "HOP_SERVE",
    "HOP_UPDATE",
    "HOP_STORE",
    "HOP_NAMES",
    "Span",
    "SpanRecorder",
    "causal_chains",
    "chrome_trace_events",
]

#: Hop numbering of the paper's Fig. 2 pipeline, source → sink.  The
#: wire context carries the *sender's* hop; the serving side records its
#: spans one hop closer to the source (and the sample anchor at hop 0).
HOP_SAMPLE = 0   # sampler transaction that produced the data chunk
HOP_SERVE = 1    # serve-side RDMA read / lookup handling on the ldmsd
HOP_UPDATE = 2   # aggregator fetch + validate
HOP_STORE = 3    # store flush on the aggregator

HOP_NAMES = ("sample", "serve", "update", "store")


class Span:
    """One recorded hop of a causal trace."""

    __slots__ = ("trace_id", "span_id", "parent_span", "hop",
                 "name", "t0", "t1")

    def __init__(self, trace_id: int, span_id: int, parent_span: int,
                 hop: int, name: str, t0: float, t1: float):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span = parent_span
        self.hop = hop
        self.name = name
        self.t0 = t0
        self.t1 = t1

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span trace={self.trace_id} #{self.span_id} "
                f"hop={self.hop} {self.name} "
                f"[{self.t0:.6f}..{self.t1:.6f}]>")


class SpanRecorder:
    """Per-daemon bounded ring of spans plus the span-id allocator.

    Span ids only need to be unique *within* a daemon (a chain edge is
    the (daemon, span_id) pair named by the wire context), so each
    recorder allocates from its own counter — no cross-daemon
    coordination, which keeps DES determinism trivial.
    """

    __slots__ = ("daemon", "enabled", "spans", "total",
                 "_next_span", "_next_aux")

    def __init__(self, daemon: str, enabled: bool = True, ring: int = 512):
        self.daemon = daemon
        self.enabled = enabled
        self.spans: deque[Span] = deque(maxlen=ring)
        self.total = 0  # spans ever recorded (the ring overwrites)
        self._next_span = 1
        # Auxiliary trace ids (lookup RTT traces) live far above the
        # Tracer's per-transaction ids so the two families never collide.
        self._next_aux = 1 << 48

    def alloc(self) -> int:
        """Allocate a span id (call only on the exemplar path)."""
        sid = self._next_span
        self._next_span = sid + 1
        return sid

    def alloc_trace(self) -> int:
        """Allocate an auxiliary trace id (lookup/control traces)."""
        tid = self._next_aux
        self._next_aux = tid + 1
        return tid

    def record(self, trace_id: int, span_id: int, parent_span: int,
               hop: int, name: str, t0: float, t1: float) -> None:
        if not self.enabled:
            return
        self.spans.append(
            Span(trace_id, span_id, parent_span, hop, name, t0, t1))
        self.total += 1

    def snapshot(self) -> list[dict]:
        return [s.as_dict() for s in self.spans]


def causal_chains(
    recorders: Iterable[SpanRecorder],
    min_hops: int = 1,
) -> dict[int, list[tuple[str, Span]]]:
    """Stitch spans from many daemons into per-trace causal chains.

    Returns ``{trace_id: [(daemon, span), ...]}`` with each chain
    sorted source-first (by hop, then start time); chains spanning
    fewer than ``min_hops`` distinct hops are dropped.
    """
    chains: dict[int, list[tuple[str, Span]]] = {}
    for rec in recorders:
        for span in rec.spans:
            chains.setdefault(span.trace_id, []).append((rec.daemon, span))
    out: dict[int, list[tuple[str, Span]]] = {}
    for tid, entries in chains.items():
        if len({s.hop for _, s in entries}) < min_hops:
            continue
        entries.sort(key=lambda e: (e[1].hop, e[1].t0, e[1].span_id))
        out[tid] = entries
    return dict(sorted(out.items()))


def chrome_trace_events(recorders: Iterable[SpanRecorder]) -> dict:
    """Render recorded spans as Chrome ``trace_event`` JSON.

    One *process* per daemon, one *thread* per hop; complete ("X")
    events in microseconds off the daemon clock.  The result is a plain
    dict ready for ``json.dump`` and loads directly into
    ``chrome://tracing`` / Perfetto.
    """
    events: list[dict] = []
    for pid, rec in enumerate(recorders, start=1):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": rec.daemon},
        })
        for span in rec.spans:
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "pid": pid,
                "tid": span.hop,
                "ts": round(span.t0 * 1e6, 3),
                "dur": round(max(span.t1 - span.t0, 0.0) * 1e6, 3),
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_span": span.parent_span,
                    "hop": HOP_NAMES[span.hop]
                    if 0 <= span.hop < len(HOP_NAMES) else str(span.hop),
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict) -> Optional[str]:
    """Cheap structural check of a ``trace_event`` document.

    Returns an error string, or ``None`` when the document is valid.
    Used by tests and the failover experiment's acceptance check.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return "traceEvents missing or not a list"
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return f"event {i} is not an object"
        for key in ("ph", "pid", "tid"):
            if key not in ev:
                return f"event {i} missing {key!r}"
        if ev["ph"] == "X":
            if not isinstance(ev.get("ts"), (int, float)):
                return f"event {i} missing numeric ts"
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                return f"event {i} missing non-negative dur"
    return None
