"""Process-local telemetry registry: counters, gauges, latency histograms.

The monitor must monitor itself (PAPER §V–§VII measure LDMS's *own*
CPU, memory, and fan-in latencies): every :class:`~repro.core.ldmsd.Ldmsd`
owns one :class:`Telemetry` registry and threads it through each
pipeline stage — sampling, lookup, update, validation, storage, and
control handling.  Instruments are deliberately primitive:

* :class:`Counter` — a monotonic int (``inc``);
* :class:`Gauge`   — a last-value float (``set``/``add``);
* :class:`Histogram` — fixed-bucket latency histogram tracking exact
  ``count/sum/min/max`` plus bucket counts, from which p50/p95/p99 are
  interpolated.  Buckets default to a 1-2-5 log ladder from 1 µs to
  100 s, wide enough for both simulated RTTs and real store flushes.

Cost discipline: instruments are looked up once (at daemon/plugin setup
time) and the hot path is one or two attribute ops.  A disabled
registry (``Telemetry(enabled=False)``) hands out shared *null*
instruments whose methods are no-ops, so instrumented code needs no
``if`` guards and disabled overhead is a single no-op call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "DEFAULT_LATENCY_EDGES",
]


def _log_ladder(decades: tuple[int, int]) -> tuple[float, ...]:
    """1-2-5 bucket edges across ``10**lo .. 10**hi`` seconds."""
    lo, hi = decades
    edges = []
    for exp in range(lo, hi):
        for m in (1.0, 2.0, 5.0):
            edges.append(m * 10.0**exp)
    edges.append(10.0**hi)
    return tuple(edges)


#: 1 µs → 100 s in 1-2-5 steps: 25 bucket edges → 26 buckets (with the
#: implicit underflow bucket below the first edge and overflow above the
#: last).  Fine enough that interpolated p50/p95/p99 land within one
#: 1-2-5 step of the true quantile.
DEFAULT_LATENCY_EDGES = _log_ladder((-6, 2))
_DEFAULT_EDGES_ARR = np.asarray(DEFAULT_LATENCY_EDGES)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-value instrument (arena bytes, queue depths, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``observe`` is the hot call, so it only appends the raw value to a
    small staging list (one list append — the tail stays cache-hot even
    when the pipeline's working set evicts the bucket arrays); staged
    values are folded into the buckets with one vectorized
    ``searchsorted`` per batch, either when the list reaches
    ``_FOLD_AT`` or lazily on any read (``count``/``quantile``/
    ``summary``/...).  Folding swaps the staging list out first, so a
    concurrent ``observe`` under the GIL lands in the fresh list rather
    than being double-counted.

    Quantiles are computed on demand by walking the cumulative bucket
    counts and interpolating linearly inside the landing bucket (clamped
    to the observed min/max, so a single-sample histogram reports that
    sample for every quantile).
    """

    __slots__ = ("name", "edges", "buckets", "_edges_arr",
                 "_count", "_sum", "_min", "_max", "_pending")

    _FOLD_AT = 512

    def __init__(self, name: str, edges: Optional[tuple[float, ...]] = None):
        self.name = name
        if edges is None:
            # The default ladder is pre-validated and its ndarray shared:
            # a 9,000-daemon sweep creates tens of thousands of default
            # histograms, so per-instance validation + asarray adds up.
            self.edges = DEFAULT_LATENCY_EDGES
            self._edges_arr = _DEFAULT_EDGES_ARR
        else:
            self.edges = tuple(edges)
            if len(self.edges) < 1 or any(
                b <= a for a, b in zip(self.edges, self.edges[1:])
            ):
                raise ValueError("histogram edges must be strictly increasing")
            self._edges_arr = np.asarray(self.edges)
        self.buckets = [0] * (len(self.edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._pending: list[float] = []

    def observe(self, value: float) -> None:
        pending = self._pending
        pending.append(value)
        if len(pending) >= self._FOLD_AT:
            self._fold()

    def _fold(self) -> None:
        pending = self._pending
        if not pending:
            return
        self._pending = []
        n = len(pending)
        arr = np.asarray(pending)
        # vectorized bisect_right over the whole batch
        idx = np.searchsorted(self._edges_arr, arr, side="right")
        counts = np.bincount(idx, minlength=len(self.buckets))
        buckets = self.buckets
        for i in np.flatnonzero(counts):
            buckets[i] += int(counts[i])
        self._count += n
        self._sum += float(arr.sum())
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self._min:
            self._min = lo
        if hi > self._max:
            self._max = hi

    @property
    def count(self) -> int:
        self._fold()
        return self._count

    @property
    def sum(self) -> float:
        self._fold()
        return self._sum

    @property
    def min(self) -> float:
        self._fold()
        return self._min

    @property
    def max(self) -> float:
        self._fold()
        return self._max

    @property
    def mean(self) -> float:
        self._fold()
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile in [0, 1]; 0.0 when empty."""
        self._fold()
        if not self._count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        target = q * self._count
        seen = 0.0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= target:
                lo = self.edges[i - 1] if i > 0 else self._min
                hi = self.edges[i] if i < len(self.edges) else self._max
                frac = (target - seen) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self._min), self._max)
            seen += n
        return self._max

    def summary(self) -> dict:
        """Detached summary row (the ``stats`` surface)."""
        self._fold()
        empty = self._count == 0
        return {
            "count": self._count,
            "sum": self._sum,
            "min": 0.0 if empty else self._min,
            "max": 0.0 if empty else self._max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def dump(self) -> dict:
        """Summary plus the raw bucket vector (the ``prof`` surface)."""
        out = self.summary()
        out["edges"] = list(self.edges)
        out["buckets"] = list(self.buckets)
        return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def dump(self) -> dict:
        out = self.summary()
        out["edges"] = []
        out["buckets"] = []
        return out


_NULL = _NullInstrument()


class Telemetry:
    """A named-instrument registry owned by one daemon.

    Instruments are created lazily and cached by name; repeated lookups
    return the same object, so callers bind them once at setup time.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._endpoint_incs: Optional[tuple] = None

    def endpoint_incs(self) -> tuple:
        """The four transport-accounting ``inc`` methods, bound once.

        Every endpoint of a daemon binds the same four counters; at
        ≥9,000 connections the per-endpoint name lookups are a measurable
        slice of connection setup, so the bound-method tuple is cached.
        """
        incs = self._endpoint_incs
        if incs is None:
            incs = self._endpoint_incs = (
                self.counter("transport.frames_rx").inc,
                self.counter("transport.bytes_rx").inc,
                self.counter("transport.rdma_reads").inc,
                self.counter("transport.rdma_bytes").inc,
            )
        return incs

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, edges: Optional[tuple[float, ...]] = None
    ) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges)
        return h

    # ------------------------------------------------------------------
    # surfaces
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep, detached, JSON-serializable registry snapshot."""
        return {
            "enabled": self.enabled,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def dump_histograms(self) -> dict:
        """Full histogram dumps (bucket vectors included) for ``prof``."""
        return {n: h.dump() for n, h in sorted(self._histograms.items())}
