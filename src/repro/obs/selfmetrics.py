"""The ``ldmsd_self`` metric-set schema: a daemon's health as data.

Real LDMS exports the daemon's own counters as a first-class metric set
so an aggregator collects a sampler's health exactly the way it
collects ``meminfo`` — over the normal transport, validated by the
normal DGN/consistent rules, stored through the normal store path.
This module defines that schema once: the fixed metric-name tuple, the
``collect()`` function that snapshots a live daemon into a value row,
and the ``render()`` helper ``ldms_ls -v`` uses to pretty-print a
collected set.

All metrics are U64.  Latency quantiles come from the daemon's
telemetry histograms and are exported in integer microseconds
(``*_us_*``), matching the paper's µs-scale overhead tables (§IV-E,
§V).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.shard import runtime_snapshot as shard_runtime_snapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ldmsd import Ldmsd

__all__ = ["SELF_SCHEMA", "SELF_METRIC_NAMES", "collect", "render"]

SELF_SCHEMA = "ldmsd_self"

#: (metric prefix, telemetry histogram name) pairs exported as quantiles.
_HISTOGRAMS = (
    ("sample", "sample.duration"),
    ("lookup", "lookup.rtt"),
    ("update", "update.rtt"),
    ("store_flush", "store.flush"),
    ("sample_to_store", "pipeline.sample_to_store"),
    ("query", "serve.query"),
)
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

_COUNTER_NAMES = (
    "sets",
    "plugins",
    "producers",
    "stores",
    "arena_used",
    "arena_peak",
    "arena_size",
    "samples",
    "lookups_sent",
    "lookups_failed",
    "lookups_timed_out",
    "sets_pruned",
    "updates_issued",
    "updates_completed",
    "updates_failed",
    "skipped_stale",
    "skipped_inconsistent",
    "skipped_busy",
    "schema_refreshes",
    "updates_stored",
    "records_delivered",
    "records_stored",
    "store_errors",
    "store_dropped",
    "set_create_failed",
    "sanitizer_violations",
    "watchdog_promotions",
    "faults_injected",
    "updates_coalesced",
    "flush_rows_batched",
    "timer_fastpath_ticks",
    "arena_sweeps",
    "arena_rows_vectorized",
    "arena_fallback_sets",
    # Observability plane (PR 7): aggregator freshness tracking —
    # delivered/expected transactions across all tracked producers,
    # fleet completeness in permille (0.901 → 901), stale-producer
    # count and worst staleness in ms — plus flight-recorder and span
    # activity.  On a sampler-only daemon the freshness row is the
    # identity (0 producers, completeness 1000).
    "freshness_producers",
    "freshness_delivered",
    "freshness_expected",
    "freshness_missed",
    "completeness_permille",
    "stale_producers",
    "max_staleness_ms",
    "flight_events",
    "spans_recorded",
    # Serving tier (PR 9): query requests served, hot/LRU cache
    # outcomes, rows returned, and SOS records rejected for spanning
    # multiple component ids (the store's one-u32-slot contract).
    "query_requests",
    "query_cache_hits",
    "query_cache_misses",
    "query_rows_served",
    "store_multi_component_rejected",
    # Shard plane (PR 10): conservative time-windows run, cumulative
    # barrier wait (host ns, through the sanctioned timeutil boundary),
    # cross-shard frames emitted by this process's gateway, and the
    # window lookahead in ns.  Process-wide plane metrics — every
    # daemon in a shard reports the same row; schema-stable zeros when
    # ``REPRO_SHARDS`` is off.
    "shard_windows",
    "shard_barrier_wait_ns",
    "cross_shard_frames",
    "shard_lookahead_ns",
)


def _histogram_metric_names() -> tuple[str, ...]:
    names = []
    for prefix, _ in _HISTOGRAMS:
        for qname, _ in _QUANTILES:
            names.append(f"{prefix}_us_{qname}")
        names.append(f"{prefix}_us_max")
        names.append(f"{prefix}_count")
    return tuple(names)


#: The frozen schema, in descriptor order.
SELF_METRIC_NAMES: tuple[str, ...] = _COUNTER_NAMES + _histogram_metric_names()


def _us(seconds: float) -> int:
    return int(seconds * 1e6) if seconds > 0 else 0


def collect(daemon: "Ldmsd") -> list[int]:
    """Snapshot ``daemon`` into a value row matching SELF_METRIC_NAMES.

    Called from the ``ldmsd_self`` plugin's ``do_sample`` under the
    daemon lock; reads live fields directly instead of ``stats()`` to
    avoid building a throwaway dict per sample.
    """
    prods = list(daemon.producers.values())

    def psum(field: str) -> int:
        return sum(getattr(p.stats, field) for p in prods)

    values = [
        len(daemon._sets),
        len(daemon._plugins),
        len(prods),
        len(daemon.stores),
        daemon.arena.used,
        daemon.arena.peak_used,
        daemon.arena.size,
        sum(p.samples_taken for p in daemon._plugins.values()),
        psum("lookups_sent"),
        psum("lookups_failed"),
        psum("lookups_timed_out"),
        psum("sets_pruned"),
        psum("updates_issued"),
        psum("updates_completed"),
        psum("updates_failed"),
        psum("skipped_stale"),
        psum("skipped_inconsistent"),
        psum("skipped_busy"),
        psum("schema_refreshes"),
        psum("stored"),
        daemon.records_delivered,
        sum(s.records_stored for s in daemon.stores),
        sum(s.records_failed for s in daemon.stores),
        sum(s.records_dropped for s in daemon.stores),
        daemon.obs.counter("set.create_failed").value,
        daemon.obs.counter("sanitizer.violations").value,
        daemon.obs.counter("watchdog.promotions").value,
        daemon.obs.counter("faults.injected").value,
        psum("updates_coalesced"),
        daemon.obs.counter("store.flush_rows_batched").value,
        daemon.env.timer_fastpath_ticks(),
        daemon.obs.counter("arena.sweeps").value,
        daemon.obs.counter("arena.rows_vectorized").value,
        daemon.obs.counter("arena.fallback_sets").value,
    ]
    fleet = daemon.freshness.fleet(daemon.env.now())
    values.extend((
        fleet["producers"],
        fleet["delivered"],
        fleet["expected"],
        fleet["missed"],
        int(fleet["completeness"] * 1000.0 + 0.5),
        fleet["stale_producers"],
        int(fleet["max_staleness"] * 1000.0),
        daemon.flight.total,
        daemon.spans.total,
        daemon.obs.counter("query.requests").value,
        daemon.obs.counter("query.cache_hits").value,
        daemon.obs.counter("query.cache_misses").value,
        daemon.obs.counter("query.rows_served").value,
        sum(getattr(s, "multi_component_rejected", 0) for s in daemon.stores),
    ))
    shard = shard_runtime_snapshot()
    values.extend((
        shard["shard_windows"],
        shard["shard_barrier_wait_ns"],
        shard["cross_shard_frames"],
        shard["shard_lookahead_ns"],
    ))
    for _, hname in _HISTOGRAMS:
        h = daemon.obs.histogram(hname)
        for _, q in _QUANTILES:
            values.append(_us(h.quantile(q)))
        values.append(_us(h.max if h.count else 0.0))
        values.append(h.count)
    return values


def render(values: dict[str, int | float], indent: str = "    ") -> str:
    """Human-readable pipeline-health block for one collected
    ``ldmsd_self`` row (``ldms_ls -v``)."""
    v = values

    def lat(prefix: str) -> str:
        if not v.get(f"{prefix}_count"):
            return "no samples"
        return (
            f"p50={v[f'{prefix}_us_p50']}us p95={v[f'{prefix}_us_p95']}us "
            f"p99={v[f'{prefix}_us_p99']}us max={v[f'{prefix}_us_max']}us "
            f"(n={v[f'{prefix}_count']})"
        )

    lines = [
        f"daemon   : sets={v['sets']} plugins={v['plugins']} "
        f"producers={v['producers']} stores={v['stores']} "
        f"arena={v['arena_used']}/{v['arena_size']}B (peak {v['arena_peak']})",
        f"sampling : {v['samples']} samples, {lat('sample')}",
        f"lookups  : sent={v['lookups_sent']} failed={v['lookups_failed']} "
        f"timed_out={v['lookups_timed_out']} pruned={v['sets_pruned']}, "
        f"rtt {lat('lookup')}",
        f"updates  : issued={v['updates_issued']} "
        f"completed={v['updates_completed']} failed={v['updates_failed']} "
        f"stale={v['skipped_stale']} torn={v['skipped_inconsistent']} "
        f"busy={v['skipped_busy']} refresh={v['schema_refreshes']}, "
        f"rtt {lat('update')}",
        f"stores   : delivered={v['records_delivered']} "
        f"stored={v['records_stored']} errors={v['store_errors']} "
        f"dropped={v['store_dropped']}, flush {lat('store_flush')}",
        f"fastpath : coalesced={v['updates_coalesced']} "
        f"batched_rows={v['flush_rows_batched']} "
        f"timer_ticks={v['timer_fastpath_ticks']}",
        f"arena    : sweeps={v['arena_sweeps']} "
        f"rows_vectorized={v['arena_rows_vectorized']} "
        f"fallback_sets={v['arena_fallback_sets']}",
        f"freshness: producers={v['freshness_producers']} "
        f"delivered={v['freshness_delivered']}/{v['freshness_expected']} "
        f"missed={v['freshness_missed']} "
        f"completeness={v['completeness_permille']}‰ "
        f"stale={v['stale_producers']} "
        f"max_stale={v['max_staleness_ms']}ms",
        f"flight   : events={v['flight_events']} "
        f"spans={v['spans_recorded']}",
        f"shard    : windows={v['shard_windows']} "
        f"barrier_wait={v['shard_barrier_wait_ns']}ns "
        f"cross_frames={v['cross_shard_frames']} "
        f"lookahead={v['shard_lookahead_ns']}ns",
        f"query    : requests={v['query_requests']} "
        f"hits={v['query_cache_hits']} misses={v['query_cache_misses']} "
        f"rows={v['query_rows_served']} "
        f"comp_rejected={v['store_multi_component_rejected']}, "
        f"served {lat('query')}",
        f"end2end  : sample->store {lat('sample_to_store')}",
        f"faults   : injected={v['faults_injected']} "
        f"promotions={v['watchdog_promotions']}",
    ]
    return "\n".join(indent + line for line in lines)
