"""Pipeline tracing: one trace per update transaction.

An aggregator-initiated update transaction moves through fixed stages
(paper Fig. 2): the fetch is issued {e}, the data chunk crosses the
transport {f}, the header is peeked/validated (MGN/DGN/consistent,
§IV-A), and a fresh consistent record is handed to the store layer {i}
and flushed.  :class:`PipelineTrace` carries one id through all of
those stages and timestamps each one in the daemon's clock (simulated
seconds under the DES, monotonic seconds under ``RealEnv``).

The sampler's fire time is recovered from the transported data chunk
itself — the transaction timestamp written by ``end_transaction`` —
which is what links the trace back to the producing daemon without any
extra wire bytes: ``t_store_submit - sample_ts`` is the end-to-end
sample→store latency the paper's §V fan-in analysis cares about.

Completed traces land in a bounded ring buffer for introspection and
tests; the histograms derived from them live in the daemon's
:class:`~repro.obs.registry.Telemetry`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

__all__ = ["PipelineTrace", "Tracer"]

#: Terminal trace statuses (every completed trace carries exactly one).
TRACE_STATUSES = (
    "stored",        # fresh + consistent: copied, delivered to stores
    "stale",         # DGN unchanged since last store — skipped
    "torn",          # consistent flag clear (fetch inside a transaction)
    "failed",        # transport returned no data / malformed fetch
    "schema_refresh",  # MGN mismatch forced a re-lookup
    "store_error",   # store layer refused the record at hand-off
)


class PipelineTrace:
    """Stage clock of one update transaction."""

    __slots__ = (
        "trace_id",
        "producer",
        "set_name",
        "t_issue",
        "t_fetched",
        "t_validated",
        "t_store_submit",
        "t_store_done",
        "sample_ts",
        "status",
        # Span id of this transaction's aggregator-side "update" span,
        # allocated at issue time when the trace context is propagated
        # on the wire (None when the peer does not speak trace-ctx).
        "span_id",
    )

    def __init__(self, trace_id: int, producer: str, set_name: str, t_issue: float):
        # Only the issue-time slots are written here; later stages fill
        # the rest lazily (a trace is allocated per update transaction,
        # so construction stays minimal).  Unreached stages read as None.
        self.trace_id = trace_id
        self.producer = producer
        self.set_name = set_name
        self.t_issue = t_issue

    def __getattr__(self, name: str):
        if name in PipelineTrace.__slots__:
            return None
        raise AttributeError(name)

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PipelineTrace #{self.trace_id} {self.producer}/{self.set_name} "
            f"status={self.status}>"
        )


class Tracer:
    """Allocates trace ids and retains sampled completed traces.

    Every update transaction consumes a trace id, but a full
    :class:`PipelineTrace` object is only materialized for one
    transaction in ``sample_every`` (the first is always sampled, so
    short tests see trace #1) — the per-stage latency *histograms*
    observe every transaction regardless; the retained traces are
    exemplars, as in production tracing systems.  This bounds the
    hot-path cost to an id increment for unsampled transactions.  Set
    ``sample_every=1`` to retain every trace.

    Created disabled-aware by the daemon: when telemetry is off,
    ``start`` returns ``None`` and the update path carries no trace
    object at all (zero allocation per transaction).
    """

    def __init__(self, clock: Callable[[], float], enabled: bool = True,
                 ring: int = 256, sample_every: int = 16):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.clock = clock
        self.enabled = enabled
        self.sample_every = sample_every
        self._next_id = 1
        self.completed: deque[PipelineTrace] = deque(maxlen=ring)

    def start(self, producer: str, set_name: str) -> Optional[PipelineTrace]:
        if not self.enabled:
            return None
        trace_id = self._next_id
        self._next_id = trace_id + 1
        if (trace_id - 1) % self.sample_every:
            return None
        return PipelineTrace(trace_id, producer, set_name, self.clock())

    def finish(self, trace: Optional[PipelineTrace], status: str) -> None:
        if trace is None:
            return
        if status not in TRACE_STATUSES:
            raise ValueError(f"unknown trace status {status!r}")
        trace.status = status
        self.completed.append(trace)

    def last(self, status: Optional[str] = None) -> list[PipelineTrace]:
        """Completed traces, optionally filtered by terminal status."""
        if status is None:
            return list(self.completed)
        return [t for t in self.completed if t.status == status]
